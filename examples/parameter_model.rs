//! Explore the paper's input parameter model (Figs. 6–10): generate the
//! 68 000-subframe evaluation sequence and print the distributions behind
//! Figs. 7, 8 and 9.
//!
//! ```text
//! cargo run --release --example parameter_model
//! ```

use lte_uplink_repro::model::trace::Trace;
use lte_uplink_repro::model::{
    current_probability, ParameterModel, RampModel, EVALUATION_SUBFRAMES,
};

fn main() {
    let configs = RampModel::new(2012).subframes(EVALUATION_SUBFRAMES);
    let trace = Trace::from_configs(&configs);
    println!(
        "{} subframes; mean users {:.2}, mean total PRBs {:.1}",
        trace.len(),
        trace.mean_users(),
        trace.mean_total_prbs()
    );

    // Fig. 7: user-count histogram.
    let mut user_hist = [0usize; 11];
    for r in trace.rows() {
        user_hist[r.users] += 1;
    }
    println!("\nusers/subframe histogram (Fig. 7's spread):");
    for (users, count) in user_hist.iter().enumerate() {
        if *count > 0 {
            let bar = "#".repeat(60 * count / trace.len());
            println!("  {users:2} users: {count:6} {bar}");
        }
    }

    // Fig. 8: PRB extremes.
    let max_prb = trace.rows().iter().map(|r| r.max_prbs).max().unwrap();
    let min_prb = trace
        .rows()
        .iter()
        .filter(|r| r.users > 0)
        .map(|r| r.min_prbs)
        .min()
        .unwrap();
    println!("\nPRBs per user (Fig. 8): largest single allocation {max_prb}, smallest {min_prb}");

    // Fig. 9 / Fig. 10: layer mix along the probability ramp.
    println!("\nlayer/modulation probability ramp (Fig. 10) and resulting max layers (Fig. 9):");
    for sf in (0..EVALUATION_SUBFRAMES).step_by(EVALUATION_SUBFRAMES / 8) {
        let window = &trace.rows()[sf..(sf + 200).min(trace.len())];
        let max_layers = window.iter().map(|r| r.max_layers).max().unwrap();
        println!(
            "  subframe {sf:6}: prob {:5.1}%  max layers in window: {max_layers}",
            100.0 * current_probability(sf)
        );
    }
}
