//! Reproduce the paper's power-management study (Figs. 13–16,
//! Tables I–II) on a reduced run: calibrate the workload estimator,
//! simulate all four nap policies on the 64-core tile machine, and apply
//! the analytical power-gating model.
//!
//! ```text
//! cargo run --release --example power_management
//! ```

use lte_uplink_repro::power::NapPolicy;
use lte_uplink_repro::uplink::experiments::ExperimentContext;
use lte_uplink_repro::uplink::report;

fn main() {
    // A reduced ramp (8 000 subframes = 40 simulated seconds) so the
    // example finishes in seconds; `lte-sim table2` runs the full 68 000.
    let ctx = ExperimentContext {
        n_subframes: 8_000,
        cal_prb_step: 20,
        ..ExperimentContext::paper()
    };
    println!(
        "calibrating workload estimator ({} steady-state points per curve) …",
        200 / ctx.cal_prb_step
    );
    let study = ctx.run_power_study();

    println!(
        "\nestimator validation (Fig. 12): mean |err| {:.2}%, max |err| {:.2}%  (paper: 1.2% / 5.4%)",
        100.0 * study.validation.mean_abs_err,
        100.0 * study.validation.max_abs_err
    );

    let min_t = study.targets.iter().min().unwrap();
    let max_t = study.targets.iter().max().unwrap();
    println!("active-core targets (Fig. 13 / Eq. 5): min {min_t}, max {max_t} of 62");

    println!("\naverage power by technique (Table II analogue for this reduced run):");
    for run in &study.runs {
        println!(
            "  {:8}  {:5.2} W total  ({:4.2} W dynamic)",
            run.policy.to_string(),
            run.mean_total,
            run.mean_dynamic
        );
    }
    println!(
        "  {:8}  {:5.2} W total  (analytical gating on NAP+IDLE)",
        "GATED", study.gated_mean
    );

    let nonap = study.run(NapPolicy::NoNap).mean_total;
    println!(
        "\npower-gated saving vs NONAP: {:.0}%  (paper: 26% on the full ramp)",
        100.0 * (nonap - study.gated_mean) / nonap
    );

    println!("\nTable I (dynamic power, base subtracted):");
    println!("{}", report::table1_markdown(&study.table1()));
}
