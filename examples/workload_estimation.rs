//! Demonstrate the subframe workload estimator (§VI-A): calibrate the
//! twelve k_{L,M} slopes from steady-state runs (Fig. 11), then predict
//! the activity of arbitrary subframes and compare with simulation.
//!
//! ```text
//! cargo run --release --example workload_estimation
//! ```

use lte_uplink_repro::dsp::Modulation;
use lte_uplink_repro::model::{ParameterModel, RampModel};
use lte_uplink_repro::power::NapPolicy;
use lte_uplink_repro::sched::Simulator;
use lte_uplink_repro::uplink::experiments::ExperimentContext;

fn main() {
    let ctx = ExperimentContext {
        cal_prb_step: 20,
        ..ExperimentContext::paper()
    };

    println!(
        "calibrating (Fig. 11 sweep, {} PRB steps) …\n",
        ctx.cal_prb_step
    );
    let (curves, estimator) = ctx.run_calibration();

    println!("fitted activity-per-PRB slopes k_LM (Eq. 3), ×10⁻³:");
    println!("  layers |   QPSK  16QAM  64QAM");
    for layers in 1..=4 {
        print!("       {layers} |");
        for m in Modulation::ALL {
            print!(" {:6.3}", 1e3 * estimator.k(layers, m));
        }
        println!();
    }

    // Show the linearity the estimator exploits.
    let top = curves
        .iter()
        .find(|c| c.layers == 4 && c.modulation == Modulation::Qam64)
        .expect("curve exists");
    println!("\n64QAM/4-layer curve (activity vs PRBs):");
    for p in top.points.iter().step_by(2) {
        println!("  {:3} PRBs → {:5.1}%", p.prbs, 100.0 * p.activity);
    }

    // Predict a fresh subframe mix and check against simulation (Eq. 4).
    let subframes = RampModel::new(99).subframes(400);
    let predicted: f64 = subframes
        .iter()
        .map(|sf| estimator.subframe_activity(sf))
        .sum::<f64>()
        / subframes.len() as f64;
    let cfg = ctx.sim_config(NapPolicy::NoNap);
    let targets = vec![cfg.n_workers; subframes.len()];
    let report = Simulator::new(cfg).run(&ctx.loads(&subframes, &targets));
    let measured = report.mean_activity(&cfg);
    println!(
        "\n400 unseen subframes: predicted activity {:.1}%, simulated {:.1}% (err {:+.1} pp)",
        100.0 * predicted,
        100.0 * measured,
        100.0 * (predicted - measured)
    );
}
