//! Fixed-point module replacement: run the channel estimator in Q15
//! arithmetic — what an FPU-less tile core (like the TILEPro64) would
//! actually execute — and compare against the float reference.
//!
//! The paper: "Our LTE benchmark is organized as a software pipeline in
//! which modules can easily be replaced to model different algorithms."
//!
//! ```text
//! cargo run --release --example fixed_point
//! ```

use lte_uplink_repro::dsp::fft::{Direction, FftPlan, FftPlanner};
use lte_uplink_repro::dsp::q15::{dequantize_block, quantization_snr_db, quantize_block, FixedFft};
use lte_uplink_repro::dsp::{Complex32, Modulation, Xoshiro256};
use lte_uplink_repro::phy::estimator::{estimate_path, estimate_path_q15};
use lte_uplink_repro::phy::params::{CellConfig, TurboMode, UserConfig};
use lte_uplink_repro::phy::tx::synthesize_user_with_mode;

fn main() {
    // 1. Raw transform: fixed vs float FFT across LTE sizes.
    println!("Q15 fixed-point FFT vs float FFT (quantisation SNR):");
    let mut rng = Xoshiro256::seed_from_u64(3);
    for prbs in [2usize, 10, 50, 100] {
        let n = 12 * prbs;
        let input: Vec<Complex32> = (0..n)
            .map(|_| Complex32::new(0.9 * (rng.next_f32() - 0.5), 0.9 * (rng.next_f32() - 0.5)))
            .collect();
        let mut float = input.clone();
        FftPlan::forward(n).process(&mut float);
        let mut fixed = quantize_block(&input, 1.0);
        let plan = FixedFft::new(n, Direction::Forward);
        plan.process(&mut fixed);
        let fixed_out: Vec<Complex32> = dequantize_block(&fixed, plan.scaling());
        let snr = quantization_snr_db(&float, &fixed_out);
        println!("  {n:4} points: {snr:5.1} dB");
    }

    // 2. The replaceable pipeline module: Q15 channel estimation.
    let cell = CellConfig::with_antennas(2);
    let user = UserConfig::new(16, 1, Modulation::Qpsk);
    let mut rng = Xoshiro256::seed_from_u64(4);
    let input = synthesize_user_with_mode(&cell, &user, TurboMode::Passthrough, 30.0, &mut rng);
    let planner = FftPlanner::new();
    let float_est = estimate_path(&cell, &input, 0, 0, 0, &planner);
    let fixed_est = estimate_path_q15(&cell, &input, 0, 0, 0);
    let snr = quantization_snr_db(&float_est, &fixed_est);
    println!("\nchannel estimator, float vs Q15 path: {snr:.1} dB agreement");
    println!("(anything above ~30 dB is far below the channel noise at practical SNRs)");
}
