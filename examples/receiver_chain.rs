//! Walk one user's subframe through every stage of the uplink receive
//! pipeline (Fig. 3 of the paper), printing what each kernel does —
//! useful as a guided tour of the PHY crate.
//!
//! ```text
//! cargo run --release --example receiver_chain
//! ```

use lte_uplink_repro::dsp::fft::FftPlanner;
use lte_uplink_repro::dsp::{Modulation, Xoshiro256};
use lte_uplink_repro::phy::combiner::{combine_symbol, CombinerWeights};
use lte_uplink_repro::phy::estimator::estimate_slot;
use lte_uplink_repro::phy::params::{CellConfig, TurboMode, UserConfig};
use lte_uplink_repro::phy::receiver::{demap_symbol, finish_user};
use lte_uplink_repro::phy::tx::synthesize_user;

fn main() {
    let cell = CellConfig::default();
    let user = UserConfig::new(25, 2, Modulation::Qam16);
    println!(
        "user: {} PRBs ({} subcarriers), {} layers, {} — {} bits/subframe",
        user.prbs,
        user.subcarriers(),
        user.layers,
        user.modulation,
        user.bits_per_subframe()
    );

    // Transmit side: payload → CRC → interleave → map → DFT precode →
    // MIMO fading channel at 28 dB SNR.
    let mut rng = Xoshiro256::seed_from_u64(7);
    let input = synthesize_user(&cell, &user, 28.0, &mut rng);
    println!(
        "synthesised 2 slots × (1 reference + 6 data symbols) × {} antennas, noise var {:.2e}",
        cell.n_rx, input.noise_var
    );

    let planner = FftPlanner::new();

    // Stage 1: channel estimation — matched filter → IFFT → window →
    // FFT per (antenna, layer); 4 × 2 = 8 tasks in the parallel version.
    let estimates: Vec<_> = (0..2)
        .map(|slot| estimate_slot(&cell, &input, slot, &planner))
        .collect();
    println!(
        "channel estimation: {} paths per slot ({} estimation tasks in §III terms)",
        cell.n_rx * user.layers,
        user.estimation_tasks(cell.n_rx)
    );

    // Combiner weights (user-thread work, not parallelised).
    let weights: Vec<_> = estimates
        .iter()
        .map(|est| CombinerWeights::mmse(est, input.noise_var))
        .collect();
    println!(
        "MMSE combiner weights: {} subcarriers × {} layers × {} antennas per slot",
        weights[0].n_sc(),
        weights[0].n_layers(),
        weights[0].n_rx()
    );

    // Stage 2: antenna combining + IFFT + soft demap per (slot, symbol,
    // layer) — the paper's 12 × layers demodulation tasks.
    let mut llrs = Vec::with_capacity(user.bits_per_subframe());
    #[allow(clippy::needless_range_loop)] // slot indexes input and weights in parallel
    for slot in 0..2 {
        for sym in 0..6 {
            for layer in 0..user.layers {
                let combined = combine_symbol(&input, &weights[slot], slot, sym, layer, &planner);
                llrs.extend(demap_symbol(&input, &combined));
            }
        }
    }
    println!(
        "demodulation: {} tasks produced {} LLRs",
        user.demodulation_tasks(),
        llrs.len()
    );

    // Stage 3: deinterleave → turbo (pass-through) → CRC.
    let result = finish_user(&cell, &input, TurboMode::Passthrough, &llrs);
    println!(
        "CRC: {} — decoded payload of {} bits matches ground truth: {}",
        if result.crc_ok { "OK" } else { "FAILED" },
        result.payload.len(),
        result.matches(&input.ground_truth)
    );
    assert!(result.matches(&input.ground_truth));

    // Bonus: the same frame with the real turbo decoder engaged (the
    // paper passes turbo through; the module is replaceable).
    let mode = TurboMode::Decode { iterations: 5 };
    let coded =
        lte_uplink_repro::phy::tx::synthesize_user_with_mode(&cell, &user, mode, 8.0, &mut rng);
    let decoded = lte_uplink_repro::phy::receiver::process_user(&cell, &coded, mode);
    println!(
        "turbo-coded variant at 8 dB SNR: CRC {}",
        if decoded.crc_ok { "OK" } else { "FAILED" }
    );
}
