//! Quickstart: run the LTE uplink benchmark for a handful of subframes
//! on the real work-stealing pool and verify against the serial
//! reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use lte_uplink_repro::model::{ParameterModel, RampModel};
use lte_uplink_repro::phy::CellConfig;
use lte_uplink_repro::uplink::{BenchmarkConfig, UplinkBenchmark};

fn main() {
    // A four-antenna base station, as in the paper's evaluation.
    let cell = CellConfig::default();
    let config = BenchmarkConfig {
        // One worker per host core; the paper used 62 TILEPro64 tiles.
        delta: Duration::from_millis(5),
        snr_db: 30.0,
        ..BenchmarkConfig::default()
    };
    println!(
        "LTE Uplink Receiver PHY benchmark — {} workers, subframe every {:?}",
        config.workers, config.delta
    );

    // The paper's input parameter model: random users/PRBs (Fig. 6),
    // ramped layers/modulation (Fig. 10).
    let subframes = RampModel::new(42).subframes(50);
    let total_users: usize = subframes.iter().map(|s| s.n_users()).sum();
    println!("generated 50 subframes carrying {total_users} users");

    let mut bench = UplinkBenchmark::new(cell, config);
    let run = bench.run(&subframes);
    println!(
        "processed in {:?} — activity {:.1}% (Eq. 2), CRC pass rate {:.1}%",
        run.elapsed,
        100.0 * run.activity,
        100.0 * run.crc_pass_rate
    );

    // §IV-D verification: the parallel run must match the serial
    // reference bit for bit.
    match bench.verify(&subframes, &run) {
        Ok(()) => println!("verification against serial reference: OK"),
        Err(e) => {
            eprintln!("verification FAILED: {e}");
            std::process::exit(1);
        }
    }
}
