//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment for this repository has no network access, so
//! the real crates.io `crossbeam` cannot be fetched. This shim provides
//! the exact subset the workspace uses — `deque::{Worker, Stealer,
//! Injector, Steal}` — with the same ownership semantics (owner pops
//! LIFO, thieves steal FIFO), implemented on `std::sync` primitives.
//! It is correct and deterministic but not lock-free; if the real
//! crossbeam ever becomes available it is a drop-in replacement.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The owning end of a work-stealing deque. The owner pushes and pops
    /// at the back (LIFO); [`Stealer`]s take from the front (FIFO).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO deque (the only flavour this workspace uses).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes onto the owner's end.
        pub fn push(&self, item: T) {
            lock(&self.queue).push_back(item);
        }

        /// Pops from the owner's end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Number of queued items (approximate under concurrency).
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }

        /// Creates a stealing handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// Upper bound on tasks moved per batch steal, mirroring
    /// `crossbeam_deque::Stealer::steal_batch_and_pop` (which moves at
    /// most half the victim's queue, capped at a small constant).
    pub const MAX_BATCH: usize = 32;

    /// A stealing handle: takes the *oldest* task (front of the deque).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the front item.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Steals up to half the victim's queue (capped at
        /// [`MAX_BATCH`]): the oldest task is returned for immediate
        /// execution and the rest are moved onto `dest`, the thief's own
        /// deque, preserving FIFO order. One successful batch amortises
        /// the steal synchronisation over many tasks.
        ///
        /// The victim's lock is released before `dest` is touched, so
        /// two workers batch-stealing from each other cannot deadlock.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let batch: Vec<T> = {
                let mut src = lock(&self.queue);
                let n = src.len();
                if n == 0 {
                    return Steal::Empty;
                }
                let take = n.div_ceil(2).min(MAX_BATCH);
                src.drain(..take).collect()
            };
            let mut batch = batch.into_iter();
            let first = batch.next().expect("batch is non-empty");
            let mut dst = lock(&dest.queue);
            for item in batch {
                dst.push_back(item);
            }
            Steal::Success(first)
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A FIFO injector queue shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues at the back.
        pub fn push(&self, item: T) {
            lock(&self.queue).push_back(item);
        }

        /// Attempts to take the front item.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Number of queued items (a racy point-in-time sample).
        pub fn len(&self) -> usize {
            lock(&self.queue).len()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_thief_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert!(matches!(s.steal(), Steal::Empty));
        }

        #[test]
        fn batch_steal_halves_the_victim_queue() {
            let victim = Worker::new_lifo();
            let thief = Worker::new_lifo();
            for i in 0..10 {
                victim.push(i);
            }
            // 10 queued: the thief takes ceil(10/2) = 5 — the oldest is
            // returned, four move to the thief's deque, five remain.
            let s = victim.stealer();
            assert!(matches!(s.steal_batch_and_pop(&thief), Steal::Success(0)));
            assert_eq!(thief.len(), 4);
            assert_eq!(victim.len(), 5);
            // The thief's copy preserves the victim's FIFO order.
            let thief_stealer = thief.stealer();
            assert!(matches!(thief_stealer.steal(), Steal::Success(1)));
            // An empty victim reports Empty without touching dest.
            let empty = Worker::<i32>::new_lifo();
            assert!(matches!(
                empty.stealer().steal_batch_and_pop(&thief),
                Steal::Empty
            ));
        }

        #[test]
        fn batch_steal_caps_at_max_batch() {
            let victim = Worker::new_lifo();
            let thief = Worker::new_lifo();
            for i in 0..200 {
                victim.push(i);
            }
            victim.stealer().steal_batch_and_pop(&thief);
            assert_eq!(thief.len(), MAX_BATCH - 1);
            assert_eq!(victim.len(), 200 - MAX_BATCH);
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            assert!(inj.is_empty());
            inj.push("a");
            inj.push("b");
            assert!(matches!(inj.steal(), Steal::Success("a")));
            assert!(matches!(inj.steal(), Steal::Success("b")));
            assert!(matches!(inj.steal(), Steal::Empty));
        }

        #[test]
        fn stealer_works_across_threads() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let stealers: Vec<Stealer<i32>> = (0..4).map(|_| w.stealer()).collect();
            let total: usize = std::thread::scope(|scope| {
                stealers
                    .iter()
                    .map(|s| {
                        scope.spawn(move || {
                            let mut n = 0;
                            while let Steal::Success(_) = s.steal() {
                                n += 1;
                            }
                            n
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(total + w.pop().into_iter().count(), 1000);
        }
    }
}
