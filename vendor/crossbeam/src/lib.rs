//! Offline stand-in for the `crossbeam` facade crate.
//!
//! The build environment for this repository has no network access, so
//! the real crates.io `crossbeam` cannot be fetched. This shim provides
//! the exact subset the workspace uses — `deque::{Worker, Stealer,
//! Injector, Steal}` — with the same ownership semantics (owner pops
//! LIFO, thieves steal FIFO), implemented on `std::sync` primitives.
//! It is correct and deterministic but not lock-free; if the real
//! crossbeam ever becomes available it is a drop-in replacement.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One item was stolen.
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The owning end of a work-stealing deque. The owner pushes and pops
    /// at the back (LIFO); [`Stealer`]s take from the front (FIFO).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO deque (the only flavour this workspace uses).
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes onto the owner's end.
        pub fn push(&self, item: T) {
            lock(&self.queue).push_back(item);
        }

        /// Pops from the owner's end (most recently pushed first).
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Creates a stealing handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A stealing handle: takes the *oldest* task (front of the deque).
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the front item.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A FIFO injector queue shared by all workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues at the back.
        pub fn push(&self, item: T) {
            lock(&self.queue).push_back(item);
        }

        /// Attempts to take the front item.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_thief_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert!(matches!(s.steal(), Steal::Empty));
        }

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            assert!(inj.is_empty());
            inj.push("a");
            inj.push("b");
            assert!(matches!(inj.steal(), Steal::Success("a")));
            assert!(matches!(inj.steal(), Steal::Success("b")));
            assert!(matches!(inj.steal(), Steal::Empty));
        }

        #[test]
        fn stealer_works_across_threads() {
            let w = Worker::new_lifo();
            for i in 0..1000 {
                w.push(i);
            }
            let stealers: Vec<Stealer<i32>> = (0..4).map(|_| w.stealer()).collect();
            let total: usize = std::thread::scope(|scope| {
                stealers
                    .iter()
                    .map(|s| {
                        scope.spawn(move || {
                            let mut n = 0;
                            while let Steal::Success(_) = s.steal() {
                                n += 1;
                            }
                            n
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(total + w.pop().into_iter().count(), 1000);
        }
    }
}
