//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no network access, so this shim provides
//! the subset of the `parking_lot` API the workspace uses — [`Mutex`]
//! with a non-`Result` `lock()` and [`Condvar::wait_for`] — implemented
//! on `std::sync`. Poisoning is deliberately ignored (parking_lot has no
//! poisoning), which matches the semantics callers were written against.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock()` returns the guard directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Option` so [`Condvar::wait_for`] can temporarily take the inner
    /// std guard; it is always `Some` outside that method.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable matching the `parking_lot::Condvar` API subset
/// used by this workspace.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Waits on `guard` until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let res = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut guard = m.lock();
        while !*guard {
            cv.wait_for(&mut guard, Duration::from_millis(50));
        }
        drop(guard);
        h.join().unwrap();
    }
}
