//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this shim implements
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] with `sample_size`/`measurement_time`/
//! `bench_function`/`bench_with_input`/`finish`, [`Bencher::iter`],
//! [`BenchmarkId`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! It measures real wall-clock time (median over a handful of samples)
//! and prints one line per benchmark. It has no statistics engine, plots
//! or baselines — the point is that `cargo bench` and `cargo test
//! --benches` build and run offline with useful, honest numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id from a function name and a
    /// parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; runs and times the iteration body.
pub struct Bencher<'a> {
    samples: usize,
    budget: Duration,
    result: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, collecting up to the configured number of samples
    /// within the time budget (always at least one).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up iteration, also the first sample.
        let start = Instant::now();
        std::hint::black_box(routine());
        self.result.push(start.elapsed());
        let budget_start = Instant::now();
        while self.result.len() < self.samples && budget_start.elapsed() < self.budget {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.result.push(start.elapsed());
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(id: &str, samples: usize, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut durations = Vec::new();
    f(&mut Bencher {
        samples,
        budget,
        result: &mut durations,
    });
    durations.sort_unstable();
    let median = durations
        .get(durations.len() / 2)
        .copied()
        .unwrap_or_default();
    let best = durations.first().copied().unwrap_or_default();
    println!(
        "bench {id:<40} median {:>12}  best {:>12}  ({} samples)",
        human(median),
        human(best),
        durations.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line args are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        run_one(&id.into().id, self.sample_size, self.measurement_time, f);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.measurement_time, f);
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Re-export matching criterion's `black_box` (std's is identical).
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(10));
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 6));
        g.bench_with_input(BenchmarkId::new("f", 2), &2, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
