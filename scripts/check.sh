#!/usr/bin/env bash
# Repository gate: formatting, lints, and the test suite.
#
#   scripts/check.sh            # fmt + clippy + workspace tests
#   scripts/check.sh --tier1    # fmt + clippy + root-package tests only
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

scope=(--workspace)
if [[ "${1:-}" == "--tier1" ]]; then
    scope=()
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q ${scope[*]:-}"
cargo test --offline -q "${scope[@]}"

echo "==> conformance vectors (SIMD + forced-scalar)"
# Golden kernel vectors: every DSP kernel's output hashed and diffed
# against conformance/golden.json, once on the runtime-detected SIMD
# path and once forced scalar. Byte drift on either path — or any
# SIMD/scalar disagreement — fails the build. Regenerate (only for an
# *intentional* numerics change) with `lte-sim vectors --write`.
cargo run -q --offline --release -p lte-uplink --bin lte-sim -- vectors --check \
    || { echo "conformance: kernel output drifted from the golden vectors"; exit 1; }
cargo run -q --offline --release -p lte-uplink --bin lte-sim -- vectors --check --scalar \
    || { echo "conformance: forced-scalar path drifted from the golden vectors"; exit 1; }

echo "==> fuzz smoke (lte-fuzz)"
# Short deterministic corpus (fixed default seed, bounded iterations):
# a reintroduced kernel panic or SIMD/scalar divergence fails the
# build. Longer hunts just raise --iters / vary --seed.
cargo run -q --offline --release -p lte-fuzz -- all --iters 120 \
    || { echo "fuzz smoke: a kernel panicked or the SIMD/scalar paths diverged"; exit 1; }

echo "==> chaos smoke (lte-sim chaos)"
chaos_out="$(cargo run -q --offline -p lte-uplink --bin lte-sim -- \
    chaos --quick --subframes 120 --out target/chaos-smoke)"
echo "$chaos_out" | tail -n 6
echo "$chaos_out" | grep -q "^lost tasks: 0$" \
    || { echo "chaos smoke: tasks were lost"; exit 1; }
echo "$chaos_out" | grep -q "^duplicated tasks: 0$" \
    || { echo "chaos smoke: tasks ran twice"; exit 1; }
echo "$chaos_out" | grep -q "^harq recoveries: 0$" \
    && { echo "chaos smoke: no HARQ recoveries"; exit 1; }
echo "$chaos_out" | grep -q "^harq recoveries: " \
    || { echo "chaos smoke: missing recovery report"; exit 1; }

echo "==> governor smoke (lte-sim govern)"
# Release: the governed pool runs pace real subframes, and a debug-built
# PHY pipeline would blow every dispatch window. The gate lines assert
# the estimator tracks measured activity (mean error < 10% per policy)
# and that governed pool output stays byte-identical, with parked core
# time demonstrated on the low-load burst.
govern_out="$(cargo run -q --offline --release -p lte-uplink --bin lte-sim -- \
    govern --quick --subframes 200 --out target/govern-smoke)"
echo "$govern_out" | tail -n 9
[[ "$(echo "$govern_out" | grep -c "govern gate: .* — PASS")" -eq 4 ]] \
    || { echo "governor smoke: estimator error gate did not pass all four policies"; exit 1; }
echo "$govern_out" | grep -q "govern pool NAP+IDLE low load: .* output byte-identical" \
    || { echo "governor smoke: governed pool output diverged"; exit 1; }

echo "==> governor decision-cost gate (governor_overhead bench)"
cargo bench -q --offline -p lte-bench --bench governor_overhead | grep "governor_overhead:" \
    || { echo "governor decision-cost gate failed"; exit 1; }

echo "==> throughput + scaling + decode-tail smoke (lte-sim perf)"
# Release build: the regression gates compare against numbers measured
# in release mode; a debug run would trip the 10 % tolerance instantly.
# The same worker ladder as the committed matrix keeps the speedup gate
# apples-to-apples; the gate defends the max-workers *speedup* ratio, so
# it transfers across hosts with different absolute rates. The decode
# baseline additionally gates the turbo-mode leg (SIMD dispatch)
# against the committed BENCH_PR9.json within the same 10 % tolerance.
cargo run -q --offline --release -p lte-uplink --bin lte-sim -- \
    perf --quick --out target/perf-smoke \
    --baseline results/BENCH_PR3.json \
    --decode-baseline results/BENCH_PR9.json \
    --workers 1,2,4 --scaling-baseline results/BENCH_PR4.json \
    || { echo "perf smoke: throughput, turbo decode, or max-workers speedup regressed versus results/BENCH_PR3.json / BENCH_PR9.json / BENCH_PR4.json"; exit 1; }

echo "==> soak smoke (lte-sim soak)"
# A healthy low-load prefix must pass every SLO window (exit 0), and the
# deterministic artifacts — SOAK.json, the window stream, the
# OpenMetrics exposition — must be byte-identical across runs. The
# histogram-record gate (< 50 ns/op, asserted inside the bench) rides
# along via obs_overhead's greppable line.
cargo run -q --offline -p lte-uplink --bin lte-sim -- \
    soak --subframes 200 --window 100 --out target/soak-smoke-a \
    | tail -n 3 \
    || { echo "soak smoke: healthy run violated its SLO"; exit 1; }
cargo run -q --offline -p lte-uplink --bin lte-sim -- \
    soak --subframes 200 --window 100 --out target/soak-smoke-b >/dev/null \
    || { echo "soak smoke: second run failed"; exit 1; }
for f in SOAK.json SOAK.jsonl SOAK.om; do
    cmp -s "target/soak-smoke-a/$f" "target/soak-smoke-b/$f" \
        || { echo "soak smoke: $f differs between identical runs"; exit 1; }
done

echo "==> deploy smoke (lte-sim deploy)"
# A multi-cell deployment must complete and write a byte-deterministic
# DEPLOY.json: the report is a pure function of the seed, so two runs
# at *different worker counts* must produce cmp-identical artifacts.
cargo run -q --offline --release -p lte-uplink --bin lte-sim -- \
    deploy --cells 3 --ues 10000 --subframes 8 --seed 7 --workers 2 \
    --out target/deploy-smoke-a | tail -n 4 \
    || { echo "deploy smoke: first run failed"; exit 1; }
cargo run -q --offline --release -p lte-uplink --bin lte-sim -- \
    deploy --cells 3 --ues 10000 --subframes 8 --seed 7 --workers 1 \
    --out target/deploy-smoke-b >/dev/null \
    || { echo "deploy smoke: second run failed"; exit 1; }
for f in DEPLOY.json DEPLOY.om; do
    cmp -s "target/deploy-smoke-a/$f" "target/deploy-smoke-b/$f" \
        || { echo "deploy smoke: $f differs across worker counts"; exit 1; }
done
grep -q '"schema": "lte-sim-deploy-v1"' target/deploy-smoke-a/DEPLOY.json \
    || { echo "deploy smoke: DEPLOY.json has the wrong schema"; exit 1; }

echo "==> serve smoke (lte-sim serve)"
# A short governed serve campaign under the seeded ingest chaos plan
# (an arrival stall, a 2x flood burst, malformed arrivals): the service
# must escalate reject → shed → degrade through the flood, keep its SLO
# accounting intact, drain cleanly (exit 0 — chaos-marked windows are
# exempt from the health gate, calm windows are not), and flush a
# complete SERVE.json + OpenMetrics pair.
serve_out="$(cargo run -q --offline --release -p lte-uplink --bin lte-sim -- \
    serve --subframes 140 --chaos --out target/serve-smoke)" \
    || { echo "serve smoke: campaign failed or a calm window violated its SLO"; exit 1; }
echo "$serve_out" | tail -n 6
[[ -s target/serve-smoke/SERVE.json ]] \
    || { echo "serve smoke: SERVE.json missing or empty"; exit 1; }
grep -q '"schema":"lte-sim-serve-v1"' target/serve-smoke/SERVE.json \
    || { echo "serve smoke: SERVE.json has the wrong schema"; exit 1; }
[[ -s target/serve-smoke/SERVE.om ]] \
    || { echo "serve smoke: SERVE.om missing or empty"; exit 1; }
echo "$serve_out" | grep -q "escalation: .* reject tick .* shed tick .* degrade tick " \
    || { echo "serve smoke: the escalation ladder did not engage under the flood"; exit 1; }
echo "$serve_out" | grep -q "SLO: all .* calm windows within budget" \
    || { echo "serve smoke: a calm window violated its SLO"; exit 1; }

echo "==> telemetry record-cost gate (obs_overhead bench)"
cargo bench -q --offline -p lte-bench --bench obs_overhead -- --test | grep "hist_record:" \
    || { echo "telemetry record-cost gate failed"; exit 1; }

echo "all checks passed"
