#!/usr/bin/env bash
# Repository gate: formatting, lints, and the test suite.
#
#   scripts/check.sh            # fmt + clippy + workspace tests
#   scripts/check.sh --tier1    # fmt + clippy + root-package tests only
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

scope=(--workspace)
if [[ "${1:-}" == "--tier1" ]]; then
    scope=()
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q ${scope[*]:-}"
cargo test --offline -q "${scope[@]}"

echo "all checks passed"
