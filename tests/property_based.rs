//! Cross-crate property-based tests (proptest): invariants of the DSP
//! substrate, the receiver pipeline, the estimator algebra and the
//! simulator, exercised over randomly drawn configurations.

use proptest::prelude::*;

use lte_uplink_repro::dsp::fft::{dft_naive, Direction, FftPlan};
use lte_uplink_repro::dsp::interleave::Interleaver;
use lte_uplink_repro::dsp::turbo::{TurboDecoder, TurboEncoder};
use lte_uplink_repro::dsp::{crc::CRC24A, Complex32, Modulation, Xoshiro256};
use lte_uplink_repro::phy::params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
use lte_uplink_repro::phy::receiver::process_user;
use lte_uplink_repro::phy::tx::synthesize_user;
use lte_uplink_repro::power::estimator::WorkloadEstimator;
use lte_uplink_repro::sched::cycles::CostModel;
use lte_uplink_repro::sched::sim::{NapPolicy, SimConfig, Simulator, SubframeLoad};

fn arb_modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fft_round_trip_any_smooth_size(prbs in 1usize..=40, seed in 0u64..1000) {
        let n = 12 * prbs;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let original: Vec<Complex32> = (0..n)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect();
        let mut data = original.clone();
        FftPlan::forward(n).process(&mut data);
        FftPlan::inverse(n).process(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((*a - *b).abs() < 1e-3);
        }
    }

    #[test]
    fn fft_matches_naive_dft(n in 1usize..=64, seed in 0u64..1000) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let input: Vec<Complex32> = (0..n)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect();
        let mut fast = input.clone();
        FftPlan::forward(n).process(&mut fast);
        let slow = dft_naive(&input, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-3, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn interleaver_is_a_bijection(n in 1usize..=4096) {
        let il = Interleaver::subblock(n);
        let data: Vec<u32> = (0..n as u32).collect();
        let mixed = il.apply(&data);
        let mut sorted = mixed.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sorted, &data, "permutation must preserve the set");
        prop_assert_eq!(il.invert(&mixed), data);
    }

    #[test]
    fn crc_detects_random_corruption(len in 25usize..400, flips in 1usize..8, seed in 0u64..1000) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut bits: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 1) as u8).collect();
        CRC24A.append_bits(&mut bits);
        prop_assert!(CRC24A.check_bits(&bits));
        // Flip `flips` distinct positions.
        let mut positions: Vec<usize> =
            (0..flips).map(|_| rng.next_below(bits.len() as u64) as usize).collect();
        positions.sort_unstable();
        positions.dedup();
        for &p in &positions {
            bits[p] ^= 1;
        }
        prop_assert!(!CRC24A.check_bits(&bits), "corruption at {positions:?} missed");
    }

    #[test]
    fn turbo_round_trips_any_tabulated_size(idx in 0usize..20, seed in 0u64..100) {
        let sizes = lte_uplink_repro::dsp::turbo::tabulated_block_sizes();
        let k = sizes[idx % sizes.len()].min(512); // keep tests fast
        let k = lte_uplink_repro::dsp::turbo::nearest_block_size(k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let code = TurboEncoder::new(k).encode(&bits);
        let out = TurboDecoder::new(k, 3).decode(&code.to_llrs(5.0));
        prop_assert_eq!(out, bits);
    }

    #[test]
    fn receiver_decodes_any_valid_user_on_clean_channel(
        prbs in 2usize..=20,
        layers in 1usize..=2,
        modulation in arb_modulation(),
        seed in 0u64..200,
    ) {
        let cell = CellConfig::with_antennas(4);
        let user = UserConfig::new(prbs, layers, modulation);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let input = synthesize_user(&cell, &user, 45.0, &mut rng);
        let result = process_user(&cell, &input, TurboMode::Passthrough);
        prop_assert!(result.matches(&input.ground_truth),
            "{prbs} PRBs x{layers} {modulation} seed {seed} failed");
    }

    #[test]
    fn estimator_is_additive_and_monotonic(
        prbs_a in 2usize..=100,
        prbs_b in 2usize..=100,
        layers in 1usize..=4,
        modulation in arb_modulation(),
    ) {
        // With any positive slopes, Eq. 4 is additive in users and
        // monotone in PRBs (below the clamp).
        let est = WorkloadEstimator::from_slopes([[1e-4; 3]; 4]);
        let a = SubframeConfig::new(vec![UserConfig::new(prbs_a, layers, modulation)]);
        let b = SubframeConfig::new(vec![UserConfig::new(prbs_b, layers, modulation)]);
        let ab = SubframeConfig::new(vec![
            UserConfig::new(prbs_a, layers, modulation),
            UserConfig::new(prbs_b, layers, modulation),
        ]);
        let sum = est.subframe_activity(&a) + est.subframe_activity(&b);
        prop_assert!((est.subframe_activity(&ab) - sum.min(1.0)).abs() < 1e-12);
    }

    #[test]
    fn simulator_conserves_work(
        n_jobs in 1usize..6,
        units in 200u64..5_000,
        subframes in 1usize..8,
        target in 2usize..8,
        policy_idx in 0usize..4,
    ) {
        let policy = NapPolicy::ALL[policy_idx];
        let cfg = SimConfig {
            n_workers: 8,
            dispatch_period: 50_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 10_000,
            clock_hz: 700.0e6,
            policy,
        };
        let job = CostModel::tilepro64().user_job(2, 1, 2, 2);
        let _ = job; // template shape; use synthetic costs below
        let loads: Vec<SubframeLoad> = (0..subframes)
            .map(|_| SubframeLoad {
                jobs: (0..n_jobs)
                    .map(|_| lte_uplink_repro::sched::SimJob {
                        est_tasks: vec![units; 4],
                        weights_cost: units / 2,
                        combine_tasks: vec![units; 6],
                        finish_cost: units,
                    })
                    .collect(),
                active_target: target,
            })
            .collect();
        let report = Simulator::new(cfg).run(&loads);
        // Every job completes.
        prop_assert_eq!(report.jobs_total, n_jobs * subframes);
        prop_assert_eq!(report.job_latencies.len(), n_jobs * subframes);
        // Busy time covers at least the raw work.
        let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        let work: u64 = loads.iter().flat_map(|l| &l.jobs).map(|j| j.total_cycles()).sum();
        prop_assert!(busy >= work, "busy {busy} < work {work}");
        // And never exceeds work plus maximal per-task overheads.
        let tasks = (n_jobs * subframes) as u64 * (4 + 1 + 6 + 1);
        prop_assert!(busy <= work + tasks * (cfg.task_overhead + cfg.steal_latency));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rate_matching_round_trips_at_mother_rate_or_below(
        k_idx in 0usize..10,
        extra_frac in 0usize..100,
        seed in 0u64..100,
    ) {
        use lte_uplink_repro::dsp::rate_match::RateMatcher;
        let sizes = lte_uplink_repro::dsp::turbo::tabulated_block_sizes();
        let k = sizes[k_idx % sizes.len()].min(256);
        let k = lte_uplink_repro::dsp::turbo::nearest_block_size(k);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        // E from exactly the mother-code size up to 2x (repetition).
        let e = rm.buffer_len() + extra_frac * rm.buffer_len() / 100;
        let tx = rm.match_bits(&code, e);
        prop_assert_eq!(tx.len(), e);
        let llrs: Vec<f32> = tx.iter().map(|&b| if b == 0 { 4.0 } else { -4.0 }).collect();
        let out = TurboDecoder::new(k, 4).decode(&rm.accumulate_llrs(&llrs));
        prop_assert_eq!(out, bits);
    }

    #[test]
    fn scrambling_round_trips_any_block(len in 1usize..2000, c_init in 0u32..0x7FFF_FFFF) {
        use lte_uplink_repro::dsp::scrambling::{descramble_llrs, scramble_bits};
        let mut rng = Xoshiro256::seed_from_u64(len as u64);
        let bits: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 1) as u8).collect();
        let mut tx = bits.clone();
        scramble_bits(&mut tx, c_init);
        let mut llrs: Vec<f32> = tx.iter().map(|&b| if b == 0 { 1.0 } else { -1.0 }).collect();
        descramble_llrs(&mut llrs, c_init);
        let rx: Vec<u8> = llrs.iter().map(|&l| (l < 0.0) as u8).collect();
        prop_assert_eq!(rx, bits);
    }

    #[test]
    fn segmentation_round_trips_any_transport_size(b in 30usize..30_000) {
        use lte_uplink_repro::dsp::segmentation::Segmentation;
        let mut rng = Xoshiro256::seed_from_u64(b as u64);
        let bits: Vec<u8> = (0..b).map(|_| (rng.next_u64() & 1) as u8).collect();
        let seg = Segmentation::segment(&bits);
        let (out, ok) = seg.desegment(&seg.blocks);
        prop_assert!(ok);
        prop_assert_eq!(out, bits);
    }
}
