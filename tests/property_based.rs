//! Cross-crate randomized invariant tests: the DSP substrate, the
//! receiver pipeline, the estimator algebra and the simulator, exercised
//! over deterministically drawn configurations.
//!
//! These were originally written with `proptest`; the build environment
//! has no network access, so they now draw cases from the repo's own
//! [`Xoshiro256`] with fixed seeds — same invariants, bit-reproducible
//! case lists, no external dependency.

use lte_uplink_repro::dsp::fft::{dft_naive, Direction, FftPlan};
use lte_uplink_repro::dsp::interleave::Interleaver;
use lte_uplink_repro::dsp::turbo::{TurboDecoder, TurboEncoder};
use lte_uplink_repro::dsp::{crc::CRC24A, Complex32, Modulation, Xoshiro256};
use lte_uplink_repro::phy::params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
use lte_uplink_repro::phy::receiver::process_user;
use lte_uplink_repro::phy::tx::synthesize_user;
use lte_uplink_repro::power::estimator::WorkloadEstimator;
use lte_uplink_repro::power::NapPolicy;
use lte_uplink_repro::sched::sim::{SimConfig, Simulator, SubframeLoad};

/// Draws `cases` parameter tuples from a seeded stream and runs `f`.
fn for_cases(cases: usize, seed: u64, mut f: impl FnMut(&mut Xoshiro256, usize)) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    for case in 0..cases {
        f(&mut rng, case);
    }
}

fn draw(rng: &mut Xoshiro256, lo: u64, hi_inclusive: u64) -> u64 {
    lo + rng.next_below(hi_inclusive - lo + 1)
}

fn draw_modulation(rng: &mut Xoshiro256) -> Modulation {
    Modulation::ALL[rng.next_below(3) as usize]
}

#[test]
fn fft_round_trip_any_smooth_size() {
    for_cases(24, 0xF0F0, |rng, _| {
        let prbs = draw(rng, 1, 40) as usize;
        let n = 12 * prbs;
        let original: Vec<Complex32> = (0..n)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect();
        let mut data = original.clone();
        FftPlan::forward(n).process(&mut data);
        FftPlan::inverse(n).process(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-3, "n={n}");
        }
    });
}

#[test]
fn fft_matches_naive_dft() {
    for_cases(24, 0xD1D1, |rng, _| {
        let n = draw(rng, 1, 64) as usize;
        let input: Vec<Complex32> = (0..n)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect();
        let mut fast = input.clone();
        FftPlan::forward(n).process(&mut fast);
        let slow = dft_naive(&input, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-3, "n={n}: {a:?} vs {b:?}");
        }
    });
}

#[test]
fn interleaver_is_a_bijection() {
    for_cases(24, 0xB1B1, |rng, _| {
        let n = draw(rng, 1, 4096) as usize;
        let il = Interleaver::subblock(n);
        let data: Vec<u32> = (0..n as u32).collect();
        let mixed = il.apply(&data);
        let mut sorted = mixed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, data, "permutation must preserve the set (n={n})");
        assert_eq!(il.invert(&mixed), data, "n={n}");
    });
}

#[test]
fn crc_detects_random_corruption() {
    for_cases(24, 0xC4C4, |rng, _| {
        let len = draw(rng, 25, 399) as usize;
        let flips = draw(rng, 1, 7) as usize;
        let mut bits: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 1) as u8).collect();
        CRC24A.append_bits(&mut bits);
        assert!(CRC24A.check_bits(&bits));
        // Flip `flips` distinct positions.
        let mut positions: Vec<usize> = (0..flips)
            .map(|_| rng.next_below(bits.len() as u64) as usize)
            .collect();
        positions.sort_unstable();
        positions.dedup();
        for &p in &positions {
            bits[p] ^= 1;
        }
        assert!(
            !CRC24A.check_bits(&bits),
            "corruption at {positions:?} missed"
        );
    });
}

#[test]
fn turbo_round_trips_any_tabulated_size() {
    for_cases(16, 0x7B07, |rng, _| {
        let sizes = lte_uplink_repro::dsp::turbo::tabulated_block_sizes();
        let idx = rng.next_below(20) as usize;
        let k = sizes[idx % sizes.len()].min(512); // keep tests fast
        let k = lte_uplink_repro::dsp::turbo::nearest_block_size(k);
        let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let code = TurboEncoder::new(k).encode(&bits);
        let out = TurboDecoder::new(k, 3).decode(&code.to_llrs(5.0));
        assert_eq!(out, bits, "k={k}");
    });
}

#[test]
fn receiver_decodes_any_valid_user_on_clean_channel() {
    for_cases(12, 0x5EED, |rng, _| {
        let prbs = draw(rng, 2, 20) as usize;
        let layers = draw(rng, 1, 2) as usize;
        let modulation = draw_modulation(rng);
        let cell = CellConfig::with_antennas(4);
        let user = UserConfig::new(prbs, layers, modulation);
        let input = synthesize_user(&cell, &user, 45.0, rng);
        let result = process_user(&cell, &input, TurboMode::Passthrough);
        assert!(
            result.matches(&input.ground_truth),
            "{prbs} PRBs x{layers} {modulation} failed"
        );
    });
}

#[test]
fn estimator_is_additive_and_monotonic() {
    for_cases(24, 0xE571, |rng, _| {
        let prbs_a = draw(rng, 2, 100) as usize;
        let prbs_b = draw(rng, 2, 100) as usize;
        let layers = draw(rng, 1, 4) as usize;
        let modulation = draw_modulation(rng);
        // With any positive slopes, Eq. 4 is additive in users and
        // monotone in PRBs (below the clamp).
        let est = WorkloadEstimator::from_slopes([[1e-4; 3]; 4]);
        let a = SubframeConfig::new(vec![UserConfig::new(prbs_a, layers, modulation)]);
        let b = SubframeConfig::new(vec![UserConfig::new(prbs_b, layers, modulation)]);
        let ab = SubframeConfig::new(vec![
            UserConfig::new(prbs_a, layers, modulation),
            UserConfig::new(prbs_b, layers, modulation),
        ]);
        let sum = est.subframe_activity(&a) + est.subframe_activity(&b);
        assert!((est.subframe_activity(&ab) - sum.min(1.0)).abs() < 1e-12);
    });
}

#[test]
fn simulator_conserves_work() {
    for_cases(24, 0x51A1, |rng, case| {
        let n_jobs = draw(rng, 1, 5) as usize;
        let units = draw(rng, 200, 4_999);
        let subframes = draw(rng, 1, 7) as usize;
        let target = draw(rng, 2, 7) as usize;
        let policy = NapPolicy::ALL[case % 4];
        let cfg = SimConfig {
            n_workers: 8,
            dispatch_period: 50_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 10_000,
            clock_hz: 700.0e6,
            nap: policy.mode(),
        };
        let loads: Vec<SubframeLoad> = (0..subframes)
            .map(|_| SubframeLoad {
                jobs: (0..n_jobs)
                    .map(|_| lte_uplink_repro::sched::SimJob {
                        est_tasks: vec![units; 4],
                        weights_cost: units / 2,
                        combine_tasks: vec![units; 6],
                        finish_cost: units,
                    })
                    .collect(),
                active_target: target,
            })
            .collect();
        let report = Simulator::new(cfg).run(&loads);
        // Every job completes.
        assert_eq!(report.jobs_total, n_jobs * subframes);
        assert_eq!(report.job_latencies.len(), n_jobs * subframes);
        // Busy time covers at least the raw work.
        let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
        let work: u64 = loads
            .iter()
            .flat_map(|l| &l.jobs)
            .map(|j| j.total_cycles())
            .sum();
        assert!(busy >= work, "busy {busy} < work {work}");
        // And never exceeds work plus maximal per-task overheads.
        let tasks = (n_jobs * subframes) as u64 * (4 + 1 + 6 + 1);
        assert!(busy <= work + tasks * (cfg.task_overhead + cfg.steal_latency));
    });
}

#[test]
fn pool_conserves_tasks_under_seeded_panics() {
    use lte_uplink_repro::fault::FaultPlan;
    use lte_uplink_repro::sched::{silence_injected_panics, InjectedPanic, TaskPool};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    silence_injected_panics();
    for_cases(6, 0xFA17, |rng, case| {
        let workers = draw(rng, 2, 4) as usize;
        let subframes = draw(rng, 4, 12) as usize;
        let jobs = draw(rng, 2, 4) as usize;
        let tasks = draw(rng, 4, 8) as usize;
        let plan = FaultPlan {
            task_panic_permille: 150,
            ..FaultPlan::quiet(0xFA17 + case as u64)
        };
        let pool = TaskPool::new(workers).expect("spawn pool");
        let started = Arc::new(AtomicU64::new(0));
        let mut planned = 0u64;
        for sf in 0..subframes {
            for job in 0..jobs {
                for task in 0..tasks {
                    if plan.task_panics(sf, job * tasks + task) {
                        planned += 1;
                    }
                }
                let started = Arc::clone(&started);
                let plan = plan.clone();
                pool.submit_job(move |p| {
                    let list: Vec<Box<dyn FnOnce() + Send + 'static>> = (0..tasks)
                        .map(|task| {
                            let started = Arc::clone(&started);
                            let panics = plan.task_panics(sf, job * tasks + task);
                            Box::new(move || {
                                started.fetch_add(1, Ordering::SeqCst);
                                if panics {
                                    std::panic::panic_any(InjectedPanic);
                                }
                            }) as Box<dyn FnOnce() + Send + 'static>
                        })
                        .collect();
                    p.scope(list);
                });
            }
            pool.wait_all();
        }
        let expected = (subframes * jobs * tasks) as u64;
        assert_eq!(
            started.load(Ordering::SeqCst),
            expected,
            "no task may be lost or double-run (case {case})"
        );
        assert_eq!(
            pool.poisoned_tasks(),
            planned,
            "every seeded panic is caught and accounted (case {case})"
        );
    });
}

#[test]
fn rate_matching_round_trips_at_mother_rate_or_below() {
    for_cases(16, 0x4A7E, |rng, _| {
        use lte_uplink_repro::dsp::rate_match::RateMatcher;
        let sizes = lte_uplink_repro::dsp::turbo::tabulated_block_sizes();
        let k_idx = rng.next_below(10) as usize;
        let extra_frac = rng.next_below(100) as usize;
        let k = sizes[k_idx % sizes.len()].min(256);
        let k = lte_uplink_repro::dsp::turbo::nearest_block_size(k);
        let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        // E from exactly the mother-code size up to 2x (repetition).
        let e = rm.buffer_len() + extra_frac * rm.buffer_len() / 100;
        let tx = rm.match_bits(&code, e);
        assert_eq!(tx.len(), e);
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 4.0 } else { -4.0 })
            .collect();
        let out = TurboDecoder::new(k, 4).decode(&rm.accumulate_llrs(&llrs));
        assert_eq!(out, bits, "k={k} e={e}");
    });
}

#[test]
fn scrambling_round_trips_any_block() {
    for_cases(16, 0x5C4A, |rng, _| {
        use lte_uplink_repro::dsp::scrambling::{descramble_llrs, scramble_bits};
        let len = draw(rng, 1, 1999) as usize;
        let c_init = rng.next_below(0x7FFF_FFFF) as u32;
        let bits: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 1) as u8).collect();
        let mut tx = bits.clone();
        scramble_bits(&mut tx, c_init);
        let mut llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect();
        descramble_llrs(&mut llrs, c_init);
        let rx: Vec<u8> = llrs.iter().map(|&l| (l < 0.0) as u8).collect();
        assert_eq!(rx, bits, "len={len} c_init={c_init}");
    });
}

#[test]
fn segmentation_round_trips_any_transport_size() {
    for_cases(16, 0x5E69, |rng, _| {
        use lte_uplink_repro::dsp::segmentation::Segmentation;
        let b = draw(rng, 30, 29_999) as usize;
        let bits: Vec<u8> = (0..b).map(|_| (rng.next_u64() & 1) as u8).collect();
        let seg = Segmentation::segment(&bits);
        let (out, ok) = seg.desegment(&seg.blocks);
        assert!(ok, "b={b}");
        assert_eq!(out, bits, "b={b}");
    });
}
