//! Reproducibility: every experiment is a pure function of its seed.
//! The paper's verification methodology (§IV-D) depends on deterministic
//! replay; these tests pin it down across the whole stack.

use lte_uplink_repro::model::{DiurnalModel, ParameterModel, RampModel};
use lte_uplink_repro::obs::{MetricsRegistry, PerfettoExporter, RingRecorder};
use lte_uplink_repro::power::NapPolicy;
use lte_uplink_repro::sched::sim::Simulator;
use lte_uplink_repro::uplink::experiments::ExperimentContext;
use lte_uplink_repro::uplink::trace::fill_sim_metrics;

fn ctx() -> ExperimentContext {
    ExperimentContext {
        n_subframes: 600,
        cal_subframes: 12,
        cal_prb_step: 100,
        ..ExperimentContext::paper()
    }
}

#[test]
fn power_study_is_bit_reproducible() {
    let a = ctx().run_power_study();
    let b = ctx().run_power_study();
    assert_eq!(a.targets, b.targets);
    for (ra, rb) in a.runs.iter().zip(&b.runs) {
        assert_eq!(ra.power, rb.power, "{}", ra.policy);
        assert_eq!(ra.report, rb.report, "{}", ra.policy);
    }
    assert_eq!(a.gated_power, b.gated_power);
    assert_eq!(a.validation.estimated, b.validation.estimated);
    assert_eq!(a.validation.measured, b.validation.measured);
}

#[test]
fn seeds_change_everything() {
    let base = ctx();
    let other = ExperimentContext { seed: 9999, ..base };
    let a = base.subframes();
    let b = other.subframes();
    assert_ne!(a, b, "different seeds must give different workloads");
}

#[test]
fn diurnal_model_is_reproducible() {
    let a = DiurnalModel::new(5, 1000).subframes(500);
    let b = DiurnalModel::new(5, 1000).subframes(500);
    assert_eq!(a, b);
}

#[test]
fn calibration_is_reproducible() {
    let (ca, ea) = ctx().run_calibration();
    let (cb, eb) = ctx().run_calibration();
    assert_eq!(ca, cb);
    assert_eq!(ea, eb);
}

#[test]
fn ramp_model_streams_are_stable_across_calls() {
    // Generating in two chunks equals generating at once.
    let mut one = RampModel::new(7);
    let all = one.subframes(100);
    let mut two = RampModel::new(7);
    let mut chunked = two.subframes(60);
    chunked.extend(two.subframes(40));
    assert_eq!(all, chunked);
}

#[test]
fn traced_runs_are_byte_identical() {
    // The observability layer must not disturb reproducibility: two
    // same-seed simulator runs produce byte-identical Perfetto JSON and
    // metrics snapshots. (Only simulated-time events are compared — the
    // real receiver's wall-clock spans are inherently run-dependent.)
    let artifacts = || {
        let c = ctx();
        let subframes = c.subframes();
        let targets = vec![c.controller.max_cores; subframes.len()];
        let cfg = c.sim_config(NapPolicy::NapIdle);
        let recorder = RingRecorder::new(2_000_000);
        let report = Simulator::with_recorder(cfg, &recorder).run(&c.loads(&subframes, &targets));
        let perfetto =
            PerfettoExporter::new(cfg.clock_hz).export(&recorder.events(), cfg.n_workers);
        let metrics = MetricsRegistry::new();
        fill_sim_metrics(&metrics, &c, &report, subframes.len());
        (perfetto, metrics.to_json())
    };
    let (trace_a, metrics_a) = artifacts();
    let (trace_b, metrics_b) = artifacts();
    assert_eq!(trace_a, trace_b, "Perfetto export must be byte-identical");
    assert_eq!(
        metrics_a, metrics_b,
        "metrics snapshot must be byte-identical"
    );
    assert!(trace_a.contains("\"traceEvents\""));
    assert!(metrics_a.contains("sim.activity"));
}

#[test]
fn chaos_campaigns_are_byte_identical() {
    // The fault-injection campaign is a pure function of the seed: two
    // same-seed runs — including the real pool's kills and respawns and
    // the link-level HARQ recovery — export byte-identical artefacts.
    use lte_uplink_repro::fault::OverloadPolicy;
    use lte_uplink_repro::uplink::chaos::run_chaos;
    let small = || ExperimentContext {
        n_subframes: 120,
        ..ctx()
    };
    let a = run_chaos(&small(), OverloadPolicy::ShedUsers).expect("pool spawns");
    let b = run_chaos(&small(), OverloadPolicy::ShedUsers).expect("pool spawns");
    assert_eq!(a.summary, b.summary, "campaign counters must match");
    assert_eq!(
        a.perfetto_json, b.perfetto_json,
        "Perfetto export must be byte-identical"
    );
    assert_eq!(
        a.metrics_json, b.metrics_json,
        "metrics snapshot must be byte-identical"
    );
    assert!(a.summary.conserved(), "no task lost or double-run");
    assert!(a.metrics_json.contains("chaos.link.harq_recoveries"));
}

#[test]
fn policy_runs_share_the_same_workload() {
    // The four policies must see identical job sets (only scheduling
    // differs) — totals across buckets are equal.
    let c = ctx();
    let subframes = c.subframes();
    let full = vec![c.controller.max_cores; subframes.len()];
    let busy: Vec<u64> = [NapPolicy::NoNap, NapPolicy::Idle]
        .iter()
        .map(|&p| {
            let run = c.run_policy(p, &subframes, &full);
            run.report.buckets.iter().map(|b| b.busy_cycles).sum()
        })
        .collect();
    // IDLE may differ slightly in steal placement but total work is
    // identical; busy includes identical per-task overheads except for
    // steal latencies, so allow a small band.
    let diff = (busy[0] as i64 - busy[1] as i64).unsigned_abs();
    assert!(
        diff < busy[0] / 100,
        "NONAP {} vs IDLE {} busy cycles",
        busy[0],
        busy[1]
    );
}
