//! Full-stack integration: the complete uplink through the *time domain*.
//!
//! The benchmark proper starts after the front-end FFT (Fig. 2 excludes
//! the front-end); this test exercises the whole physical chain the
//! repository models: per-layer SC-FDMA time-domain symbols with cyclic
//! prefixes, a multipath time channel with AWGN, the receive front-end
//! (filter → CP removal → FFT → subcarrier demapping), and then the
//! benchmark's per-user receiver on the resulting grid.

use lte_uplink_repro::dsp::channel::add_awgn;
use lte_uplink_repro::dsp::fft::FftPlanner;
use lte_uplink_repro::dsp::{Complex32, Modulation, Xoshiro256};
use lte_uplink_repro::phy::frontend::FrontEnd;
use lte_uplink_repro::phy::grid::{RxSlot, RxSymbol, UserInput};
use lte_uplink_repro::phy::params::{CellConfig, TurboMode, UserConfig};
use lte_uplink_repro::phy::receiver::process_user;
use lte_uplink_repro::phy::tx::{encode_frame, reference_for_layer, split_bits, FramePlan};

/// Builds one user's received grid by going all the way down to time-
/// domain samples and back up through the front-end.
fn synthesize_through_frontend(
    cell: &CellConfig,
    user: &UserConfig,
    snr_db: f64,
    rng: &mut Xoshiro256,
) -> UserInput {
    let n_sc = user.subcarriers();
    let fe = FrontEnd::for_allocation(n_sc);
    let planner = FftPlanner::new();
    let dft = planner.forward(n_sc);
    let noise_var = lte_uplink_repro::dsp::channel::noise_var_for_snr_db(snr_db);

    // Frame bits exactly as the benchmark transmitter builds them.
    let plan = FramePlan::for_user(user, TurboMode::Passthrough);
    let payload: Vec<u8> = (0..plan.payload_bits())
        .map(|_| (rng.next_u64() & 1) as u8)
        .collect();
    let channel_bits = encode_frame(cell, user, TurboMode::Passthrough, &payload);
    let chunks = split_bits(user, &channel_bits);

    // Per-(rx, layer) multipath impulse responses within the CP budget.
    // Tap delays are multiples of the allocation sample spacing
    // (fft_size / n_sc grid samples) so the channel stays compact in the
    // estimator's allocation-domain window; the front-end's oversampling
    // would otherwise turn fractional delays into sinc-spread responses.
    let spacing = fe.fft_size() / n_sc;
    let n_taps = 2usize;
    let impulses: Vec<Vec<Vec<Complex32>>> = (0..cell.n_rx)
        .map(|_| {
            (0..user.layers)
                .map(|_| {
                    let mut h = vec![Complex32::ZERO; (n_taps - 1) * spacing + 1];
                    for t in 0..n_taps {
                        h[t * spacing] = Complex32::new(
                            rng.next_gaussian() as f32 * 0.5,
                            rng.next_gaussian() as f32 * 0.5,
                        );
                    }
                    assert!(h.len() <= fe.cp_len(), "taps must fit the CP");
                    h
                })
                .collect()
        })
        .collect();

    let references: Vec<Vec<Complex32>> = (0..user.layers)
        .map(|l| reference_for_layer(cell, user, l).samples().to_vec())
        .collect();

    let mut slots = Vec::new();
    for slot in 0..2 {
        // Frequency-domain content per layer: [ref, data0..data5].
        let mut layer_symbols: Vec<Vec<Vec<Complex32>>> = vec![Vec::new(); user.layers];
        for (layer, symbols) in layer_symbols.iter_mut().enumerate() {
            symbols.push(references[layer].clone());
            for sym in 0..6 {
                let idx = (slot * 6 + sym) * user.layers + layer;
                let mut x = user.modulation.map_bits(chunks[idx]);
                dft.process(&mut x);
                symbols.push(x);
            }
        }
        // Time-domain per layer, per symbol; then superimpose through
        // each rx antenna's channel.
        let mut rx_sym_grids: Vec<Vec<Vec<Complex32>>> = Vec::new(); // [symbol][rx][sc]
        #[allow(clippy::needless_range_loop)] // indexes parallel per-layer/per-rx tables
        for sym_idx in 0..7 {
            let mut per_rx: Vec<Vec<Complex32>> = Vec::new();
            #[allow(clippy::needless_range_loop)] // indexes parallel impulse tables
            for rx in 0..cell.n_rx {
                let mut acc = vec![Complex32::ZERO; fe.samples_per_symbol()];
                for layer in 0..user.layers {
                    let time = fe.modulate(&layer_symbols[layer][sym_idx]);
                    let through = fe.apply_time_channel(&[time], &impulses[rx][layer]);
                    for (a, b) in acc.iter_mut().zip(&through[0]) {
                        *a += *b;
                    }
                }
                add_awgn(&mut acc, noise_var, rng);
                // The front-end: receive filter → CP strip → FFT → demap.
                per_rx.push(fe.demodulate(&acc));
            }
            rx_sym_grids.push(per_rx);
        }
        let reference = RxSymbol::new(rx_sym_grids[0].clone());
        let data: Vec<RxSymbol> = rx_sym_grids[1..]
            .iter()
            .map(|per_rx| RxSymbol::new(per_rx.clone()))
            .collect();
        slots.push(RxSlot::new(reference, data));
    }

    UserInput {
        config: *user,
        slots,
        noise_var,
        ground_truth: payload,
    }
}

#[test]
fn complete_time_domain_chain_decodes() {
    let cell = CellConfig::with_antennas(2);
    let user = UserConfig::new(4, 1, Modulation::Qpsk);
    let mut rng = Xoshiro256::seed_from_u64(11);
    let input = synthesize_through_frontend(&cell, &user, 35.0, &mut rng);
    let result = process_user(&cell, &input, TurboMode::Passthrough);
    assert!(
        result.matches(&input.ground_truth),
        "time-domain chain failed (crc_ok={})",
        result.crc_ok
    );
}

#[test]
fn time_domain_chain_with_mimo_layers() {
    let cell = CellConfig::with_antennas(4);
    let user = UserConfig::new(4, 2, Modulation::Qam16);
    let mut rng = Xoshiro256::seed_from_u64(21);
    let input = synthesize_through_frontend(&cell, &user, 40.0, &mut rng);
    let result = process_user(&cell, &input, TurboMode::Passthrough);
    assert!(result.matches(&input.ground_truth));
}

#[test]
fn time_domain_chain_fails_gracefully_in_noise() {
    let cell = CellConfig::with_antennas(2);
    let user = UserConfig::new(4, 1, Modulation::Qam64);
    let mut rng = Xoshiro256::seed_from_u64(31);
    let input = synthesize_through_frontend(&cell, &user, -20.0, &mut rng);
    let result = process_user(&cell, &input, TurboMode::Passthrough);
    assert!(!result.crc_ok, "noise-only input must fail the CRC");
}
