//! End-to-end link-level behaviour: CRC pass rates across SNR, the
//! benefit of turbo coding, MIMO layer scaling, and failure injection.

use lte_uplink_repro::dsp::{Modulation, Xoshiro256};
use lte_uplink_repro::phy::params::{CellConfig, TurboMode, UserConfig};
use lte_uplink_repro::phy::receiver::process_user;
use lte_uplink_repro::phy::tx::synthesize_user_with_mode;

/// Block success rate over `trials` independent channels.
fn success_rate(
    cell: &CellConfig,
    user: &UserConfig,
    mode: TurboMode,
    snr_db: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let ok = (0..trials)
        .filter(|_| {
            let input = synthesize_user_with_mode(cell, user, mode, snr_db, &mut rng);
            process_user(cell, &input, mode).matches(&input.ground_truth)
        })
        .count();
    ok as f64 / trials as f64
}

#[test]
fn qpsk_link_success_improves_with_snr() {
    let cell = CellConfig::with_antennas(2);
    let user = UserConfig::new(6, 1, Modulation::Qpsk);
    let low = success_rate(&cell, &user, TurboMode::Passthrough, 0.0, 12, 1);
    let high = success_rate(&cell, &user, TurboMode::Passthrough, 30.0, 12, 1);
    assert!(high > low, "high SNR {high} must beat low SNR {low}");
    assert!(high >= 0.9, "30 dB QPSK should almost always pass: {high}");
}

#[test]
fn higher_order_modulation_needs_more_snr() {
    let cell = CellConfig::with_antennas(2);
    let snr_db = 14.0;
    let qpsk = success_rate(
        &cell,
        &UserConfig::new(6, 1, Modulation::Qpsk),
        TurboMode::Passthrough,
        snr_db,
        12,
        2,
    );
    let qam64 = success_rate(
        &cell,
        &UserConfig::new(6, 1, Modulation::Qam64),
        TurboMode::Passthrough,
        snr_db,
        12,
        2,
    );
    assert!(
        qpsk >= qam64,
        "at {snr_db} dB, QPSK ({qpsk}) must be at least as reliable as 64-QAM ({qam64})"
    );
}

#[test]
fn turbo_coding_extends_the_operating_range() {
    let cell = CellConfig::with_antennas(4);
    let user = UserConfig::new(8, 1, Modulation::Qpsk);
    let snr_db = 2.0;
    let uncoded = success_rate(&cell, &user, TurboMode::Passthrough, snr_db, 10, 3);
    let coded = success_rate(
        &cell,
        &user,
        TurboMode::Decode { iterations: 6 },
        snr_db,
        10,
        3,
    );
    assert!(
        coded >= uncoded,
        "rate-1/3 turbo ({coded}) must not lose to uncoded ({uncoded}) at {snr_db} dB"
    );
}

#[test]
fn more_receive_antennas_help() {
    let user = UserConfig::new(6, 1, Modulation::Qam16);
    let snr_db = 8.0;
    let two = success_rate(
        &CellConfig::with_antennas(2),
        &user,
        TurboMode::Passthrough,
        snr_db,
        12,
        4,
    );
    let eight = success_rate(
        &CellConfig::with_antennas(8),
        &user,
        TurboMode::Passthrough,
        snr_db,
        12,
        4,
    );
    assert!(
        eight >= two,
        "8 rx antennas ({eight}) must not lose to 2 ({two})"
    );
}

#[test]
fn spatial_multiplexing_trades_reliability_for_rate() {
    let cell = CellConfig::with_antennas(4);
    let snr_db = 15.0;
    let one = UserConfig::new(6, 1, Modulation::Qam16);
    let four = UserConfig::new(6, 4, Modulation::Qam16);
    assert!(four.bits_per_subframe() == 4 * one.bits_per_subframe());
    let r1 = success_rate(&cell, &one, TurboMode::Passthrough, snr_db, 10, 5);
    let r4 = success_rate(&cell, &four, TurboMode::Passthrough, snr_db, 10, 5);
    assert!(
        r1 >= r4,
        "1 layer ({r1}) must be at least as reliable as 4 layers ({r4})"
    );
}

#[test]
fn crc_never_passes_on_garbage() {
    // Feed pure noise (no signal) — the CRC must reject essentially
    // always; with 24 CRC bits a false pass has probability 2^-24.
    let cell = CellConfig::with_antennas(2);
    let user = UserConfig::new(4, 1, Modulation::Qpsk);
    let rate = success_rate(&cell, &user, TurboMode::Passthrough, -30.0, 20, 6);
    assert_eq!(rate, 0.0, "noise-only frames must fail CRC");
}
