//! §IV-D verification at integration scale: the parallel benchmark must
//! produce bit-identical results to the serial reference across varied
//! workloads, worker counts and turbo modes.

use std::time::Duration;

use lte_uplink_repro::dsp::Modulation;
use lte_uplink_repro::model::{ParameterModel, RampModel, SteadyModel};
use lte_uplink_repro::phy::params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
use lte_uplink_repro::uplink::{BenchmarkConfig, UplinkBenchmark};

fn config(workers: usize) -> BenchmarkConfig {
    BenchmarkConfig {
        workers,
        delta: Duration::from_millis(1),
        snr_db: 30.0,
        turbo: TurboMode::Passthrough,
        seed: 11,
        ..BenchmarkConfig::default()
    }
}

#[test]
fn ramp_model_verifies_across_worker_counts() {
    let subframes = RampModel::new(77).subframes(8);
    for workers in [1, 2, 4] {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), config(workers));
        let run = bench.run(&subframes);
        bench
            .verify(&subframes, &run)
            .unwrap_or_else(|e| panic!("{workers} workers diverged: {e}"));
    }
}

#[test]
fn pipelined_runs_verify_across_worker_counts_and_windows() {
    // The multi-subframe pipeline admits subframe n+1 while n is still
    // draining; byte-identity must survive that overlap at every worker
    // count and window depth, including the saturating zero-interval
    // dispatch that maximises inter-subframe concurrency.
    let subframes = RampModel::new(77).subframes(8);
    for workers in [1, 2, 4] {
        for window in [1, 2, 4] {
            let mut bench = UplinkBenchmark::new(
                CellConfig::with_antennas(2),
                BenchmarkConfig {
                    delta: Duration::ZERO,
                    max_in_flight: Some(window),
                    ..config(workers)
                },
            );
            let run = bench.run(&subframes);
            bench
                .verify(&subframes, &run)
                .unwrap_or_else(|e| panic!("{workers} workers / window {window} diverged: {e}"));
        }
    }
}

#[test]
fn pipelined_run_matches_the_unbounded_run_bit_for_bit() {
    let subframes = RampModel::new(9).subframes(6);
    let make = |window| {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                delta: Duration::ZERO,
                max_in_flight: window,
                ..config(4)
            },
        );
        bench.run(&subframes).results
    };
    assert_eq!(
        make(Some(2)),
        make(None),
        "the in-flight window must only shape admission timing, never results"
    );
}

#[test]
fn repeated_parallel_runs_are_identical() {
    let subframes = RampModel::new(5).subframes(6);
    let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), config(4));
    let a = bench.run(&subframes);
    let b = bench.run(&subframes);
    assert_eq!(a.results, b.results, "parallel runs must be deterministic");
}

#[test]
fn steady_max_layers_and_modulation_verify() {
    // The heaviest per-user configuration the ramp can produce.
    let user = UserConfig::new(20, 4, Modulation::Qam64);
    let subframes = SteadyModel::new(user).subframes(4);
    let mut bench = UplinkBenchmark::new(
        CellConfig::default(),
        BenchmarkConfig {
            snr_db: 45.0,
            ..config(4)
        },
    );
    let run = bench.run(&subframes);
    assert_eq!(run.crc_pass_rate, 1.0, "clean channel must pass CRC");
    bench.verify(&subframes, &run).expect("must verify");
}

#[test]
fn turbo_decode_mode_verifies_in_parallel() {
    let mode = TurboMode::Decode { iterations: 3 };
    let user = UserConfig::new(4, 2, Modulation::Qam16);
    let subframes = vec![SubframeConfig::new(vec![user]); 3];
    let mut bench = UplinkBenchmark::new(
        CellConfig::with_antennas(2),
        BenchmarkConfig {
            turbo: mode,
            snr_db: 25.0,
            ..config(4)
        },
    );
    let run = bench.run(&subframes);
    bench
        .verify(&subframes, &run)
        .expect("turbo mode must verify");
}

#[test]
fn mixed_subframes_with_many_users_verify() {
    // Build a subframe with the maximum ten users.
    let users: Vec<UserConfig> = (0..10)
        .map(|i| {
            UserConfig::new(
                2 + 2 * i,
                1 + i % 4,
                [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64][i % 3],
            )
        })
        .collect();
    let subframes = vec![SubframeConfig::new(users)];
    let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), config(4));
    let run = bench.run(&subframes);
    assert_eq!(run.results[0].len(), 10);
    bench.verify(&subframes, &run).expect("must verify");
}
