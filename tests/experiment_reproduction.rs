//! Integration checks that the reduced-scale experiments reproduce the
//! paper's qualitative results: Fig. 11 linearity and ordering, Fig. 12
//! tracking, Eq. 5 behaviour, and the Table I/II policy orderings.

use lte_uplink_repro::dsp::math::slope_through_origin;
use lte_uplink_repro::dsp::Modulation;
use lte_uplink_repro::power::NapPolicy;
use lte_uplink_repro::uplink::experiments::ExperimentContext;

fn ctx() -> ExperimentContext {
    ExperimentContext {
        n_subframes: 1_200,
        cal_subframes: 20,
        cal_prb_step: 40,
        ..ExperimentContext::paper()
    }
}

#[test]
fn fig11_curves_are_nearly_linear_in_prbs() {
    let (curves, _) = ctx().run_calibration();
    for c in &curves {
        let x: Vec<f64> = c.points.iter().map(|p| p.prbs as f64).collect();
        let y: Vec<f64> = c.points.iter().map(|p| p.activity).collect();
        let k = slope_through_origin(&x, &y);
        // Paper Eq. 3: activity ≈ k·PRBs. Check residuals stay small
        // relative to the fitted line.
        for (xi, yi) in x.iter().zip(&y) {
            let fit = k * xi;
            assert!(
                (yi - fit).abs() < 0.25 * fit.max(0.01),
                "{} x{}: point ({xi}, {yi}) far from k·x = {fit}",
                c.modulation,
                c.layers
            );
        }
    }
}

#[test]
fn fig11_slope_ordering_matches_paper() {
    let (_, estimator) = ctx().run_calibration();
    // More layers → steeper; higher-order modulation → steeper.
    for m in Modulation::ALL {
        for l in 1..4 {
            assert!(
                estimator.k(l + 1, m) > estimator.k(l, m),
                "{m}: k({}) !> k({l})",
                l + 1
            );
        }
    }
    for l in 1..=4 {
        assert!(estimator.k(l, Modulation::Qam16) > estimator.k(l, Modulation::Qpsk));
        assert!(estimator.k(l, Modulation::Qam64) > estimator.k(l, Modulation::Qam16));
    }
}

#[test]
fn fig12_estimator_tracks_measured_activity() {
    let c = ctx();
    let (_, estimator) = c.run_calibration();
    let subframes = c.subframes();
    let v = c.run_estimation_validation(&estimator, &subframes);
    // The paper reports 1.2 % mean / 5.4 % max on its platform; allow a
    // looser band for the reduced run, but the estimator must clearly
    // track.
    assert!(v.mean_abs_err < 0.06, "mean |err| {:.3}", v.mean_abs_err);
    assert!(v.max_abs_err < 0.15, "max |err| {:.3}", v.max_abs_err);
}

#[test]
fn table_orderings_reproduce() {
    let study = ctx().run_power_study();
    let t2 = study.table2();
    let watts: Vec<f64> = t2.iter().map(|r| r.watts).collect();
    // NONAP strictly worst; PowerGating strictly best; NAP+IDLE below
    // both IDLE and NAP (paper Table II).
    assert!(watts[0] > watts[1] && watts[0] > watts[2]);
    assert!(watts[3] < watts[1] && watts[3] < watts[2]);
    assert!(watts[4] < watts[3]);
    // All techniques stay above the base power minus max gating saving.
    for w in &watts {
        assert!(*w > 10.0 && *w < 30.0, "absurd wattage {w}");
    }
}

#[test]
fn nap_policies_do_not_change_work_done() {
    // Power management must not drop jobs: every policy completes the
    // same job count.
    let c = ctx();
    let (_, estimator) = c.run_calibration();
    let subframes = c.subframes();
    let targets = c.estimated_targets(&estimator, &subframes);
    let full = vec![c.controller.max_cores; subframes.len()];
    let mut counts = Vec::new();
    for policy in NapPolicy::ALL {
        let t = if policy.proactive() { &targets } else { &full };
        let run = c.run_policy(policy, &subframes, t);
        counts.push(run.report.jobs_total);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn throttling_increases_latency_but_saves_power() {
    // The Eq. 5 margin exists because throttling too hard hurts
    // latency; verify the tradeoff direction end to end.
    let c = ctx();
    let subframes = c.subframes();
    let tight = vec![4usize; subframes.len()];
    let loose = vec![62usize; subframes.len()];
    let tight_run = c.run_policy(NapPolicy::Nap, &subframes, &tight);
    let loose_run = c.run_policy(NapPolicy::Nap, &subframes, &loose);
    let lat = |r: &lte_uplink_repro::uplink::experiments::PolicyRun| {
        *r.report.job_latencies.iter().max().unwrap()
    };
    assert!(
        lat(&tight_run) > lat(&loose_run),
        "throttling must slow jobs"
    );
    assert!(
        tight_run.mean_total < loose_run.mean_total,
        "throttling must save power"
    );
}
