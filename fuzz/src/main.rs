//! `lte-fuzz` — first-party structured fuzzing for the DSP kernels.
//!
//! The build environment has no network access, so there is no
//! cargo-fuzz/libFuzzer; this binary plays the same role with seeded
//! structured inputs instead of coverage guidance. Every case is
//! deterministic in `(target, seed, iteration)`, so a failure printed
//! by the harness is a one-command reproduction, and interesting cases
//! get frozen as regression tests next to the kernels they exercised.
//!
//! Two failure classes are hunted:
//!
//! * **panics** — every case runs under `catch_unwind`; any panic in a
//!   kernel fails the run with the reproducing command line;
//! * **exactness divergences** — the differential targets run the same
//!   input through the SIMD and forced-scalar dispatch paths and
//!   require byte-identical output, the same contract `lte-sim vectors
//!   --check --scalar` gates at coarser granularity.
//!
//! ```text
//! lte-fuzz [TARGET] [--iters N] [--seed S]
//! TARGET: demap | fft | segmentation | rate-match | turbo |
//!         turbo-simd | turbo-early-term | matched-filter |
//!         calibration | all (default)
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use lte_dsp::llr::{demap_block_exact_into, demap_block_into};
use lte_dsp::matched_filter::{matched_filter, matched_filter_inplace};
use lte_dsp::rate_match::RateMatcher;
use lte_dsp::segmentation::Segmentation;
use lte_dsp::simd::force_scalar;
use lte_dsp::turbo::{supported_block_sizes, TurboDecoder, TurboEncoder, TurboLlrs};
use lte_dsp::{Complex32, Modulation, Xoshiro256};
use lte_power::WorkloadEstimator;

type Target = (&'static str, fn(u64));

const TARGETS: &[Target] = &[
    ("demap", fuzz_demap),
    ("fft", fuzz_fft),
    ("segmentation", fuzz_segmentation),
    ("rate-match", fuzz_rate_match),
    ("turbo", fuzz_turbo),
    ("turbo-simd", fuzz_turbo_simd),
    ("turbo-early-term", fuzz_turbo_early_term),
    ("matched-filter", fuzz_matched_filter),
    ("calibration", fuzz_calibration),
];

fn main() -> ExitCode {
    let mut target = String::from("all");
    let mut iters: u64 = 256;
    let mut seed: u64 = 0xF0CC_5EED;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iters takes a number"));
                i += 1;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed takes a number"));
                i += 1;
            }
            "-h" | "--help" => {
                usage("");
            }
            flag if flag.starts_with('-') => usage(&format!("unknown flag {flag}")),
            name => target = name.to_string(),
        }
        i += 1;
    }
    let selected: Vec<&Target> = if target == "all" {
        TARGETS.iter().collect()
    } else {
        let found: Vec<_> = TARGETS.iter().filter(|(n, _)| *n == target).collect();
        if found.is_empty() {
            usage(&format!("unknown target {target}"));
        }
        found
    };
    for (name, case) in selected {
        for iteration in 0..iters {
            // Distinct case seed per (target, base seed, iteration).
            let mut mix = Xoshiro256::seed_from_u64(seed ^ iteration);
            for b in name.bytes() {
                mix.next_u64();
                let _ = b;
            }
            let case_seed = mix.next_u64();
            if catch_unwind(AssertUnwindSafe(|| case(case_seed))).is_err() {
                eprintln!(
                    "FUZZ FAILURE in target '{name}' (iteration {iteration}); reproduce with:"
                );
                eprintln!(
                    "  cargo run -p lte-fuzz -- {name} --seed {seed} --iters {}",
                    iteration + 1
                );
                return ExitCode::FAILURE;
            }
        }
        println!("fuzz {name}: {iters} cases ok");
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: lte-fuzz [demap|fft|segmentation|rate-match|turbo|turbo-simd|\
         turbo-early-term|matched-filter|calibration|all] [--iters N] [--seed S]"
    );
    std::process::exit(2);
}

fn random_modulation(rng: &mut Xoshiro256) -> Modulation {
    Modulation::ALL[rng.next_below(3) as usize]
}

/// Finite symbols spanning ~60 decades of magnitude, plus exact zeros
/// and subnormals — the inputs most likely to expose an operation-order
/// difference between lanes.
fn wild_symbols(rng: &mut Xoshiro256, n: usize) -> Vec<Complex32> {
    (0..n)
        .map(|_| {
            let scale = 10f32.powi(rng.next_below(61) as i32 - 30);
            let pick = |rng: &mut Xoshiro256| match rng.next_below(16) {
                0 => 0.0,
                1 => f32::MIN_POSITIVE / 2.0, // subnormal
                _ => (rng.next_f32() * 2.0 - 1.0) * scale,
            };
            Complex32::new(pick(rng), pick(rng))
        })
        .collect()
}

fn assert_bits_equal(simd: &[f32], scalar: &[f32], what: &str) {
    assert_eq!(simd.len(), scalar.len(), "{what}: length diverged");
    for (i, (a, b)) in simd.iter().zip(scalar).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{what}: SIMD/scalar divergence at {i}: {a:e} ({:08x}) vs {b:e} ({:08x})",
            a.to_bits(),
            b.to_bits()
        );
    }
}

fn fuzz_demap(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let modulation = random_modulation(&mut rng);
    let n = 1 + rng.next_below(1500) as usize;
    let symbols = wild_symbols(&mut rng, n);
    // Spans subnormal to huge; must stay positive.
    let noise_var = 10f32.powi(rng.next_below(61) as i32 - 30);
    let mut simd = Vec::new();
    let mut scalar = Vec::new();
    force_scalar(false);
    demap_block_into(modulation, &symbols, noise_var, &mut simd);
    force_scalar(true);
    demap_block_into(modulation, &symbols, noise_var, &mut scalar);
    force_scalar(false);
    assert_bits_equal(&simd, &scalar, "demap-maxlog");
    // The exact demapper has no vector path; hunt panics and NaNs from
    // the exp/ln pipeline on the same wild inputs.
    let mut exact = Vec::new();
    demap_block_exact_into(modulation, &symbols, noise_var, &mut exact);
    assert_eq!(exact.len(), n * modulation.bits_per_symbol());
}

fn fuzz_fft(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // LTE grid sizes, the full-bandwidth 2048, and arbitrary lengths
    // (primes included) to cover every radix path.
    let n = match rng.next_below(4) {
        0 => 12 * (1 + rng.next_below(100) as usize),
        1 => 2048,
        _ => 1 + rng.next_below(1400) as usize,
    };
    let input = wild_symbols(&mut rng, n);
    let forward = rng.next_below(2) == 0;
    let plan = if forward {
        lte_dsp::fft::FftPlan::forward(n)
    } else {
        lte_dsp::fft::FftPlan::inverse(n)
    };
    let mut scratch = vec![Complex32::ZERO; n];
    let mut simd = input.clone();
    force_scalar(false);
    plan.process_with_scratch(&mut simd, &mut scratch);
    let mut scalar = input;
    force_scalar(true);
    plan.process_with_scratch(&mut scalar, &mut scratch);
    force_scalar(false);
    for (i, (a, b)) in simd.iter().zip(&scalar).enumerate() {
        assert!(
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
            "fft n={n} forward={forward}: divergence at {i}: {a:?} vs {b:?}"
        );
    }
}

fn fuzz_segmentation(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let b = 1 + rng.next_below(20_000) as usize;
    let bits: Vec<u8> = (0..b).map(|_| (rng.next_u32() & 1) as u8).collect();
    let seg = Segmentation::segment(&bits);
    assert!(seg.n_blocks() >= 1);
    // A perfect decode must round-trip the transport block and pass
    // every per-block CRC.
    let (restored, crc_ok) = seg.desegment(&seg.blocks);
    assert!(crc_ok, "b={b}: block CRC failed on a perfect decode");
    assert_eq!(restored, bits, "b={b}: desegment did not invert segment");
}

fn fuzz_rate_match(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let sizes = supported_block_sizes();
    let k = sizes[rng.next_below(sizes.len() as u64) as usize];
    let bits: Vec<u8> = (0..k).map(|_| (rng.next_u32() & 1) as u8).collect();
    let code = TurboEncoder::new(k).encode(&bits);
    let matcher = RateMatcher::new(k);
    let e = 1 + rng.next_below(4 * k as u64) as usize;
    let rv = (rng.next_below(4)) as u8;
    let matched = matcher.match_bits_rv(&code, e, rv);
    assert_eq!(matched.len(), e, "k={k} e={e} rv={rv}: wrong output length");
    let llrs: Vec<f32> = matched
        .iter()
        .map(|&b| if b == 0 { 4.0 } else { -4.0 })
        .collect();
    let acc = matcher.accumulate_llrs_rv(&[(&llrs, rv)]);
    // When the whole circular buffer was transmitted at least once the
    // decode must recover the block exactly.
    if e >= matcher.buffer_len() {
        let decoded = TurboDecoder::new(k, 4).decode(&acc);
        assert_eq!(decoded, bits, "k={k} e={e} rv={rv}: decode diverged");
    }
}

fn fuzz_turbo(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let sizes = supported_block_sizes();
    let k = sizes[rng.next_below(sizes.len() as u64) as usize];
    let bits: Vec<u8> = (0..k).map(|_| (rng.next_u32() & 1) as u8).collect();
    let code = TurboEncoder::new(k).encode(&bits);
    let mag = 0.25 + rng.next_f32() * 8.0;
    let decoder = TurboDecoder::new(k, 1 + rng.next_below(6) as usize);
    let decoded = decoder.decode(&code.to_llrs(mag));
    assert_eq!(decoded, bits, "k={k} mag={mag}: noiseless decode diverged");
}

/// Finite LLRs spanning ~60 decades, with exact zeros, subnormals and
/// near-overflow (±∞-adjacent) magnitudes mixed in — everything the
/// trellis recursions could meet short of actual non-finite channel
/// output.
fn wild_llrs(rng: &mut Xoshiro256, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| match rng.next_below(16) {
            0 => 0.0,
            1 => f32::MIN_POSITIVE / 2.0, // subnormal
            2 => f32::MAX / 2.0,          // ±∞-adjacent
            3 => -f32::MAX / 2.0,
            _ => {
                let scale = 10f32.powi(rng.next_below(61) as i32 - 30);
                (rng.next_f32() * 2.0 - 1.0) * scale
            }
        })
        .collect()
}

/// Sizes the differential turbo targets draw from: the full supported
/// ladder capped at 1088 so a fuzz run stays fast while still covering
/// tabulated and dense-ladder interleavers.
fn fuzz_turbo_size(rng: &mut Xoshiro256) -> usize {
    let sizes: Vec<usize> = supported_block_sizes()
        .into_iter()
        .filter(|&k| k <= 1088)
        .collect();
    sizes[rng.next_below(sizes.len() as u64) as usize]
}

/// The heart of the PR 9 contract: arbitrary (wild, mixed-sign,
/// huge/tiny) channel LLRs through the state-parallel AVX2 decoder and
/// the forced-scalar reference must produce bit-identical soft output
/// and hard decisions.
fn fuzz_turbo_simd(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let k = fuzz_turbo_size(&mut rng);
    let mut llrs = TurboLlrs {
        systematic: wild_llrs(&mut rng, k),
        parity1: wild_llrs(&mut rng, k),
        parity2: wild_llrs(&mut rng, k),
        ..TurboLlrs::default()
    };
    for t in llrs.tail1.iter_mut().chain(llrs.tail2.iter_mut()) {
        t.0 = wild_llrs(&mut rng, 1)[0];
        t.1 = wild_llrs(&mut rng, 1)[0];
    }
    let decoder = TurboDecoder::new(k, 1 + rng.next_below(3) as usize);
    force_scalar(false);
    let simd_soft = decoder.decode_soft(&llrs);
    let simd_bits = decoder.decode(&llrs);
    force_scalar(true);
    let scalar_soft = decoder.decode_soft(&llrs);
    let scalar_bits = decoder.decode(&llrs);
    force_scalar(false);
    assert_bits_equal(&simd_soft, &scalar_soft, "turbo-simd soft");
    assert_eq!(
        simd_bits, scalar_bits,
        "turbo-simd: hard decisions diverged (k={k})"
    );
}

/// Deterministic early termination: the opt-in convergence check may
/// stop iterating early but must never change a single output bit
/// relative to running every configured iteration.
fn fuzz_turbo_early_term(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let k = fuzz_turbo_size(&mut rng);
    let bits: Vec<u8> = (0..k).map(|_| (rng.next_u32() & 1) as u8).collect();
    let code = TurboEncoder::new(k).encode(&bits);
    let mag = 0.25 + rng.next_f32() * 8.0;
    let mut llrs = code.to_llrs(mag);
    // Mix in noise up to the signal magnitude so some cases converge
    // early (clean) and others keep iterating (marginal).
    let sigma = rng.next_f32() * mag;
    let mut perturb = |v: &mut f32| *v += (rng.next_f32() * 2.0 - 1.0) * sigma;
    llrs.systematic.iter_mut().for_each(&mut perturb);
    llrs.parity1.iter_mut().for_each(&mut perturb);
    llrs.parity2.iter_mut().for_each(&mut perturb);
    let iterations = 2 + rng.next_below(5) as usize;
    let full = TurboDecoder::new(k, iterations);
    let early = TurboDecoder::new(k, iterations).with_early_termination();
    assert_bits_equal(
        &early.decode_soft(&llrs),
        &full.decode_soft(&llrs),
        "turbo-early-term soft",
    );
    assert_eq!(
        early.decode(&llrs),
        full.decode(&llrs),
        "turbo-early-term: hard decisions diverged (k={k} iters={iterations})"
    );
}

/// The matched filter's conjugate multiply, out of place and in place,
/// must be bit-identical across dispatch paths on wild inputs.
fn fuzz_matched_filter(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let n = 1 + rng.next_below(700) as usize;
    let received = wild_symbols(&mut rng, n);
    let reference = wild_symbols(&mut rng, n);
    let run = |scalar: bool| {
        force_scalar(scalar);
        let mut out = vec![Complex32::ZERO; n];
        matched_filter(&received, &reference, &mut out);
        let mut inplace = received.clone();
        matched_filter_inplace(&mut inplace, &reference);
        force_scalar(false);
        (out, inplace)
    };
    let (simd_out, simd_in) = run(false);
    let (scalar_out, scalar_in) = run(true);
    for (what, simd, scalar) in [
        ("matched-filter", &simd_out, &scalar_out),
        ("matched-filter-inplace", &simd_in, &scalar_in),
    ] {
        for (i, (a, b)) in simd.iter().zip(scalar).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "{what} n={n}: divergence at {i}: {a:?} vs {b:?}"
            );
        }
    }
}

fn fuzz_calibration(seed: u64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut text = WorkloadEstimator::new().to_json().into_bytes();
    // Structured mutations: byte flips, truncation, duplication and
    // digit garbling. from_json must return Ok or Err — never panic.
    for _ in 0..1 + rng.next_below(8) {
        match rng.next_below(4) {
            0 if !text.is_empty() => {
                let at = rng.next_below(text.len() as u64) as usize;
                text[at] ^= 1 << rng.next_below(8);
            }
            1 => {
                let at = rng.next_below(text.len() as u64 + 1) as usize;
                text.truncate(at);
            }
            2 => {
                let at = rng.next_below(text.len() as u64 + 1) as usize;
                let extra = b"[]{}:,\"-eE.0123456789"[rng.next_below(21) as usize];
                text.insert(at, extra);
            }
            _ => {
                let copy = text.clone();
                text.extend_from_slice(&copy[..rng.next_below(copy.len() as u64 + 1) as usize]);
            }
        }
    }
    let text = String::from_utf8_lossy(&text).into_owned();
    let _ = WorkloadEstimator::from_json(&text);
}
