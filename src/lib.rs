//! # LTE Uplink Receiver PHY Benchmark — reproduction
//!
//! A from-scratch Rust reproduction of *"An LTE Uplink Receiver PHY
//! Benchmark and Subframe-Based Power Management"* (Själander, McKee,
//! Brauer, Engdal, Vajda — ISPASS 2012): the open LTE uplink baseband
//! benchmark, the subframe workload estimator, and the nap/power-gating
//! resource-management study, with a deterministic 64-core simulator
//! standing in for the Tilera TILEPro64.
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! * [`dsp`] — FFTs, Zadoff–Chu sequences, modulation, LLRs, CRC, turbo
//!   coding, channel models ([`lte_dsp`]);
//! * [`phy`] — the per-user uplink receive pipeline and its transmitter
//!   counterpart ([`lte_phy`]);
//! * [`fault`] — seeded fault plans, overload policies and deadline
//!   budgets for chaos campaigns ([`lte_fault`]);
//! * [`sched`] — the work-stealing pool and the discrete-event tile
//!   machine ([`lte_sched`]);
//! * [`model`] — the paper's subframe input parameter models
//!   ([`lte_model`]);
//! * [`power`] — power/thermal model, workload estimator, power gating
//!   ([`lte_power`]);
//! * [`obs`] — the observability layer: recorders, metrics, Perfetto
//!   trace export ([`lte_obs`]);
//! * [`uplink`] — the benchmark binary's building blocks and every
//!   figure/table experiment ([`lte_uplink`]).
//!
//! ## Quickstart
//!
//! ```
//! use lte_uplink_repro::model::{ParameterModel, RampModel};
//! use lte_uplink_repro::phy::CellConfig;
//! use lte_uplink_repro::uplink::{BenchmarkConfig, UplinkBenchmark};
//!
//! let mut bench = UplinkBenchmark::new(
//!     CellConfig::default(),
//!     BenchmarkConfig { workers: 2, ..BenchmarkConfig::default() },
//! );
//! let subframes = RampModel::new(1).subframes(2);
//! let run = bench.run(&subframes);
//! assert_eq!(run.results.len(), 2);
//! ```

pub use lte_dsp as dsp;
pub use lte_fault as fault;
pub use lte_model as model;
pub use lte_obs as obs;
pub use lte_phy as phy;
pub use lte_power as power;
pub use lte_sched as sched;
pub use lte_uplink as uplink;
