//! The `lte_sim` spelling of the benchmark CLI (see [`lte_uplink::cli`]).

fn main() {
    lte_uplink::cli::run();
}
