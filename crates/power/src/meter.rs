//! RMS power metering (§V-B).
//!
//! "The current varies rapidly, so we compute the root mean square (RMS)
//! value of the current for every 100 milliseconds." The model produces
//! one power sample per 5 ms dispatch period; the meter reduces those to
//! RMS values over fixed windows, exactly as the paper's DAQ
//! post-processing does.

/// Reduces a sample trace to RMS values over windows of `window` samples.
///
/// The final window may be shorter. With 5 ms samples, `window = 20`
/// gives the paper's 100 ms metering.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn rms_windows(samples: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    samples
        .chunks(window)
        .map(|w| (w.iter().map(|s| s * s).sum::<f64>() / w.len() as f64).sqrt())
        .collect()
}

/// Arithmetic mean over windows of `window` samples (used for the
/// 1-second activity averages of Fig. 12).
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn mean_windows(samples: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    samples
        .chunks(window)
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_rms_is_the_constant() {
        let out = rms_windows(&[3.0; 100], 20);
        assert_eq!(out.len(), 5);
        for v in out {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rms_exceeds_mean_for_varying_signal() {
        let samples = [1.0, 3.0, 1.0, 3.0];
        let rms = rms_windows(&samples, 4)[0];
        let mean = mean_windows(&samples, 4)[0];
        assert!(rms > mean);
        assert!((rms - (5.0f64).sqrt()).abs() < 1e-12);
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_final_window() {
        let out = rms_windows(&[2.0; 25], 20);
        assert_eq!(out.len(), 2);
        assert!((out[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(rms_windows(&[], 20).is_empty());
        assert!(mean_windows(&[], 20).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        rms_windows(&[1.0], 0);
    }
}
