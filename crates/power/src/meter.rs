//! RMS power metering (§V-B).
//!
//! "The current varies rapidly, so we compute the root mean square (RMS)
//! value of the current for every 100 milliseconds." The model produces
//! one power sample per 5 ms dispatch period; the meter reduces those to
//! RMS values over fixed windows, exactly as the paper's DAQ
//! post-processing does.

use lte_obs::{Event, Recorder};

/// Reduces a sample trace to RMS values over windows of `window` samples.
///
/// The final window may be shorter. With 5 ms samples, `window = 20`
/// gives the paper's 100 ms metering.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn rms_windows(samples: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    samples
        .chunks(window)
        .map(|w| (w.iter().map(|s| s * s).sum::<f64>() / w.len() as f64).sqrt())
        .collect()
}

/// Records a sample trace as an [`Event::Sample`] series.
///
/// Each sample becomes one event with its index in the trace, so
/// exporters can reconstruct the series (e.g. as a Perfetto counter
/// track). Does nothing when the recorder is disabled.
pub fn record_series<R: Recorder>(recorder: &R, series: &'static str, samples: &[f64]) {
    if !recorder.enabled() {
        return;
    }
    for (index, &value) in samples.iter().enumerate() {
        recorder.record(Event::Sample {
            series,
            index: index as u64,
            value,
        });
    }
}

/// Meters a raw power trace and records both the raw and RMS-reduced
/// series, returning the RMS values.
///
/// This is the instrumented equivalent of [`rms_windows`]: the paper's
/// DAQ captures the raw current trace and post-processes it into 100 ms
/// RMS values; both ends of that reduction become recorded series under
/// the two caller-supplied names.
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn rms_windows_recorded<R: Recorder>(
    recorder: &R,
    raw_series: &'static str,
    rms_series: &'static str,
    samples: &[f64],
    window: usize,
) -> Vec<f64> {
    record_series(recorder, raw_series, samples);
    let rms = rms_windows(samples, window);
    record_series(recorder, rms_series, &rms);
    rms
}

/// Arithmetic mean over windows of `window` samples (used for the
/// 1-second activity averages of Fig. 12).
///
/// # Panics
///
/// Panics if `window == 0`.
pub fn mean_windows(samples: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    samples
        .chunks(window)
        .map(|w| w.iter().sum::<f64>() / w.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal_rms_is_the_constant() {
        let out = rms_windows(&[3.0; 100], 20);
        assert_eq!(out.len(), 5);
        for v in out {
            assert!((v - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rms_exceeds_mean_for_varying_signal() {
        let samples = [1.0, 3.0, 1.0, 3.0];
        let rms = rms_windows(&samples, 4)[0];
        let mean = mean_windows(&samples, 4)[0];
        assert!(rms > mean);
        assert!((rms - (5.0f64).sqrt()).abs() < 1e-12);
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_final_window() {
        let out = rms_windows(&[2.0; 25], 20);
        assert_eq!(out.len(), 2);
        assert!((out[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(rms_windows(&[], 20).is_empty());
        assert!(mean_windows(&[], 20).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        rms_windows(&[1.0], 0);
    }

    #[test]
    fn window_of_one_is_identity_up_to_abs() {
        let samples = [1.0, -2.0, 3.0, 0.0];
        let rms = rms_windows(&samples, 1);
        assert_eq!(rms, vec![1.0, 2.0, 3.0, 0.0]);
        let mean = mean_windows(&samples, 1);
        assert_eq!(mean, samples.to_vec());
    }

    #[test]
    fn short_final_window_uses_its_own_length() {
        // 5 samples, window 4: the final window holds a single 6.0, so
        // its RMS/mean must be 6.0, not 6.0 diluted over 4 slots.
        let samples = [2.0, 2.0, 2.0, 2.0, 6.0];
        assert!((rms_windows(&samples, 4)[1] - 6.0).abs() < 1e-12);
        assert!((mean_windows(&samples, 4)[1] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn record_series_is_a_noop_when_disabled() {
        use lte_obs::NoopRecorder;
        // Must not panic or allocate events; nothing observable to
        // assert beyond "returns".
        record_series(&NoopRecorder, "power.raw", &[1.0, 2.0]);
    }

    #[test]
    fn recorded_meter_emits_raw_and_rms_series() {
        use lte_obs::{Event, RingRecorder};
        let rec = RingRecorder::new(64);
        let rms = rms_windows_recorded(&rec, "power.raw", "power.rms", &[3.0; 5], 2);
        assert_eq!(rms.len(), 3);
        let events = rec.events();
        let raw: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::Sample { series, .. } if *series == "power.raw"))
            .collect();
        let reduced: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::Sample { series, .. } if *series == "power.rms"))
            .collect();
        assert_eq!(raw.len(), 5);
        assert_eq!(reduced.len(), 3);
        if let Event::Sample { index, value, .. } = reduced[2] {
            assert_eq!(*index, 2);
            assert!((value - 3.0).abs() < 1e-12);
        }
    }
}
