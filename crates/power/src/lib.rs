//! Power modelling, workload estimation and power-aware resource
//! management (§V-B and §VI of the paper).
//!
//! * [`model`] — a calibrated power/thermal model of the 64-core chip
//!   (base power 14 W, per-core busy/spin dynamic power, nap wake-pulse
//!   overheads, first-order thermal feedback) that converts the
//!   simulator's occupancy buckets into watts. This substitutes for the
//!   paper's NI USB-6210 measurements of the TILEPro64's buck converter.
//! * [`meter`] — the RMS power meter (100 ms windows) used to present
//!   every power trace, matching the paper's measurement post-processing.
//! * [`estimator`] — the subframe workload estimator: per-(layers,
//!   modulation) activity slopes `k_{L,M}` (Eq. 3) fitted from
//!   steady-state calibration runs (Fig. 11), summed over users (Eq. 4),
//!   and the active-core controller (Eq. 5).
//! * [`gating`] — the analytical power-gating model (Eqs. 6–9): groups of
//!   eight cores, a five-subframe look-around window, 55 mW static power
//!   per core and 15 mW switching overhead.
//! * [`dvfs`] — the paper's stated future work: a voltage/frequency
//!   ladder governed by the same workload estimate.
//! * [`governor`] — the substrate-agnostic control loop: the single
//!   [`NapPolicy`] definition (NONAP/IDLE/NAP/NAP+IDLE), the
//!   [`Governor`] trait turning per-subframe workload observations into
//!   [`CoreTarget`]s, and the [`ExecutionSubstrate`] trait implemented
//!   by both the DES simulator session and the real task pool.

pub mod dvfs;
pub mod estimator;
pub mod gating;
pub mod governor;
pub mod meter;
pub mod model;
pub mod pressure;
pub mod windows;

pub use dvfs::DvfsPolicy;
pub use estimator::{CoreController, WorkloadEstimator};
pub use gating::PowerGating;
pub use governor::{
    governed_boundary, CoreTarget, ExecutionSubstrate, Governor, GovernorDecisionRecord, NapPolicy,
    PolicyGovernor, SubframeObservation, UserLoad,
};
pub use meter::{record_series, rms_windows, rms_windows_recorded};
pub use model::PowerModel;
pub use pressure::PressureGovernor;
pub use windows::{PowerWindowSnapshot, PowerWindows};
