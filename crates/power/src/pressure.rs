//! Backpressure-aware governance for the streaming service.
//!
//! The batch harness feeds the governor scripted per-subframe loads, so
//! Eq. 4 sees everything there is to see. A *live* service has a second
//! signal the estimator cannot: the ingest-queue backlog. A subframe's
//! user list may estimate a small core target while fifty more
//! subframes sit queued behind it — napping cores in that state trades
//! watts for deadline misses at exactly the wrong time.
//!
//! [`PressureGovernor`] composes the two signals. It wraps any inner
//! [`Governor`] (in practice the paper's [`crate::PolicyGovernor`]) and
//! clamps its per-subframe target *upward* as queue occupancy grows:
//! at zero backlog the inner decision passes through untouched (full
//! paper-policy savings), and as fill approaches `full_at` the floor
//! rises linearly to every core. The inner policy still decides *down*;
//! pressure only ever raises the floor, so a deep backlog can never be
//! starved by proactive napping.

use crate::governor::{CoreTarget, Governor, NapPolicy, SubframeObservation};

/// Wraps a [`Governor`] with an ingest-pressure floor on its core
/// targets. Feed the queue occupancy in with
/// [`set_pressure`](PressureGovernor::set_pressure) before each
/// boundary.
#[derive(Clone, Debug)]
pub struct PressureGovernor<G: Governor> {
    inner: G,
    max_cores: usize,
    /// Queue fill at which the floor reaches `max_cores`.
    full_at: f64,
    pressure: f64,
    boosted_boundaries: u64,
}

impl<G: Governor> PressureGovernor<G> {
    /// Default fill at which the floor reaches every core: a half-full
    /// ingest queue already means the service is one burst away from
    /// rejecting, so savings are abandoned well before saturation.
    pub const DEFAULT_FULL_AT: f64 = 0.5;

    /// Wraps `inner` for a substrate with `max_cores` workers.
    pub fn new(inner: G, max_cores: usize) -> Self {
        Self::with_full_at(inner, max_cores, Self::DEFAULT_FULL_AT)
    }

    /// Wraps `inner`, reaching the all-cores floor at fill `full_at`
    /// (clamped into `(0, 1]`).
    pub fn with_full_at(inner: G, max_cores: usize, full_at: f64) -> Self {
        PressureGovernor {
            inner,
            max_cores: max_cores.max(1),
            full_at: full_at.clamp(f64::EPSILON, 1.0),
            pressure: 0.0,
            boosted_boundaries: 0,
        }
    }

    /// Publishes the current ingest-queue occupancy (`[0, 1]`); applies
    /// from the next [`decide`](Governor::decide) on.
    pub fn set_pressure(&mut self, fill: f64) {
        self.pressure = fill.clamp(0.0, 1.0);
    }

    /// The core floor the current pressure imposes.
    pub fn floor(&self) -> usize {
        let fraction = (self.pressure / self.full_at).min(1.0);
        ((self.max_cores as f64) * fraction).ceil() as usize
    }

    /// Boundaries where pressure raised the inner governor's target.
    pub fn boosted_boundaries(&self) -> u64 {
        self.boosted_boundaries
    }

    /// The wrapped governor.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// The wrapped governor, mutably (for `close()` etc.).
    pub fn inner_mut(&mut self) -> &mut G {
        &mut self.inner
    }
}

impl<G: Governor> Governor for PressureGovernor<G> {
    fn policy(&self) -> NapPolicy {
        self.inner.policy()
    }

    fn decide(&mut self, obs: &SubframeObservation<'_>) -> CoreTarget {
        let base = self.inner.decide(obs);
        if !base.proactive {
            // Nothing naps proactively, so there is nothing to boost.
            return base;
        }
        let floored = base.active_cores.max(self.floor()).min(self.max_cores);
        if floored > base.active_cores {
            self.boosted_boundaries += 1;
        }
        CoreTarget {
            active_cores: floored,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{CoreController, WorkloadEstimator};
    use crate::governor::{PolicyGovernor, UserLoad};
    use lte_dsp::Modulation;

    fn light_user() -> [UserLoad; 1] {
        [UserLoad {
            prbs: 10,
            layers: 1,
            modulation: Modulation::Qpsk,
        }]
    }

    fn inner(policy: NapPolicy) -> PolicyGovernor {
        PolicyGovernor::new(
            policy,
            // ~zero slopes: the inner estimate is always minimal, so any
            // raised target is attributable to pressure alone.
            WorkloadEstimator::from_slopes([[1e-6; 3]; 4]),
            CoreController {
                max_cores: 8,
                min_cores: 1,
                margin: 0,
            },
        )
    }

    fn obs<'a>(users: &'a [UserLoad]) -> SubframeObservation<'a> {
        SubframeObservation {
            subframe: 0,
            users,
            measured_activity: None,
        }
    }

    #[test]
    fn zero_pressure_passes_the_inner_decision_through() {
        let users = light_user();
        let mut base = inner(NapPolicy::NapIdle);
        let expected = base.decide(&obs(&users));
        let mut gov = PressureGovernor::new(inner(NapPolicy::NapIdle), 8);
        assert_eq!(gov.decide(&obs(&users)), expected);
        assert_eq!(gov.boosted_boundaries(), 0);
    }

    #[test]
    fn full_pressure_demands_every_core() {
        let users = light_user();
        let mut gov = PressureGovernor::new(inner(NapPolicy::NapIdle), 8);
        gov.set_pressure(1.0);
        let t = gov.decide(&obs(&users));
        assert_eq!(t.active_cores, 8);
        assert_eq!(gov.boosted_boundaries(), 1);
    }

    #[test]
    fn floor_rises_linearly_and_saturates_at_full_at() {
        let mut gov = PressureGovernor::with_full_at(inner(NapPolicy::NapIdle), 8, 0.5);
        gov.set_pressure(0.0);
        assert_eq!(gov.floor(), 0);
        gov.set_pressure(0.25); // halfway to full_at → half the cores
        assert_eq!(gov.floor(), 4);
        gov.set_pressure(0.5);
        assert_eq!(gov.floor(), 8);
        gov.set_pressure(0.9); // beyond full_at: still all cores
        assert_eq!(gov.floor(), 8);
    }

    #[test]
    fn pressure_never_lowers_the_inner_target() {
        // Heavy inner estimate: flat slopes high enough to demand all 8
        // cores regardless of pressure.
        let users = [UserLoad {
            prbs: 100,
            layers: 4,
            modulation: Modulation::Qam64,
        }];
        let mut gov = PressureGovernor::new(
            PolicyGovernor::new(
                NapPolicy::NapIdle,
                WorkloadEstimator::from_slopes([[0.01; 3]; 4]),
                CoreController {
                    max_cores: 8,
                    min_cores: 1,
                    margin: 0,
                },
            ),
            8,
        );
        gov.set_pressure(0.1); // floor 2, inner demands 8
        let t = gov.decide(&obs(&users));
        assert_eq!(t.active_cores, 8);
        assert_eq!(gov.boosted_boundaries(), 0, "no boost when inner is higher");
    }

    #[test]
    fn non_proactive_policies_are_untouched() {
        let users = light_user();
        let mut gov = PressureGovernor::new(inner(NapPolicy::Idle), 8);
        gov.set_pressure(1.0);
        let t = gov.decide(&obs(&users));
        assert!(!t.proactive);
        // IDLE never parks proactively, so the target is the inner one
        // and the boost counter stays clean.
        assert_eq!(gov.boosted_boundaries(), 0);
    }
}
