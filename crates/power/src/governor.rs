//! Substrate-agnostic power governance (§VI of the paper).
//!
//! This module owns the paper's four-policy menu — the single
//! [`NapPolicy`] definition in the workspace — and the control loop that
//! turns per-subframe workload estimates (Eqs. 3–4) into active-core
//! targets (Eq. 5). It is deliberately ignorant of *what* it governs:
//! the [`ExecutionSubstrate`] trait is implemented both by the DES
//! simulator's stepping session (`lte_sched::SimSession`) and by the
//! real work-stealing `lte_sched::TaskPool` (park/unpark as the `nap`
//! analogue), so one [`Governor`] drives either machine.
//!
//! The loop per subframe boundary ([`governed_boundary`]):
//!
//! 1. read the substrate's measured activity over the window that just
//!    closed (Eq. 2) — the "measured" side of the paper's Fig. 12;
//! 2. ask the governor for a [`CoreTarget`] from the subframe's user
//!    list (the "estimated" side);
//! 3. apply the target to the substrate before the subframe dispatches.
//!
//! Targets only change *where* work runs, never what is computed, so a
//! governed run's decoded output is byte-identical to an ungoverned one.

use lte_phy::params::UserConfig;
use lte_sched::sim::NapMode;
use lte_sched::TaskPool;

use crate::estimator::{CoreController, WorkloadEstimator};

/// The paper's resource-management policies (Table I): whether cores are
/// deactivated *proactively* (down to the Eq. 5 target) and/or
/// *reactively* (napping when they find no work).
///
/// This is the one definition in the workspace; the scheduler crate only
/// sees the decomposed mechanism flags ([`NapMode`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum NapPolicy {
    /// Idle cores spin; nothing is deactivated.
    #[default]
    NoNap,
    /// Reactive only: idle cores nap and poll for work periodically.
    Idle,
    /// Proactive only: cores above the estimated requirement nap.
    Nap,
    /// Proactive + reactive combined — the paper's best policy.
    NapIdle,
}

impl NapPolicy {
    /// All four policies in the paper's presentation order.
    pub const ALL: [NapPolicy; 4] = [
        NapPolicy::NoNap,
        NapPolicy::Idle,
        NapPolicy::Nap,
        NapPolicy::NapIdle,
    ];

    /// Does the policy deactivate cores above the Eq. 5 target?
    pub fn proactive(self) -> bool {
        matches!(self, NapPolicy::Nap | NapPolicy::NapIdle)
    }

    /// Does the policy nap cores that find no work?
    pub fn reactive(self) -> bool {
        matches!(self, NapPolicy::Idle | NapPolicy::NapIdle)
    }

    /// The scheduler-side mechanism flags this policy sets.
    pub fn mode(self) -> NapMode {
        NapMode {
            proactive: self.proactive(),
            reactive: self.reactive(),
        }
    }

    /// Stable display name, usable in `&'static str` event fields.
    pub fn name(self) -> &'static str {
        match self {
            NapPolicy::NoNap => "NONAP",
            NapPolicy::Idle => "IDLE",
            NapPolicy::Nap => "NAP",
            NapPolicy::NapIdle => "NAP+IDLE",
        }
    }
}

impl std::fmt::Display for NapPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for NapPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "nonap" | "none" => Ok(NapPolicy::NoNap),
            "idle" => Ok(NapPolicy::Idle),
            "nap" => Ok(NapPolicy::Nap),
            "nap+idle" | "napidle" | "nap_idle" => Ok(NapPolicy::NapIdle),
            other => Err(format!(
                "unknown policy `{other}` (expected nonap, idle, nap or nap+idle)"
            )),
        }
    }
}

/// One governance decision: the active-core target for the subframe
/// about to dispatch, plus the mechanism flags the substrate should run
/// under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreTarget {
    /// Eq. 5 active-core count, already clamped by the controller.
    pub active_cores: usize,
    /// Deactivate cores above `active_cores` (from the policy).
    pub proactive: bool,
    /// Nap cores that find no work (from the policy).
    pub reactive: bool,
}

/// The workload of one user as the governor sees it — the Eq. 3 inputs,
/// decoupled from the PHY's full `UserConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UserLoad {
    /// Allocated physical resource blocks.
    pub prbs: usize,
    /// Spatial layers (1..=4).
    pub layers: usize,
    /// Modulation scheme.
    pub modulation: lte_dsp::Modulation,
}

impl From<&UserConfig> for UserLoad {
    fn from(u: &UserConfig) -> Self {
        UserLoad {
            prbs: u.prbs,
            layers: u.layers,
            modulation: u.modulation,
        }
    }
}

/// What the governor observes at one subframe boundary.
#[derive(Clone, Copy, Debug)]
pub struct SubframeObservation<'a> {
    /// Index of the subframe about to dispatch.
    pub subframe: usize,
    /// The users scheduled in it.
    pub users: &'a [UserLoad],
    /// Measured Eq. 2 activity over the window that just closed, if the
    /// substrate can report one (the Fig. 12 "measured" series).
    pub measured_activity: Option<f64>,
}

/// A power-governance policy: observes each subframe's workload and
/// emits the core target to apply before it dispatches.
pub trait Governor {
    /// The paper policy this governor implements.
    fn policy(&self) -> NapPolicy;

    /// Decides the core target for the observed subframe.
    fn decide(&mut self, obs: &SubframeObservation<'_>) -> CoreTarget;
}

/// One row of a governed run's estimation audit (Fig. 12): what the
/// governor predicted for a subframe and what the substrate measured
/// over that subframe's window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GovernorDecisionRecord {
    /// Subframe index.
    pub subframe: usize,
    /// Estimated Eq. 4 activity.
    pub estimated: f64,
    /// Measured Eq. 2 activity over the subframe's window (filled one
    /// boundary later, when the window has closed).
    pub measured: Option<f64>,
    /// The Eq. 5 target emitted.
    pub target: usize,
}

/// The paper's estimator-driven governor: Eq. 4 workload estimate from
/// the fitted slopes, Eq. 5 controller, one of the four [`NapPolicy`]
/// settings — plus a decision trace for estimated-vs-measured reporting.
#[derive(Clone, Debug)]
pub struct PolicyGovernor {
    policy: NapPolicy,
    estimator: WorkloadEstimator,
    controller: CoreController,
    trace: Vec<GovernorDecisionRecord>,
}

impl PolicyGovernor {
    /// Builds a governor from fitted slopes and a controller.
    pub fn new(
        policy: NapPolicy,
        estimator: WorkloadEstimator,
        controller: CoreController,
    ) -> Self {
        PolicyGovernor {
            policy,
            estimator,
            controller,
            trace: Vec::new(),
        }
    }

    /// The decision audit so far, one row per governed subframe.
    pub fn trace(&self) -> &[GovernorDecisionRecord] {
        &self.trace
    }

    /// The fitted estimator backing the decisions.
    pub fn estimator(&self) -> &WorkloadEstimator {
        &self.estimator
    }

    /// Closes the final subframe's measurement window. Call once after
    /// the run drains, with the substrate's last activity reading.
    pub fn close(&mut self, measured: Option<f64>) {
        if let Some(last) = self.trace.last_mut() {
            if last.measured.is_none() {
                last.measured = measured;
            }
        }
    }

    /// Mean and maximum absolute estimation error over every closed
    /// window — the numbers the paper reports for Fig. 12 (mean 1.2 %,
    /// max 5.4 % there). `None` until at least one window has closed.
    pub fn estimation_error(&self) -> Option<(f64, f64)> {
        let closed: Vec<f64> = self
            .trace
            .iter()
            .filter_map(|r| r.measured.map(|m| (r.estimated - m).abs()))
            .collect();
        if closed.is_empty() {
            return None;
        }
        let mean = closed.iter().sum::<f64>() / closed.len() as f64;
        let max = closed.iter().cloned().fold(0.0, f64::max);
        Some((mean, max))
    }
}

impl Governor for PolicyGovernor {
    fn policy(&self) -> NapPolicy {
        self.policy
    }

    fn decide(&mut self, obs: &SubframeObservation<'_>) -> CoreTarget {
        // The boundary measurement covers the *previous* subframe's
        // window: close that record before opening this one.
        if let Some(measured) = obs.measured_activity {
            if let Some(last) = self.trace.last_mut() {
                if last.measured.is_none() {
                    last.measured = Some(measured);
                }
            }
        }
        let estimated = obs
            .users
            .iter()
            .map(|u| self.estimator.user_activity(u.prbs, u.layers, u.modulation))
            .sum::<f64>()
            .clamp(0.0, 1.0);
        let target = self.controller.active_cores(estimated);
        self.trace.push(GovernorDecisionRecord {
            subframe: obs.subframe,
            estimated,
            measured: None,
            target,
        });
        CoreTarget {
            active_cores: target,
            proactive: self.policy.proactive(),
            reactive: self.policy.reactive(),
        }
    }
}

/// A machine a governor can drive: the DES simulator session or the
/// real task pool. Targets are applied at subframe boundaries only, so
/// governance changes where work runs — never what is computed.
pub trait ExecutionSubstrate {
    /// Worker cores the substrate runs on (the Eq. 5 `max_cores`).
    fn max_cores(&self) -> usize;

    /// Applies a core target ahead of the next subframe dispatch. A
    /// non-proactive target resets the substrate to all cores active.
    fn apply_target(&mut self, target: &CoreTarget);

    /// Measured Eq. 2 activity over the window since the previous call.
    fn boundary_activity(&mut self) -> f64;

    /// Total deactivated core time so far, in the substrate's native
    /// unit (simulated cycles or parked nanoseconds).
    fn deactivated_time(&self) -> u64;
}

impl ExecutionSubstrate for TaskPool {
    fn max_cores(&self) -> usize {
        self.n_workers()
    }

    fn apply_target(&mut self, target: &CoreTarget) {
        ExecutionSubstrate::apply_target(&mut &*self, target);
    }

    fn boundary_activity(&mut self) -> f64 {
        TaskPool::boundary_activity(self)
    }

    fn deactivated_time(&self) -> u64 {
        self.governor_parked_nanos()
    }
}

/// The pool's control surface is `&self` (atomics throughout), so a
/// shared reference is itself a substrate — convenient when the pool is
/// simultaneously executing the benchmark loop.
impl ExecutionSubstrate for &TaskPool {
    fn max_cores(&self) -> usize {
        self.n_workers()
    }

    fn apply_target(&mut self, target: &CoreTarget) {
        if target.proactive {
            self.set_active_workers(target.active_cores);
        } else {
            self.set_active_workers(self.n_workers());
        }
    }

    fn boundary_activity(&mut self) -> f64 {
        TaskPool::boundary_activity(self)
    }

    fn deactivated_time(&self) -> u64 {
        self.governor_parked_nanos()
    }
}

impl<R: lte_obs::Recorder> ExecutionSubstrate for lte_sched::SimSession<'_, R> {
    fn max_cores(&self) -> usize {
        self.n_workers()
    }

    fn apply_target(&mut self, target: &CoreTarget) {
        // The session's config carries the mechanism flags; a
        // non-proactive run ignores targets exactly like an ungoverned
        // one, so forwarding unconditionally is safe.
        self.set_target(target.active_cores);
    }

    fn boundary_activity(&mut self) -> f64 {
        lte_sched::SimSession::boundary_activity(self)
    }

    fn deactivated_time(&self) -> u64 {
        self.deactivated_cycles()
    }
}

/// Runs one boundary of the control loop: measure the closed window,
/// decide, apply. Returns the decision so the caller can trace it.
pub fn governed_boundary<S: ExecutionSubstrate, G: Governor>(
    substrate: &mut S,
    governor: &mut G,
    subframe: usize,
    users: &[UserLoad],
) -> CoreTarget {
    let measured = substrate.boundary_activity();
    let obs = SubframeObservation {
        subframe,
        users,
        measured_activity: Some(measured),
    };
    let target = governor.decide(&obs);
    substrate.apply_target(&target);
    target
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_dsp::Modulation;
    use lte_sched::sim::{SimConfig, Simulator, SubframeLoad};
    use lte_sched::SimJob;

    fn flat_estimator(k: f64) -> WorkloadEstimator {
        WorkloadEstimator::from_slopes([[k; 3]; 4])
    }

    fn controller(max: usize) -> CoreController {
        CoreController {
            max_cores: max,
            min_cores: 1,
            margin: 2,
        }
    }

    #[test]
    fn policy_names_and_flags_match_the_paper() {
        let rows = [
            (NapPolicy::NoNap, "NONAP", false, false),
            (NapPolicy::Idle, "IDLE", false, true),
            (NapPolicy::Nap, "NAP", true, false),
            (NapPolicy::NapIdle, "NAP+IDLE", true, true),
        ];
        for (policy, name, pro, re) in rows {
            assert_eq!(policy.to_string(), name);
            assert_eq!(policy.proactive(), pro, "{name}");
            assert_eq!(policy.reactive(), re, "{name}");
            assert_eq!(policy.mode().proactive, pro, "{name}");
            assert_eq!(policy.mode().reactive, re, "{name}");
            assert_eq!(name.to_lowercase().parse::<NapPolicy>(), Ok(policy));
        }
        assert!("snooze".parse::<NapPolicy>().is_err());
    }

    #[test]
    fn governor_emits_eq5_targets_and_audits_them() {
        let users = [UserLoad {
            prbs: 100,
            layers: 1,
            modulation: Modulation::Qpsk,
        }];
        let mut gov = PolicyGovernor::new(
            NapPolicy::NapIdle,
            flat_estimator(0.005), // 100 PRBs → activity 0.5
            controller(62),
        );
        let t = gov.decide(&SubframeObservation {
            subframe: 0,
            users: &users,
            measured_activity: Some(0.9), // no previous window: ignored
        });
        assert_eq!(t.active_cores, 33, "0.5 × 62 + 2");
        assert!(t.proactive && t.reactive);
        // Next boundary's measurement closes subframe 0's window.
        let _ = gov.decide(&SubframeObservation {
            subframe: 1,
            users: &users,
            measured_activity: Some(0.48),
        });
        gov.close(Some(0.52));
        assert_eq!(gov.trace().len(), 2);
        assert_eq!(gov.trace()[0].measured, Some(0.48));
        assert_eq!(gov.trace()[1].measured, Some(0.52));
        let (mean, max) = gov.estimation_error().expect("two closed windows");
        assert!((mean - 0.02).abs() < 1e-12, "mean {mean}");
        assert!((max - 0.02).abs() < 1e-12, "max {max}");
    }

    #[test]
    fn governed_session_matches_ungoverned_run_for_equal_targets() {
        // The same active targets driven through the governor loop must
        // reproduce the one-shot run byte for byte.
        let cfg = SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            nap: NapPolicy::NapIdle.mode(),
        };
        let job = SimJob {
            est_tasks: vec![2_000; 4],
            weights_cost: 1_000,
            combine_tasks: vec![2_000; 8],
            finish_cost: 2_000,
        };
        let loads: Vec<SubframeLoad> = (0..12)
            .map(|_| SubframeLoad {
                jobs: vec![job.clone(); 2],
                active_target: 5,
            })
            .collect();
        let baseline = Simulator::new(cfg).run(&loads);

        let mut gov = PolicyGovernor::new(
            NapPolicy::NapIdle,
            // k chosen so 100 PRBs × 1 user estimates the same target 5:
            // a = 3/62 ⇒ ⌊a×8⌋ = 0 … need target 5 on 8 cores ⇒ a ∈
            // [3/8, 4/8) with margin 2 ⇒ ⌊a×8⌋ = 3. Use a = 0.4.
            flat_estimator(0.004),
            controller(8),
        );
        let users = [UserLoad {
            prbs: 100,
            layers: 1,
            modulation: Modulation::Qpsk,
        }];
        let mut session = Simulator::new(cfg).session(&loads);
        let mut boundaries = 0;
        while let Some(b) = session.advance() {
            let t = governed_boundary(&mut session, &mut gov, b.subframe, &users);
            assert_eq!(t.active_cores, 5, "0.4 × 8 + 2");
            boundaries += 1;
        }
        let governed = session.finish();
        assert_eq!(boundaries, loads.len());
        assert_eq!(governed, baseline, "same targets ⇒ identical report");
    }

    #[test]
    fn governed_session_reports_deactivated_time_at_low_load() {
        let cfg = SimConfig {
            n_workers: 8,
            dispatch_period: 100_000,
            steal_latency: 100,
            task_overhead: 50,
            wake_period: 20_000,
            clock_hz: 700.0e6,
            nap: NapPolicy::NapIdle.mode(),
        };
        let job = SimJob {
            est_tasks: vec![500; 2],
            weights_cost: 500,
            combine_tasks: vec![500; 2],
            finish_cost: 500,
        };
        let loads: Vec<SubframeLoad> = (0..10)
            .map(|_| SubframeLoad {
                jobs: vec![job.clone()],
                active_target: 8,
            })
            .collect();
        let mut gov = PolicyGovernor::new(
            NapPolicy::NapIdle,
            flat_estimator(0.0001), // ~zero estimate → minimal target
            controller(8),
        );
        let users = [UserLoad {
            prbs: 10,
            layers: 1,
            modulation: Modulation::Qpsk,
        }];
        let mut session = Simulator::new(cfg).session(&loads);
        while let Some(b) = session.advance() {
            governed_boundary(&mut session, &mut gov, b.subframe, &users);
        }
        assert!(
            session.deactivated_time() > 0,
            "low-load NAP+IDLE must bank nap cycles"
        );
        gov.close(Some(session.boundary_activity()));
        let report = session.finish();
        assert_eq!(report.jobs_total, 10, "every job still runs");
        assert!(gov.estimation_error().is_some());
    }

    #[test]
    fn pool_substrate_applies_targets_and_banks_parked_time() {
        let pool = TaskPool::new(4).expect("spawn pool");
        let mut sub = &pool;
        assert_eq!(ExecutionSubstrate::max_cores(&sub), 4);
        sub.apply_target(&CoreTarget {
            active_cores: 1,
            proactive: true,
            reactive: true,
        });
        assert_eq!(pool.active_workers(), 1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(sub.deactivated_time() > 0, "parked time must accrue");
        // A non-proactive target restores the full worker set.
        sub.apply_target(&CoreTarget {
            active_cores: 1,
            proactive: false,
            reactive: false,
        });
        assert_eq!(pool.active_workers(), 4);
    }
}
