//! Windowed power telemetry: energy-per-subframe and governor
//! target-vs-achieved, aggregated per rolling window.
//!
//! The continuous-telemetry soak drives one [`PowerWindows`] alongside
//! the simulator session: every subframe boundary feeds the bucket's
//! modelled power draw, the governor's active-core target, and the
//! *achieved* busy core-equivalents (Eq. 2 activity × workers). At each
//! window boundary the accumulator folds into a plain
//! [`PowerWindowSnapshot`] with energy in joules, energy-per-subframe in
//! millijoules, and the target/achieved means — everything a pure
//! function of the (deterministic) simulation, so two identical soaks
//! serialize byte-identical power windows.

use lte_obs::f64_json;

/// One completed window's power/governor aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerWindowSnapshot {
    /// Subframes aggregated into this window.
    pub subframes: u64,
    /// Total energy over the window, joules.
    pub energy_joules: f64,
    /// Energy per subframe, millijoules.
    pub energy_per_subframe_mj: f64,
    /// Mean power draw over the window, watts.
    pub mean_power_watts: f64,
    /// Mean governor active-core target.
    pub mean_target_cores: f64,
    /// Mean achieved busy core-equivalents (activity × workers).
    pub mean_achieved_cores: f64,
}

impl PowerWindowSnapshot {
    /// Flat deterministic JSON object (fixed key order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"subframes\":{},\"energy_joules\":{},\
             \"energy_per_subframe_mj\":{},\"mean_power_watts\":{},\
             \"mean_target_cores\":{},\"mean_achieved_cores\":{}}}",
            self.subframes,
            f64_json(self.energy_joules),
            f64_json(self.energy_per_subframe_mj),
            f64_json(self.mean_power_watts),
            f64_json(self.mean_target_cores),
            f64_json(self.mean_achieved_cores),
        )
    }
}

/// Accumulates per-subframe power samples into rolling windows.
pub struct PowerWindows {
    window_len: u64,
    // Live accumulation for the open window.
    subframes: u64,
    energy_joules: f64,
    watt_seconds_weight: f64,
    target_sum: f64,
    achieved_sum: f64,
    snapshots: Vec<PowerWindowSnapshot>,
}

impl PowerWindows {
    /// A tracker rolling every `window_len` subframes.
    pub fn new(window_len: u64) -> Self {
        assert!(window_len > 0, "window length must be positive");
        Self {
            window_len,
            subframes: 0,
            energy_joules: 0.0,
            watt_seconds_weight: 0.0,
            target_sum: 0.0,
            achieved_sum: 0.0,
            snapshots: Vec::new(),
        }
    }

    /// Feeds one subframe: the modelled power draw over its dispatch
    /// period (`watts` for `dt_seconds`), the governor's active-core
    /// target, and the achieved busy core-equivalents. Returns the
    /// completed snapshot when this subframe closes a window.
    pub fn record_subframe(
        &mut self,
        watts: f64,
        dt_seconds: f64,
        target_cores: f64,
        achieved_cores: f64,
    ) -> Option<&PowerWindowSnapshot> {
        self.subframes += 1;
        self.energy_joules += watts * dt_seconds;
        self.watt_seconds_weight += dt_seconds;
        self.target_sum += target_cores;
        self.achieved_sum += achieved_cores;
        if self.subframes >= self.window_len {
            Some(self.roll())
        } else {
            None
        }
    }

    /// Closes the open window now (e.g. a final partial window); `None`
    /// when it is empty.
    pub fn flush(&mut self) -> Option<&PowerWindowSnapshot> {
        if self.subframes == 0 {
            return None;
        }
        Some(self.roll())
    }

    fn roll(&mut self) -> &PowerWindowSnapshot {
        let n = self.subframes;
        let snap = PowerWindowSnapshot {
            subframes: n,
            energy_joules: self.energy_joules,
            energy_per_subframe_mj: 1_000.0 * self.energy_joules / n as f64,
            mean_power_watts: if self.watt_seconds_weight > 0.0 {
                self.energy_joules / self.watt_seconds_weight
            } else {
                0.0
            },
            mean_target_cores: self.target_sum / n as f64,
            mean_achieved_cores: self.achieved_sum / n as f64,
        };
        self.subframes = 0;
        self.energy_joules = 0.0;
        self.watt_seconds_weight = 0.0;
        self.target_sum = 0.0;
        self.achieved_sum = 0.0;
        self.snapshots.push(snap);
        self.snapshots.last().expect("just pushed")
    }

    /// Completed windows, oldest first.
    pub fn snapshots(&self) -> &[PowerWindowSnapshot] {
        &self.snapshots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_integrates_power_over_window() {
        let mut w = PowerWindows::new(2);
        assert!(w.record_subframe(20.0, 0.005, 62.0, 31.0).is_none());
        let snap = *w.record_subframe(24.0, 0.005, 62.0, 33.0).unwrap();
        assert_eq!(snap.subframes, 2);
        assert!((snap.energy_joules - (20.0 + 24.0) * 0.005).abs() < 1e-12);
        assert!((snap.energy_per_subframe_mj - 110.0).abs() < 1e-9);
        assert!((snap.mean_power_watts - 22.0).abs() < 1e-9);
        assert_eq!(snap.mean_target_cores, 62.0);
        assert_eq!(snap.mean_achieved_cores, 32.0);
    }

    #[test]
    fn flush_emits_partial_window_once() {
        let mut w = PowerWindows::new(10);
        w.record_subframe(14.0, 0.005, 4.0, 1.0);
        assert!(w.flush().is_some());
        assert!(w.flush().is_none());
        assert_eq!(w.snapshots().len(), 1);
        assert_eq!(w.snapshots()[0].subframes, 1);
    }

    #[test]
    fn snapshot_json_is_stable() {
        let mut w = PowerWindows::new(1);
        let snap = *w.record_subframe(20.0, 0.005, 62.0, 31.0).unwrap();
        assert_eq!(
            snap.to_json(),
            "{\"subframes\":1,\"energy_joules\":0.1,\
             \"energy_per_subframe_mj\":100.0,\"mean_power_watts\":20.0,\
             \"mean_target_cores\":62.0,\"mean_achieved_cores\":31.0}"
        );
    }
}
