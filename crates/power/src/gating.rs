//! The analytical power-gating model (§VI-C, Eqs. 6–9).
//!
//! The TILEPro64 has no per-core power gating, so the paper estimates the
//! static-power savings analytically: cores are managed in groups of
//! eight (eight power domains for a 64-core chip), the number of
//! powered-on cores is the maximum of the active-core estimate over five
//! consecutive subframes (two of look-ahead — the schedule is known two
//! subframes in advance — plus the up-to-three concurrently processed
//! subframes), each powered-off core saves 55 mW of static power (25 %
//! of the 14 W base attributed to the 64 idle cores), and toggling a
//! core costs 15 mW for the duration of one subframe.

/// Power-gating model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerGating {
    /// Total cores on the chip (64).
    pub total_cores: usize,
    /// Power-domain granularity (Eq. 6 rounds up to groups of 8).
    pub group_size: usize,
    /// Subframes of look-ahead available (schedule known 2 ahead).
    pub lookahead: usize,
    /// Concurrently processed subframes to keep powered (up to 3).
    pub lookbehind: usize,
    /// Static power per core in watts (55 mW).
    pub static_per_core: f64,
    /// Overhead per toggled core, in watts for one subframe (15 mW).
    pub toggle_overhead: f64,
}

impl PowerGating {
    /// The paper's parameters.
    pub fn paper() -> Self {
        PowerGating {
            total_cores: 64,
            group_size: 8,
            lookahead: 2,
            lookbehind: 2,
            static_per_core: 0.055,
            toggle_overhead: 0.015,
        }
    }

    /// Eq. 6: discretises an active-core estimate to the power-domain
    /// granularity.
    pub fn discretize(&self, active_cores: usize) -> usize {
        active_cores
            .div_ceil(self.group_size)
            .saturating_mul(self.group_size)
            .min(self.total_cores)
    }

    /// Eq. 7: powered-on cores per subframe — the maximum discretised
    /// estimate over the window `[i − lookbehind, i + lookahead]`.
    pub fn powered_cores(&self, active_targets: &[usize]) -> Vec<usize> {
        let n = active_targets.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(self.lookbehind);
                let hi = (i + self.lookahead).min(n.saturating_sub(1));
                active_targets[lo..=hi]
                    .iter()
                    .map(|&a| self.discretize(a))
                    .max()
                    .unwrap_or(self.total_cores)
            })
            .collect()
    }

    /// Eqs. 8–9: per-subframe power saving in watts relative to a chip
    /// with every core powered, after subtracting toggle overheads.
    pub fn savings(&self, active_targets: &[usize]) -> Vec<f64> {
        let powered = self.powered_cores(active_targets);
        powered
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let prev = if i == 0 { p } else { powered[i - 1] };
                let overhead =
                    (p as i64 - prev as i64).unsigned_abs() as f64 * self.toggle_overhead;
                (self.total_cores - p) as f64 * self.static_per_core - overhead
            })
            .collect()
    }

    /// Applies the savings to an existing per-subframe power trace
    /// (the paper subtracts Eq. 9 from the NAP+IDLE measurement).
    ///
    /// # Panics
    ///
    /// Panics if the traces have different lengths.
    pub fn apply(&self, power: &[f64], active_targets: &[usize]) -> Vec<f64> {
        assert_eq!(power.len(), active_targets.len(), "trace length mismatch");
        power
            .iter()
            .zip(self.savings(active_targets))
            .map(|(p, s)| p - s)
            .collect()
    }
}

impl Default for PowerGating {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretization_rounds_up_to_groups_of_eight() {
        let g = PowerGating::paper();
        assert_eq!(g.discretize(0), 0);
        assert_eq!(g.discretize(1), 8);
        assert_eq!(g.discretize(8), 8);
        assert_eq!(g.discretize(9), 16);
        assert_eq!(g.discretize(62), 64);
        assert_eq!(g.discretize(100), 64);
    }

    #[test]
    fn powered_window_takes_max_over_five_subframes() {
        let g = PowerGating::paper();
        let targets = vec![2, 2, 40, 2, 2, 2, 2, 2];
        let powered = g.powered_cores(&targets);
        // Subframes 0..=4 see the spike at index 2 through the window.
        assert_eq!(powered[0], 40); // lookahead 2 reaches index 2
        assert_eq!(powered[1], 40);
        assert_eq!(powered[2], 40);
        assert_eq!(powered[3], 40); // lookbehind
        assert_eq!(powered[4], 40);
        assert_eq!(powered[5], 8);
    }

    #[test]
    fn savings_account_for_toggle_overhead() {
        let g = PowerGating::paper();
        let targets = vec![8; 10];
        let s = g.savings(&targets);
        // Constant 8 powered cores: save 56 × 55 mW with no toggling.
        for v in &s {
            assert!((v - 56.0 * 0.055).abs() < 1e-12);
        }
        // A step change pays the toggle overhead once.
        let step = vec![8, 8, 8, 8, 8, 40, 40, 40];
        let s = g.savings(&step);
        // At the transition (index 3 due to lookahead), powered jumps
        // 8 → 48 somewhere; find a strictly smaller saving there.
        let min = s.iter().cloned().fold(f64::MAX, f64::min);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < max, "toggling must cost something");
    }

    #[test]
    fn full_load_saves_nothing() {
        let g = PowerGating::paper();
        let s = g.savings(&[62; 5]);
        for v in s {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn low_load_saves_most() {
        let g = PowerGating::paper();
        let s = g.savings(&[2; 5]);
        // 56 cores off × 55 mW = 3.08 W — the paper's ">3 W for
        // low-workload scenarios".
        for v in s {
            assert!((v - 3.08).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn apply_subtracts_savings() {
        let g = PowerGating::paper();
        let power = vec![20.0; 5];
        let gated = g.apply(&power, &[2; 5]);
        for v in gated {
            assert!((v - (20.0 - 3.08)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_checks_lengths() {
        PowerGating::paper().apply(&[1.0], &[1, 2]);
    }

    #[test]
    fn empty_targets() {
        let g = PowerGating::paper();
        assert!(g.powered_cores(&[]).is_empty());
        assert!(g.savings(&[]).is_empty());
    }
}
