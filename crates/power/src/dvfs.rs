//! Dynamic voltage and frequency scaling — the paper's stated future
//! work.
//!
//! §VII: "We use our workload estimation for clock gating and show the
//! potential when power gating cores, but we could also use it in
//! combination with DVFS to create further power management
//! opportunities." This module adds that combination: a discrete
//! frequency/voltage ladder, a subframe-rate governor driven by the same
//! Eq. 4 workload estimate, and the standard dynamic-power scaling
//! `P ∝ f·V²` with voltage reduced alongside frequency.
//!
//! The governor picks the lowest operating point that still leaves
//! headroom over the estimated activity — slowing every core down rather
//! than (or in addition to) switching cores off, which trades parallel
//! slack for supply-voltage reduction.

/// One operating point of the ladder.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OperatingPoint {
    /// Frequency relative to nominal (0 < `freq` ≤ 1).
    pub freq: f64,
    /// Supply voltage relative to nominal (0 < `volt` ≤ 1).
    pub volt: f64,
}

impl OperatingPoint {
    /// Dynamic-power multiplier at this point: `f · V²`.
    pub fn dynamic_scale(&self) -> f64 {
        self.freq * self.volt * self.volt
    }
}

/// A DVFS ladder plus governor driven by estimated subframe activity.
#[derive(Clone, Debug, PartialEq)]
pub struct DvfsPolicy {
    /// Operating points, sorted by ascending frequency. The last entry
    /// must be the nominal point (1.0, 1.0).
    points: Vec<OperatingPoint>,
    /// Utilisation headroom: the governor requires
    /// `freq ≥ estimated_activity × (1 + headroom)`.
    headroom: f64,
}

impl DvfsPolicy {
    /// A TILEPro64-flavoured ladder with four points down to half
    /// frequency at 85 % voltage, and a 20 % headroom margin (the DVFS
    /// analogue of Eq. 5's "+2 cores").
    pub fn default_ladder() -> Self {
        DvfsPolicy::new(
            vec![
                OperatingPoint {
                    freq: 0.50,
                    volt: 0.85,
                },
                OperatingPoint {
                    freq: 0.67,
                    volt: 0.90,
                },
                OperatingPoint {
                    freq: 0.83,
                    volt: 0.95,
                },
                OperatingPoint {
                    freq: 1.00,
                    volt: 1.00,
                },
            ],
            0.20,
        )
    }

    /// Builds a policy from a custom ladder.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty, unsorted, has non-positive entries,
    /// or does not end at the nominal point.
    pub fn new(points: Vec<OperatingPoint>, headroom: f64) -> Self {
        assert!(!points.is_empty(), "ladder must have at least one point");
        for w in points.windows(2) {
            assert!(w[0].freq < w[1].freq, "ladder must be sorted by frequency");
        }
        for p in &points {
            assert!(p.freq > 0.0 && p.volt > 0.0, "points must be positive");
        }
        let last = points.last().expect("non-empty");
        assert!(
            (last.freq - 1.0).abs() < 1e-9 && (last.volt - 1.0).abs() < 1e-9,
            "ladder must end at the nominal point"
        );
        assert!(headroom >= 0.0, "headroom must be non-negative");
        DvfsPolicy { points, headroom }
    }

    /// The ladder.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// Selects the lowest operating point with enough throughput for the
    /// estimated activity (relative to full-speed capacity).
    pub fn select(&self, estimated_activity: f64) -> OperatingPoint {
        let need = (estimated_activity.clamp(0.0, 1.0) * (1.0 + self.headroom)).min(1.0);
        *self
            .points
            .iter()
            .find(|p| p.freq >= need)
            .unwrap_or_else(|| self.points.last().expect("non-empty"))
    }

    /// Scales a dynamic-power trace by the per-subframe operating point.
    ///
    /// `dynamic` is the per-subframe dynamic power (total minus base) and
    /// `estimates` the per-subframe activity estimates; returns the scaled
    /// dynamic power. Running slower stretches work into otherwise-idle
    /// time, so busy energy at reduced `f` is conservatively modelled as
    /// unchanged cycles × `V²` scaling — i.e. power scales by
    /// `dynamic_scale() / freq = V²`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn apply(&self, dynamic: &[f64], estimates: &[f64]) -> Vec<f64> {
        assert_eq!(dynamic.len(), estimates.len(), "trace length mismatch");
        dynamic
            .iter()
            .zip(estimates)
            .map(|(p, &e)| {
                let op = self.select(e);
                p * op.volt * op.volt
            })
            .collect()
    }
}

impl Default for DvfsPolicy {
    fn default() -> Self {
        Self::default_ladder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_selection_is_monotone() {
        let p = DvfsPolicy::default_ladder();
        let mut last = 0.0;
        for e in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let f = p.select(e).freq;
            assert!(f >= last, "selection must not decrease with load");
            last = f;
        }
    }

    #[test]
    fn low_load_runs_slow_high_load_runs_nominal() {
        let p = DvfsPolicy::default_ladder();
        assert_eq!(p.select(0.1).freq, 0.50);
        assert_eq!(p.select(0.95).freq, 1.00);
        assert_eq!(p.select(2.0).freq, 1.00);
    }

    #[test]
    fn headroom_forces_a_step_up() {
        let p = DvfsPolicy::default_ladder();
        // 0.45 × 1.2 = 0.54 > 0.50 → must pick 0.67.
        assert_eq!(p.select(0.45).freq, 0.67);
    }

    #[test]
    fn dynamic_scale_drops_superlinearly() {
        let p = DvfsPolicy::default_ladder();
        let slow = p.points()[0];
        assert!(slow.dynamic_scale() < slow.freq, "V² term must bite");
    }

    #[test]
    fn apply_scales_by_v_squared() {
        let p = DvfsPolicy::default_ladder();
        let out = p.apply(&[10.0, 10.0], &[0.1, 1.0]);
        assert!((out[0] - 10.0 * 0.85 * 0.85).abs() < 1e-9);
        assert!((out[1] - 10.0).abs() < 1e-9);
        assert!(out[0] < out[1]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_ladder_rejected() {
        DvfsPolicy::new(
            vec![
                OperatingPoint {
                    freq: 0.8,
                    volt: 0.9,
                },
                OperatingPoint {
                    freq: 0.5,
                    volt: 0.85,
                },
                OperatingPoint {
                    freq: 1.0,
                    volt: 1.0,
                },
            ],
            0.1,
        );
    }

    #[test]
    #[should_panic(expected = "nominal")]
    fn ladder_must_end_nominal() {
        DvfsPolicy::new(
            vec![OperatingPoint {
                freq: 0.5,
                volt: 0.8,
            }],
            0.1,
        );
    }
}
