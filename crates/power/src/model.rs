//! The chip power and thermal model.
//!
//! The paper measures power by sampling the voltage drop across the buck
//! converter's balancing resistors with a DAQ unit (§V-B). We replace the
//! physical chip with an analytic model driven by the simulator's
//! occupancy statistics:
//!
//! ```text
//! P(t) = P_base                                   (14 W, §V-B)
//!      + Σ_core  busy·p_busy + spin·p_spin        (dynamic switching)
//!      + wake-pulse overheads                     (nap status/work polls)
//!      + k_T · (T(t) − T_nominal)                 (temperature-dependent)
//! ```
//!
//! with a first-order thermal state `T` tracking dissipation. The
//! constants are calibrated so the four policies land near the paper's
//! Table I/II averages (NONAP 25 W, IDLE 20.7 W, NAP 20.5 W,
//! NAP+IDLE 19.9 W at 50 % average activity); what the reproduction
//! preserves is the *ordering and spacing* of the policies and the shape
//! of the traces, not absolute watts.

use lte_sched::sim::{BucketStats, SimConfig};

/// Power/thermal model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Chip power with all cores napping (the paper's measured 14 W).
    pub base_watts: f64,
    /// Dynamic power of a core doing useful work.
    pub busy_watts: f64,
    /// Dynamic power of a core spinning (work search / barrier wait).
    pub spin_watts: f64,
    /// Fraction of the wake period a reactive (work-polling) wake pulse
    /// keeps the core at spin power.
    pub work_poll_duty: f64,
    /// Fraction of the wake period a proactive (status-check) wake pulse
    /// keeps the core at spin power.
    pub status_poll_duty: f64,
    /// Ambient (heatsink inlet) temperature in °C.
    pub ambient_celsius: f64,
    /// Thermal resistance junction→ambient in °C/W.
    pub thermal_resistance: f64,
    /// Thermal time constant in seconds.
    pub thermal_tau: f64,
    /// Extra leakage per °C above the nominal temperature, in W/°C.
    pub leakage_per_celsius: f64,
    /// Temperature at which the 14 W base power was measured, °C.
    pub nominal_celsius: f64,
}

impl PowerModel {
    /// The calibrated TILEPro64-like model.
    pub fn tilepro64() -> Self {
        PowerModel {
            base_watts: 14.0,
            busy_watts: 0.176,
            spin_watts: 0.148,
            work_poll_duty: 0.16,
            status_poll_duty: 0.03,
            ambient_celsius: 45.0,
            thermal_resistance: 0.9,
            thermal_tau: 40.0,
            leakage_per_celsius: 0.11,
            nominal_celsius: 58.0,
        }
    }

    /// Converts a simulation's occupancy buckets into a per-bucket power
    /// trace in watts, advancing the thermal state bucket by bucket.
    ///
    /// Returned samples are one per simulator bucket (one dispatch
    /// period, 5 ms by default).
    pub fn power_trace(&self, buckets: &[BucketStats], cfg: &SimConfig) -> Vec<f64> {
        let mut temperature = self.steady_temperature(self.base_watts);
        let dt = cfg.dispatch_seconds();
        let mut out = Vec::with_capacity(buckets.len());
        for b in buckets {
            let p_dyn = self.dynamic_power(b, cfg);
            let p_leak = self.leakage_power(temperature);
            let p_total = self.base_watts + p_dyn + p_leak;
            out.push(p_total);
            // First-order thermal update toward the steady state of the
            // current dissipation.
            let t_ss = self.steady_temperature(p_total);
            temperature += (t_ss - temperature) * (dt / self.thermal_tau).min(1.0);
        }
        out
    }

    /// Dynamic (switching) power of one bucket, excluding leakage.
    ///
    /// Busy/spin core-equivalents are clamped to the worker count: the
    /// simulator folds end-of-run drain into its final bucket to keep
    /// cycle conservation exact, which can nominally exceed one bucket's
    /// capacity — but a physical chip can never dissipate more than all
    /// cores running, so the power view saturates there.
    pub fn dynamic_power(&self, b: &BucketStats, cfg: &SimConfig) -> f64 {
        let bucket_cycles = cfg.dispatch_period as f64;
        let cap = cfg.n_workers as f64;
        let busy = (b.busy_cycles as f64 / bucket_cycles).min(cap);
        let spin = (b.spin_cycles as f64 / bucket_cycles).min(cap - busy);
        let status = b.wake_pulses_status as f64;
        let work = (b.wake_pulses - b.wake_pulses_status) as f64;
        let pulse_core_seconds = cfg.wake_period as f64 / bucket_cycles;
        busy * self.busy_watts
            + spin * self.spin_watts
            + (work * self.work_poll_duty + status * self.status_poll_duty)
                * pulse_core_seconds
                * self.spin_watts
    }

    /// Steady-state junction temperature at dissipation `p` watts.
    pub fn steady_temperature(&self, p: f64) -> f64 {
        self.ambient_celsius + self.thermal_resistance * p
    }

    /// Temperature-dependent leakage above the nominal point.
    pub fn leakage_power(&self, temperature: f64) -> f64 {
        (self.leakage_per_celsius * (temperature - self.nominal_celsius)).max(-1.0)
    }

    /// Mean of a power trace.
    pub fn mean(trace: &[f64]) -> f64 {
        if trace.is_empty() {
            return 0.0;
        }
        trace.iter().sum::<f64>() / trace.len() as f64
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::tilepro64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_sched::sim::NapMode;

    fn cfg() -> SimConfig {
        SimConfig::tilepro64(NapMode::NONE)
    }

    fn bucket(busy_frac: f64, spin_frac: f64, cores: f64) -> BucketStats {
        let c = cfg();
        BucketStats {
            busy_cycles: (busy_frac * cores * c.dispatch_period as f64) as u64,
            spin_cycles: (spin_frac * cores * c.dispatch_period as f64) as u64,
            nap_cycles: 0,
            wake_pulses: 0,
            wake_pulses_status: 0,
            active_target: 62,
            jobs_completed: 0,
        }
    }

    #[test]
    fn idle_chip_draws_base_power() {
        let m = PowerModel::tilepro64();
        let trace = m.power_trace(&[bucket(0.0, 0.0, 62.0)], &cfg());
        assert!((trace[0] - m.base_watts).abs() < 0.3, "{}", trace[0]);
    }

    #[test]
    fn fully_loaded_chip_near_paper_maximum() {
        // Fig. 14: NONAP peaks around 25–26 W at full load.
        let m = PowerModel::tilepro64();
        let b = vec![bucket(1.0, 0.0, 62.0); 20_000]; // 100 s to heat up
        let trace = m.power_trace(&b, &cfg());
        let peak = trace.last().copied().unwrap();
        assert!((24.0..=28.0).contains(&peak), "peak {peak}");
    }

    #[test]
    fn nonap_half_load_near_25w_average() {
        // Table II: NONAP averages 25 W at 50 % average activity (62
        // cores always busy or spinning).
        let m = PowerModel::tilepro64();
        let b = vec![bucket(0.5, 0.5, 62.0); 40_000]; // 200 s
        let trace = m.power_trace(&b, &cfg());
        let mean = PowerModel::mean(&trace[trace.len() / 2..]);
        assert!((23.5..=26.5).contains(&mean), "mean {mean}");
    }

    #[test]
    fn spinning_costs_less_than_working() {
        let m = PowerModel::tilepro64();
        let c = cfg();
        let busy = m.dynamic_power(&bucket(1.0, 0.0, 62.0), &c);
        let spin = m.dynamic_power(&bucket(0.0, 1.0, 62.0), &c);
        assert!(spin < busy);
        assert!(spin > 0.8 * busy, "spin should still be substantial");
    }

    #[test]
    fn napping_saves_dynamic_power() {
        let m = PowerModel::tilepro64();
        let c = cfg();
        let nap = BucketStats {
            nap_cycles: 62 * c.dispatch_period,
            ..bucket(0.0, 0.0, 0.0)
        };
        assert_eq!(m.dynamic_power(&nap, &c), 0.0);
    }

    #[test]
    fn work_polls_cost_more_than_status_polls() {
        let m = PowerModel::tilepro64();
        let c = cfg();
        let work = BucketStats {
            wake_pulses: 100,
            wake_pulses_status: 0,
            ..bucket(0.0, 0.0, 0.0)
        };
        let status = BucketStats {
            wake_pulses: 100,
            wake_pulses_status: 100,
            ..bucket(0.0, 0.0, 0.0)
        };
        assert!(m.dynamic_power(&work, &c) > m.dynamic_power(&status, &c));
    }

    #[test]
    fn thermal_feedback_raises_power_over_time() {
        // The right side of Fig. 14: sustained high power raises
        // temperature, which raises power further.
        let m = PowerModel::tilepro64();
        let b = vec![bucket(0.9, 0.1, 62.0); 30_000];
        let trace = m.power_trace(&b, &cfg());
        assert!(
            trace.last().unwrap() > &(trace[0] + 0.3),
            "start {} end {}",
            trace[0],
            trace.last().unwrap()
        );
    }

    #[test]
    fn mean_of_empty_trace_is_zero() {
        assert_eq!(PowerModel::mean(&[]), 0.0);
    }
}
