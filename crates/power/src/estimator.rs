//! The subframe workload estimator and active-core controller (§VI-A/B).
//!
//! The paper's key observation (Fig. 11): for a fixed (layers,
//! modulation) pair, system activity is linear in the number of PRBs —
//! `estimated_user_activity = PRBs × k_{L,M}` (Eq. 3) — and a subframe's
//! workload is the sum over its users (Eq. 4). The twelve `k_{L,M}`
//! slopes are fitted from steady-state single-user calibration runs.
//! The controller then sizes the active core set per subframe:
//! `active_cores = estimated_activity × max_cores + 2` (Eq. 5).

use lte_dsp::math::slope_through_origin;
use lte_dsp::Modulation;
use lte_phy::params::SubframeConfig;

/// Index of a modulation in the estimator's tables.
fn mod_index(m: Modulation) -> usize {
    match m {
        Modulation::Qpsk => 0,
        Modulation::Qam16 => 1,
        Modulation::Qam64 => 2,
    }
}

/// One calibration sample: measured activity at a given PRB count for a
/// fixed (layers, modulation) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationPoint {
    /// PRBs of the single calibration user.
    pub prbs: usize,
    /// Measured activity in `[0, 1]`.
    pub activity: f64,
}

/// The fitted per-(layers, modulation) activity slopes.
///
/// # Example
///
/// ```
/// use lte_power::WorkloadEstimator;
/// use lte_power::estimator::CalibrationPoint;
/// use lte_dsp::Modulation;
///
/// let mut est = WorkloadEstimator::new();
/// // Perfectly linear calibration data: activity = 0.001 × PRBs.
/// let pts: Vec<CalibrationPoint> = (1..=20)
///     .map(|p| CalibrationPoint { prbs: 10 * p, activity: 0.01 * p as f64 })
///     .collect();
/// est.fit(1, Modulation::Qpsk, &pts);
/// assert!((est.k(1, Modulation::Qpsk) - 0.001).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadEstimator {
    /// `k[layers-1][modulation]` slopes (activity per PRB).
    k: [[f64; 3]; 4],
}

impl WorkloadEstimator {
    /// An estimator with all slopes zero (must be fitted or loaded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an estimator from explicit slopes `k[layers-1][modulation]`.
    pub fn from_slopes(k: [[f64; 3]; 4]) -> Self {
        WorkloadEstimator { k }
    }

    /// Fits the slope for one (layers, modulation) pair from calibration
    /// samples (least squares through the origin, per Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is not in `1..=4`.
    pub fn fit(&mut self, layers: usize, modulation: Modulation, points: &[CalibrationPoint]) {
        assert!((1..=4).contains(&layers), "layers must be 1..=4");
        let x: Vec<f64> = points.iter().map(|p| p.prbs as f64).collect();
        let y: Vec<f64> = points.iter().map(|p| p.activity).collect();
        self.k[layers - 1][mod_index(modulation)] = slope_through_origin(&x, &y);
    }

    /// The slope `k_{L,M}`.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is not in `1..=4`.
    pub fn k(&self, layers: usize, modulation: Modulation) -> f64 {
        assert!((1..=4).contains(&layers), "layers must be 1..=4");
        self.k[layers - 1][mod_index(modulation)]
    }

    /// Estimated activity of one user (Eq. 3), not clamped.
    pub fn user_activity(&self, prbs: usize, layers: usize, modulation: Modulation) -> f64 {
        prbs as f64 * self.k(layers, modulation)
    }

    /// Estimated activity of a subframe (Eq. 4), clamped to `[0, 1]`.
    pub fn subframe_activity(&self, subframe: &SubframeConfig) -> f64 {
        subframe
            .users
            .iter()
            .map(|u| self.user_activity(u.prbs, u.layers, u.modulation))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// `true` once every slope has been fitted to a positive value.
    pub fn is_calibrated(&self) -> bool {
        self.k.iter().flatten().all(|&k| k > 0.0)
    }

    /// Serialises the fitted slopes under a versioned schema, so saved
    /// calibrations from one build are refused (not misread) by an
    /// incompatible later one.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"schema\": \"");
        out.push_str(Self::SCHEMA);
        out.push_str("\",\n  \"k\": [\n");
        for (l, row) in self.k.iter().enumerate() {
            out.push_str("    [");
            for (m, v) in row.iter().enumerate() {
                if m > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{v:?}"));
            }
            out.push(']');
            if l + 1 < self.k.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a calibration saved by [`WorkloadEstimator::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description when the schema tag is missing or foreign,
    /// or when the slope table does not hold exactly 4×3 finite numbers.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let tag = format!("\"{}\"", Self::SCHEMA);
        if !text.contains(&tag) {
            return Err(format!(
                "calibration file lacks the `{}` schema tag",
                Self::SCHEMA
            ));
        }
        let k_start = text
            .find("\"k\"")
            .ok_or_else(|| "calibration file lacks a \"k\" slope table".to_string())?;
        // The slope table is the only nested array: read the 12 numbers
        // between the "k" key and the close of its outer bracket.
        let open = text[k_start..]
            .find('[')
            .map(|i| k_start + i)
            .ok_or_else(|| "slope table is not an array".to_string())?;
        let mut depth = 0usize;
        let mut end = None;
        for (i, c) in text[open..].char_indices() {
            match c {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| "unterminated slope table".to_string())?;
        let numbers: Result<Vec<f64>, String> = text[open + 1..end]
            .split(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<f64>()
                    .map_err(|e| format!("bad slope `{s}`: {e}"))
            })
            .collect();
        let numbers = numbers?;
        if numbers.len() != 12 {
            return Err(format!(
                "slope table holds {} numbers, expected 12",
                numbers.len()
            ));
        }
        if numbers.iter().any(|v| !v.is_finite()) {
            return Err("slope table holds non-finite values".to_string());
        }
        let mut k = [[0.0; 3]; 4];
        for (i, v) in numbers.into_iter().enumerate() {
            k[i / 3][i % 3] = v;
        }
        Ok(WorkloadEstimator { k })
    }

    /// Version tag of the calibration file format.
    pub const SCHEMA: &'static str = "lte-sim-calibration-v1";
}

/// The active-core controller (Eq. 5 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreController {
    /// Worker cores available (the paper: 62).
    pub max_cores: usize,
    /// Floor on the active set: even a zero-user subframe keeps this
    /// many cores awake so dispatch latency stays bounded.
    pub min_cores: usize,
    /// Over-provisioning margin ("the system is over-provisioned with two
    /// cores").
    pub margin: usize,
}

impl CoreController {
    /// The paper's controller: 62 cores, margin 2, at least one core.
    pub fn paper() -> Self {
        CoreController {
            max_cores: 62,
            min_cores: 1,
            margin: 2,
        }
    }

    /// Eq. 5: `active_cores = estimated_activity × max_cores + margin`,
    /// clamped to `[min_cores, max_cores]`. Non-finite estimates (a
    /// degenerate calibration divides by zero) fail safe to `max_cores`.
    pub fn active_cores(&self, estimated_activity: f64) -> usize {
        if !estimated_activity.is_finite() {
            return self.max_cores;
        }
        let raw = (estimated_activity.clamp(0.0, 1.0) * self.max_cores as f64) as usize;
        (raw + self.margin).clamp(self.min_cores.min(self.max_cores), self.max_cores)
    }

    /// Active-core targets for a subframe sequence.
    pub fn targets(
        &self,
        estimator: &WorkloadEstimator,
        subframes: &[SubframeConfig],
    ) -> Vec<usize> {
        subframes
            .iter()
            .map(|sf| self.active_cores(estimator.subframe_activity(sf)))
            .collect()
    }
}

impl Default for CoreController {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_phy::params::UserConfig;

    fn calibrated() -> WorkloadEstimator {
        // Synthetic slopes increasing in layers and modulation order.
        let mut k = [[0.0; 3]; 4];
        for (l, row) in k.iter_mut().enumerate() {
            for (m, v) in row.iter_mut().enumerate() {
                *v = 0.0005 * (l + 1) as f64 * (1.0 + 0.3 * m as f64);
            }
        }
        WorkloadEstimator::from_slopes(k)
    }

    #[test]
    fn fit_recovers_linear_relation() {
        let mut est = WorkloadEstimator::new();
        let pts: Vec<CalibrationPoint> = (1..=50)
            .map(|i| CalibrationPoint {
                prbs: 4 * i,
                activity: 0.002 * (4 * i) as f64,
            })
            .collect();
        est.fit(2, Modulation::Qam16, &pts);
        assert!((est.k(2, Modulation::Qam16) - 0.002).abs() < 1e-12);
        assert!(!est.is_calibrated(), "only one cell fitted");
    }

    #[test]
    fn fit_tolerates_noise() {
        let mut est = WorkloadEstimator::new();
        let pts: Vec<CalibrationPoint> = (1..=100)
            .map(|i| CalibrationPoint {
                prbs: 2 * i,
                activity: 0.001 * (2 * i) as f64 * if i % 2 == 0 { 1.05 } else { 0.95 },
            })
            .collect();
        est.fit(1, Modulation::Qpsk, &pts);
        assert!((est.k(1, Modulation::Qpsk) - 0.001).abs() < 5e-5);
    }

    #[test]
    fn subframe_activity_sums_users() {
        let est = calibrated();
        let sf = SubframeConfig::new(vec![
            UserConfig::new(100, 1, Modulation::Qpsk),
            UserConfig::new(50, 2, Modulation::Qam64),
        ]);
        let expect = 100.0 * est.k(1, Modulation::Qpsk) + 50.0 * est.k(2, Modulation::Qam64);
        assert!((est.subframe_activity(&sf) - expect).abs() < 1e-12);
    }

    #[test]
    fn subframe_activity_clamped_to_one() {
        let est = WorkloadEstimator::from_slopes([[1.0; 3]; 4]);
        let sf = SubframeConfig::new(vec![UserConfig::new(200, 4, Modulation::Qam64)]);
        assert_eq!(est.subframe_activity(&sf), 1.0);
    }

    #[test]
    fn empty_subframe_has_zero_activity() {
        assert_eq!(
            calibrated().subframe_activity(&SubframeConfig::default()),
            0.0
        );
    }

    #[test]
    fn controller_eq5() {
        let c = CoreController::paper();
        assert_eq!(c.active_cores(0.0), 2);
        assert_eq!(c.active_cores(0.5), 33); // 31 + 2
        assert_eq!(c.active_cores(1.0), 62); // clamped to max
        assert_eq!(c.active_cores(2.0), 62);
        assert_eq!(c.active_cores(-1.0), 2);
    }

    #[test]
    fn targets_track_subframes() {
        let est = calibrated();
        let c = CoreController::paper();
        let subframes = vec![
            SubframeConfig::default(),
            SubframeConfig::new(vec![UserConfig::new(200, 4, Modulation::Qam64)]),
        ];
        let t = c.targets(&est, &subframes);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], 2);
        assert!(t[1] > t[0]);
    }

    #[test]
    #[should_panic(expected = "layers")]
    fn out_of_range_layers_rejected() {
        calibrated().k(5, Modulation::Qpsk);
    }

    #[test]
    fn calibration_json_round_trips() {
        let est = calibrated();
        let json = est.to_json();
        assert!(json.contains(WorkloadEstimator::SCHEMA), "{json}");
        let back = WorkloadEstimator::from_json(&json).expect("round trip");
        assert_eq!(back, est, "slopes must survive save/load exactly");
    }

    #[test]
    fn calibration_json_rejects_foreign_schema() {
        let foreign = "{\"schema\": \"something-else-v9\", \"k\": [[0,0,0]]}";
        let err = WorkloadEstimator::from_json(foreign).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn calibration_json_rejects_short_tables() {
        let json = calibrated().to_json().replace(", ", " ");
        // Still 12 numbers (separator change is cosmetic) — now truncate.
        let truncated = format!(
            "{{\"schema\": \"{}\", \"k\": [[0.1, 0.2]]}}",
            WorkloadEstimator::SCHEMA
        );
        assert!(WorkloadEstimator::from_json(&json).is_ok());
        let err = WorkloadEstimator::from_json(&truncated).unwrap_err();
        assert!(err.contains("expected 12"), "{err}");
    }

    #[test]
    fn controller_zero_user_subframe_keeps_min_cores() {
        // Margin 0: a zero-activity subframe would shut every core off
        // without the floor.
        let c = CoreController {
            max_cores: 62,
            min_cores: 1,
            margin: 0,
        };
        assert_eq!(c.active_cores(0.0), 1);
        let est = calibrated();
        let t = c.targets(&est, &[SubframeConfig::default()]);
        assert_eq!(t, vec![1], "zero-user subframe clamps to min_cores");
    }

    #[test]
    fn controller_saturates_above_full_activity() {
        let c = CoreController::paper();
        // Activities past 1.0 (measurement noise, mis-calibration) pin
        // the target at max_cores instead of overflowing it.
        for a in [1.0, 1.5, 10.0, f64::MAX] {
            assert_eq!(c.active_cores(a), 62, "activity {a}");
        }
        assert_eq!(c.active_cores(f64::NAN), 62, "NaN fails safe to max");
        assert_eq!(c.active_cores(f64::INFINITY), 62);
    }

    #[test]
    fn controller_min_respects_small_machines() {
        let c = CoreController {
            max_cores: 2,
            min_cores: 8,
            margin: 0,
        };
        // A floor above the machine size cannot demand phantom cores.
        assert_eq!(c.active_cores(0.0), 2);
    }
}
