//! End-to-end tests of the serve subsystem: overload escalation
//! ordering under a seeded burst flood, byte-identity across worker
//! counts, graceful drain, hot reload, worker-crash recovery and the
//! forced watchdog restart — every drill the ingest service must
//! survive without losing or corrupting admitted work.

use std::sync::Arc;
use std::time::Duration;

use lte_fault::IngestFaults;
use lte_uplink::serve::{
    run_serve, DrainReason, ServeConfig, ServeControl, ServeOutcome, ServeParams, TrafficModel,
};

fn run(cfg: &ServeConfig) -> ServeOutcome {
    run_serve(cfg, &ServeControl::new()).expect("serve campaign runs")
}

/// A cheap quiet campaign: small VoIP-like subframes, two workers.
fn voip_cfg(ticks: u64, seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(ticks, seed);
    cfg.workers = 2;
    cfg.params.traffic = TrafficModel::Voip;
    cfg
}

#[test]
fn escalation_tiers_engage_in_order_under_burst_flood() {
    // The smoke fault plan: an arrival stall, then a 2x flood for 40
    // ticks against a 1.5/tick token bucket — the queue grows ~0.5
    // subframes per tick until the reject watermark opens an overload
    // episode, which escalates to shedding and then demap degradation
    // as it persists.
    let mut cfg = ServeConfig::new(140, 11);
    cfg.workers = 2;
    cfg.faults = Some(IngestFaults::smoke(11));
    // The ordering statement is about admission control; skip the
    // serial golden rebuild to keep the test cheap.
    cfg.verify = false;
    let out = run(&cfg);

    let [reject, shed, degrade] = out.first_tier_tick;
    let reject = reject.expect("reject tier engaged");
    let shed = shed.expect("shed tier engaged");
    let degrade = degrade.expect("degrade tier engaged");
    assert!(
        reject < shed && shed < degrade,
        "tiers must engage in order: reject @{reject} < shed @{shed} < degrade @{degrade}"
    );
    assert!(out.episodes >= 1, "the flood opens an overload episode");

    let s = &out.snapshot;
    assert!(s.rejected_backpressure > 0, "rejects counted");
    assert!(s.shed_users > 0, "shed users counted");
    assert!(s.degraded_subframes > 0, "degraded subframes counted");
    assert!(s.rejected_malformed > 0, "malformed arrivals refused");
    assert!(
        s.deadline_misses > 0,
        "the backlog produces queue-wait misses"
    );
    assert!(s.balanced(), "work conserved: {s:?}");
    assert!(
        out.windows.iter().any(|w| w.chaos_active),
        "chaos windows are annotated"
    );
    assert!(
        out.windows.iter().any(|w| !w.chaos_active),
        "the tail window is calm"
    );
}

#[test]
fn admitted_subframes_are_byte_identical_at_every_worker_count() {
    // Arrivals, admission, escalation and shedding are pure functions
    // of (seed, tick, queue depth): campaigns at 1, 2 and 4 workers
    // must admit the same subframes and decode them to the same bytes.
    let outcomes: Vec<ServeOutcome> = [1usize, 2, 4]
        .iter()
        .map(|&workers| {
            let mut cfg = ServeConfig::new(64, 7);
            cfg.workers = workers;
            cfg.params.traffic = TrafficModel::BurstyIot;
            run(&cfg)
        })
        .collect();
    for out in &outcomes {
        assert!(out.verified, "golden verification ran");
        assert!(
            out.verify_error.is_none(),
            "bytes match the serial reference: {:?}",
            out.verify_error
        );
        assert!(
            out.snapshot.balanced(),
            "work conserved: {:?}",
            out.snapshot
        );
    }
    let first = &outcomes[0];
    for out in &outcomes[1..] {
        assert_eq!(out.fingerprint, first.fingerprint, "fingerprints match");
        assert_eq!(out.snapshot.arrivals, first.snapshot.arrivals);
        assert_eq!(out.snapshot.admitted, first.snapshot.admitted);
        assert_eq!(
            out.snapshot.rejected_rate_limited,
            first.snapshot.rejected_rate_limited
        );
        assert_eq!(out.snapshot.deadline_misses, first.snapshot.deadline_misses);
        assert_eq!(out.snapshot.shed_users, first.snapshot.shed_users);
    }
}

#[test]
fn requested_drain_finishes_in_flight_and_flushes_complete_artifacts() {
    // An unbounded paced campaign, drained from the outside exactly as
    // the CLI drains on SIGINT/SIGTERM.
    let mut cfg = voip_cfg(0, 3);
    cfg.delta = Duration::from_millis(1);
    let control = Arc::new(ServeControl::new());
    let trigger = Arc::clone(&control);
    let t = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        trigger.request_drain();
    });
    let out = run_serve(&cfg, &control).expect("serve campaign runs");
    t.join().unwrap();

    assert_eq!(out.drain_reason, DrainReason::Requested);
    assert!(
        out.snapshot.balanced(),
        "work conserved: {:?}",
        out.snapshot
    );
    assert_eq!(
        out.snapshot.admitted,
        out.snapshot.completed_subframes + out.snapshot.drain_shed_subframes,
        "every admitted subframe either completed or was drain-shed"
    );
    let last = out.lifecycle.last().expect("lifecycle recorded");
    assert_eq!(last.state, "drained");
    assert!(
        out.lifecycle.iter().any(|e| e.state == "draining"),
        "drain transition recorded"
    );
    // The artifacts are complete: the JSON report carries the
    // fingerprint of everything that was decoded.
    assert!(out.json.starts_with("{\"schema\":\"lte-sim-serve-v1\""));
    assert!(out.json.contains(&format!("{:016x}", out.fingerprint)));
    assert!(out.openmetrics.contains("serve_completed_subframes"));
}

#[test]
fn hot_reload_applies_at_a_tick_boundary_without_dropping_work() {
    let mut cfg = ServeConfig::new(48, 9);
    cfg.workers = 2;
    cfg.params.traffic = TrafficModel::BurstyIot;
    let after = ServeParams {
        traffic: TrafficModel::Voip,
        ..ServeParams::default()
    };
    cfg.reload_at = Some((16, after));
    let out = run(&cfg);

    assert_eq!(out.snapshot.reloads, 1, "exactly one reload applied");
    assert!(
        out.lifecycle
            .iter()
            .any(|e| e.state == "reload" && e.tick == 16),
        "reload recorded at its boundary: {:?}",
        out.lifecycle
    );
    assert!(
        out.snapshot.balanced(),
        "no work dropped: {:?}",
        out.snapshot
    );
    assert!(out.verified && out.verify_error.is_none());

    // Reloads stay deterministic: the same campaign replays to the
    // same bytes.
    let again = run(&cfg);
    assert_eq!(again.fingerprint, out.fingerprint);
}

#[test]
fn worker_kill_and_forced_restart_preserve_byte_identity() {
    let baseline = run(&voip_cfg(40, 5));
    assert!(baseline.verified && baseline.verify_error.is_none());

    // Self-healing drill: one worker dies mid-campaign; supervision
    // respawns it and the decoded bytes do not change.
    let mut kill = voip_cfg(40, 5);
    kill.kill_worker_at = Some(8);
    let killed = run(&kill);
    assert!(killed.worker_respawns >= 1, "the pool respawned the worker");
    assert!(killed.verified && killed.verify_error.is_none());
    assert_eq!(killed.fingerprint, baseline.fingerprint);
    assert!(killed.snapshot.balanced());

    // Watchdog drill: a forced bounded restart of the receive path is
    // recorded in the lifecycle and also leaves the bytes untouched.
    let mut restart = voip_cfg(40, 5);
    restart.force_restart_at = Some(12);
    let restarted = run(&restart);
    assert_eq!(restarted.snapshot.watchdog_restarts, 1);
    assert!(
        restarted
            .lifecycle
            .iter()
            .any(|e| e.state == "watchdog-restart"),
        "restart recorded: {:?}",
        restarted.lifecycle
    );
    assert!(restarted.verified && restarted.verify_error.is_none());
    assert_eq!(restarted.fingerprint, baseline.fingerprint);
    assert!(restarted.snapshot.balanced());
}
