//! End-to-end determinism of the soak artifacts.
//!
//! Everything in SOAK.json, the SOAK.jsonl stream and the OpenMetrics
//! exposition derives from the seeded DES and bit-exact receiver
//! decodes, so two runs with the same simulation config must be
//! byte-identical even when the wall-clock host-metrics burst runs with
//! different worker counts — host telemetry lives in a separate
//! artifact precisely so it cannot leak nondeterminism into the
//! deterministic surface.

use lte_uplink::soak::{run_soak, SoakConfig};
use lte_uplink::SoakWindow;

#[test]
fn soak_artifacts_are_byte_identical_across_host_parallelism() {
    let run = |host_workers: usize| {
        let cfg = SoakConfig {
            chaos: true,
            host_workers,
            ..SoakConfig::new(150, 50, 2012)
        };
        let mut lines = String::new();
        let mut on_window = |_w: &SoakWindow, line: &str| {
            lines.push_str(line);
            lines.push('\n');
        };
        let art = run_soak(&cfg, Some(&mut on_window)).expect("soak runs");
        (art, lines)
    };
    let (a, a_lines) = run(1);
    let (b, b_lines) = run(2);

    assert_eq!(
        a.report.to_json(),
        b.report.to_json(),
        "SOAK.json must not depend on host parallelism"
    );
    assert_eq!(a.jsonl, b.jsonl, "the snapshot stream must be identical");
    assert_eq!(a_lines, b_lines, "streamed lines must match the artifact");
    assert_eq!(a.openmetrics, b.openmetrics);
    // The wall-clock surface exists, but only outside the deterministic
    // artifacts.
    assert!(a.host_json.is_some() && b.host_json.is_some());
    assert!(!a.report.to_json().contains("host"));
}
