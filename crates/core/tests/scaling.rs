//! Strong-scaling assertion: with enough real cores, the fine-grained
//! task graph must beat the serial reference on the steady-state
//! 100-PRB four-user load.
//!
//! Speedup > 1 is a physical claim about concurrent execution, so the
//! test only asserts it where it is physically possible: hosts with at
//! least four cores of available parallelism. On smaller hosts (such as
//! single-core CI containers) it verifies the matrix still runs and
//! stays byte-identical, and skips the speedup assertion with a message
//! rather than faking one.

use lte_uplink::perf::{effective_workers, host_parallelism, run_scaling, ScalingConfig};

#[test]
fn four_workers_beat_serial_on_the_steady_state_load() {
    let host = host_parallelism();
    let cfg = ScalingConfig {
        subframes: 48,
        worker_counts: vec![4],
        seed: 7,
        window: Some(4),
        pin_workers: false,
    };
    let report = run_scaling(&cfg).expect("scaling run");
    let point = &report.points[0];
    assert_eq!(point.workers_requested, 4);
    assert_eq!(point.workers_effective, effective_workers(4));
    assert!(point.byte_identical, "scaling point must verify bit-exact");
    assert!(point.subframes_per_sec > 0.0);

    if host < 4 {
        eprintln!(
            "skipping the speedup assertion: strong scaling needs >= 4 effective workers, \
             host parallelism is {host}"
        );
        return;
    }
    assert!(
        point.speedup > 1.0,
        "4 effective workers must beat serial on the 100-PRB load, got {:.3}x \
         (parallel {:.1} sf/s vs serial {:.1} sf/s)",
        point.speedup,
        point.subframes_per_sec,
        report.serial_subframes_per_sec
    );
}
