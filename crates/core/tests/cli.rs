//! End-to-end tests of the `lte-sim` binary.

use std::process::Command;

fn lte_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lte-sim"))
}

#[test]
fn fig7_writes_csv() {
    let dir = std::env::temp_dir().join("lte_sim_cli_fig7");
    let _ = std::fs::remove_dir_all(&dir);
    let out = lte_sim()
        .args(["fig7", "--subframes", "200", "--out"])
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let csv = std::fs::read_to_string(dir.join("fig7_users.csv")).expect("csv exists");
    assert!(csv.starts_with("subframe,users\n"));
    assert!(csv.lines().count() > 2);
}

#[test]
fn table2_quick_prints_all_techniques() {
    let dir = std::env::temp_dir().join("lte_sim_cli_t2");
    let out = lte_sim()
        .args(["table2", "--quick", "--subframes", "400", "--out"])
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for technique in ["NONAP", "IDLE", "NAP", "NAP+IDLE", "PowerGating"] {
        assert!(stdout.contains(technique), "missing {technique} in:\n{stdout}");
    }
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = lte_sim().arg("nonsense").output().expect("run lte-sim");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn golden_round_trip_via_cli() {
    let dir = std::env::temp_dir().join("lte_sim_cli_golden");
    let out = lte_sim()
        .args(["golden", "--out"])
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified against the stored golden record"));
}
