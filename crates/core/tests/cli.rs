//! End-to-end tests of the `lte-sim` binary.

use std::process::Command;

fn lte_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lte-sim"))
}

#[test]
fn fig7_writes_csv() {
    let dir = std::env::temp_dir().join("lte_sim_cli_fig7");
    let _ = std::fs::remove_dir_all(&dir);
    let out = lte_sim()
        .args(["fig7", "--subframes", "200", "--out"])
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("fig7_users.csv")).expect("csv exists");
    assert!(csv.starts_with("subframe,users\n"));
    assert!(csv.lines().count() > 2);
}

#[test]
fn table2_quick_prints_all_techniques() {
    let dir = std::env::temp_dir().join("lte_sim_cli_t2");
    let out = lte_sim()
        .args(["table2", "--quick", "--subframes", "400", "--out"])
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for technique in ["NONAP", "IDLE", "NAP", "NAP+IDLE", "PowerGating"] {
        assert!(
            stdout.contains(technique),
            "missing {technique} in:\n{stdout}"
        );
    }
}

#[test]
fn unknown_command_exits_nonzero() {
    let out = lte_sim().arg("nonsense").output().expect("run lte-sim");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn help_lists_every_command_and_flag() {
    for flag in ["--help", "-h", "help"] {
        let out = lte_sim().arg(flag).output().expect("run lte-sim");
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        for cmd in [
            "fig7",
            "fig8",
            "fig9",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "table1",
            "table2",
            "concurrency",
            "trace",
            "chaos",
            "govern",
            "soak",
            "serve",
            "fingerprint",
            "bench",
            "ablation",
            "diurnal",
            "golden",
            "all",
        ] {
            assert!(
                stdout.contains(cmd),
                "help missing command {cmd}:\n{stdout}"
            );
        }
        for f in [
            "--quick",
            "--subframes",
            "--seed",
            "--out",
            "--perfetto",
            "--metrics",
            "--workers",
            "--window",
            "--pin",
            "--scaling-baseline",
            "--traffic",
            "--config",
            "--policy",
            "--chaos",
            "--calibration",
            "--baseline",
        ] {
            assert!(stdout.contains(f), "help missing flag {f}:\n{stdout}");
        }
    }
}

#[test]
fn parse_errors_exit_status_2() {
    // Unknown command, unknown flag, missing value, non-numeric value:
    // each is a parse error and must exit with status 2 exactly.
    for args in [
        vec!["nonsense"],
        vec!["--bogus"],
        vec!["fig7", "--subframes"],
        vec!["fig7", "--subframes", "many"],
        vec!["fig7", "--seed", "1.5"],
        vec!["perf", "--workers"],
        vec!["perf", "--workers", "1,x"],
        vec!["perf", "--workers", "1,0"],
        vec!["perf", "--window", "soon"],
        vec!["serve", "--traffic", "nonsense"],
        vec!["serve", "--config"],
    ] {
        let out = lte_sim().args(&args).output().expect("run lte-sim");
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
    }
}

#[test]
fn trace_writes_perfetto_and_metrics() {
    let dir = std::env::temp_dir().join("lte_sim_cli_trace");
    let _ = std::fs::remove_dir_all(&dir);
    let perfetto = dir.join("trace.json");
    let metrics = dir.join("metrics.json");
    let out = lte_sim()
        .args(["trace", "--quick", "--subframes", "40", "--perfetto"])
        .arg(&perfetto)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("run lte-sim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = std::fs::read_to_string(&perfetto).expect("perfetto file exists");
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"core 0\""), "per-core tracks named");
    assert!(
        trace.contains("\"receiver stages\""),
        "PHY stage track named"
    );
    let snapshot = std::fs::read_to_string(&metrics).expect("metrics file exists");
    for key in [
        "sim.activity",
        "sim.stage.estimation.cycles",
        "sim.stage.total_cycles",
        "sim.core.0.steals",
        "sim.core.0.tasks",
        "pool.worker.0.executed_tasks",
        "power.mean_watts",
    ] {
        assert!(snapshot.contains(key), "metrics missing {key}:\n{snapshot}");
    }
}

#[test]
fn perf_writes_both_reports_and_the_scaling_matrix() {
    let dir = std::env::temp_dir().join("lte_sim_cli_perf");
    let _ = std::fs::remove_dir_all(&dir);
    let out = lte_sim()
        .args([
            "perf",
            "--subframes",
            "24",
            "--workers",
            "1,2",
            "--window",
            "2",
            "--out",
        ])
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let pr3 = std::fs::read_to_string(dir.join("BENCH_PR3.json")).expect("BENCH_PR3.json exists");
    assert!(pr3.contains("\"schema\": \"lte-sim-perf-v1\""));
    assert!(pr3.contains("\"workers_effective\""));
    assert!(pr3.contains("\"host_parallelism\""));
    let pr4 = std::fs::read_to_string(dir.join("BENCH_PR4.json")).expect("BENCH_PR4.json exists");
    assert!(pr4.contains("\"schema\": \"lte-sim-scaling-v1\""));
    assert!(pr4.contains("\"max_workers\": 2"));
    assert!(pr4.contains("\"max_workers_speedup\""));
    assert!(pr4.contains("\"workers_requested\": 1"));
    assert!(pr4.contains("\"workers_requested\": 2"));
    assert!(pr4.contains("\"byte_identical\": true"));
    // The committed matrix doubles as its own baseline: re-checking a
    // fresh run against it through the CLI gate must succeed.
    let out = lte_sim()
        .args([
            "perf",
            "--subframes",
            "24",
            "--workers",
            "1,2",
            "--window",
            "2",
            "--scaling-baseline",
        ])
        .arg(dir.join("BENCH_PR4.json"))
        .arg("--out")
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{}\n{}",
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("scaling holds against the baseline"));
}

#[test]
fn fingerprint_prints_one_stable_line() {
    let run = || {
        let out = lte_sim()
            .args(["fingerprint", "--seed", "7", "--subframes", "4"])
            .output()
            .expect("run lte-sim");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run();
    assert!(
        a.starts_with("lte-sim-fingerprint-v2 seed=7 subframes=4 "),
        "unexpected fingerprint line: {a}"
    );
    assert!(a.contains(" hash="));
    assert_eq!(a.lines().count(), 1);
    assert_eq!(a, run(), "the fingerprint is stable across processes");
}

#[test]
fn serve_writes_artifacts_and_drains_clean() {
    let dir = std::env::temp_dir().join("lte_sim_cli_serve");
    let _ = std::fs::remove_dir_all(&dir);
    let out = lte_sim()
        .args([
            "serve",
            "--subframes",
            "80",
            "--traffic",
            "voip",
            "--workers",
            "2",
            "--window",
            "40",
            "--out",
        ])
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    assert!(
        out.status.success(),
        "{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("serve campaign-complete:"), "{stdout}");
    assert!(stdout.contains("verified byte-identical"), "{stdout}");
    let json = std::fs::read_to_string(dir.join("SERVE.json")).expect("SERVE.json exists");
    assert!(json.starts_with("{\"schema\":\"lte-sim-serve-v1\""));
    let om = std::fs::read_to_string(dir.join("SERVE.om")).expect("SERVE.om exists");
    assert!(om.contains("serve_admitted"));
    assert!(om.ends_with("# EOF\n"));
}

#[test]
#[cfg(unix)]
fn serve_drains_on_sigterm_with_complete_artifacts_and_exit_3() {
    let dir = std::env::temp_dir().join("lte_sim_cli_serve_sigterm");
    let _ = std::fs::remove_dir_all(&dir);
    // An unbounded campaign (--subframes 0 runs until drained): the
    // signal is the only way it ends.
    let mut child = lte_sim()
        .args(["serve", "--subframes", "0", "--traffic", "voip", "--out"])
        .arg(&dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn lte-sim serve");
    // Give it time to install handlers and serve a few ticks.
    std::thread::sleep(std::time::Duration::from_millis(1200));
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let status = child.wait().expect("serve exits");
    assert_eq!(
        status.code(),
        Some(3),
        "a signal-drained serve exits with the interrupted status"
    );
    let json = std::fs::read_to_string(dir.join("SERVE.json")).expect("SERVE.json flushed");
    assert!(json.starts_with("{\"schema\":\"lte-sim-serve-v1\""));
    assert!(
        json.contains("\"drain_reason\":\"drain-requested\""),
        "the report records the signal-requested drain"
    );
    let om = std::fs::read_to_string(dir.join("SERVE.om")).expect("SERVE.om flushed");
    assert!(om.ends_with("# EOF\n"), "the exposition is complete");
}

#[test]
fn golden_round_trip_via_cli() {
    let dir = std::env::temp_dir().join("lte_sim_cli_golden");
    let out = lte_sim()
        .args(["golden", "--out"])
        .arg(&dir)
        .output()
        .expect("run lte-sim");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("verified against the stored golden record")
    );
}
