//! Governance invariance: a governed run's decoded output must equal an
//! ungoverned run's byte for byte, for every policy and worker count.
//!
//! Parking and unparking workers changes where and when work executes —
//! never what is computed — so the `results[subframe][user]` matrix
//! (payload bytes, CRC flags) has to be identical whether zero, some or
//! all workers were governed away. The matrix covers the four paper
//! policies at worker counts {1, 4, host-max}.

use std::time::Duration;

use lte_power::{NapPolicy, WorkloadEstimator};
use lte_uplink::govern::run_pool_governed;
use lte_uplink::perf::host_parallelism;

#[test]
fn governed_output_is_byte_identical_across_policies_and_worker_counts() {
    // A flat slope steep enough that targets move with the ramp's user
    // load — the estimator's accuracy is irrelevant to identity, only
    // that governance actually parks workers along the way.
    let estimator = WorkloadEstimator::from_slopes([[0.004; 3]; 4]);
    let mut counts = vec![1usize, 4, host_parallelism()];
    counts.sort_unstable();
    counts.dedup();
    for workers in counts {
        for policy in NapPolicy::ALL {
            let run = run_pool_governed(
                workers,
                10,
                Duration::from_millis(1),
                2012,
                &estimator,
                policy,
            )
            .expect("spawn pools");
            assert!(
                run.identical,
                "governed {policy} on {workers} workers diverged from the ungoverned run"
            );
            assert_eq!(run.decisions, 10, "one decision per dispatched subframe");
        }
    }
}

#[test]
fn napidle_governed_run_parks_worker_time_at_low_load() {
    // Four workers, light ramp load, proactive targets well below the
    // worker count: the nap analogue must bank real parked time.
    let estimator = WorkloadEstimator::from_slopes([[0.0001; 3]; 4]);
    let run = run_pool_governed(
        4,
        20,
        Duration::from_millis(2),
        7,
        &estimator,
        NapPolicy::NapIdle,
    )
    .expect("spawn pools");
    assert!(run.identical, "output must stay byte-identical");
    assert!(
        run.parked_nanos > 0,
        "NAP+IDLE at low load must park worker time"
    );
}

#[test]
fn nonap_governed_run_parks_nothing() {
    let estimator = WorkloadEstimator::from_slopes([[0.0001; 3]; 4]);
    let run = run_pool_governed(
        4,
        10,
        Duration::from_millis(1),
        7,
        &estimator,
        NapPolicy::NoNap,
    )
    .expect("spawn pools");
    assert!(run.identical);
    assert_eq!(
        run.parked_nanos, 0,
        "a non-proactive policy never caps the pool"
    );
}
