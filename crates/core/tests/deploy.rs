//! Deployment-layer determinism and isolation proofs.
//!
//! Two properties anchor the multi-cell engine:
//!
//! * **worker-count independence** — `DEPLOY.json` is a pure function
//!   of the seed and configuration: 1, 2 and many workers must produce
//!   `cmp`-identical bytes;
//! * **zero-coupling equivalence** — with interference off, an N-cell
//!   deployment is exactly N independent single-cell deployments: the
//!   per-cell fingerprints and measurement surfaces of cell `i` match a
//!   1-cell run homed on the same identity with the same population.

use lte_uplink::deploy::{run_deploy, CellKind, DeployConfig};
use lte_uplink::TrafficModel;

fn base(cells: usize, ues: usize, workers: usize) -> DeployConfig {
    let mut cfg = DeployConfig::new(cells, ues, 4, 7);
    cfg.workers = workers;
    cfg
}

#[test]
fn report_is_byte_identical_across_worker_counts() {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 8);
    let jsons: Vec<String> = [1usize, 2, max]
        .iter()
        .map(|&w| {
            let report = run_deploy(&base(3, 3000, w)).expect("deploy runs");
            report.to_json()
        })
        .collect();
    assert_eq!(jsons[0], jsons[1], "1 vs 2 workers diverged");
    assert_eq!(jsons[0], jsons[2], "1 vs {max} workers diverged");
}

#[test]
fn zero_coupling_equals_independent_single_cell_runs() {
    let n_cell = run_deploy(&base(3, 3000, 2)).expect("3-cell run");
    for (i, cell) in n_cell.per_cell.iter().enumerate() {
        let mut solo = base(1, cell.population, 2);
        solo.first_cell = i;
        let solo = run_deploy(&solo).expect("1-cell run");
        assert_eq!(solo.per_cell.len(), 1);
        assert_eq!(
            solo.per_cell[0].fingerprint, cell.fingerprint,
            "cell {i} of the 3-cell deployment is not reproduced by an \
             isolated single-cell run"
        );
        assert_eq!(solo.per_cell[0].ebler, cell.ebler);
        assert_eq!(solo.per_cell[0].offered, cell.offered);
        assert_eq!(solo.per_cell[0].deferred, cell.deferred);
    }
}

#[test]
fn coupling_perturbs_the_received_field() {
    let isolated = run_deploy(&base(2, 2000, 2)).expect("isolated run");
    let mut coupled_cfg = base(2, 2000, 2);
    coupled_cfg.coupling_milli = 400;
    let coupled = run_deploy(&coupled_cfg).expect("coupled run");
    assert_ne!(
        isolated.fingerprint, coupled.fingerprint,
        "a 0.4-amplitude neighbour must perturb the decoded bytes"
    );
    // Interference can only hurt: the coupled run decodes no more
    // blocks than the isolated one.
    assert!(coupled.aggregate.total.ack <= isolated.aggregate.total.ack);
    // The coupled run is still deterministic.
    let again = run_deploy(&coupled_cfg).expect("coupled rerun");
    assert_eq!(coupled.to_json(), again.to_json());
}

#[test]
fn nbiot_deployment_defers_mmtc_load() {
    let mut cfg = base(2, 40_000, 2);
    cfg.kind = CellKind::NbIot;
    cfg.traffic = TrafficModel::BurstyIot;
    let report = run_deploy(&cfg).expect("nbiot run");
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"lte-sim-deploy-v1\""));
    assert!(json.contains("\"kind\": \"nbiot\""));
    assert_eq!(report.per_cell.len(), 2);
    let offered: u64 = report.per_cell.iter().map(|c| c.offered).sum();
    let deferred: u64 = report.per_cell.iter().map(|c| c.deferred).sum();
    let scheduled: u64 = report.per_cell.iter().map(|c| c.scheduled).sum();
    assert_eq!(offered, deferred + scheduled);
    assert!(
        deferred > scheduled,
        "a 40k-UE narrowband deployment must defer most of its offered load"
    );
    // Deferred grants surface as DTX on the measurement box.
    assert_eq!(report.aggregate.total.dtx, deferred);
    // Selection combining over repetitions still decodes the clean
    // channel: no NACKs at the synthesis SNR.
    assert_eq!(report.aggregate.total.nack, 0);
}

#[test]
fn populations_split_round_robin_and_identities_are_distinct() {
    let report = run_deploy(&base(3, 10, 1)).expect("tiny run");
    let pops: Vec<usize> = report.per_cell.iter().map(|c| c.population).collect();
    assert_eq!(pops, vec![4, 3, 3]);
    let ids: Vec<usize> = report.per_cell.iter().map(|c| c.cell_id).collect();
    assert_eq!(ids, vec![0, 1, 2]);
    // Distinct identities scramble differently, so the per-cell
    // fingerprints differ even under identical schedules.
    assert_ne!(
        report.per_cell[0].fingerprint,
        report.per_cell[1].fingerprint
    );
}
