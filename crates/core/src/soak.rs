//! The `soak` command: continuous telemetry over a long governed run.
//!
//! A soak drives the evaluation ramp through the stepping DES session
//! for N subframes and folds everything observable into rolling windows
//! of W subframes:
//!
//! * **Latency** — every completed job's dispatch-to-completion latency
//!   (simulated cycles) lands in a zero-alloc HDR histogram; each window
//!   snapshot carries p50/p99/p999.
//! * **EBLER** — every dispatched user resolves to a real receiver
//!   decode (cached per distinct configuration, bit-exact and seeded),
//!   or to DTX when the overload policy sheds it; the accumulated
//!   surface mirrors the R&S `FetchStruct` shape (ack/nack/dtx %, BLER,
//!   per-stream throughput).
//! * **SLO** — each window is judged against an [`SloSpec`]
//!   (deadline-miss rate, shed rate, optional p99 budget) with SRE-style
//!   burn rates; any violating window makes the run exit nonzero.
//! * **Power** — the calibrated power model converts the run's occupancy
//!   buckets into per-window energy, energy-per-subframe and governor
//!   target-vs-achieved cores.
//!
//! Everything in `SOAK.json`, the rolling `SOAK.jsonl` stream and the
//! OpenMetrics export derives from the seeded simulation and bit-exact
//! receiver decodes — two identical soaks serialize byte-identical
//! artefacts at any host worker count. Wall-clock host telemetry
//! (per-stage decode histograms, pool steal/park/queue-depth
//! distributions) is collected by a separate bounded burst on the real
//! pool and written to its own host-metrics file, excluded from the
//! determinism contract.

use std::collections::HashMap;

use lte_dsp::fft::FftPlanner;
use lte_dsp::Xoshiro256;
use lte_fault::{DeadlineBudget, FaultPlan, OverloadPolicy};
use lte_obs::{
    f64_json, EblerAccumulator, EblerSurface, Histogram, HistogramSnapshot, MetricsRegistry,
    OpenMetrics, SloSpec, SloTracker, WindowAggregate, WindowObservation, WindowVerdict,
};
use lte_phy::params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
use lte_phy::receiver::{process_user_traced, process_user_with_planner};
use lte_phy::trace::StageHists;
use lte_phy::tx::synthesize_user;
use lte_phy::StageTimer;
use lte_power::{NapPolicy, PowerWindows};
use lte_sched::sim::{SessionProgress, Simulator};
use lte_sched::{PoolError, PoolTelemetry, TaskPool};
use std::sync::Arc;

use crate::experiments::ExperimentContext;

/// EBLER streams: one per layer count, so the surface separates
/// single-layer from spatially-multiplexed users like the instrument's
/// per-stream rows.
pub const EBLER_STREAMS: usize = 4;

/// SNR of un-bursted receptions in the EBLER decode cache — the
/// benchmark's clean operating point, where every configuration the
/// ramp generates decodes (so nominal NACK is zero and the surface
/// cleanly separates channel faults, which need `--chaos`, from
/// overload, which records DTX).
const NOMINAL_SNR_DB: f64 = 30.0;

/// Deep-fade SNR of bursted receptions; single-shot passthrough decodes
/// fail here, so chaos soaks measure a real nonzero BLER.
const BURST_SNR_DB: f32 = -12.0;

/// Decode repetitions per user in the host-metrics burst.
const HOST_BURST_REPS: usize = 32;

/// Everything the soak needs to know up front.
#[derive(Clone, Copy, Debug)]
pub struct SoakConfig {
    /// Subframes to drive through the DES session.
    pub subframes: usize,
    /// Window length in subframes.
    pub window: usize,
    /// Parameter-model / fault-plan seed.
    pub seed: u64,
    /// Nap policy governing the simulated machine.
    pub policy: NapPolicy,
    /// Overload policy behind the per-subframe deadline budget.
    pub overload: OverloadPolicy,
    /// Inject the seeded fault plan (noise bursts, dead core, panics).
    pub chaos: bool,
    /// Host workers for the wall-clock telemetry burst (0 = skip).
    pub host_workers: usize,
    /// The budgets each window is judged against.
    pub spec: SloSpec,
}

impl SoakConfig {
    /// A soak over `subframes` subframes in windows of `window`.
    pub fn new(subframes: usize, window: usize, seed: u64) -> Self {
        Self {
            subframes,
            window: window.max(1),
            seed,
            // NONAP default: the ungoverned receiver meets its deadline
            // at every load the ramp offers headroom for, so a healthy
            // soak is actually healthy. Governed policies overlap
            // subframes by design and shed under the overload policy —
            // select them explicitly to soak that regime.
            policy: NapPolicy::NoNap,
            overload: OverloadPolicy::ShedUsers,
            chaos: false,
            host_workers: 0,
            spec: SloSpec::default_budgets(),
        }
    }
}

/// One closed telemetry window.
#[derive(Clone, Debug)]
pub struct SoakWindow {
    /// Window ordinal (0-based).
    pub index: usize,
    /// Subframes dispatched in this window.
    pub subframes: u64,
    /// Completion-latency distribution (simulated cycles).
    pub latency: HistogramSnapshot,
    /// Subframes past the deadline budget.
    pub deadline_misses: u64,
    /// User jobs shed or dropped.
    pub shed_jobs: u64,
    /// Subframes discarded whole.
    pub dropped_subframes: u64,
    /// Subframes demapped at reduced fidelity.
    pub degraded_subframes: u64,
    /// The window's EBLER surface.
    pub ebler: EblerSurface,
    /// The SLO evaluation of this window.
    pub verdict: WindowVerdict,
}

impl SoakWindow {
    /// One deterministic JSON line for the rolling snapshot stream.
    pub fn to_json(&self, clock_hz: f64) -> String {
        let to_ms = |cycles: u64| f64_json(cycles as f64 / clock_hz * 1e3);
        format!(
            "{{\"window\":{},\"subframes\":{},\"jobs\":{},\
             \"p50_cycles\":{},\"p99_cycles\":{},\"p999_cycles\":{},\
             \"p50_ms\":{},\"p99_ms\":{},\"p999_ms\":{},\
             \"deadline_misses\":{},\"shed_jobs\":{},\
             \"dropped_subframes\":{},\"degraded_subframes\":{},\
             \"slo\":{},\"ebler\":{}}}",
            self.index,
            self.subframes,
            self.latency.count,
            self.latency.quantile(0.50),
            self.latency.quantile(0.99),
            self.latency.quantile(0.999),
            to_ms(self.latency.quantile(0.50)),
            to_ms(self.latency.quantile(0.99)),
            to_ms(self.latency.quantile(0.999)),
            self.deadline_misses,
            self.shed_jobs,
            self.dropped_subframes,
            self.degraded_subframes,
            self.verdict.to_json(),
            self.ebler.to_json(),
        )
    }
}

/// The final soak report (`SOAK.json`).
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// The configuration the soak ran under.
    pub config: SoakConfig,
    /// Simulated clock, Hz (for cycle → ms conversion).
    pub clock_hz: f64,
    /// Every closed window, oldest first.
    pub windows: Vec<SoakWindow>,
    /// Per-window power/governor aggregates, aligned with `windows`.
    pub power: Vec<lte_power::PowerWindowSnapshot>,
    /// Whole-run completion-latency distribution.
    pub latency: HistogramSnapshot,
    /// Whole-run EBLER surface.
    pub ebler: EblerSurface,
    /// Windows that broke at least one objective.
    pub violating_windows: u64,
    /// Total objective violations across all windows.
    pub violations: u64,
    /// Whole-run energy, joules.
    pub energy_joules: f64,
    /// Whole-run mean power, watts.
    pub mean_power_watts: f64,
}

impl SoakReport {
    /// `true` when no window broke an objective.
    pub fn healthy(&self) -> bool {
        self.violating_windows == 0
    }

    /// Renders the full deterministic report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"lte-sim-soak-v1\",\n");
        out.push_str(&format!(
            "  \"subframes\": {},\n  \"window\": {},\n  \"seed\": {},\n",
            self.config.subframes, self.config.window, self.config.seed
        ));
        out.push_str(&format!(
            "  \"policy\": \"{}\",\n  \"overload\": \"{}\",\n  \"chaos\": {},\n",
            self.config.policy,
            self.config.overload.name(),
            self.config.chaos
        ));
        out.push_str(&format!("  \"clock_hz\": {},\n", f64_json(self.clock_hz)));
        out.push_str("  \"windows\": [\n");
        for (i, w) in self.windows.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                w.to_json(self.clock_hz),
                if i + 1 < self.windows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"power\": [\n");
        for (i, p) in self.power.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                p.to_json(),
                if i + 1 < self.power.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"latency\": {},\n", self.latency.to_json()));
        out.push_str(&format!("  \"ebler\": {},\n", self.ebler.to_json()));
        out.push_str(&format!(
            "  \"slo\": {{\"windows\": {}, \"violating_windows\": {}, \
             \"violations\": {}, \"healthy\": {}}},\n",
            self.windows.len(),
            self.violating_windows,
            self.violations,
            self.healthy()
        ));
        out.push_str(&format!(
            "  \"energy_joules\": {},\n  \"mean_power_watts\": {}\n}}\n",
            f64_json(self.energy_joules),
            f64_json(self.mean_power_watts)
        ));
        out
    }

    /// The deterministic OpenMetrics exposition of the whole run.
    pub fn to_openmetrics(&self) -> String {
        let registry = MetricsRegistry::new();
        registry.set_counter("soak.subframes", self.config.subframes as u64);
        registry.set_counter("soak.jobs", self.latency.count);
        let (mut misses, mut shed, mut dropped, mut degraded) = (0u64, 0u64, 0u64, 0u64);
        for w in &self.windows {
            misses += w.deadline_misses;
            shed += w.shed_jobs;
            dropped += w.dropped_subframes;
            degraded += w.degraded_subframes;
        }
        registry.set_counter("soak.deadline_misses", misses);
        registry.set_counter("soak.shed_jobs", shed);
        registry.set_counter("soak.dropped_subframes", dropped);
        registry.set_counter("soak.degraded_subframes", degraded);
        registry.set_counter("soak.slo.violating_windows", self.violating_windows);
        registry.set_gauge("soak.energy_joules", self.energy_joules);
        registry.set_gauge("soak.mean_power_watts", self.mean_power_watts);
        if let Some(last) = self.power.last() {
            registry.set_gauge("soak.energy_per_subframe_mj", last.energy_per_subframe_mj);
        }
        let mut om = OpenMetrics::new();
        om.registry(&registry);
        om.summary(
            "soak.latency.cycles",
            "job completion latency in simulated cycles",
            &self.latency,
        );
        om.ebler("soak.ebler", &self.ebler);
        om.render()
    }
}

/// Everything `lte-sim soak` writes.
pub struct SoakArtifacts {
    /// The final report.
    pub report: SoakReport,
    /// The rolling per-window snapshot stream (JSON lines).
    pub jsonl: String,
    /// The OpenMetrics exposition.
    pub openmetrics: String,
    /// Wall-clock host telemetry (stage + pool histograms), when the
    /// host burst ran. NOT part of the determinism contract.
    pub host_json: Option<String>,
}

/// Outcome of one cached receiver decode.
#[derive(Clone, Copy)]
struct DecodeOutcome {
    crc_ok: bool,
    payload_bits: u64,
}

/// Decodes each distinct (user configuration, bursted) pair exactly once
/// through the real receiver and replays the bit-exact outcome for every
/// later occurrence — the measurement stays PHY-true without paying a
/// full decode per subframe.
struct DecodeCache {
    cell: CellConfig,
    planner: FftPlanner,
    seed: u64,
    outcomes: HashMap<(usize, usize, usize, bool), DecodeOutcome>,
}

impl DecodeCache {
    fn new(n_rx: usize, seed: u64) -> Self {
        Self {
            cell: CellConfig::with_antennas(n_rx),
            planner: FftPlanner::new(),
            seed,
            outcomes: HashMap::new(),
        }
    }

    fn outcome(&mut self, user: &UserConfig, bursted: bool) -> DecodeOutcome {
        let key = (
            user.prbs,
            user.layers,
            user.modulation.bits_per_symbol(),
            bursted,
        );
        if let Some(&cached) = self.outcomes.get(&key) {
            return cached;
        }
        let snr = if bursted {
            f64::from(BURST_SNR_DB)
        } else {
            NOMINAL_SNR_DB
        };
        // The synthesis seed depends only on the cache key, never on
        // visit order, so the cached outcome is reproducible.
        let mut rng = Xoshiro256::seed_from_u64(
            self.seed
                ^ (key.0 as u64) << 32
                ^ (key.1 as u64) << 16
                ^ (key.2 as u64) << 8
                ^ u64::from(bursted),
        );
        let input = synthesize_user(&self.cell, user, snr, &mut rng);
        let result =
            process_user_with_planner(&self.cell, &input, TurboMode::Passthrough, &self.planner);
        let outcome = DecodeOutcome {
            crc_ok: result.crc_ok,
            payload_bits: result.payload.len() as u64,
        };
        self.outcomes.insert(key, outcome);
        outcome
    }
}

/// Feeds one dispatched subframe's users into the EBLER accumulators:
/// `shed` of them (cheapest-first, mirroring the shed policy) as DTX,
/// the rest as their cached receiver decode.
fn record_subframe_ebler(
    sf: &SubframeConfig,
    shed: u64,
    plan: Option<&FaultPlan>,
    sf_idx: usize,
    cache: &mut DecodeCache,
    sinks: [&EblerAccumulator; 2],
) {
    let mut order: Vec<usize> = (0..sf.users.len()).collect();
    order.sort_by_key(|&i| (sf.users[i].prbs, i));
    let shed = (shed as usize).min(order.len());
    for (rank, &user_idx) in order.iter().enumerate() {
        let user = &sf.users[user_idx];
        let stream = (user.layers - 1).min(EBLER_STREAMS - 1);
        if rank < shed {
            for sink in sinks {
                sink.record_dtx(stream);
            }
            continue;
        }
        let bursted = plan.is_some_and(|p| p.noise_burst(sf_idx, user_idx));
        let outcome = cache.outcome(user, bursted);
        for sink in sinks {
            sink.record_decode(stream, outcome.crc_ok, outcome.payload_bits);
        }
    }
}

/// Callback invoked as each window closes, with the window and the JSON
/// line just appended to the snapshot stream (see [`run_soak`]).
pub type WindowSink<'a> = &'a mut dyn FnMut(&SoakWindow, &str);

/// Runs the soak.
///
/// # Errors
///
/// Returns the pool-spawn error message when the host-metrics burst
/// cannot start its worker pool.
pub fn run_soak(
    cfg: &SoakConfig,
    on_window: Option<WindowSink<'_>>,
) -> Result<SoakArtifacts, String> {
    run_soak_with_stop(cfg, on_window, &|| false)
}

/// [`run_soak`] with an early-stop hook, polled at every subframe
/// boundary. When `stop` returns `true` the soak stops dispatching,
/// closes the final (partial) window over what ran, and returns
/// complete artifacts for the truncated run — the CLI wires a latched
/// SIGINT/SIGTERM into this so an interrupted soak still flushes.
///
/// # Errors
///
/// Same as [`run_soak`].
pub fn run_soak_with_stop(
    cfg: &SoakConfig,
    mut on_window: Option<WindowSink<'_>>,
    stop: &dyn Fn() -> bool,
) -> Result<SoakArtifacts, String> {
    let ctx = ExperimentContext {
        seed: cfg.seed,
        n_subframes: cfg.subframes,
        // Coarse calibration: the soak needs Eq. 5 targets, not Fig. 11
        // fidelity.
        cal_subframes: 16,
        cal_prb_step: 50,
        ..ExperimentContext::paper()
    };
    let subframes = ctx.subframes();
    let sim_cfg = ctx.sim_config(cfg.policy);
    let targets = if cfg.policy.proactive() {
        let (_curves, estimator) = ctx.run_calibration();
        ctx.estimated_targets(&estimator, &subframes)
    } else {
        vec![sim_cfg.n_workers; subframes.len()]
    };
    let loads = ctx.loads(&subframes, &targets);
    let plan = cfg.chaos.then(|| FaultPlan {
        burst_snr_db: BURST_SNR_DB,
        ..FaultPlan::smoke(cfg.seed)
    });

    // Paper-shaped deadline: a subframe may stay in flight for ~3
    // dispatch periods (the receiver legitimately works on 2-3
    // subframes concurrently), so only completions beyond that count
    // as deadline misses.
    let mut sim = Simulator::new(sim_cfg).with_degradation(DeadlineBudget {
        budget: 3 * sim_cfg.dispatch_period,
        policy: cfg.overload,
    });
    if let Some(p) = &plan {
        sim = sim.with_chaos(p.clone());
    }
    let mut session = sim.session(&loads);

    let mut cache = DecodeCache::new(ctx.n_rx, cfg.seed);
    let latency_live = Histogram::new();
    let ebler_live = EblerAccumulator::new(EBLER_STREAMS);
    let ebler_total = EblerAccumulator::new(EBLER_STREAMS);
    let mut tracker = SloTracker::new(cfg.spec);
    let mut windows: Vec<SoakWindow> = Vec::new();
    let mut jsonl = String::new();
    let mut consumed = 0usize;
    // Progress at the previous boundary (per-subframe shed attribution)
    // and at the previous window close (per-window deltas).
    let mut at_boundary = SessionProgress::default();
    let mut at_window = SessionProgress::default();
    let mut window_start = 0usize;
    let mut dispatched = 0usize;

    let mut close_window = |dispatched: usize,
                            window_start: &mut usize,
                            progress: SessionProgress,
                            at_window: &mut SessionProgress,
                            tail: &[u64],
                            consumed: &mut usize,
                            windows: &mut Vec<SoakWindow>,
                            jsonl: &mut String,
                            on_window: &mut Option<WindowSink<'_>>| {
        for &cycles in &tail[*consumed..] {
            latency_live.record(cycles);
        }
        *consumed = tail.len();
        let latency = latency_live.snapshot_and_reset();
        let ebler = ebler_live.snapshot_and_reset();
        let n_subframes = (dispatched - *window_start) as u64;
        *window_start = dispatched;
        let misses = progress.overruns - at_window.overruns;
        let shed = progress.shed_jobs - at_window.shed_jobs;
        let dropped = progress.dropped_subframes - at_window.dropped_subframes;
        let degraded = progress.degraded_subframes - at_window.degraded_subframes;
        *at_window = progress;
        let verdict = tracker.observe(&WindowObservation {
            subframes: n_subframes,
            deadline_misses: misses,
            jobs: latency.count + shed,
            shed_jobs: shed,
            p99_latency: latency.quantile(0.99),
        });
        let window = SoakWindow {
            index: windows.len(),
            subframes: n_subframes,
            latency,
            deadline_misses: misses,
            shed_jobs: shed,
            dropped_subframes: dropped,
            degraded_subframes: degraded,
            ebler,
            verdict,
        };
        let line = window.to_json(sim_cfg.clock_hz);
        jsonl.push_str(&line);
        jsonl.push('\n');
        if let Some(cb) = on_window.as_deref_mut() {
            cb(&window, &line);
        }
        windows.push(window);
    };

    // `Some(n)` once `stop` fires: only the first `n` subframes count.
    let mut truncated_at: Option<usize> = None;
    while let Some(boundary) = session.advance() {
        if stop() {
            // The final-dispatch accounting below closes the partial
            // window over everything dispatched so far; `finish` still
            // drains the remaining DES events, so cap the power
            // accounting at the truncation point.
            truncated_at = Some(dispatched);
            break;
        }
        // The advance that returned this boundary executed the previous
        // subframe's dispatch; its shed decisions are now visible.
        if boundary.subframe > 0 {
            let progress = session.progress();
            let shed = progress.shed_jobs - at_boundary.shed_jobs;
            at_boundary = progress;
            record_subframe_ebler(
                &subframes[boundary.subframe - 1],
                shed,
                plan.as_ref(),
                boundary.subframe - 1,
                &mut cache,
                [&ebler_live, &ebler_total],
            );
            if boundary.subframe % cfg.window == 0 {
                close_window(
                    dispatched,
                    &mut window_start,
                    progress,
                    &mut at_window,
                    session.job_latencies(),
                    &mut consumed,
                    &mut windows,
                    &mut jsonl,
                    &mut on_window,
                );
            }
        }
        dispatched = boundary.subframe + 1;
        for &cycles in &session.job_latencies()[consumed..] {
            latency_live.record(cycles);
        }
        consumed = session.job_latencies().len();
    }
    // The draining advance executed the final dispatch; account it and
    // close the last (possibly partial) window over the full drain.
    if dispatched > 0 {
        let progress = session.progress();
        let shed = progress.shed_jobs - at_boundary.shed_jobs;
        record_subframe_ebler(
            &subframes[dispatched - 1],
            shed,
            plan.as_ref(),
            dispatched - 1,
            &mut cache,
            [&ebler_live, &ebler_total],
        );
        close_window(
            dispatched,
            &mut window_start,
            progress,
            &mut at_window,
            session.job_latencies(),
            &mut consumed,
            &mut windows,
            &mut jsonl,
            &mut on_window,
        );
    }
    let report = session.finish();

    // Power windows from the final occupancy buckets: one bucket per
    // dispatch period, so bucket i is subframe i's power draw.
    let watts = ctx.power.power_trace(&report.buckets, &sim_cfg);
    let dt = sim_cfg.dispatch_seconds();
    let mut power = PowerWindows::new(cfg.window as u64);
    let n = truncated_at.unwrap_or(cfg.subframes).min(watts.len());
    for i in 0..n {
        let achieved = report.buckets[i].busy_cycles as f64 / sim_cfg.dispatch_period as f64;
        power.record_subframe(watts[i], dt, targets[i] as f64, achieved);
    }
    power.flush();
    let energy_joules: f64 = watts.iter().take(n).map(|w| w * dt).sum();
    let mean_power_watts = if n > 0 {
        energy_joules / (n as f64 * dt)
    } else {
        0.0
    };

    let mut latency_all = HistogramSnapshot::empty();
    for w in &windows {
        latency_all.merge(&w.latency);
    }
    let soak = SoakReport {
        config: *cfg,
        clock_hz: sim_cfg.clock_hz,
        windows,
        power: power.snapshots().to_vec(),
        latency: latency_all,
        ebler: ebler_total.snapshot(),
        violating_windows: tracker.violating_windows(),
        violations: tracker.violations().len() as u64,
        energy_joules,
        mean_power_watts,
    };
    let openmetrics = soak.to_openmetrics();
    let host_json = if cfg.host_workers > 0 {
        Some(host_metrics_burst(cfg.host_workers).map_err(|e| e.to_string())?)
    } else {
        None
    };
    Ok(SoakArtifacts {
        jsonl,
        openmetrics,
        host_json,
        report: soak,
    })
}

/// A bounded wall-clock burst on the real pool: decodes the steady-state
/// users repeatedly with per-stage timing into [`StageHists`] and the
/// pool's steal/park/queue-depth telemetry attached, then serializes
/// both. Host-time measurements live here and only here — they never
/// touch the deterministic soak artefacts.
fn host_metrics_burst(workers: usize) -> Result<String, PoolError> {
    let pool = TaskPool::new(workers)?;
    let telemetry = Arc::new(PoolTelemetry::new());
    pool.attach_telemetry(Arc::clone(&telemetry));
    let hists = Arc::new(StageHists::new());
    let cell = CellConfig::default();
    let planner = Arc::new(FftPlanner::new());
    let inputs: Vec<Arc<lte_phy::grid::UserInput>> = crate::perf::steady_state_subframe()
        .users
        .iter()
        .map(|u| {
            let mut rng = Xoshiro256::seed_from_u64(u.prbs as u64);
            Arc::new(synthesize_user(&cell, u, NOMINAL_SNR_DB, &mut rng))
        })
        .collect();
    for _ in 0..HOST_BURST_REPS {
        for input in &inputs {
            let hists = Arc::clone(&hists);
            let planner = Arc::clone(&planner);
            let input = Arc::clone(input);
            pool.submit_job(move |_| {
                let timer = StageTimer::histograms_only(&hists);
                let result =
                    process_user_traced(&cell, &input, TurboMode::Passthrough, &planner, &timer);
                std::hint::black_box(&result);
            });
        }
    }
    pool.wait_all();

    let mut out = String::from("{\"stages\":{");
    let stages = hists.snapshot_nonempty();
    for (i, (stage, snap)) in stages.iter().enumerate() {
        out.push_str(&format!(
            "\"{}\":{}{}",
            stage.name(),
            snap.to_json(),
            if i + 1 < stages.len() { "," } else { "" }
        ));
    }
    out.push_str("},\"pool\":{");
    out.push_str(&format!(
        "\"steal_batch_tasks\":{},\"park_nanos\":{},\"queue_depth\":{}",
        telemetry.steal_batch_tasks.snapshot().to_json(),
        telemetry.park_nanos.snapshot().to_json(),
        telemetry.queue_depth.snapshot().to_json(),
    ));
    out.push_str("}}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(subframes: usize, window: usize) -> SoakConfig {
        SoakConfig::new(subframes, window, 2012)
    }

    #[test]
    fn soak_windows_cover_every_subframe_and_job() {
        let art = run_soak(&tiny(300, 100), None).expect("soak runs");
        let r = &art.report;
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows.iter().map(|w| w.subframes).sum::<u64>(), 300);
        // Every dispatched (non-shed) job's latency was recorded.
        let shed: u64 = r.windows.iter().map(|w| w.shed_jobs).sum();
        assert_eq!(r.latency.count + shed, r.ebler.total.measured());
        assert!(r.latency.count > 0);
        assert!(r.energy_joules > 0.0);
        assert_eq!(r.power.len(), 3);
        assert!(art.openmetrics.ends_with("# EOF\n"));
    }

    #[test]
    fn partial_final_window_is_flushed() {
        let art = run_soak(&tiny(250, 100), None).expect("soak runs");
        let r = &art.report;
        assert_eq!(r.windows.len(), 3);
        assert_eq!(r.windows[2].subframes, 50);
        assert_eq!(r.power.len(), 3);
        assert_eq!(r.power[2].subframes, 50);
    }

    #[test]
    fn healthy_low_load_prefix_passes_slo() {
        // The opening stretch of the ramp is light: no misses, no sheds.
        let art = run_soak(&tiny(200, 100), None).expect("soak runs");
        assert!(art.report.healthy(), "low load must not violate");
        assert_eq!(art.report.ebler.total.dtx, 0);
        assert!((art.report.ebler.total.bler_pct).abs() < f64::EPSILON);
    }

    #[test]
    fn chaos_soak_measures_nonzero_bler() {
        let cfg = SoakConfig {
            chaos: true,
            ..tiny(300, 100)
        };
        let art = run_soak(&cfg, None).expect("soak runs");
        assert!(
            art.report.ebler.total.nack > 0,
            "seeded bursts must fail CRC"
        );
        assert!(art.report.ebler.total.bler_pct > 0.0);
    }

    #[test]
    fn soak_is_byte_deterministic() {
        let cfg = SoakConfig {
            chaos: true,
            ..tiny(220, 64)
        };
        let a = run_soak(&cfg, None).expect("soak runs");
        let b = run_soak(&cfg, None).expect("soak runs");
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.openmetrics, b.openmetrics);
    }

    #[test]
    fn host_burst_is_separate_and_optional() {
        let cfg = SoakConfig {
            host_workers: 2,
            ..tiny(60, 30)
        };
        let art = run_soak(&cfg, None).expect("soak runs");
        let host = art.host_json.expect("burst ran");
        assert!(host.contains("\"stages\""));
        assert!(host.contains("\"queue_depth\""));
        // The deterministic artefacts never reference host time.
        assert!(!art.report.to_json().contains("stages"));
    }
}
