//! Minimal SVG line-chart rendering for the paper's figures.
//!
//! The paper presents its results as time-series plots (Figs. 7–9 and
//! 12–16). Alongside the CSVs, the experiment runner can emit
//! self-contained SVG renderings so the reproduced figures can be eyed
//! against the paper without external tooling.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Clone, Debug)]
pub struct Series<'a> {
    /// Legend label.
    pub label: &'a str,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Clone, Debug)]
pub struct Chart<'a> {
    /// Title shown above the plot.
    pub title: &'a str,
    /// X-axis label.
    pub x_label: &'a str,
    /// Y-axis label.
    pub y_label: &'a str,
    /// Pixel width.
    pub width: u32,
    /// Pixel height.
    pub height: u32,
}

impl Default for Chart<'_> {
    fn default() -> Self {
        Chart {
            title: "",
            x_label: "",
            y_label: "",
            width: 860,
            height: 420,
        }
    }
}

const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 140.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 46.0;

/// Renders a multi-series line chart as a standalone SVG document.
///
/// Series with no points are skipped; an entirely empty chart still
/// renders axes.
pub fn line_chart(chart: &Chart<'_>, series: &[Series<'_>]) -> String {
    let w = chart.width as f64;
    let h = chart.height as f64;
    let plot_w = (w - MARGIN_L - MARGIN_R).max(1.0);
    let plot_h = (h - MARGIN_T - MARGIN_B).max(1.0);

    // Data bounds.
    let mut x_min = f64::INFINITY;
    let mut x_max = f64::NEG_INFINITY;
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if !x_min.is_finite() {
        (x_min, x_max, y_min, y_max) = (0.0, 1.0, 0.0, 1.0);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    // A little vertical headroom.
    let pad = 0.05 * (y_max - y_min).max(1e-9);
    y_min -= pad;
    y_max += pad;

    let sx = move |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = move |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#
    );
    let _ = writeln!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    // Title and axis labels.
    let _ = writeln!(
        out,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="15">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        escape(chart.title)
    );
    let _ = writeln!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 8.0,
        escape(chart.x_label)
    );
    let _ = writeln!(
        out,
        r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        escape(chart.y_label)
    );

    // Axes frame and ticks.
    let _ = writeln!(
        out,
        r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#444"/>"##
    );
    for i in 0..=5 {
        let fx = x_min + (x_max - x_min) * i as f64 / 5.0;
        let fy = y_min + (y_max - y_min) * i as f64 / 5.0;
        let px = sx(fx);
        let py = sy(fy);
        let _ = writeln!(
            out,
            r##"<line x1="{px:.1}" y1="{}" x2="{px:.1}" y2="{}" stroke="#ddd"/>"##,
            MARGIN_T,
            MARGIN_T + plot_h
        );
        let _ = writeln!(
            out,
            r##"<line x1="{}" y1="{py:.1}" x2="{}" y2="{py:.1}" stroke="#ddd"/>"##,
            MARGIN_L,
            MARGIN_L + plot_w
        );
        let _ = writeln!(
            out,
            r#"<text x="{px:.1}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_T + plot_h + 16.0,
            format_tick(fx)
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{:.1}" text-anchor="end">{}</text>"#,
            MARGIN_L - 6.0,
            py + 4.0,
            format_tick(fy)
        );
    }

    // Series polylines and legend.
    for (i, s) in series.iter().filter(|s| !s.points.is_empty()).enumerate() {
        let colour = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        for (j, &(x, y)) in s.points.iter().enumerate() {
            let _ = write!(
                path,
                "{}{:.1},{:.1} ",
                if j == 0 { "M" } else { "L" },
                sx(x),
                sy(y)
            );
        }
        let _ = writeln!(
            out,
            r#"<path d="{path}" fill="none" stroke="{colour}" stroke-width="1.4"/>"#
        );
        let ly = MARGIN_T + 14.0 + 18.0 * i as f64;
        let lx = MARGIN_L + plot_w + 10.0;
        let _ = writeln!(
            out,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{colour}" stroke-width="2"/>"#,
            lx + 18.0
        );
        let _ = writeln!(
            out,
            r#"<text x="{}" y="{}">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            escape(s.label)
        );
    }
    out.push_str("</svg>\n");
    out
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{:.0}", v)
    } else if v.abs() >= 10.0 {
        format!("{:.1}", v)
    } else {
        format!("{:.2}", v)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_series() -> Vec<Series<'static>> {
        vec![
            Series {
                label: "a",
                points: (0..10).map(|i| (i as f64, (i * i) as f64)).collect(),
            },
            Series {
                label: "b",
                points: (0..10).map(|i| (i as f64, 50.0 - i as f64)).collect(),
            },
        ]
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = line_chart(
            &Chart {
                title: "Test & <Chart>",
                x_label: "x",
                y_label: "y",
                ..Chart::default()
            },
            &sample_series(),
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("Test &amp; &lt;Chart&gt;"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn empty_chart_still_renders_axes() {
        let svg = line_chart(&Chart::default(), &[]);
        assert!(svg.contains("<rect"));
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let svg = line_chart(
            &Chart::default(),
            &[Series {
                label: "flat",
                points: vec![(0.0, 5.0), (1.0, 5.0)],
            }],
        );
        assert!(!svg.contains("NaN"), "no NaN coordinates allowed");
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn single_point_series() {
        let svg = line_chart(
            &Chart::default(),
            &[Series {
                label: "dot",
                points: vec![(2.0, 3.0)],
            }],
        );
        assert!(svg.contains("<path"));
        assert!(!svg.contains("NaN"));
    }
}
