//! `lte-sim serve`: the continuously-running ingest service.
//!
//! The batch commands (`bench`, `soak`, `perf`) process a subframe
//! sequence that is fully known before the first dispatch. `serve`
//! removes that assumption: subframe work *arrives* — from a built-in
//! deterministic traffic generator or a localhost socket — flows
//! through a bounded ingest ring ([`lte_sched::IngestQueue`]), and the
//! service has to decide, live, what to admit, what to refuse and how
//! hard to mitigate:
//!
//! * **Admission control** — per-source token-bucket rate limiting
//!   ([`lte_fault::TokenBucket`]), malformed-arrival refusal, and the
//!   reject tier of the escalation ladder at the front door.
//! * **Backpressure escalation** — [`lte_fault::EscalationState`]
//!   walks reject → shed → degrade as an overload episode persists,
//!   reusing the batch path's shed-cheapest-users and degrade-demap
//!   mitigations so every admitted subframe still decodes through the
//!   identical kernels.
//! * **Power coupling** — the per-tick governor is the paper's
//!   [`lte_power::PolicyGovernor`] wrapped in a
//!   [`lte_power::PressureGovernor`]: queue occupancy raises the core
//!   floor before the backlog can turn into deadline misses.
//! * **Lifecycle robustness** — graceful drain on SIGINT/SIGTERM
//!   (stop admitting, finish in-flight, shed the rest, flush complete
//!   artifacts), hot parameter reload at a tick boundary, worker-crash
//!   recovery via the self-healing pool, and a watchdog that forces a
//!   bounded restart of the receive path when the pipeline stalls.
//!
//! Everything that decides *what is computed* — arrivals, admission,
//! escalation, shedding, deadline accounting — is a pure function of
//! `(seed, tick, queue depth)`, independent of worker count and wall
//! clock. Two same-seed campaigns therefore admit the same subframes
//! and decode them to byte-identical payloads at any worker count; the
//! wall clock only influences *when* work runs and the host-telemetry
//! section of the report.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use lte_dsp::fft::FftPlanner;
use lte_dsp::interleave::prewarm_subblock;
use lte_dsp::{Modulation, Xoshiro256};
use lte_fault::{EscalationLadder, EscalationState, IngestFaults, TokenBucket};
use lte_obs::{
    f64_json, Histogram, MetricsRegistry, OpenMetrics, ServiceCounters, ServiceSnapshot, SloSpec,
    SloTracker, WindowObservation, WindowVerdict,
};
use lte_phy::grid::UserInput;
use lte_phy::params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
use lte_phy::receiver::UserResult;
use lte_phy::tx::{prewarm_references, synthesize_user_with_mode};
use lte_phy::verify::GoldenRecord;
use lte_power::{
    governed_boundary, CoreController, NapPolicy, PolicyGovernor, PressureGovernor, UserLoad,
    WorkloadEstimator,
};
use lte_sched::pool::{PoolConfig, TaskPool};
use lte_sched::IngestQueue;

use crate::benchmark::{pace_until, spawn_user_graph};
use crate::fingerprint::fingerprint_results;

/// The synthesis SNR for generated traffic (clean decodes, matching
/// the batch benchmark's default).
const SERVE_SNR_DB: f64 = 30.0;

/// Built-in deterministic traffic generators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TrafficModel {
    /// Every tick carries one loaded subframe — the paper's full-buffer
    /// saturation traffic.
    #[default]
    FullBuffer,
    /// Sparse machine-type baseline with periodic bursts of many tiny
    /// allocations.
    BurstyIot,
    /// A talk-spurt duty cycle: small subframes for half the period,
    /// silence (DTX) for the other half.
    Voip,
}

impl TrafficModel {
    /// Stable name used in configs and reports.
    pub fn name(self) -> &'static str {
        match self {
            TrafficModel::FullBuffer => "full-buffer",
            TrafficModel::BurstyIot => "bursty-iot",
            TrafficModel::Voip => "voip",
        }
    }

    /// The subframes this model offers at `tick` (before fault
    /// shaping). A pure function of `(seed, tick)`.
    pub fn arrivals(self, seed: u64, tick: u64) -> Vec<SubframeConfig> {
        let mut rng = Xoshiro256::seed_from_u64(mix(seed, tick));
        match self {
            TrafficModel::FullBuffer => {
                // One loaded subframe per tick: two mid-size data users
                // plus a small control-ish allocation, drawn from a
                // small palette so the input cache stays warm.
                let heavy_prbs = [16, 20, 25][rng.next_below(3) as usize];
                vec![SubframeConfig::new(vec![
                    UserConfig::new(heavy_prbs, 2, Modulation::Qam16),
                    UserConfig::new(12, 1, Modulation::Qpsk),
                    UserConfig::new(4, 1, Modulation::Qpsk),
                ])]
            }
            TrafficModel::BurstyIot => {
                let burst = tick % 32 >= 16 && tick % 32 < 20;
                if burst {
                    // A synchronized wake-up: several subframes of tiny
                    // allocations arrive in the same tick.
                    (0..3)
                        .map(|_| {
                            SubframeConfig::new(
                                (0..4)
                                    .map(|_| {
                                        let prbs = 2 + rng.next_below(2) as usize;
                                        UserConfig::new(prbs, 1, Modulation::Qpsk)
                                    })
                                    .collect(),
                            )
                        })
                        .collect()
                } else if tick.is_multiple_of(4) {
                    vec![SubframeConfig::new(vec![
                        UserConfig::new(2, 1, Modulation::Qpsk),
                        UserConfig::new(3, 1, Modulation::Qpsk),
                    ])]
                } else {
                    Vec::new()
                }
            }
            TrafficModel::Voip => {
                if tick % 40 < 20 {
                    vec![SubframeConfig::new(vec![
                        UserConfig::new(2, 1, Modulation::Qpsk),
                        UserConfig::new(2, 1, Modulation::Qpsk),
                        UserConfig::new(3, 1, Modulation::Qpsk),
                    ])]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

impl std::str::FromStr for TrafficModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "full-buffer" | "full_buffer" | "full" => Ok(TrafficModel::FullBuffer),
            "bursty-iot" | "bursty_iot" | "bursty" | "iot" => Ok(TrafficModel::BurstyIot),
            "voip" => Ok(TrafficModel::Voip),
            other => Err(format!(
                "unknown traffic model '{other}' (full-buffer, bursty-iot, voip)"
            )),
        }
    }
}

/// SplitMix64-style avalanche of `(seed, tick)` — the same shape as
/// `FaultPlan::rng_for`, so per-tick draws are order-independent.
fn mix(seed: u64, tick: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x7365_7276_6531_2121) // "serve1!!"
        .wrapping_add(tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The hot-reloadable half of the service configuration: everything
/// that may change at a tick boundary without restarting the pipeline.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeParams {
    /// SLO budgets per evaluation window.
    pub spec: SloSpec,
    /// Escalation-ladder fill watermarks.
    pub ladder: EscalationLadder,
    /// Episode ticks of sustained rejection before shedding engages.
    pub shed_after: u64,
    /// Further episode ticks before demap degradation engages.
    pub degrade_after: u64,
    /// Token-bucket refill in milli-admissions per tick (1000 = one
    /// subframe per tick sustained).
    pub rate_milli: u64,
    /// Token-bucket burst allowance in whole admissions.
    pub burst: u64,
    /// The built-in traffic generator.
    pub traffic: TrafficModel,
}

impl Default for ServeParams {
    fn default() -> Self {
        ServeParams {
            spec: SloSpec::default_budgets(),
            ladder: EscalationLadder::default(),
            shed_after: EscalationState::DEFAULT_SHED_AFTER,
            degrade_after: EscalationState::DEFAULT_DEGRADE_AFTER,
            // 1.5 subframes/tick sustained: headroom over the nominal
            // one-per-tick service rate, a ceiling under a 2× flood.
            rate_milli: 1500,
            burst: 4,
            traffic: TrafficModel::FullBuffer,
        }
    }
}

impl ServeParams {
    /// Parses `key=value` lines (`#` comments, blank lines ignored)
    /// over the defaults. Recognised keys: `traffic`, `rate_milli`,
    /// `burst`, `reject_fill`, `shed_fill`, `degrade_fill`,
    /// `shed_after`, `degrade_after`, `max_miss_rate`,
    /// `max_shed_rate`, `p99_budget_ns`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive string on an unknown key or bad value.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = ServeParams::default();
        let (mut reject, mut shed, mut degrade) = (
            p.ladder.reject_fill(),
            p.ladder.shed_fill(),
            p.ladder.degrade_fill(),
        );
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |e: &dyn std::fmt::Display| format!("line {}: {key}: {e}", lineno + 1);
            match key {
                "traffic" => p.traffic = value.parse().map_err(|e: String| bad(&e))?,
                "rate_milli" => p.rate_milli = value.parse().map_err(|e| bad(&e))?,
                "burst" => p.burst = value.parse().map_err(|e| bad(&e))?,
                "reject_fill" => reject = value.parse().map_err(|e| bad(&e))?,
                "shed_fill" => shed = value.parse().map_err(|e| bad(&e))?,
                "degrade_fill" => degrade = value.parse().map_err(|e| bad(&e))?,
                "shed_after" => p.shed_after = value.parse().map_err(|e| bad(&e))?,
                "degrade_after" => p.degrade_after = value.parse().map_err(|e| bad(&e))?,
                "max_miss_rate" => p.spec.max_miss_rate = value.parse().map_err(|e| bad(&e))?,
                "max_shed_rate" => p.spec.max_shed_rate = value.parse().map_err(|e| bad(&e))?,
                "p99_budget_ns" => {
                    p.spec.p99_latency_budget = Some(value.parse().map_err(|e| bad(&e))?);
                }
                other => return Err(format!("line {}: unknown key '{other}'", lineno + 1)),
            }
        }
        p.ladder = EscalationLadder::new(reject, shed, degrade)?;
        Ok(p)
    }
}

/// External control surface for a running serve loop: the CLI wires
/// signals into it, tests drive it programmatically.
#[derive(Debug, Default)]
pub struct ServeControl {
    drain: AtomicBool,
    reload: Mutex<Option<ServeParams>>,
}

impl ServeControl {
    /// A fresh control handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asks the loop to stop admitting and drain at the next tick.
    pub fn request_drain(&self) {
        self.drain.store(true, Ordering::Relaxed);
    }

    /// Has a drain been requested?
    pub fn drain_requested(&self) -> bool {
        self.drain.load(Ordering::Relaxed)
    }

    /// Stages new parameters to be applied at the next tick boundary.
    pub fn request_reload(&self, params: ServeParams) {
        *self.reload.lock().unwrap_or_else(PoisonError::into_inner) = Some(params);
    }

    fn take_reload(&self) -> Option<ServeParams> {
        self.reload
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// Why the serve loop left the Running state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainReason {
    /// The configured tick budget completed.
    CampaignComplete,
    /// [`ServeControl::request_drain`] (e.g. SIGINT/SIGTERM).
    Requested,
}

impl DrainReason {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DrainReason::CampaignComplete => "campaign-complete",
            DrainReason::Requested => "drain-requested",
        }
    }
}

/// One lifecycle transition of the serve state machine
/// (`starting → running → draining → drained`, with reload/watchdog
/// events recorded in between).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// The tick at which the transition happened.
    pub tick: u64,
    /// The state entered or event name (`running`, `reload`,
    /// `watchdog-restart`, `draining`, `drained`).
    pub state: String,
    /// Human-readable cause.
    pub reason: String,
}

/// The watchdog's verdict about a pipeline that has not made progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// Progress resumed or the wait is still within the stall budget.
    Wait,
    /// Stalled: force a bounded restart of the receive path.
    Restart,
    /// Stalled and the restart budget is exhausted: give up.
    Abort,
}

/// Decides what a stalled dispatch slot wait means. Pure, so the
/// policy is unit-testable without staging an actual hang: restart
/// while the budget lasts, abort once `restarts` reaches
/// `max_restarts`.
pub fn watchdog_verdict(
    waited: Duration,
    stall_timeout: Duration,
    progress_before: u64,
    progress_now: u64,
    restarts: u64,
    max_restarts: u64,
) -> WatchdogVerdict {
    if progress_now != progress_before || waited < stall_timeout {
        return WatchdogVerdict::Wait;
    }
    if restarts >= max_restarts {
        WatchdogVerdict::Abort
    } else {
        WatchdogVerdict::Restart
    }
}

/// Static configuration of one serve campaign (the hot-reloadable half
/// lives in [`ServeParams`]).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Tick budget (0 = run until a drain is requested).
    pub ticks: u64,
    /// Wall-clock tick period (the paper's Δ; `ZERO` = free-running).
    pub delta: Duration,
    /// Master seed for traffic, synthesis and chaos.
    pub seed: u64,
    /// Worker threads in the receive pool.
    pub workers: usize,
    /// Ingest ring capacity in subframes.
    pub queue_capacity: usize,
    /// SLO evaluation window in ticks.
    pub window: u64,
    /// Power-governance policy for the pressure-wrapped governor.
    pub policy: NapPolicy,
    /// Initial (and reload-base) service parameters.
    pub params: ServeParams,
    /// Seeded ingest chaos (stall / flood / malformed), if any.
    pub faults: Option<IngestFaults>,
    /// Inject a worker kill at this tick (self-healing drill).
    pub kill_worker_at: Option<u64>,
    /// Force a watchdog restart at this tick (restart drill; the live
    /// detection path uses `stall_timeout`).
    pub force_restart_at: Option<u64>,
    /// Apply these parameters at this tick (programmatic hot reload;
    /// the CLI reloads from `--config` instead).
    pub reload_at: Option<(u64, ServeParams)>,
    /// Queue-wait budget in ticks before a subframe counts as a
    /// deadline miss.
    pub deadline_ticks: u64,
    /// Dispatch-slot wait beyond which the watchdog calls the pipeline
    /// stalled.
    pub stall_timeout: Duration,
    /// Watchdog restarts allowed before the run aborts.
    pub max_restarts: u64,
    /// Use the exact log-sum-exp demapper until degraded (the batch
    /// path's default is max-log, `false`).
    pub exact_demap: bool,
    /// Dispatched-but-incomplete subframes allowed before dispatch
    /// blocks (bounds memory on slow hosts).
    pub max_in_flight: usize,
    /// Verify decoded bytes against the serial golden reference at
    /// drain time.
    pub verify: bool,
}

impl ServeConfig {
    /// A campaign of `ticks` ticks from `seed` with library defaults.
    pub fn new(ticks: u64, seed: u64) -> Self {
        ServeConfig {
            ticks,
            delta: Duration::ZERO,
            seed,
            workers: 4,
            queue_capacity: 16,
            window: 40,
            policy: NapPolicy::NapIdle,
            params: ServeParams::default(),
            faults: None,
            kill_worker_at: None,
            force_restart_at: None,
            reload_at: None,
            deadline_ticks: 3,
            stall_timeout: Duration::from_secs(5),
            max_restarts: 3,
            exact_demap: false,
            max_in_flight: 8,
            verify: true,
        }
    }
}

/// One SLO window's record in the report.
#[derive(Clone, Debug)]
pub struct ServeWindow {
    /// The verdict from the tracker.
    pub verdict: WindowVerdict,
    /// Was ingest chaos (stall or flood) active during the window?
    pub chaos_active: bool,
}

/// Everything a finished (drained) campaign knows about itself.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Final admission/lifecycle counter snapshot.
    pub snapshot: ServiceSnapshot,
    /// Per-window SLO verdicts with chaos annotations.
    pub windows: Vec<ServeWindow>,
    /// First tick each escalation tier engaged (reject, shed, degrade).
    pub first_tier_tick: [Option<u64>; 3],
    /// Overload episodes observed.
    pub episodes: u64,
    /// Lifecycle transitions in order.
    pub lifecycle: Vec<LifecycleEvent>,
    /// FNV-1a 64 over all completed rows, in dispatch order.
    pub fingerprint: u64,
    /// Golden verification failure, if verification ran and failed.
    pub verify_error: Option<String>,
    /// Whether golden verification ran.
    pub verified: bool,
    /// Why the loop drained.
    pub drain_reason: DrainReason,
    /// Ticks actually served before draining.
    pub ticks_run: u64,
    /// Subframes dispatched into the pool.
    pub dispatched: u64,
    /// CRC-passing user decodes.
    pub crc_pass: u64,
    /// User decodes completed.
    pub jobs_completed: u64,
    /// Worker respawns observed (self-healing drill).
    pub worker_respawns: u64,
    /// Boundaries where queue pressure raised the governor's target.
    pub boosted_boundaries: u64,
    /// Wall-clock campaign duration.
    pub elapsed: Duration,
    /// Wall-clock drain duration (drain start to artifacts ready).
    pub drain_elapsed: Duration,
    /// Host wall-clock dispatch→complete latency percentiles (ns);
    /// NOT part of the determinism contract.
    pub latency_p50_ns: u64,
    /// p99 of the same.
    pub latency_p99_ns: u64,
    /// The SERVE.json document.
    pub json: String,
    /// The OpenMetrics exposition.
    pub openmetrics: String,
}

impl ServeOutcome {
    /// `true` when every *calm* window (no ingest chaos active) met
    /// its SLOs — the health test the exit code reflects. Chaos
    /// windows are expected to burn budget; that is what they are for.
    pub fn calm_windows_healthy(&self) -> bool {
        self.windows
            .iter()
            .filter(|w| !w.chaos_active)
            .all(|w| w.verdict.ok())
    }
}

/// A queued arrival: what the front door admitted, when.
struct Admitted {
    arrival_tick: u64,
    sf: SubframeConfig,
}

/// Deterministic per-tick accounting for one SLO window.
#[derive(Default)]
struct WindowAccum {
    subframes: u64,
    misses: u64,
    jobs: u64,
    shed_jobs: u64,
    chaos_active: bool,
}

/// A dispatched subframe's bookkeeping row.
struct DispatchRow {
    /// The inputs actually decoded.
    inputs: Vec<Arc<UserInput>>,
    /// Result slots, filled by completion callbacks.
    results: Vec<Arc<OnceLock<UserResult>>>,
    /// Whether the row was demapped exactly.
    exact: bool,
}

/// Runs one serve campaign to drain. See the module docs for the
/// loop's structure.
///
/// # Errors
///
/// Returns a descriptive string when the pool cannot be spawned, the
/// watchdog exhausts its restart budget, or (with `verify`) the
/// decoded bytes diverge from the serial reference.
pub fn run_serve(cfg: &ServeConfig, control: &ServeControl) -> Result<ServeOutcome, String> {
    let pool = TaskPool::with_config(PoolConfig {
        n_workers: cfg.workers,
        pin_workers: false,
    })
    .map_err(|e| format!("failed to start the worker pool: {e}"))?;
    let handle = pool.handle();
    let planner = Arc::new(FftPlanner::new());
    let cell = CellConfig::with_antennas(2);

    let mut params = cfg.params.clone();
    let mut escalation =
        EscalationState::with_delays(params.ladder, params.shed_after, params.degrade_after);
    let mut bucket = TokenBucket::per_tick(params.rate_milli, params.burst);
    let mut tracker = SloTracker::new(params.spec);

    let queue: IngestQueue<Admitted> = IngestQueue::new(cfg.queue_capacity);
    let counters = Arc::new(ServiceCounters::new());
    let faults = cfg
        .faults
        .clone()
        .unwrap_or_else(|| IngestFaults::quiet(cfg.seed));

    // The paper's Eq. 3 slopes, fitted offline once: serve reuses a
    // flat library calibration rather than re-running the estimator's
    // calibration campaign at startup (the governor's *composition*
    // with backpressure is what serve exercises; absolute walltime
    // fidelity stays with `lte-sim govern`).
    let estimator = WorkloadEstimator::from_slopes([[0.002, 0.003, 0.004]; 4]);
    let controller = CoreController {
        max_cores: cfg.workers,
        min_cores: 1,
        margin: 1,
    };
    let mut governor = PressureGovernor::new(
        PolicyGovernor::new(cfg.policy, estimator, controller),
        cfg.workers,
    );

    // Input pool: synthesised once per distinct user config, in
    // encounter order from the campaign seed — the same unique-input
    // pool discipline as the batch benchmark, so admission order (which
    // is deterministic) fully determines every payload bit.
    let mut input_cache: HashMap<UserConfig, Arc<UserInput>> = HashMap::new();
    let mut synth_rng = Xoshiro256::seed_from_u64(cfg.seed);
    let turbo = TurboMode::Passthrough;
    let input_for = |user: &UserConfig,
                     cache: &mut HashMap<UserConfig, Arc<UserInput>>,
                     rng: &mut Xoshiro256|
     -> Arc<UserInput> {
        if let Some(input) = cache.get(user) {
            return Arc::clone(input);
        }
        planner.prewarm(std::iter::once(user.prbs));
        prewarm_subblock(std::iter::once(user.bits_per_subframe()));
        prewarm_references(&cell, user);
        let input = Arc::new(synthesize_user_with_mode(
            &cell,
            user,
            turbo,
            SERVE_SNR_DB,
            rng,
        ));
        cache.insert(*user, Arc::clone(&input));
        input
    };

    // Shared completion-side state.
    let in_flight: Arc<(Mutex<usize>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
    let crc_pass = Arc::new(AtomicU64::new(0));
    let jobs_completed = Arc::new(AtomicU64::new(0));
    let completed_rows = Arc::new(AtomicU64::new(0));
    let latency = Arc::new(Histogram::new());

    let mut rows: Vec<DispatchRow> = Vec::new();
    let mut windows: Vec<ServeWindow> = Vec::new();
    let mut accum = WindowAccum::default();
    let mut lifecycle = vec![LifecycleEvent {
        tick: 0,
        state: "running".into(),
        reason: format!(
            "traffic={} workers={} queue={}",
            params.traffic.name(),
            cfg.workers,
            cfg.queue_capacity
        ),
    }];
    let mut first_tier_tick: [Option<u64>; 3] = [None; 3];
    let mut restarts = 0u64;
    // Consecutive deadline-missed pops. With service rate equal to the
    // nominal arrival rate, a flood leaves a stale backlog at constant
    // depth — below every fill watermark, yet missing every deadline.
    // A streak longer than the deadline budget forces the episode open
    // until the backlog drains and pops are fresh again.
    let mut miss_streak: u64 = 0;
    let window_len = cfg.window.max(1);

    let start = Instant::now();
    let mut tick: u64 = 0;
    let drain_reason;
    loop {
        // ---- Tick boundary: control plane first. -------------------
        if control.drain_requested() {
            drain_reason = DrainReason::Requested;
            break;
        }
        if cfg.ticks > 0 && tick >= cfg.ticks {
            drain_reason = DrainReason::CampaignComplete;
            break;
        }
        pace_until(start + cfg.delta.saturating_mul(tick as u32));

        let staged = control.take_reload().or_else(|| {
            cfg.reload_at
                .as_ref()
                .filter(|(at, _)| *at == tick)
                .map(|(_, p)| p.clone())
        });
        if let Some(next) = staged {
            // Apply at the boundary: escalation, rate limiting and SLO
            // budgets restart under the new parameters; nothing
            // in-flight is dropped.
            params = next;
            escalation = EscalationState::with_delays(
                params.ladder,
                params.shed_after,
                params.degrade_after,
            );
            bucket = TokenBucket::per_tick(params.rate_milli, params.burst);
            tracker = SloTracker::new(params.spec);
            counters.reload();
            lifecycle.push(LifecycleEvent {
                tick,
                state: "reload".into(),
                reason: format!("traffic={}", params.traffic.name()),
            });
        }

        if cfg.kill_worker_at == Some(tick) {
            // Self-healing drill: one worker panics, supervision
            // respawns it; no admitted work is lost.
            pool.inject_worker_kill();
        }
        if cfg.force_restart_at == Some(tick) {
            restart_pipeline(&pool, cfg.workers);
            restarts += 1;
            counters.watchdog_restart();
            lifecycle.push(LifecycleEvent {
                tick,
                state: "watchdog-restart".into(),
                reason: "forced (drill)".into(),
            });
        }

        // ---- Escalation decision for this tick. --------------------
        // The miss-streak guard is a safety net, not the primary
        // trigger: a growing flood should engage the fill watermarks
        // and walk the whole ladder over a deep queue, so the guard
        // waits out a full escalation's worth of ticks before it
        // declares the service stuck on a stale backlog.
        let fill = queue.fill();
        let stuck_after = cfg.deadline_ticks + params.shed_after + params.degrade_after;
        let pressure = tick_pressure(fill, miss_streak, stuck_after, params.ladder.reject_fill());
        let decision = escalation.observe(pressure);
        for (slot, engaged) in first_tier_tick.iter_mut().zip([
            decision.reject_new,
            decision.shed_users,
            decision.degrade_demap,
        ]) {
            if engaged && slot.is_none() {
                *slot = Some(tick);
            }
        }

        // ---- Arrivals through the front door. ----------------------
        accum.chaos_active |= faults.stalled(tick) || faults.flood_factor(tick) > 1;
        if !faults.stalled(tick) {
            let base = params.traffic.arrivals(cfg.seed, tick);
            let flood = faults.flood_factor(tick);
            let mut index = 0u64;
            // A flood replays the nominal offered load `flood` times in
            // the same tick; the queue treats every copy as new work.
            for _round in 0..flood {
                for sf in &base {
                    counters.arrival();
                    let malformed = faults.malformed(tick, index);
                    index += 1;
                    if malformed {
                        counters.reject_malformed();
                        continue;
                    }
                    if !bucket.try_take() {
                        counters.reject_rate_limited();
                        continue;
                    }
                    if decision.reject_new {
                        counters.reject_backpressure();
                        continue;
                    }
                    let item = Admitted {
                        arrival_tick: tick,
                        sf: sf.clone(),
                    };
                    if queue.try_push(item).is_err() {
                        counters.reject_backpressure();
                    } else {
                        counters.admit();
                    }
                }
            }
        }
        bucket.tick();
        counters.set_queue_depth(queue.depth() as u64);

        // ---- Service: pop and dispatch at most one subframe. -------
        if queue.depth() == 0 {
            // No backlog: the service is keeping up, whatever the
            // recent history says.
            miss_streak = 0;
        }
        if let Some(item) = queue.try_pop() {
            counters.set_queue_depth(queue.depth() as u64);
            accum.subframes += 1;
            let waited_ticks = tick.saturating_sub(item.arrival_tick);
            if waited_ticks > cfg.deadline_ticks {
                counters.deadline_miss();
                accum.misses += 1;
                miss_streak += 1;
            } else {
                miss_streak = 0;
            }

            // Shed cheapest-first, identical to the batch path's
            // ShedUsers policy: lowest PRB count (then index) goes
            // first, until at most half the PRB load remains; always
            // shed one, always keep one.
            let mut submit: Vec<usize> = (0..item.sf.n_users()).collect();
            if decision.shed_users && submit.len() > 1 {
                let total: usize = item.sf.users.iter().map(|u| u.prbs).sum();
                submit.sort_by_key(|&i| (item.sf.users[i].prbs, i));
                let mut kept = total;
                let mut shed = 0usize;
                while submit.len() > 1 && (shed == 0 || kept * 2 > total) {
                    kept -= item.sf.users[submit[0]].prbs;
                    submit.remove(0);
                    shed += 1;
                }
                submit.sort_unstable();
                counters.shed(shed as u64);
                accum.shed_jobs += shed as u64;
            }
            let exact = cfg.exact_demap && !decision.degrade_demap;
            if decision.degrade_demap {
                counters.degraded();
            }

            // Pressure-coupled governance at the dispatch boundary:
            // the inner PolicyGovernor sees the submitted users (Eq. 4)
            // while the wrapper floors the target by queue occupancy.
            let loads: Vec<UserLoad> = submit
                .iter()
                .map(|&i| UserLoad::from(&item.sf.users[i]))
                .collect();
            governor.set_pressure(fill);
            let mut substrate = &pool;
            governed_boundary(&mut substrate, &mut governor, tick as usize, &loads);

            // Bound the dispatch pipeline; a stall here is what the
            // watchdog turns into a bounded restart.
            wait_for_slot(
                &in_flight,
                cfg.max_in_flight.max(1),
                cfg.stall_timeout,
                &completed_rows,
                &mut restarts,
                cfg.max_restarts,
                &pool,
                cfg.workers,
                &counters,
                &mut lifecycle,
                tick,
            )?;

            let inputs: Vec<Arc<UserInput>> = submit
                .iter()
                .map(|&i| input_for(&item.sf.users[i], &mut input_cache, &mut synth_rng))
                .collect();
            let results: Vec<Arc<OnceLock<UserResult>>> =
                submit.iter().map(|_| Arc::new(OnceLock::new())).collect();
            accum.jobs += submit.len() as u64;

            let open = Arc::new(AtomicU64::new(submit.len() as u64));
            let dispatched_ns = start.elapsed().as_nanos() as u64;
            if !submit.is_empty() {
                *in_flight.0.lock().unwrap_or_else(PoisonError::into_inner) += 1;
            }
            for (slot, input) in results.iter().zip(&inputs) {
                let slot = Arc::clone(slot);
                let open = Arc::clone(&open);
                let in_flight = Arc::clone(&in_flight);
                let crc_pass = Arc::clone(&crc_pass);
                let jobs_completed = Arc::clone(&jobs_completed);
                let completed_rows = Arc::clone(&completed_rows);
                let latency = Arc::clone(&latency);
                let counters_cb = Arc::clone(&counters);
                let start_cb = start;
                spawn_user_graph(
                    &handle,
                    &cell,
                    input,
                    turbo,
                    &planner,
                    exact,
                    Box::new(move |result| {
                        if result.crc_ok {
                            crc_pass.fetch_add(1, Ordering::Relaxed);
                        }
                        jobs_completed.fetch_add(1, Ordering::Relaxed);
                        slot.set(result).expect("each user slot is written once");
                        if open.fetch_sub(1, Ordering::SeqCst) == 1 {
                            counters_cb.completed();
                            completed_rows.fetch_add(1, Ordering::SeqCst);
                            latency.record(
                                (start_cb.elapsed().as_nanos() as u64)
                                    .saturating_sub(dispatched_ns),
                            );
                            let (lock, cv) = &*in_flight;
                            *lock.lock().unwrap_or_else(PoisonError::into_inner) -= 1;
                            cv.notify_one();
                        }
                    }),
                );
            }
            rows.push(DispatchRow {
                inputs,
                results,
                exact,
            });
            if submit.is_empty() {
                // A fully-shed row still completes immediately.
                counters.completed();
                completed_rows.fetch_add(1, Ordering::SeqCst);
            }
        }

        // ---- Window close. -----------------------------------------
        tick += 1;
        if tick.is_multiple_of(window_len) {
            close_window(&mut tracker, &mut windows, &mut accum, &latency);
        }
    }

    // ---- Drain. ----------------------------------------------------
    let drain_start = Instant::now();
    lifecycle.push(LifecycleEvent {
        tick,
        state: "draining".into(),
        reason: drain_reason.name().into(),
    });
    queue.close();
    let leftover = queue.drain_remaining();
    if !leftover.is_empty() {
        // Admitted but never dispatched: shed whole subframes rather
        // than overrun the drain deadline decoding a backlog.
        counters.drain_shed(leftover.len() as u64);
    }
    pool.wait_all();
    if accum.subframes > 0 || accum.jobs > 0 || accum.chaos_active {
        close_window(&mut tracker, &mut windows, &mut accum, &latency);
    }
    governor.inner_mut().close(None);
    let drain_elapsed = drain_start.elapsed();
    let elapsed = start.elapsed();
    lifecycle.push(LifecycleEvent {
        tick,
        state: "drained".into(),
        reason: format!("{} rows, {} leftover shed", rows.len(), leftover.len()),
    });

    // ---- Assemble results, fingerprint, verify. --------------------
    let result_rows: Vec<Vec<UserResult>> = rows
        .iter()
        .map(|row| {
            row.results
                .iter()
                .map(|slot| slot.get().expect("pool drained").clone())
                .collect()
        })
        .collect();
    let fingerprint = fingerprint_results(&result_rows);

    let mut verify_error = None;
    let all_max_log = rows.iter().all(|r| !r.exact);
    let verified = cfg.verify && all_max_log;
    if verified {
        let golden_inputs: Vec<Vec<UserInput>> = rows
            .iter()
            .map(|row| row.inputs.iter().map(|i| (**i).clone()).collect())
            .collect();
        let golden = GoldenRecord::build(&cell, &golden_inputs, turbo);
        if let Err(e) = golden.verify(&result_rows) {
            verify_error = Some(e.to_string());
        }
    }

    let latency_snapshot = latency.snapshot();
    let snapshot = counters.snapshot();
    let outcome = ServeOutcome {
        snapshot,
        windows,
        first_tier_tick,
        episodes: escalation.episodes(),
        lifecycle,
        fingerprint,
        verify_error,
        verified,
        drain_reason,
        ticks_run: tick,
        dispatched: rows.len() as u64,
        crc_pass: crc_pass.load(Ordering::Relaxed),
        jobs_completed: jobs_completed.load(Ordering::Relaxed),
        worker_respawns: pool.worker_respawns(),
        boosted_boundaries: governor.boosted_boundaries(),
        elapsed,
        drain_elapsed,
        latency_p50_ns: latency_snapshot.quantile(0.50),
        latency_p99_ns: latency_snapshot.quantile(0.99),
        json: String::new(),
        openmetrics: String::new(),
    };
    let json = render_json(cfg, &outcome);
    let om = render_openmetrics(&outcome);
    Ok(ServeOutcome {
        json,
        openmetrics: om,
        ..outcome
    })
}

/// Closes one SLO window: evaluates the tracker and resets the
/// accumulator.
fn close_window(
    tracker: &mut SloTracker,
    windows: &mut Vec<ServeWindow>,
    accum: &mut WindowAccum,
    latency: &Histogram,
) {
    let p99 = latency.snapshot().quantile(0.99);
    let verdict = tracker.observe(&WindowObservation {
        subframes: accum.subframes,
        deadline_misses: accum.misses,
        jobs: accum.jobs,
        shed_jobs: accum.shed_jobs,
        p99_latency: p99,
    });
    windows.push(ServeWindow {
        verdict,
        chaos_active: accum.chaos_active,
    });
    *accum = WindowAccum::default();
}

/// The watchdog's bounded restart: kick one worker (the self-healing
/// supervisor respawns it, shaking loose a wedged deque) and restore
/// the pool to full width in case the governor had parked cores.
fn restart_pipeline(pool: &TaskPool, workers: usize) {
    pool.inject_worker_kill();
    pool.set_active_workers(workers);
}

/// Waits for an in-flight dispatch slot, escalating to the watchdog
/// when no completion progress happens within `stall_timeout`.
#[allow(clippy::too_many_arguments)]
fn wait_for_slot(
    in_flight: &Arc<(Mutex<usize>, Condvar)>,
    window: usize,
    stall_timeout: Duration,
    completed_rows: &AtomicU64,
    restarts: &mut u64,
    max_restarts: u64,
    pool: &TaskPool,
    workers: usize,
    counters: &ServiceCounters,
    lifecycle: &mut Vec<LifecycleEvent>,
    tick: u64,
) -> Result<(), String> {
    let (lock, cv) = &**in_flight;
    let mut count = lock.lock().unwrap_or_else(PoisonError::into_inner);
    while *count >= window {
        let progress_before = completed_rows.load(Ordering::SeqCst);
        let waited_from = Instant::now();
        let (next, timeout) = cv
            .wait_timeout(count, stall_timeout)
            .unwrap_or_else(PoisonError::into_inner);
        count = next;
        if !timeout.timed_out() {
            continue;
        }
        let progress_now = completed_rows.load(Ordering::SeqCst);
        match watchdog_verdict(
            waited_from.elapsed(),
            stall_timeout,
            progress_before,
            progress_now,
            *restarts,
            max_restarts,
        ) {
            WatchdogVerdict::Wait => {}
            WatchdogVerdict::Restart => {
                restart_pipeline(pool, workers);
                *restarts += 1;
                counters.watchdog_restart();
                lifecycle.push(LifecycleEvent {
                    tick,
                    state: "watchdog-restart".into(),
                    reason: format!("no completion progress in {stall_timeout:?}"),
                });
            }
            WatchdogVerdict::Abort => {
                return Err(format!(
                    "pipeline stalled: no completion progress after {max_restarts} \
                     watchdog restarts"
                ));
            }
        }
    }
    Ok(())
}

/// Renders SERVE.json (schema `lte-sim-serve-v1`). Everything outside
/// the `host` section is deterministic for a given config and seed.
fn render_json(cfg: &ServeConfig, o: &ServeOutcome) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":\"lte-sim-serve-v1\",");
    out.push_str(&format!(
        "\"config\":{{\"ticks\":{},\"seed\":{},\"workers\":{},\"queue_capacity\":{},\
         \"window\":{},\"policy\":\"{}\",\"traffic\":\"{}\",\"deadline_ticks\":{},\
         \"rate_milli\":{},\"burst\":{},\"reject_fill\":{},\"shed_fill\":{},\
         \"degrade_fill\":{},\"chaos\":{}}},",
        cfg.ticks,
        cfg.seed,
        cfg.workers,
        cfg.queue_capacity,
        cfg.window,
        cfg.policy.name(),
        cfg.params.traffic.name(),
        cfg.deadline_ticks,
        cfg.params.rate_milli,
        cfg.params.burst,
        f64_json(cfg.params.ladder.reject_fill()),
        f64_json(cfg.params.ladder.shed_fill()),
        f64_json(cfg.params.ladder.degrade_fill()),
        cfg.faults.is_some(),
    ));
    out.push_str(&format!("\"service\":{},", o.snapshot.to_json()));
    out.push_str(&format!(
        "\"escalation\":{{\"first_reject_tick\":{},\"first_shed_tick\":{},\
         \"first_degrade_tick\":{},\"episodes\":{}}},",
        json_opt(o.first_tier_tick[0]),
        json_opt(o.first_tier_tick[1]),
        json_opt(o.first_tier_tick[2]),
        o.episodes,
    ));
    let windows: Vec<String> = o
        .windows
        .iter()
        .map(|w| {
            format!(
                "{{\"verdict\":{},\"chaos_active\":{}}}",
                w.verdict.to_json(),
                w.chaos_active
            )
        })
        .collect();
    out.push_str(&format!(
        "\"slo\":{{\"windows\":[{}],\"calm_windows_healthy\":{}}},",
        windows.join(","),
        o.calm_windows_healthy(),
    ));
    let lifecycle: Vec<String> = o
        .lifecycle
        .iter()
        .map(|e| {
            format!(
                "{{\"tick\":{},\"state\":\"{}\",\"reason\":\"{}\"}}",
                e.tick,
                e.state,
                e.reason.replace('"', "'")
            )
        })
        .collect();
    out.push_str(&format!("\"lifecycle\":[{}],", lifecycle.join(",")));
    out.push_str(&format!(
        "\"quality\":{{\"dispatched\":{},\"jobs_completed\":{},\"crc_pass\":{},\
         \"fingerprint\":\"{:016x}\",\"verified\":{},\"verify_error\":{}}},",
        o.dispatched,
        o.jobs_completed,
        o.crc_pass,
        o.fingerprint,
        o.verified,
        match &o.verify_error {
            Some(e) => format!("\"{}\"", e.replace('"', "'")),
            None => "null".into(),
        },
    ));
    out.push_str(&format!(
        "\"power\":{{\"policy\":\"{}\",\"boosted_boundaries\":{}}},",
        cfg.policy.name(),
        o.boosted_boundaries,
    ));
    out.push_str(&format!(
        "\"lifecycle_summary\":{{\"drain_reason\":\"{}\",\"ticks_run\":{},\
         \"worker_respawns\":{},\"watchdog_restarts\":{},\"reloads\":{}}},",
        o.drain_reason.name(),
        o.ticks_run,
        o.worker_respawns,
        o.snapshot.watchdog_restarts,
        o.snapshot.reloads,
    ));
    out.push_str(&format!(
        "\"host\":{{\"elapsed_ms\":{},\"drain_ms\":{},\"latency_p50_ns\":{},\
         \"latency_p99_ns\":{}}}}}",
        o.elapsed.as_millis(),
        o.drain_elapsed.as_millis(),
        o.latency_p50_ns,
        o.latency_p99_ns,
    ));
    out
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |t| t.to_string())
}

/// Renders the OpenMetrics exposition of the deterministic counters.
fn render_openmetrics(o: &ServeOutcome) -> String {
    let registry = MetricsRegistry::new();
    o.snapshot.export(&registry, "serve.");
    registry.set_counter("serve.dispatched", o.dispatched);
    registry.set_counter("serve.jobs_completed", o.jobs_completed);
    registry.set_counter("serve.crc_pass", o.crc_pass);
    registry.set_counter("serve.episodes", o.episodes);
    registry.set_counter("serve.ticks_run", o.ticks_run);
    registry.set_counter(
        "serve.slo_violating_windows",
        o.windows.iter().filter(|w| !w.verdict.ok()).count() as u64,
    );
    registry.set_gauge(
        "serve.calm_windows_healthy",
        if o.calm_windows_healthy() { 1.0 } else { 0.0 },
    );
    let mut om = OpenMetrics::new();
    om.registry(&registry);
    om.render()
}

/// The escalation pressure observed for one tick: the raw queue fill,
/// boosted to at least the reject watermark only once the consecutive
/// deadline-miss streak *exceeds* `stuck_after` (a full escalation's
/// worth of ticks). The boundary is deliberate: a streak that reaches
/// exactly `stuck_after` and then sees a fresh pop (resetting the
/// streak one tick before the guard) never engages the boost — the
/// guard is a safety net for a service stuck on a stale backlog, not a
/// hair trigger on transient miss runs.
fn tick_pressure(fill: f64, miss_streak: u64, stuck_after: u64, reject_fill: f64) -> f64 {
    if miss_streak > stuck_after {
        fill.max(reject_fill)
    } else {
        fill
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_streak_guard_boundary_is_strictly_greater() {
        let reject = 0.70;
        let stuck_after = 6;
        // Below the fill watermarks throughout: only the streak decides.
        let fill = 0.2;
        // Exactly at the guard threshold: no boost yet.
        assert_eq!(tick_pressure(fill, stuck_after, stuck_after, reject), fill);
        // One past it: boosted to the reject watermark.
        assert_eq!(
            tick_pressure(fill, stuck_after + 1, stuck_after, reject),
            reject
        );
        // A deeper actual fill is never reduced by the boost.
        assert_eq!(
            tick_pressure(0.9, stuck_after + 1, stuck_after, reject),
            0.9
        );
    }

    #[test]
    fn miss_streak_reset_one_tick_before_guard_never_boosts() {
        // The serve loop resets the streak on any fresh (in-deadline)
        // pop. A workload that misses `stuck_after` deadlines in a row
        // and then recovers — resetting one tick before the guard —
        // must never see boosted pressure, no matter how many times the
        // pattern repeats.
        let reject = 0.70;
        let stuck_after = 4;
        let fill = 0.3;
        let mut miss_streak = 0u64;
        for tick in 0..100u64 {
            // Miss for `stuck_after` ticks, then one fresh pop.
            if tick % (stuck_after + 1) == stuck_after {
                miss_streak = 0;
            } else {
                miss_streak += 1;
            }
            assert_eq!(
                tick_pressure(fill, miss_streak, stuck_after, reject),
                fill,
                "tick {tick} (streak {miss_streak}) must not engage the guard"
            );
        }
        // Remove the reset: the same pattern crosses the guard exactly
        // one tick after the streak passes stuck_after.
        miss_streak = 0;
        let mut first_boost = None;
        for tick in 0..100u64 {
            miss_streak += 1;
            if tick_pressure(fill, miss_streak, stuck_after, reject) > fill {
                first_boost = Some(tick);
                break;
            }
        }
        assert_eq!(first_boost, Some(stuck_after));
    }

    #[test]
    fn traffic_models_are_deterministic_and_shaped() {
        for model in [
            TrafficModel::FullBuffer,
            TrafficModel::BurstyIot,
            TrafficModel::Voip,
        ] {
            for tick in 0..64 {
                assert_eq!(
                    model.arrivals(9, tick),
                    model.arrivals(9, tick),
                    "{model:?} tick {tick} not reproducible"
                );
            }
        }
        // Full buffer never goes silent.
        assert!((0..64).all(|t| !TrafficModel::FullBuffer.arrivals(1, t).is_empty()));
        // VoIP has a real duty cycle.
        let voip_on = (0..80)
            .filter(|&t| !TrafficModel::Voip.arrivals(1, t).is_empty())
            .count();
        assert_eq!(voip_on, 40);
        // Bursty IoT actually bursts.
        let burst_tick_arrivals = TrafficModel::BurstyIot.arrivals(1, 17);
        assert!(burst_tick_arrivals.len() > 1);
    }

    #[test]
    fn params_parse_overrides_and_rejects_garbage() {
        let p = ServeParams::parse(
            "# comment\n\
             traffic = voip\n\
             rate_milli=2000\n\
             burst=8\n\
             reject_fill=0.5\n\
             shed_fill=0.6\n\
             degrade_fill=0.7\n\
             max_miss_rate=0.02\n",
        )
        .expect("valid config");
        assert_eq!(p.traffic, TrafficModel::Voip);
        assert_eq!(p.rate_milli, 2000);
        assert_eq!(p.burst, 8);
        assert_eq!(p.ladder.reject_fill(), 0.5);
        assert_eq!(p.spec.max_miss_rate, 0.02);

        assert!(ServeParams::parse("nonsense").is_err());
        assert!(ServeParams::parse("bogus_key=1").is_err());
        assert!(ServeParams::parse("reject_fill=0.9\nshed_fill=0.5").is_err());
        assert!(ServeParams::parse("traffic=warp-drive").is_err());
    }

    #[test]
    fn watchdog_verdict_waits_restarts_then_aborts() {
        let t = Duration::from_secs(1);
        // Progress happened: wait, regardless of elapsed time.
        assert_eq!(watchdog_verdict(t, t, 3, 4, 0, 3), WatchdogVerdict::Wait);
        // No progress but within the stall budget: wait.
        assert_eq!(
            watchdog_verdict(Duration::from_millis(10), t, 3, 3, 0, 3),
            WatchdogVerdict::Wait
        );
        // Stalled with restart budget: restart.
        assert_eq!(watchdog_verdict(t, t, 3, 3, 0, 3), WatchdogVerdict::Restart);
        assert_eq!(watchdog_verdict(t, t, 3, 3, 2, 3), WatchdogVerdict::Restart);
        // Budget exhausted: abort.
        assert_eq!(watchdog_verdict(t, t, 3, 3, 3, 3), WatchdogVerdict::Abort);
    }

    #[test]
    fn serve_control_drain_and_reload_round_trip() {
        let c = ServeControl::new();
        assert!(!c.drain_requested());
        c.request_drain();
        assert!(c.drain_requested());
        assert!(c.take_reload().is_none());
        c.request_reload(ServeParams::default());
        assert!(c.take_reload().is_some());
        assert!(c.take_reload().is_none(), "reload is consumed once");
    }

    #[test]
    fn quiet_voip_campaign_drains_clean_and_healthy() {
        let mut cfg = ServeConfig::new(60, 5);
        cfg.workers = 2;
        cfg.window = 20;
        cfg.params.traffic = TrafficModel::Voip;
        let outcome = run_serve(&cfg, &ServeControl::new()).expect("serve");
        assert_eq!(outcome.drain_reason, DrainReason::CampaignComplete);
        assert!(outcome.snapshot.balanced(), "every arrival accounted for");
        assert!(outcome.calm_windows_healthy());
        assert!(outcome.verified && outcome.verify_error.is_none());
        // 60 ticks of the 40-tick duty cycle: talk spurts cover ticks
        // 0–19 and 40–59, one subframe per active tick.
        assert_eq!(outcome.snapshot.admitted, 40);
        assert_eq!(
            outcome.snapshot.completed_subframes + outcome.snapshot.drain_shed_subframes,
            outcome.snapshot.admitted
        );
        assert!(outcome.json.starts_with("{\"schema\":\"lte-sim-serve-v1\""));
        assert!(outcome.openmetrics.contains("serve_crc_pass"));
    }
}
