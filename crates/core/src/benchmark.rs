//! The executable benchmark (§IV of the paper).
//!
//! A maintenance loop creates input parameters and data for each
//! subframe and dispatches it to the worker pool every DELTA; each user
//! becomes a job whose pipeline phases fan out into work-stealing tasks
//! exactly as the paper describes:
//!
//! 1. channel estimation — one task per (rx antenna, layer);
//! 2. combiner weights — on the user thread;
//! 3. antenna combining + IFFT — one task per (slot, symbol, layer);
//! 4. deinterleave, soft demap, turbo (pass-through), CRC — user thread.
//!
//! Subframe input data are synthesised once per distinct user
//! configuration and reused (§IV-B1: data sets are "created for multiple
//! subframes and then reused across all dispatched subframes").

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use lte_dsp::fft::FftPlanner;
use lte_dsp::Xoshiro256;
use lte_phy::combiner::{combine_symbol, CombinerWeights};
use lte_phy::estimator::{estimate_path, ChannelEstimate};
use lte_phy::grid::UserInput;
use lte_phy::params::{
    CellConfig, SubframeConfig, TurboMode, UserConfig, DATA_SYMBOLS_PER_SLOT, SLOTS_PER_SUBFRAME,
};
use lte_phy::receiver::{demap_symbol, finish_user, UserResult};
use lte_phy::tx::synthesize_user_with_mode;
use lte_phy::verify::{GoldenRecord, VerifyError};
use lte_sched::TaskPool;

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchmarkConfig {
    /// Worker threads (the paper maps one per core).
    pub workers: usize,
    /// Dispatch interval (the paper's DELTA; configurable so the
    /// benchmark "can run on hardware that cannot sustain a rate of one
    /// subframe per millisecond").
    pub delta: Duration,
    /// SNR for the synthesised channels, in dB.
    pub snr_db: f64,
    /// Turbo stage mode.
    pub turbo: TurboMode,
    /// RNG seed for data synthesis.
    pub seed: u64,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            delta: Duration::from_millis(5),
            snr_db: 30.0,
            turbo: TurboMode::Passthrough,
            seed: 42,
        }
    }
}

/// The outcome of a benchmark run.
#[derive(Debug)]
pub struct BenchmarkRun {
    /// Decoded results, `results[subframe][user]`.
    pub results: Vec<Vec<UserResult>>,
    /// Wall-clock duration of the parallel run.
    pub elapsed: Duration,
    /// Total useful processing time across workers (Eq. 1 sums).
    pub busy: Duration,
    /// Mean activity per Eq. 2 over the run.
    pub activity: f64,
    /// Fraction of users whose CRC passed.
    pub crc_pass_rate: f64,
}

/// The benchmark: input synthesis, dispatch, parallel processing and
/// golden-reference verification.
///
/// # Example
///
/// ```
/// use lte_uplink::{BenchmarkConfig, UplinkBenchmark};
/// use lte_model::{ParameterModel, RampModel};
/// use lte_phy::CellConfig;
///
/// let mut bench = UplinkBenchmark::new(CellConfig::default(), BenchmarkConfig {
///     workers: 2,
///     ..BenchmarkConfig::default()
/// });
/// let subframes = RampModel::new(1).subframes(3);
/// let run = bench.run(&subframes);
/// assert_eq!(run.results.len(), 3);
/// bench.verify(&subframes, &run).expect("parallel must match serial");
/// ```
pub struct UplinkBenchmark {
    cell: CellConfig,
    cfg: BenchmarkConfig,
    /// Synthesised inputs, reused across subframes with identical user
    /// configurations.
    input_cache: HashMap<UserConfig, Arc<UserInput>>,
    rng: Xoshiro256,
}

impl UplinkBenchmark {
    /// Creates a benchmark instance.
    pub fn new(cell: CellConfig, cfg: BenchmarkConfig) -> Self {
        UplinkBenchmark {
            cell,
            cfg,
            input_cache: HashMap::new(),
            rng: Xoshiro256::seed_from_u64(cfg.seed),
        }
    }

    /// The input data used for a user configuration (synthesised once,
    /// then reused — the paper's unique-input-data pool).
    pub fn input_for(&mut self, user: &UserConfig) -> Arc<UserInput> {
        if let Some(input) = self.input_cache.get(user) {
            return Arc::clone(input);
        }
        let input = Arc::new(synthesize_user_with_mode(
            &self.cell,
            user,
            self.cfg.turbo,
            self.cfg.snr_db,
            &mut self.rng,
        ));
        self.input_cache.insert(*user, Arc::clone(&input));
        input
    }

    /// Runs the parallel benchmark over a subframe sequence.
    pub fn run(&mut self, subframes: &[SubframeConfig]) -> BenchmarkRun {
        let pool = TaskPool::new(self.cfg.workers);
        let planner = Arc::new(FftPlanner::new());
        let cell = self.cell;
        let turbo = self.cfg.turbo;

        // Result slots, one per (subframe, user).
        let results: Arc<Vec<Vec<OnceLock<UserResult>>>> = Arc::new(
            subframes
                .iter()
                .map(|sf| (0..sf.n_users()).map(|_| OnceLock::new()).collect())
                .collect(),
        );

        // Pre-synthesise inputs on the maintenance thread (the paper does
        // this at initialisation).
        let inputs: Vec<Vec<Arc<UserInput>>> = subframes
            .iter()
            .map(|sf| sf.users.iter().map(|u| self.input_for(u)).collect())
            .collect();

        let start = Instant::now();
        let busy_start = pool.busy_nanos();
        // Maintenance loop: dispatch each subframe at its deadline.
        for (sf_idx, sf_inputs) in inputs.iter().enumerate() {
            let deadline = start + self.cfg.delta * sf_idx as u32;
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            for (user_idx, input) in sf_inputs.iter().enumerate() {
                let input = Arc::clone(input);
                let planner = Arc::clone(&planner);
                let results = Arc::clone(&results);
                pool.submit_job(move |p| {
                    let result = process_user_parallel(p, &cell, &input, turbo, &planner);
                    results[sf_idx][user_idx]
                        .set(result)
                        .expect("each user slot is written once");
                });
            }
        }
        pool.wait_all();
        let elapsed = start.elapsed();
        let busy = Duration::from_nanos(pool.busy_nanos() - busy_start);
        let activity = busy.as_secs_f64() / (self.cfg.workers as f64 * elapsed.as_secs_f64());

        let results: Vec<Vec<UserResult>> = Arc::try_unwrap(results)
            .expect("pool drained, no outstanding references")
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|slot| slot.into_inner().expect("every user processed"))
                    .collect()
            })
            .collect();
        let total_users: usize = results.iter().map(|r| r.len()).sum();
        let passed: usize = results
            .iter()
            .flat_map(|r| r.iter())
            .filter(|r| r.crc_ok)
            .count();
        BenchmarkRun {
            crc_pass_rate: if total_users == 0 {
                1.0
            } else {
                passed as f64 / total_users as f64
            },
            results,
            elapsed,
            busy,
            activity,
        }
    }

    /// Verifies a parallel run against the serial golden reference
    /// (§IV-D).
    ///
    /// # Errors
    ///
    /// Returns the first divergence found.
    pub fn verify(
        &mut self,
        subframes: &[SubframeConfig],
        run: &BenchmarkRun,
    ) -> Result<(), VerifyError> {
        let inputs: Vec<Vec<UserInput>> = subframes
            .iter()
            .map(|sf| {
                sf.users
                    .iter()
                    .map(|u| (*self.input_for(u)).clone())
                    .collect()
            })
            .collect();
        let golden = GoldenRecord::build(&self.cell, &inputs, self.cfg.turbo);
        golden.verify(&run.results)
    }
}

/// Processes one user on the pool with the paper's task decomposition.
pub(crate) fn process_user_parallel(
    pool: &TaskPool,
    cell: &CellConfig,
    input: &Arc<UserInput>,
    turbo: TurboMode,
    planner: &Arc<FftPlanner>,
) -> UserResult {
    let user = input.config;
    let n_rx = cell.n_rx;
    let n_layers = user.layers;

    // Phase 1: channel estimation, one task per (slot, rx, layer).
    let paths: Arc<Vec<Mutex<Option<Vec<lte_dsp::Complex32>>>>> = Arc::new(
        (0..SLOTS_PER_SUBFRAME * n_rx * n_layers)
            .map(|_| Mutex::new(None))
            .collect(),
    );
    let est_tasks: Vec<Box<dyn FnOnce() + Send>> = (0..SLOTS_PER_SUBFRAME)
        .flat_map(|slot| (0..n_rx).flat_map(move |rx| (0..n_layers).map(move |l| (slot, rx, l))))
        .map(|(slot, rx, layer)| {
            let input = Arc::clone(input);
            let planner = Arc::clone(planner);
            let paths = Arc::clone(&paths);
            let cell = *cell;
            Box::new(move || {
                let est = estimate_path(&cell, &input, slot, rx, layer, &planner);
                let idx = (slot * cell.n_rx + rx) * input.config.layers + layer;
                *paths[idx].lock().expect("path mutex") = Some(est);
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    pool.scope(est_tasks);

    // Combiner weights on the user thread (not parallelised — §III).
    let weights: Vec<CombinerWeights> = (0..SLOTS_PER_SUBFRAME)
        .map(|slot| {
            let mut est = ChannelEstimate::empty(n_rx, n_layers, user.subcarriers());
            for rx in 0..n_rx {
                for layer in 0..n_layers {
                    let idx = (slot * n_rx + rx) * n_layers + layer;
                    let path = paths[idx]
                        .lock()
                        .expect("path mutex")
                        .take()
                        .expect("estimation task completed");
                    est.set_path(rx, layer, path);
                }
            }
            CombinerWeights::mmse(&est, input.noise_var)
        })
        .collect();
    let weights = Arc::new(weights);

    // Phase 2: antenna combining + IFFT + demap, one task per
    // (slot, symbol, layer).
    let n_chunks = SLOTS_PER_SUBFRAME * DATA_SYMBOLS_PER_SLOT * n_layers;
    let llr_chunks: Arc<Vec<Mutex<Option<Vec<f32>>>>> =
        Arc::new((0..n_chunks).map(|_| Mutex::new(None)).collect());
    let combine_tasks: Vec<Box<dyn FnOnce() + Send>> = (0..SLOTS_PER_SUBFRAME)
        .flat_map(|slot| {
            (0..DATA_SYMBOLS_PER_SLOT)
                .flat_map(move |sym| (0..n_layers).map(move |l| (slot, sym, l)))
        })
        .map(|(slot, sym, layer)| {
            let input = Arc::clone(input);
            let planner = Arc::clone(planner);
            let weights = Arc::clone(&weights);
            let llr_chunks = Arc::clone(&llr_chunks);
            Box::new(move || {
                let combined = combine_symbol(&input, &weights[slot], slot, sym, layer, &planner);
                let llrs = demap_symbol(&input, &combined);
                let idx = (slot * DATA_SYMBOLS_PER_SLOT + sym) * input.config.layers + layer;
                *llr_chunks[idx].lock().expect("llr mutex") = Some(llrs);
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    pool.scope(combine_tasks);

    // Serial tail on the user thread.
    let mut llrs = Vec::with_capacity(user.bits_per_subframe());
    for chunk in llr_chunks.iter() {
        llrs.extend(
            chunk
                .lock()
                .expect("llr mutex")
                .take()
                .expect("combine task completed"),
        );
    }
    finish_user(input, turbo, &llrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_model::{ParameterModel, RampModel};

    fn quick_cfg() -> BenchmarkConfig {
        BenchmarkConfig {
            workers: 4,
            delta: Duration::from_millis(1),
            snr_db: 30.0,
            turbo: TurboMode::Passthrough,
            seed: 7,
        }
    }

    #[test]
    fn parallel_matches_serial_golden_reference() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        let subframes = RampModel::new(3).subframes(5);
        let run = bench.run(&subframes);
        bench
            .verify(&subframes, &run)
            .expect("parallel and serial must agree bit-exactly");
    }

    #[test]
    fn high_snr_run_passes_crc() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        // Small fixed allocation, clean channel.
        let subframes = vec![SubframeConfig::new(vec![UserConfig::new(
            4,
            1,
            lte_dsp::Modulation::Qpsk,
        )])];
        let run = bench.run(&subframes);
        assert_eq!(run.crc_pass_rate, 1.0);
    }

    #[test]
    fn input_cache_reuses_data() {
        let mut bench = UplinkBenchmark::new(CellConfig::default(), quick_cfg());
        let u = UserConfig::new(6, 2, lte_dsp::Modulation::Qam16);
        let a = bench.input_for(&u);
        let b = bench.input_for(&u);
        assert!(Arc::ptr_eq(&a, &b), "same config must reuse input data");
    }

    #[test]
    fn activity_is_positive_and_bounded() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        let subframes = RampModel::new(4).subframes(3);
        let run = bench.run(&subframes);
        assert!(run.activity > 0.0, "some work must have happened");
        // Helping threads can make busy/elapsed slightly exceed worker
        // count × wall in theory; sanity-bound it.
        assert!(run.activity < 1.5, "activity {} absurd", run.activity);
    }

    #[test]
    fn empty_subframe_sequence() {
        let mut bench = UplinkBenchmark::new(CellConfig::default(), quick_cfg());
        let run = bench.run(&[]);
        assert!(run.results.is_empty());
        assert_eq!(run.crc_pass_rate, 1.0);
    }
}
