//! The executable benchmark (§IV of the paper).
//!
//! A maintenance loop creates input parameters and data for each
//! subframe and dispatches it to the worker pool every DELTA; each user
//! becomes a job whose pipeline phases fan out into work-stealing tasks
//! exactly as the paper describes:
//!
//! 1. channel estimation — one task per (rx antenna, layer);
//! 2. combiner weights — on the user thread;
//! 3. antenna combining + IFFT — one task per (slot, symbol, layer);
//! 4. deinterleave, soft demap, turbo (pass-through), CRC — user thread.
//!
//! Subframe input data are synthesised once per distinct user
//! configuration and reused (§IV-B1: data sets are "created for multiple
//! subframes and then reused across all dispatched subframes").

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::mem::ManuallyDrop;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use lte_dsp::fft::FftPlanner;
use lte_dsp::interleave::prewarm_subblock;
use lte_dsp::llr::{demap_block_exact_into, demap_block_into};
use lte_dsp::{Complex32, Xoshiro256};
use lte_fault::{DeadlineBudget, OverloadPolicy};
use lte_phy::combiner::{combine_symbol_into, CombinerWeights};
use lte_phy::estimator::estimate_path_into;
use lte_phy::grid::UserInput;
use lte_phy::harq::{HarqDecision, HarqEntity, HarqStats};
use lte_phy::params::{
    CellConfig, SubframeConfig, TurboMode, UserConfig, DATA_SYMBOLS_PER_SLOT, SLOTS_PER_SUBFRAME,
};
use lte_phy::receiver::{finish_user_with_arena, UserResult, UserScratch};
use lte_phy::tx::{prewarm_references, synthesize_retransmission, synthesize_user_with_mode};
use lte_phy::verify::{GoldenRecord, VerifyError};
use lte_sched::{PoolError, TaskPool};

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchmarkConfig {
    /// Worker threads (the paper maps one per core).
    pub workers: usize,
    /// Dispatch interval (the paper's DELTA; configurable so the
    /// benchmark "can run on hardware that cannot sustain a rate of one
    /// subframe per millisecond").
    pub delta: Duration,
    /// SNR for the synthesised channels, in dB.
    pub snr_db: f64,
    /// Turbo stage mode.
    pub turbo: TurboMode,
    /// RNG seed for data synthesis.
    pub seed: u64,
    /// Per-subframe deadline budget (nanoseconds from dispatch to
    /// completion) and the overload policy applied while the receiver is
    /// behind. `None` dispatches blindly, as the paper's benchmark does.
    pub deadline: Option<DeadlineBudget>,
    /// HARQ retransmissions allowed per failed transport block
    /// (0 disables the retransmission pass).
    pub harq: usize,
    /// Demap with the exact log-sum-exp LLRs instead of max-log. The
    /// `DegradeDemap` overload policy downgrades exact → max-log for
    /// subframes dispatched while the receiver is behind. Exact demap
    /// diverges (slightly) from the max-log serial reference, so
    /// [`UplinkBenchmark::verify`] only applies to max-log runs.
    pub exact_demap: bool,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            delta: Duration::from_millis(5),
            snr_db: 30.0,
            turbo: TurboMode::Passthrough,
            seed: 42,
            deadline: None,
            harq: 0,
            exact_demap: false,
        }
    }
}

/// Degradation and recovery accounting for one benchmark run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Subframes whose completion exceeded the deadline budget.
    pub overruns: u64,
    /// Whole subframes discarded by [`OverloadPolicy::DropSubframe`].
    pub dropped_subframes: u64,
    /// Users shed (individually or as part of a dropped subframe).
    pub shed_users: u64,
    /// Subframes demapped at degraded fidelity
    /// ([`OverloadPolicy::DegradeDemap`]).
    pub degraded_subframes: u64,
    /// HARQ statistics of the retransmission pass.
    pub harq: HarqStats,
}

/// The outcome of a benchmark run.
#[derive(Debug)]
pub struct BenchmarkRun {
    /// Decoded results, `results[subframe][user]`. Users shed by an
    /// overload policy (and not redelivered by HARQ) are absent from
    /// their subframe's row.
    pub results: Vec<Vec<UserResult>>,
    /// Wall-clock duration of the parallel run.
    pub elapsed: Duration,
    /// Total useful processing time across workers (Eq. 1 sums).
    pub busy: Duration,
    /// Mean activity per Eq. 2 over the run.
    pub activity: f64,
    /// Fraction of delivered users whose CRC passed.
    pub crc_pass_rate: f64,
    /// Dispatch-to-completion latency per completed subframe, in
    /// nanoseconds (subframes with no submitted users are absent).
    pub latencies_ns: Vec<u64>,
    /// Completion stamp per completed subframe, nanoseconds from run
    /// start, in dispatch order (same filtering as `latencies_ns`).
    pub completions_ns: Vec<u64>,
    /// Overload shedding and HARQ recovery counters.
    pub degradation: DegradationReport,
}

/// Waits for a dispatch deadline without pegging a host CPU: sleeps to
/// within `SPIN_SLACK` of the deadline (OS timers overshoot by up to a
/// timer tick), then spins the final stretch for precision.
fn pace_until(deadline: Instant) {
    const SPIN_SLACK: Duration = Duration::from_micros(200);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > SPIN_SLACK {
            std::thread::sleep(left - SPIN_SLACK);
        } else {
            break;
        }
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// The benchmark: input synthesis, dispatch, parallel processing and
/// golden-reference verification.
///
/// # Example
///
/// ```
/// use lte_uplink::{BenchmarkConfig, UplinkBenchmark};
/// use lte_model::{ParameterModel, RampModel};
/// use lte_phy::CellConfig;
///
/// let mut bench = UplinkBenchmark::new(CellConfig::default(), BenchmarkConfig {
///     workers: 2,
///     ..BenchmarkConfig::default()
/// });
/// let subframes = RampModel::new(1).subframes(3);
/// let run = bench.run(&subframes);
/// assert_eq!(run.results.len(), 3);
/// bench.verify(&subframes, &run).expect("parallel must match serial");
/// ```
pub struct UplinkBenchmark {
    cell: CellConfig,
    cfg: BenchmarkConfig,
    /// Synthesised inputs, reused across subframes with identical user
    /// configurations.
    input_cache: HashMap<UserConfig, Arc<UserInput>>,
    rng: Xoshiro256,
}

impl UplinkBenchmark {
    /// Creates a benchmark instance.
    pub fn new(cell: CellConfig, cfg: BenchmarkConfig) -> Self {
        UplinkBenchmark {
            cell,
            cfg,
            input_cache: HashMap::new(),
            rng: Xoshiro256::seed_from_u64(cfg.seed),
        }
    }

    /// The input data used for a user configuration (synthesised once,
    /// then reused — the paper's unique-input-data pool).
    pub fn input_for(&mut self, user: &UserConfig) -> Arc<UserInput> {
        if let Some(input) = self.input_cache.get(user) {
            return Arc::clone(input);
        }
        let input = Arc::new(synthesize_user_with_mode(
            &self.cell,
            user,
            self.cfg.turbo,
            self.cfg.snr_db,
            &mut self.rng,
        ));
        self.input_cache.insert(*user, Arc::clone(&input));
        input
    }

    /// Runs the parallel benchmark over a subframe sequence.
    ///
    /// # Panics
    ///
    /// Panics when the worker pool cannot be constructed; use
    /// [`try_run`](UplinkBenchmark::try_run) to handle that gracefully.
    pub fn run(&mut self, subframes: &[SubframeConfig]) -> BenchmarkRun {
        self.try_run(subframes)
            .expect("failed to start the worker pool")
    }

    /// Runs the parallel benchmark over a subframe sequence.
    ///
    /// # Errors
    ///
    /// Returns the [`PoolError`] when the worker pool cannot be spawned.
    pub fn try_run(&mut self, subframes: &[SubframeConfig]) -> Result<BenchmarkRun, PoolError> {
        let pool = TaskPool::new(self.cfg.workers)?;
        let planner = Arc::new(FftPlanner::new());
        let cell = self.cell;
        let turbo = self.cfg.turbo;
        let mut degradation = DegradationReport::default();

        // Result slots, one per (subframe, user), plus per-subframe open
        // counters and completion stamps for the deadline accounting.
        let results: Arc<Vec<Vec<OnceLock<UserResult>>>> = Arc::new(
            subframes
                .iter()
                .map(|sf| (0..sf.n_users()).map(|_| OnceLock::new()).collect())
                .collect(),
        );
        let open: Arc<Vec<AtomicUsize>> = Arc::new(
            subframes
                .iter()
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let done_at: Arc<Vec<OnceLock<u64>>> = Arc::new(
            subframes
                .iter()
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>(),
        );

        // Pre-synthesise inputs on the maintenance thread (the paper does
        // this at initialisation).
        let inputs: Vec<Vec<Arc<UserInput>>> = subframes
            .iter()
            .map(|sf| sf.users.iter().map(|u| self.input_for(u)).collect())
            .collect();

        // Prewarm every cache the steady-state path reads — FFT plans,
        // sub-block interleavers and DM-RS reference sequences — so no
        // worker ever takes a cache's write lock after the first
        // dispatch.
        for sf in subframes {
            planner.prewarm(sf.users.iter().map(|u| u.prbs));
            prewarm_subblock(sf.users.iter().map(|u| u.bits_per_subframe()));
            for u in &sf.users {
                prewarm_references(&cell, u);
            }
        }

        let start = Instant::now();
        let busy_start = pool.busy_nanos();
        let mut dispatched_at = vec![0u64; subframes.len()];
        // Maintenance loop: dispatch each subframe at its deadline.
        for (sf_idx, sf_inputs) in inputs.iter().enumerate() {
            pace_until(start + self.cfg.delta * sf_idx as u32);
            dispatched_at[sf_idx] = start.elapsed().as_nanos() as u64;

            // Overload policy: "behind" means an earlier subframe is
            // still open at this dispatch instant.
            let mut submit: Vec<usize> = (0..sf_inputs.len()).collect();
            let mut exact = self.cfg.exact_demap;
            let behind = (0..sf_idx).any(|i| open[i].load(Ordering::SeqCst) > 0);
            if let Some(budget) = self.cfg.deadline {
                if behind && !sf_inputs.is_empty() {
                    match budget.policy {
                        OverloadPolicy::DropSubframe => {
                            degradation.dropped_subframes += 1;
                            degradation.shed_users += submit.len() as u64;
                            submit.clear();
                        }
                        OverloadPolicy::ShedUsers => {
                            // Shed cheapest-first (lowest PRB count, then
                            // index) until at most half the PRB load
                            // remains; always shed one, always keep one.
                            let sf = &subframes[sf_idx];
                            let total: usize = sf.users.iter().map(|u| u.prbs).sum();
                            submit.sort_by_key(|&i| (sf.users[i].prbs, i));
                            let mut kept = total;
                            let mut shed = 0usize;
                            while submit.len() > 1 && (shed == 0 || kept * 2 > total) {
                                kept -= sf.users[submit[0]].prbs;
                                submit.remove(0);
                                shed += 1;
                            }
                            submit.sort_unstable();
                            degradation.shed_users += shed as u64;
                        }
                        OverloadPolicy::DegradeDemap => {
                            exact = false;
                            degradation.degraded_subframes += 1;
                        }
                    }
                }
            }

            // The open count must be in place before any job can finish.
            open[sf_idx].store(submit.len(), Ordering::SeqCst);
            for user_idx in submit {
                let input = Arc::clone(&sf_inputs[user_idx]);
                let planner = Arc::clone(&planner);
                let results = Arc::clone(&results);
                let open = Arc::clone(&open);
                let done_at = Arc::clone(&done_at);
                pool.submit_job(move |p| {
                    let result = process_user_parallel(p, &cell, &input, turbo, &planner, exact);
                    results[sf_idx][user_idx]
                        .set(result)
                        .expect("each user slot is written once");
                    if open[sf_idx].fetch_sub(1, Ordering::SeqCst) == 1 {
                        let _ = done_at[sf_idx].set(start.elapsed().as_nanos() as u64);
                    }
                });
            }
        }
        pool.wait_all();
        let elapsed = start.elapsed();
        let busy = Duration::from_nanos(pool.busy_nanos() - busy_start);
        let activity = busy.as_secs_f64() / (self.cfg.workers as f64 * elapsed.as_secs_f64());

        if let Some(budget) = self.cfg.deadline {
            for (sf_idx, done) in done_at.iter().enumerate() {
                if let Some(&completed) = done.get() {
                    if completed.saturating_sub(dispatched_at[sf_idx]) > budget.budget {
                        degradation.overruns += 1;
                    }
                }
            }
        }
        let latencies_ns: Vec<u64> = done_at
            .iter()
            .enumerate()
            .filter_map(|(i, done)| {
                done.get()
                    .map(|&completed| completed.saturating_sub(dispatched_at[i]))
            })
            .collect();
        let completions_ns: Vec<u64> = done_at.iter().filter_map(|d| d.get().copied()).collect();

        let mut rows: Vec<Vec<Option<UserResult>>> = Arc::try_unwrap(results)
            .expect("pool drained, no outstanding references")
            .into_iter()
            .map(|row| row.into_iter().map(OnceLock::into_inner).collect())
            .collect();

        // HARQ pass: every failed or shed transport block is retried
        // with chase combining, up to the retransmission budget. Shed
        // users enter HARQ from their original (buffered) transmission.
        if self.cfg.harq > 0 {
            let mut entity = HarqEntity::new(self.cfg.harq);
            for (sf_idx, row) in rows.iter_mut().enumerate() {
                for (user_idx, slot) in row.iter_mut().enumerate() {
                    if slot.as_ref().is_some_and(|r| r.crc_ok) {
                        continue;
                    }
                    let input = &inputs[sf_idx][user_idx];
                    let mut decision =
                        entity.on_reception(0, &cell, input, turbo, planner.as_ref());
                    while matches!(decision, HarqDecision::Retransmit { .. }) {
                        let retx = synthesize_retransmission(
                            &cell,
                            &input.config,
                            turbo,
                            &input.ground_truth,
                            self.cfg.snr_db,
                            &mut self.rng,
                        );
                        decision = entity.on_reception(0, &cell, &retx, turbo, planner.as_ref());
                    }
                    if let HarqDecision::Delivered { result, .. } = decision {
                        *slot = Some(result);
                    }
                }
            }
            degradation.harq = entity.stats;
        }

        let results: Vec<Vec<UserResult>> = rows
            .into_iter()
            .map(|row| row.into_iter().flatten().collect())
            .collect();
        let total_users: usize = results.iter().map(|r| r.len()).sum();
        let passed: usize = results
            .iter()
            .flat_map(|r| r.iter())
            .filter(|r| r.crc_ok)
            .count();
        Ok(BenchmarkRun {
            crc_pass_rate: if total_users == 0 {
                1.0
            } else {
                passed as f64 / total_users as f64
            },
            results,
            elapsed,
            busy,
            activity,
            latencies_ns,
            completions_ns,
            degradation,
        })
    }

    /// Verifies a parallel run against the serial golden reference
    /// (§IV-D).
    ///
    /// # Errors
    ///
    /// Returns the first divergence found.
    pub fn verify(
        &mut self,
        subframes: &[SubframeConfig],
        run: &BenchmarkRun,
    ) -> Result<(), VerifyError> {
        let inputs: Vec<Vec<UserInput>> = subframes
            .iter()
            .map(|sf| {
                sf.users
                    .iter()
                    .map(|u| (*self.input_for(u)).clone())
                    .collect()
            })
            .collect();
        let golden = GoldenRecord::build(&self.cell, &inputs, self.cfg.turbo);
        golden.verify(&run.results)
    }
}

/// A flat buffer whose disjoint ranges are written concurrently by pool
/// tasks and read only after the scope barrier joins every writer.
///
/// The paper's task decomposition makes the ranges disjoint by
/// construction — every (slot, rx, layer) or (slot, symbol, layer)
/// tuple maps to its own block — so tasks need neither a mutex to park
/// results in nor a per-task allocation to hold them.
struct SharedBuf<T> {
    cells: Vec<UnsafeCell<T>>,
}

// SAFETY: writers touch disjoint ranges (enforced by the dispatcher's
// index arithmetic), and readers only run after the pool scope joins
// all writers, which synchronises the stores.
unsafe impl<T: Send> Sync for SharedBuf<T> {}

impl<T: Copy> SharedBuf<T> {
    fn new(len: usize, fill: T) -> Self {
        let mut cells = Vec::new();
        cells.resize_with(len, || UnsafeCell::new(fill));
        SharedBuf { cells }
    }

    /// A mutable view of `start..start + len`.
    ///
    /// # Safety
    ///
    /// No other live reference may overlap the range for the lifetime
    /// of the returned slice.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(start + len <= self.cells.len(), "range out of bounds");
        let base = UnsafeCell::raw_get(self.cells.as_ptr().add(start));
        std::slice::from_raw_parts_mut(base, len)
    }

    /// Unwraps into a plain vector without copying.
    fn into_vec(self) -> Vec<T> {
        let mut cells = ManuallyDrop::new(self.cells);
        let (ptr, len, cap) = (cells.as_mut_ptr(), cells.len(), cells.capacity());
        // SAFETY: `UnsafeCell<T>` is `repr(transparent)` over `T`, and
        // the original vector is leaked via `ManuallyDrop`, so ownership
        // of the allocation transfers exactly once.
        unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
    }
}

/// Processes one user on the pool with the paper's task decomposition.
/// `exact_demap` selects the log-sum-exp demapper over max-log.
///
/// Steady-state allocation discipline: every task draws its working
/// buffers from its worker's thread-local [`UserScratch`] arena and
/// writes results into a shared flat buffer, so per-task heap traffic
/// is zero after warmup; the per-job cost is the two flat buffers and
/// the boxed task closures.
pub(crate) fn process_user_parallel(
    pool: &TaskPool,
    cell: &CellConfig,
    input: &Arc<UserInput>,
    turbo: TurboMode,
    planner: &Arc<FftPlanner>,
    exact_demap: bool,
) -> UserResult {
    let user = input.config;
    let n_rx = cell.n_rx;
    let n_layers = user.layers;
    let n_sc = user.subcarriers();

    // Phase 1: channel estimation, one task per (slot, rx, layer), each
    // writing its own range of one flat shared buffer.
    let est_buf = Arc::new(SharedBuf::new(
        SLOTS_PER_SUBFRAME * n_rx * n_layers * n_sc,
        Complex32::ZERO,
    ));
    let est_tasks: Vec<Box<dyn FnOnce() + Send>> = (0..SLOTS_PER_SUBFRAME)
        .flat_map(|slot| (0..n_rx).flat_map(move |rx| (0..n_layers).map(move |l| (slot, rx, l))))
        .map(|(slot, rx, layer)| {
            let input = Arc::clone(input);
            let planner = Arc::clone(planner);
            let est_buf = Arc::clone(&est_buf);
            let cell = *cell;
            Box::new(move || {
                let idx = (slot * cell.n_rx + rx) * input.config.layers + layer;
                // SAFETY: each (slot, rx, layer) tuple owns its range.
                let out = unsafe { est_buf.slice_mut(idx * n_sc, n_sc) };
                UserScratch::with(|s| {
                    estimate_path_into(&cell, &input, slot, rx, layer, &planner, &mut s.arena, out);
                });
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    pool.scope(est_tasks);

    // Combiner weights on the user thread (not parallelised — §III),
    // solved through this thread's scratch matrices.
    let weights: Vec<CombinerWeights> = UserScratch::with(|s| {
        (0..SLOTS_PER_SUBFRAME)
            .map(|slot| {
                let base = slot * n_rx * n_layers * n_sc;
                // SAFETY: the scope barrier joined every writer; this is
                // the only live view.
                let flat = unsafe { est_buf.slice_mut(base, n_rx * n_layers * n_sc) };
                s.weights_from_flat_estimate(n_rx, n_layers, n_sc, flat, input.noise_var)
            })
            .collect()
    });
    let weights = Arc::new(weights);

    // Phase 2: antenna combining + IFFT + demap, one task per
    // (slot, symbol, layer), writing straight into the flat LLR buffer
    // in the transmitter's bit order.
    let chunk_bits = n_sc * user.modulation.bits_per_symbol();
    let n_chunks = SLOTS_PER_SUBFRAME * DATA_SYMBOLS_PER_SLOT * n_layers;
    let llr_buf = Arc::new(SharedBuf::new(n_chunks * chunk_bits, 0f32));
    let combine_tasks: Vec<Box<dyn FnOnce() + Send>> = (0..SLOTS_PER_SUBFRAME)
        .flat_map(|slot| {
            (0..DATA_SYMBOLS_PER_SLOT)
                .flat_map(move |sym| (0..n_layers).map(move |l| (slot, sym, l)))
        })
        .map(|(slot, sym, layer)| {
            let input = Arc::clone(input);
            let planner = Arc::clone(planner);
            let weights = Arc::clone(&weights);
            let llr_buf = Arc::clone(&llr_buf);
            Box::new(move || {
                let idx = (slot * DATA_SYMBOLS_PER_SLOT + sym) * input.config.layers + layer;
                // SAFETY: each (slot, symbol, layer) tuple owns its range.
                let out = unsafe { llr_buf.slice_mut(idx * chunk_bits, chunk_bits) };
                UserScratch::with(|s| {
                    let mut combined = s.arena.take_c32(n_sc);
                    combine_symbol_into(
                        &input,
                        &weights[slot],
                        slot,
                        sym,
                        layer,
                        &planner,
                        &mut s.arena,
                        &mut combined,
                    );
                    let mut llrs = s.arena.take_f32(chunk_bits);
                    if exact_demap {
                        demap_block_exact_into(
                            input.config.modulation,
                            &combined,
                            input.noise_var,
                            &mut llrs,
                        );
                    } else {
                        demap_block_into(
                            input.config.modulation,
                            &combined,
                            input.noise_var,
                            &mut llrs,
                        );
                    }
                    out.copy_from_slice(&llrs);
                    s.arena.recycle_f32(llrs);
                    s.arena.recycle_c32(combined);
                });
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    pool.scope(combine_tasks);

    // Serial tail on the user thread, through the arena. The LLR buffer
    // is recycled into this thread's pools afterwards, so its capacity
    // feeds future takes.
    let Ok(llr_buf) = Arc::try_unwrap(llr_buf) else {
        unreachable!("scope joined every task");
    };
    let llrs = llr_buf.into_vec();
    UserScratch::with(|s| {
        let result = finish_user_with_arena(input, turbo, &llrs, &mut s.arena);
        s.arena.recycle_f32(llrs);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_model::{ParameterModel, RampModel};

    fn quick_cfg() -> BenchmarkConfig {
        BenchmarkConfig {
            workers: 4,
            delta: Duration::from_millis(1),
            snr_db: 30.0,
            turbo: TurboMode::Passthrough,
            seed: 7,
            ..BenchmarkConfig::default()
        }
    }

    #[test]
    fn parallel_matches_serial_golden_reference() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        let subframes = RampModel::new(3).subframes(5);
        let run = bench.run(&subframes);
        bench
            .verify(&subframes, &run)
            .expect("parallel and serial must agree bit-exactly");
    }

    #[test]
    fn high_snr_run_passes_crc() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        // Small fixed allocation, clean channel.
        let subframes = vec![SubframeConfig::new(vec![UserConfig::new(
            4,
            1,
            lte_dsp::Modulation::Qpsk,
        )])];
        let run = bench.run(&subframes);
        assert_eq!(run.crc_pass_rate, 1.0);
    }

    #[test]
    fn input_cache_reuses_data() {
        let mut bench = UplinkBenchmark::new(CellConfig::default(), quick_cfg());
        let u = UserConfig::new(6, 2, lte_dsp::Modulation::Qam16);
        let a = bench.input_for(&u);
        let b = bench.input_for(&u);
        assert!(Arc::ptr_eq(&a, &b), "same config must reuse input data");
    }

    #[test]
    fn activity_is_positive_and_bounded() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        let subframes = RampModel::new(4).subframes(3);
        let run = bench.run(&subframes);
        assert!(run.activity > 0.0, "some work must have happened");
        // Helping threads can make busy/elapsed slightly exceed worker
        // count × wall in theory; sanity-bound it.
        assert!(run.activity < 1.5, "activity {} absurd", run.activity);
    }

    #[test]
    fn empty_subframe_sequence() {
        let mut bench = UplinkBenchmark::new(CellConfig::default(), quick_cfg());
        let run = bench.run(&[]);
        assert!(run.results.is_empty());
        assert_eq!(run.crc_pass_rate, 1.0);
    }

    #[test]
    fn zero_workers_is_a_clean_error() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::default(),
            BenchmarkConfig {
                workers: 0,
                ..quick_cfg()
            },
        );
        assert!(matches!(
            bench.try_run(&RampModel::new(1).subframes(1)),
            Err(lte_sched::PoolError::ZeroWorkers)
        ));
    }

    #[test]
    fn exact_demap_decodes_at_high_snr() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                exact_demap: true,
                ..quick_cfg()
            },
        );
        let subframes = vec![SubframeConfig::new(vec![UserConfig::new(
            4,
            1,
            lte_dsp::Modulation::Qam16,
        )])];
        let run = bench.run(&subframes);
        assert_eq!(run.crc_pass_rate, 1.0);
    }

    /// Overload setup: zero dispatch interval means every subframe after
    /// the first is dispatched while its predecessor is still in flight,
    /// so the policy triggers on (nearly) every subframe.
    fn pressured_cfg(policy: OverloadPolicy) -> BenchmarkConfig {
        BenchmarkConfig {
            workers: 2,
            delta: Duration::ZERO,
            deadline: Some(DeadlineBudget { budget: 1, policy }),
            ..quick_cfg()
        }
    }

    /// Six identical three-user subframes — enough PHY work per subframe
    /// that a zero-delta dispatch is always behind.
    fn pressured_subframes() -> Vec<SubframeConfig> {
        vec![
            SubframeConfig::new(vec![
                UserConfig::new(2, 1, lte_dsp::Modulation::Qpsk),
                UserConfig::new(4, 1, lte_dsp::Modulation::Qpsk),
                UserConfig::new(8, 2, lte_dsp::Modulation::Qam16),
            ]);
            6
        ]
    }

    #[test]
    fn drop_policy_sheds_whole_subframes_and_harq_redelivers() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                harq: 2,
                ..pressured_cfg(OverloadPolicy::DropSubframe)
            },
        );
        let subframes = pressured_subframes();
        let run = bench.run(&subframes);
        let d = &run.degradation;
        assert!(d.dropped_subframes > 0, "pressure must drop subframes");
        assert!(d.overruns > 0, "a 1 ns budget is always overrun");
        // HARQ redelivers every shed user from its buffered first
        // transmission, so no transport block is lost.
        let delivered: usize = run.results.iter().map(Vec::len).sum();
        let expected: usize = subframes.iter().map(SubframeConfig::n_users).sum();
        assert_eq!(delivered, expected, "HARQ must redeliver dropped users");
        assert!(d.harq.transmissions >= d.shed_users);
    }

    #[test]
    fn shed_policy_drops_cheapest_users_and_keeps_one() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            pressured_cfg(OverloadPolicy::ShedUsers),
        );
        let subframes = pressured_subframes();
        let run = bench.run(&subframes);
        assert!(run.degradation.shed_users > 0, "pressure must shed users");
        let delivered: usize = run.results.iter().map(Vec::len).sum();
        let expected: usize = subframes.iter().map(SubframeConfig::n_users).sum();
        assert_eq!(
            delivered + run.degradation.shed_users as usize,
            expected,
            "every user is either delivered or counted as shed"
        );
        for (sf, row) in subframes.iter().zip(&run.results) {
            if sf.n_users() > 0 {
                assert!(!row.is_empty(), "shedding must keep at least one user");
            }
        }
    }

    #[test]
    fn degrade_policy_counts_degraded_subframes() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                exact_demap: true,
                ..pressured_cfg(OverloadPolicy::DegradeDemap)
            },
        );
        let subframes = pressured_subframes();
        let run = bench.run(&subframes);
        assert!(run.degradation.degraded_subframes > 0);
        // Degrading fidelity sheds nothing: every user is delivered.
        let delivered: usize = run.results.iter().map(Vec::len).sum();
        let expected: usize = subframes.iter().map(SubframeConfig::n_users).sum();
        assert_eq!(delivered, expected);
    }

    #[test]
    fn harq_pass_recovers_low_snr_failures() {
        // At -6 dB QPSK single shots mostly fail; chase combining over
        // independently faded retransmissions recovers them.
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                snr_db: -6.0,
                harq: 6,
                ..quick_cfg()
            },
        );
        let subframes = vec![
            SubframeConfig::new(vec![
                UserConfig::new(2, 1, lte_dsp::Modulation::Qpsk),
                UserConfig::new(3, 1, lte_dsp::Modulation::Qpsk),
            ]);
            3
        ];
        let run = bench.run(&subframes);
        let d = &run.degradation;
        assert!(
            d.harq.transmissions > 0,
            "low SNR must push blocks into HARQ"
        );
        assert!(
            run.crc_pass_rate > 0.5,
            "combining should recover most blocks, got {}",
            run.crc_pass_rate
        );
    }
}
