//! The executable benchmark (§IV of the paper).
//!
//! A maintenance loop creates input parameters and data for each
//! subframe and dispatches it to the worker pool every DELTA; each user
//! becomes a dependency-ordered **task graph** whose stages fan out into
//! work-stealing tasks:
//!
//! 1. channel estimation — one task per (slot, rx antenna, layer);
//! 2. combiner weights — computed by the slot's *last* estimation task
//!    (cache-hot over the estimates it just joined), which then fans out
//! 3. antenna combining + IFFT + soft demap — one task per
//!    (slot, symbol, layer); the last one spawns
//! 4. the serial join: deinterleave, turbo (pass-through), CRC.
//!
//! No thread ever blocks at a phase barrier: each stage's completion
//! *spawns* the next stage (see [`spawn_user_graph`]), so independent
//! users — and independent subframes — pipeline freely through the
//! pool. The maintenance loop bounds that freedom with a configurable
//! in-flight window ([`BenchmarkConfig::max_in_flight`]) so latency
//! percentiles stay honest under backlog.
//!
//! Subframe input data are synthesised once per distinct user
//! configuration and reused (§IV-B1: data sets are "created for multiple
//! subframes and then reused across all dispatched subframes").

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use lte_dsp::fft::FftPlanner;
use lte_dsp::interleave::prewarm_subblock;
use lte_dsp::llr::{demap_block_exact_into, demap_block_into};
use lte_dsp::{Complex32, Xoshiro256};
use lte_fault::{DeadlineBudget, OverloadPolicy};
use lte_phy::combiner::{combine_symbol_into, CombinerWeights};
use lte_phy::estimator::estimate_path_into;
use lte_phy::grid::UserInput;
use lte_phy::harq::{HarqDecision, HarqEntity, HarqStats};
use lte_phy::params::{
    CellConfig, SubframeConfig, TurboMode, UserConfig, DATA_SYMBOLS_PER_SLOT, SLOTS_PER_SUBFRAME,
};
use lte_phy::receiver::{finish_user_with_arena, UserResult, UserScratch};
use lte_phy::tx::{prewarm_references, synthesize_retransmission, synthesize_user_with_mode};
use lte_phy::verify::{GoldenRecord, VerifyError};
use lte_sched::{PoolConfig, PoolError, PoolHandle, TaskPool};

/// A power-governance hook invoked at every subframe dispatch boundary,
/// before the subframe's jobs are submitted (see
/// [`UplinkBenchmark::try_run_governed`]).
pub type GovernHook<'a> = &'a mut dyn FnMut(&TaskPool, usize, &SubframeConfig);

/// Live telemetry sinks for a benchmark run, recorded from worker-side
/// completion callbacks with no locking and no allocation.
///
/// * `latency` — subframe completion latency in nanoseconds (dispatch to
///   last user done), recorded by the worker that closes the subframe.
/// * `ebler` — per-user decode outcomes keyed by layer count, mirroring
///   the R&S BLER measurement surface: every delivered user records
///   ack/nack from its *first* transmission (HARQ recoveries are a
///   separate counter), every shed user records dtx at shed time.
///
/// Attach one instance across several runs to aggregate, or snapshot and
/// reset between runs to window.
pub struct BenchmarkTelemetry {
    /// Subframe completion latency histogram (nanoseconds).
    pub latency: lte_obs::Histogram,
    /// Decode-outcome surface, streams keyed by `layers - 1`.
    pub ebler: lte_obs::EblerAccumulator,
}

impl BenchmarkTelemetry {
    /// A sink with one EBLER stream per spatial-multiplexing order.
    #[must_use]
    pub fn new(streams: usize) -> Self {
        BenchmarkTelemetry {
            latency: lte_obs::Histogram::new(),
            ebler: lte_obs::EblerAccumulator::new(streams),
        }
    }

    /// The EBLER stream for a user: its spatial-multiplexing order,
    /// clamped to the surface width.
    #[must_use]
    pub fn stream_for(&self, layers: usize) -> usize {
        layers.saturating_sub(1).min(self.ebler.streams() - 1)
    }
}

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchmarkConfig {
    /// Worker threads (the paper maps one per core).
    pub workers: usize,
    /// Dispatch interval (the paper's DELTA; configurable so the
    /// benchmark "can run on hardware that cannot sustain a rate of one
    /// subframe per millisecond").
    pub delta: Duration,
    /// SNR for the synthesised channels, in dB.
    pub snr_db: f64,
    /// Turbo stage mode.
    pub turbo: TurboMode,
    /// RNG seed for data synthesis.
    pub seed: u64,
    /// Per-subframe deadline budget (nanoseconds from dispatch to
    /// completion) and the overload policy applied while the receiver is
    /// behind. `None` dispatches blindly, as the paper's benchmark does.
    pub deadline: Option<DeadlineBudget>,
    /// HARQ retransmissions allowed per failed transport block
    /// (0 disables the retransmission pass).
    pub harq: usize,
    /// Demap with the exact log-sum-exp LLRs instead of max-log. The
    /// `DegradeDemap` overload policy downgrades exact → max-log for
    /// subframes dispatched while the receiver is behind. Exact demap
    /// diverges (slightly) from the max-log serial reference, so
    /// [`UplinkBenchmark::verify`] only applies to max-log runs.
    pub exact_demap: bool,
    /// Upper bound on subframes simultaneously in flight. The task-graph
    /// dispatch never blocks a thread, so without a bound a slow host
    /// accumulates an unbounded backlog and the tail latencies lie about
    /// it; with a window of `w`, subframe *n* is held at the door until
    /// fewer than `w` earlier subframes remain open — the wait shows up
    /// as a later dispatch stamp, not as hidden queueing. `None` keeps
    /// the paper's blind dispatch.
    pub max_in_flight: Option<usize>,
    /// Pin worker `i` to CPU `i % host_cpus` (Linux only), removing OS
    /// migration noise from scaling measurements.
    pub pin_workers: bool,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig {
            // Same helper (and same fallback) as PoolConfig::default, so
            // the benchmark and the pool can never disagree on workers.
            workers: lte_sched::host_parallelism(),
            delta: Duration::from_millis(5),
            snr_db: 30.0,
            turbo: TurboMode::Passthrough,
            seed: 42,
            deadline: None,
            harq: 0,
            exact_demap: false,
            max_in_flight: None,
            pin_workers: false,
        }
    }
}

/// Degradation and recovery accounting for one benchmark run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Subframes whose completion exceeded the deadline budget.
    pub overruns: u64,
    /// Whole subframes discarded by [`OverloadPolicy::DropSubframe`].
    pub dropped_subframes: u64,
    /// Users shed (individually or as part of a dropped subframe).
    pub shed_users: u64,
    /// Subframes demapped at degraded fidelity
    /// ([`OverloadPolicy::DegradeDemap`]).
    pub degraded_subframes: u64,
    /// HARQ statistics of the retransmission pass.
    pub harq: HarqStats,
}

/// Scheduler activity totals for one run, snapshotted from the pool the
/// run executed on — the observable face of the low-overhead stealing
/// machinery (LIFO slot, batched steals, parking).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolActivity {
    /// Tasks executed across all workers.
    pub executed_tasks: u64,
    /// Successful steals from other workers' deques.
    pub steals: u64,
    /// Steals that moved more than one task (steal-half batches).
    pub steal_batches: u64,
    /// Extra tasks moved by batched steals (beyond the popped one).
    pub batch_stolen_tasks: u64,
    /// Tasks executed straight from a worker's bounded LIFO slot.
    pub lifo_slot_hits: u64,
    /// Times any worker parked on the idle condvar.
    pub parks: u64,
    /// Workers successfully pinned to a CPU at startup.
    pub pinned_workers: u64,
}

impl PoolActivity {
    fn snapshot(pool: &TaskPool) -> Self {
        PoolActivity {
            executed_tasks: pool.executed_tasks(),
            steals: pool.steal_count(),
            steal_batches: pool.steal_batches(),
            batch_stolen_tasks: pool.batch_stolen_tasks(),
            lifo_slot_hits: pool.lifo_slot_hits(),
            parks: pool.parks(),
            pinned_workers: pool.pinned_workers(),
        }
    }
}

/// The outcome of a benchmark run.
#[derive(Debug)]
pub struct BenchmarkRun {
    /// Decoded results, `results[subframe][user]`. Users shed by an
    /// overload policy (and not redelivered by HARQ) are absent from
    /// their subframe's row.
    pub results: Vec<Vec<UserResult>>,
    /// Wall-clock duration of the parallel run.
    pub elapsed: Duration,
    /// Total useful processing time across workers (Eq. 1 sums).
    pub busy: Duration,
    /// Mean activity per Eq. 2 over the run.
    pub activity: f64,
    /// Fraction of delivered users whose CRC passed.
    pub crc_pass_rate: f64,
    /// Dispatch-to-completion latency per completed subframe, in
    /// nanoseconds (subframes with no submitted users are absent).
    pub latencies_ns: Vec<u64>,
    /// Completion stamp per completed subframe, nanoseconds from run
    /// start, in dispatch order (same filtering as `latencies_ns`).
    pub completions_ns: Vec<u64>,
    /// Overload shedding and HARQ recovery counters.
    pub degradation: DegradationReport,
    /// Scheduler counters for the run's pool.
    pub pool: PoolActivity,
}

/// Waits for a dispatch deadline without pegging a host CPU: sleeps to
/// within `SPIN_SLACK` of the deadline (OS timers overshoot by up to a
/// timer tick), then spins the final stretch for precision.
pub(crate) fn pace_until(deadline: Instant) {
    const SPIN_SLACK: Duration = Duration::from_micros(200);
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > SPIN_SLACK {
            std::thread::sleep(left - SPIN_SLACK);
        } else {
            break;
        }
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// The benchmark: input synthesis, dispatch, parallel processing and
/// golden-reference verification.
///
/// # Example
///
/// ```
/// use lte_uplink::{BenchmarkConfig, UplinkBenchmark};
/// use lte_model::{ParameterModel, RampModel};
/// use lte_phy::CellConfig;
///
/// let mut bench = UplinkBenchmark::new(CellConfig::default(), BenchmarkConfig {
///     workers: 2,
///     ..BenchmarkConfig::default()
/// });
/// let subframes = RampModel::new(1).subframes(3);
/// let run = bench.run(&subframes);
/// assert_eq!(run.results.len(), 3);
/// bench.verify(&subframes, &run).expect("parallel must match serial");
/// ```
pub struct UplinkBenchmark {
    cell: CellConfig,
    cfg: BenchmarkConfig,
    /// Synthesised inputs, reused across subframes with identical user
    /// configurations.
    input_cache: HashMap<UserConfig, Arc<UserInput>>,
    rng: Xoshiro256,
    /// Optional live telemetry sinks, shared with completion callbacks.
    telemetry: Option<Arc<BenchmarkTelemetry>>,
}

impl UplinkBenchmark {
    /// Creates a benchmark instance.
    pub fn new(cell: CellConfig, cfg: BenchmarkConfig) -> Self {
        UplinkBenchmark {
            cell,
            cfg,
            input_cache: HashMap::new(),
            rng: Xoshiro256::seed_from_u64(cfg.seed),
            telemetry: None,
        }
    }

    /// Attaches live telemetry sinks. Completion callbacks record each
    /// subframe's latency and every user's decode outcome into the
    /// shared sinks as they happen — atomic stores only, no allocation,
    /// no effect on the decoded output.
    pub fn attach_telemetry(&mut self, sinks: Arc<BenchmarkTelemetry>) {
        self.telemetry = Some(sinks);
    }

    /// The input data used for a user configuration (synthesised once,
    /// then reused — the paper's unique-input-data pool).
    pub fn input_for(&mut self, user: &UserConfig) -> Arc<UserInput> {
        if let Some(input) = self.input_cache.get(user) {
            return Arc::clone(input);
        }
        let input = Arc::new(synthesize_user_with_mode(
            &self.cell,
            user,
            self.cfg.turbo,
            self.cfg.snr_db,
            &mut self.rng,
        ));
        self.input_cache.insert(*user, Arc::clone(&input));
        input
    }

    /// Runs the parallel benchmark over a subframe sequence.
    ///
    /// # Panics
    ///
    /// Panics when the worker pool cannot be constructed; use
    /// [`try_run`](UplinkBenchmark::try_run) to handle that gracefully.
    pub fn run(&mut self, subframes: &[SubframeConfig]) -> BenchmarkRun {
        self.try_run(subframes)
            .expect("failed to start the worker pool")
    }

    /// Runs the parallel benchmark over a subframe sequence.
    ///
    /// # Errors
    ///
    /// Returns the [`PoolError`] when the worker pool cannot be spawned.
    pub fn try_run(&mut self, subframes: &[SubframeConfig]) -> Result<BenchmarkRun, PoolError> {
        self.try_run_governed(subframes, None)
    }

    /// Runs the parallel benchmark with an optional power-governance
    /// hook called at every subframe dispatch boundary, *before* the
    /// subframe's jobs are submitted.
    ///
    /// The hook receives the pool, the subframe index and the subframe's
    /// configuration; a governor uses it to measure the closing window's
    /// activity and apply a new active-worker target
    /// (`lte_power::governed_boundary`). Capping workers changes only
    /// *where and when* work runs — never what is computed — so governed
    /// decoded output is byte-identical to an ungoverned run. After the
    /// dispatch loop drains, the pool is restored to full width so the
    /// final snapshot and any reuse see an ungoverned pool.
    ///
    /// # Errors
    ///
    /// Returns the [`PoolError`] when the worker pool cannot be spawned.
    pub fn try_run_governed(
        &mut self,
        subframes: &[SubframeConfig],
        mut governed: Option<GovernHook<'_>>,
    ) -> Result<BenchmarkRun, PoolError> {
        let pool = TaskPool::with_config(PoolConfig {
            n_workers: self.cfg.workers,
            pin_workers: self.cfg.pin_workers,
        })?;
        let handle = pool.handle();
        let planner = Arc::new(FftPlanner::new());
        let cell = self.cell;
        let turbo = self.cfg.turbo;
        let telemetry = self.telemetry.clone();
        let mut degradation = DegradationReport::default();

        // Result slots, one per (subframe, user), plus per-subframe open
        // counters and completion stamps for the deadline accounting.
        let results: Arc<Vec<Vec<OnceLock<UserResult>>>> = Arc::new(
            subframes
                .iter()
                .map(|sf| (0..sf.n_users()).map(|_| OnceLock::new()).collect())
                .collect(),
        );
        let open: Arc<Vec<AtomicUsize>> = Arc::new(
            subframes
                .iter()
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>(),
        );
        let done_at: Arc<Vec<OnceLock<u64>>> = Arc::new(
            subframes
                .iter()
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>(),
        );

        // Pre-synthesise inputs on the maintenance thread (the paper does
        // this at initialisation).
        let inputs: Vec<Vec<Arc<UserInput>>> = subframes
            .iter()
            .map(|sf| sf.users.iter().map(|u| self.input_for(u)).collect())
            .collect();

        // Prewarm every cache the steady-state path reads — FFT plans,
        // sub-block interleavers and DM-RS reference sequences — so no
        // worker ever takes a cache's write lock after the first
        // dispatch.
        for sf in subframes {
            planner.prewarm(sf.users.iter().map(|u| u.prbs));
            prewarm_subblock(sf.users.iter().map(|u| u.bits_per_subframe()));
            for u in &sf.users {
                prewarm_references(&cell, u);
            }
        }

        // In-flight accounting for the pipelining window: a counter of
        // dispatched-but-incomplete subframes guarded by a mutex, with a
        // condvar the completion callbacks signal. A condvar sleep (not
        // a poll) keeps the maintenance thread off the CPU while it
        // waits — on small hosts a polling dispatcher would steal cycles
        // from the very workers it is waiting for.
        let window = self.cfg.max_in_flight.map(|w| w.max(1));
        let in_flight: Arc<(Mutex<usize>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));

        let start = Instant::now();
        let busy_start = pool.busy_nanos();
        let mut dispatched_at = vec![0u64; subframes.len()];
        // Maintenance loop: dispatch each subframe at its deadline.
        for (sf_idx, sf_inputs) in inputs.iter().enumerate() {
            pace_until(start + self.cfg.delta * sf_idx as u32);
            // In-flight window: hold this subframe at the door until
            // fewer than `window` earlier subframes remain open. The
            // wait lands in the dispatch stamp below, so the latency
            // percentiles see the queueing delay instead of hiding it.
            if let Some(window) = window {
                let (lock, cv) = &*in_flight;
                let mut count = lock.lock().unwrap_or_else(PoisonError::into_inner);
                while *count >= window {
                    count = cv.wait(count).unwrap_or_else(PoisonError::into_inner);
                }
            }
            if let Some(hook) = governed.as_deref_mut() {
                hook(&pool, sf_idx, &subframes[sf_idx]);
            }
            dispatched_at[sf_idx] = start.elapsed().as_nanos() as u64;

            // Overload policy: "behind" means an earlier subframe has
            // already reached its deadline budget and is still open at
            // this dispatch instant — benign pipelining inside the
            // budget does not engage the policy (same trigger as the
            // DES).
            let mut submit: Vec<usize> = (0..sf_inputs.len()).collect();
            let mut exact = self.cfg.exact_demap;
            if let Some(budget) = self.cfg.deadline {
                let behind = (0..sf_idx).any(|i| {
                    open[i].load(Ordering::SeqCst) > 0
                        && dispatched_at[sf_idx].saturating_sub(dispatched_at[i]) >= budget.budget
                });
                if behind && !sf_inputs.is_empty() {
                    match budget.policy {
                        OverloadPolicy::DropSubframe => {
                            degradation.dropped_subframes += 1;
                            degradation.shed_users += submit.len() as u64;
                            if let Some(t) = &telemetry {
                                for &i in &submit {
                                    t.ebler.record_dtx(
                                        t.stream_for(subframes[sf_idx].users[i].layers),
                                    );
                                }
                            }
                            submit.clear();
                        }
                        OverloadPolicy::ShedUsers => {
                            // Shed cheapest-first (lowest PRB count, then
                            // index) until at most half the PRB load
                            // remains; always shed one, always keep one.
                            let sf = &subframes[sf_idx];
                            let total: usize = sf.users.iter().map(|u| u.prbs).sum();
                            submit.sort_by_key(|&i| (sf.users[i].prbs, i));
                            let mut kept = total;
                            let mut shed = 0usize;
                            while submit.len() > 1 && (shed == 0 || kept * 2 > total) {
                                kept -= sf.users[submit[0]].prbs;
                                if let Some(t) = &telemetry {
                                    t.ebler.record_dtx(t.stream_for(sf.users[submit[0]].layers));
                                }
                                submit.remove(0);
                                shed += 1;
                            }
                            submit.sort_unstable();
                            degradation.shed_users += shed as u64;
                        }
                        OverloadPolicy::DegradeDemap => {
                            exact = false;
                            degradation.degraded_subframes += 1;
                        }
                    }
                }
            }

            // The open count must be in place before any graph can finish.
            open[sf_idx].store(submit.len(), Ordering::SeqCst);
            let tracked = window.is_some() && !submit.is_empty();
            if tracked {
                *in_flight.0.lock().unwrap_or_else(PoisonError::into_inner) += 1;
            }
            for user_idx in submit {
                let results = Arc::clone(&results);
                let open = Arc::clone(&open);
                let done_at = Arc::clone(&done_at);
                let in_flight = tracked.then(|| Arc::clone(&in_flight));
                let tel = telemetry.clone();
                let dispatched = dispatched_at[sf_idx];
                let layers = subframes[sf_idx].users[user_idx].layers;
                spawn_user_graph(
                    &handle,
                    &cell,
                    &sf_inputs[user_idx],
                    turbo,
                    &planner,
                    exact,
                    Box::new(move |result| {
                        if let Some(t) = &tel {
                            t.ebler.record_decode(
                                t.stream_for(layers),
                                result.crc_ok,
                                result.payload.len() as u64,
                            );
                        }
                        results[sf_idx][user_idx]
                            .set(result)
                            .expect("each user slot is written once");
                        if open[sf_idx].fetch_sub(1, Ordering::SeqCst) == 1 {
                            let completed = start.elapsed().as_nanos() as u64;
                            let _ = done_at[sf_idx].set(completed);
                            if let Some(t) = &tel {
                                t.latency.record(completed.saturating_sub(dispatched));
                            }
                            if let Some(in_flight) = &in_flight {
                                let (lock, cv) = &**in_flight;
                                *lock.lock().unwrap_or_else(PoisonError::into_inner) -= 1;
                                cv.notify_one();
                            }
                        }
                    }),
                );
            }
        }
        pool.wait_all();
        if governed.is_some() {
            pool.set_active_workers(self.cfg.workers);
        }
        let elapsed = start.elapsed();
        let busy = Duration::from_nanos(pool.busy_nanos() - busy_start);
        let activity = busy.as_secs_f64() / (self.cfg.workers as f64 * elapsed.as_secs_f64());

        if let Some(budget) = self.cfg.deadline {
            for (sf_idx, done) in done_at.iter().enumerate() {
                if let Some(&completed) = done.get() {
                    if completed.saturating_sub(dispatched_at[sf_idx]) > budget.budget {
                        degradation.overruns += 1;
                    }
                }
            }
        }
        let latencies_ns: Vec<u64> = done_at
            .iter()
            .enumerate()
            .filter_map(|(i, done)| {
                done.get()
                    .map(|&completed| completed.saturating_sub(dispatched_at[i]))
            })
            .collect();
        let completions_ns: Vec<u64> = done_at.iter().filter_map(|d| d.get().copied()).collect();

        let mut rows: Vec<Vec<Option<UserResult>>> = Arc::try_unwrap(results)
            .expect("pool drained, no outstanding references")
            .into_iter()
            .map(|row| row.into_iter().map(OnceLock::into_inner).collect())
            .collect();

        // HARQ pass: every failed or shed transport block is retried
        // with chase combining, up to the retransmission budget. Shed
        // users enter HARQ from their original (buffered) transmission.
        if self.cfg.harq > 0 {
            let mut entity = HarqEntity::new(self.cfg.harq);
            for (sf_idx, row) in rows.iter_mut().enumerate() {
                for (user_idx, slot) in row.iter_mut().enumerate() {
                    if slot.as_ref().is_some_and(|r| r.crc_ok) {
                        continue;
                    }
                    let input = &inputs[sf_idx][user_idx];
                    let mut decision =
                        entity.on_reception(0, &cell, input, turbo, planner.as_ref());
                    while matches!(decision, HarqDecision::Retransmit { .. }) {
                        let retx = synthesize_retransmission(
                            &cell,
                            &input.config,
                            turbo,
                            &input.ground_truth,
                            self.cfg.snr_db,
                            &mut self.rng,
                        );
                        decision = entity.on_reception(0, &cell, &retx, turbo, planner.as_ref());
                    }
                    if let HarqDecision::Delivered { result, .. } = decision {
                        *slot = Some(result);
                    }
                }
            }
            degradation.harq = entity.stats;
        }

        let results: Vec<Vec<UserResult>> = rows
            .into_iter()
            .map(|row| row.into_iter().flatten().collect())
            .collect();
        let total_users: usize = results.iter().map(|r| r.len()).sum();
        let passed: usize = results
            .iter()
            .flat_map(|r| r.iter())
            .filter(|r| r.crc_ok)
            .count();
        Ok(BenchmarkRun {
            crc_pass_rate: if total_users == 0 {
                1.0
            } else {
                passed as f64 / total_users as f64
            },
            results,
            elapsed,
            busy,
            activity,
            latencies_ns,
            completions_ns,
            degradation,
            pool: PoolActivity::snapshot(&pool),
        })
    }

    /// Verifies a parallel run against the serial golden reference
    /// (§IV-D).
    ///
    /// # Errors
    ///
    /// Returns the first divergence found.
    pub fn verify(
        &mut self,
        subframes: &[SubframeConfig],
        run: &BenchmarkRun,
    ) -> Result<(), VerifyError> {
        let inputs: Vec<Vec<UserInput>> = subframes
            .iter()
            .map(|sf| {
                sf.users
                    .iter()
                    .map(|u| (*self.input_for(u)).clone())
                    .collect()
            })
            .collect();
        let golden = GoldenRecord::build(&self.cell, &inputs, self.cfg.turbo);
        golden.verify(&run.results)
    }
}

/// A flat buffer whose disjoint ranges are written concurrently by pool
/// tasks and read only after a completion counter joins every writer.
///
/// The paper's task decomposition makes the ranges disjoint by
/// construction — every (slot, rx, layer) or (slot, symbol, layer)
/// tuple maps to its own block — so tasks need neither a mutex to park
/// results in nor a per-task allocation to hold them.
struct SharedBuf<T> {
    cells: Vec<UnsafeCell<T>>,
}

// SAFETY: writers touch disjoint ranges (enforced by the dispatcher's
// index arithmetic), and readers only run after the pool scope joins
// all writers, which synchronises the stores.
unsafe impl<T: Send> Sync for SharedBuf<T> {}

impl<T: Copy> SharedBuf<T> {
    fn new(len: usize, fill: T) -> Self {
        let mut cells = Vec::new();
        cells.resize_with(len, || UnsafeCell::new(fill));
        SharedBuf { cells }
    }

    /// A mutable view of `start..start + len`.
    ///
    /// # Safety
    ///
    /// No other live reference may overlap the range for the lifetime
    /// of the returned slice.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(start + len <= self.cells.len(), "range out of bounds");
        let base = UnsafeCell::raw_get(self.cells.as_ptr().add(start));
        std::slice::from_raw_parts_mut(base, len)
    }
}

/// Shared state of one user's dependency-ordered task graph.
///
/// This replaces the old two-barrier design (estimate tasks → scope
/// join → weights on the user thread → combine tasks → scope join →
/// serial tail), where each user *blocked a worker* for its whole
/// pipeline. Here the last task of each stage spawns the next stage, so
/// no thread ever waits:
///
/// ```text
/// est(slot 0, rx, layer) ┐
///        …               ├─ last one → weights(0) → combine(0, sym, layer) ┐
/// est(slot 0, rx, layer) ┘                                  …              ├─┐
/// est(slot 1, rx, layer) ┐                                                 ┘ │
///        …               ├─ last one → weights(1) → combine(1, sym, layer) ┐ ├─ last → finish
/// est(slot 1, rx, layer) ┘                                  …              ├─┘
///                                                                          ┘
/// ```
///
/// Byte-identity with the serial reference holds because every task
/// computes the same arithmetic on the same inputs into its own
/// disjoint output range; the counters only decide *when* stages run,
/// never *what* they compute.
type UserDone = Box<dyn FnOnce(UserResult) + Send>;

struct UserGraph {
    cell: CellConfig,
    input: Arc<UserInput>,
    turbo: TurboMode,
    exact_demap: bool,
    planner: Arc<FftPlanner>,
    /// Flat `[slot][rx][layer][subcarrier]` channel-estimate buffer.
    est_buf: SharedBuf<Complex32>,
    /// Estimation tasks still outstanding, per slot.
    est_remaining: [AtomicUsize; SLOTS_PER_SUBFRAME],
    /// Per-slot combiner weights, set by the slot's last estimation task
    /// before any of the slot's combine tasks exist.
    weights: [OnceLock<CombinerWeights>; SLOTS_PER_SUBFRAME],
    /// Flat LLR buffer in the transmitter's bit order.
    llr_buf: SharedBuf<f32>,
    /// Combine tasks still outstanding across both slots.
    combine_remaining: AtomicUsize,
    /// Completion callback, taken exactly once by the join task.
    on_done: Mutex<Option<UserDone>>,
}

/// Spawns one user's dependency-ordered task graph onto the pool and
/// returns immediately; `on_done` runs on a worker thread once the
/// user's result is ready. [`TaskPool::wait_all`] covers every task of
/// the graph, including ones spawned after the call returns.
///
/// `exact_demap` selects the log-sum-exp demapper over max-log.
///
/// Steady-state allocation discipline: every task draws its working
/// buffers from its worker's thread-local [`UserScratch`] arena and
/// writes results into a shared flat buffer; the per-user cost is the
/// graph node (two flat buffers) and the boxed task closures.
pub fn spawn_user_graph(
    handle: &PoolHandle,
    cell: &CellConfig,
    input: &Arc<UserInput>,
    turbo: TurboMode,
    planner: &Arc<FftPlanner>,
    exact_demap: bool,
    on_done: Box<dyn FnOnce(UserResult) + Send>,
) {
    // The graph (and its two flat buffers) is built by a small *root*
    // task on whichever worker picks the user up, not at dispatch time:
    // under a deep admission backlog the dispatcher may queue hundreds
    // of subframes ahead of the workers, and eager construction would
    // hold every queued user's estimate and LLR buffers live at once.
    let cell = *cell;
    let input = Arc::clone(input);
    let planner = Arc::clone(planner);
    let root = handle.clone();
    handle.spawn(move || {
        let user = input.config;
        let n_rx = cell.n_rx;
        let n_layers = user.layers;
        let n_sc = user.subcarriers();
        let chunk_bits = n_sc * user.modulation.bits_per_symbol();
        let n_chunks = SLOTS_PER_SUBFRAME * DATA_SYMBOLS_PER_SLOT * n_layers;
        let graph = Arc::new(UserGraph {
            cell,
            input,
            turbo,
            exact_demap,
            planner,
            est_buf: SharedBuf::new(SLOTS_PER_SUBFRAME * n_rx * n_layers * n_sc, Complex32::ZERO),
            est_remaining: std::array::from_fn(|_| AtomicUsize::new(n_rx * n_layers)),
            weights: std::array::from_fn(|_| OnceLock::new()),
            llr_buf: SharedBuf::new(n_chunks * chunk_bits, 0f32),
            combine_remaining: AtomicUsize::new(n_chunks),
            on_done: Mutex::new(Some(on_done)),
        });
        for slot in 0..SLOTS_PER_SUBFRAME {
            for rx in 0..n_rx {
                for layer in 0..n_layers {
                    let graph = Arc::clone(&graph);
                    let inner = root.clone();
                    root.spawn(move || estimate_task(&inner, &graph, slot, rx, layer));
                }
            }
        }
    });
}

/// One channel-estimation task: (slot, rx, layer). The slot's last
/// estimator also computes the combiner weights — cache-hot over the
/// estimates it just joined — and fans out the slot's combine tasks.
fn estimate_task(
    handle: &PoolHandle,
    graph: &Arc<UserGraph>,
    slot: usize,
    rx: usize,
    layer: usize,
) {
    let user = &graph.input.config;
    let n_rx = graph.cell.n_rx;
    let n_layers = user.layers;
    let n_sc = user.subcarriers();
    let idx = (slot * n_rx + rx) * n_layers + layer;
    // SAFETY: each (slot, rx, layer) tuple owns its range.
    let out = unsafe { graph.est_buf.slice_mut(idx * n_sc, n_sc) };
    UserScratch::with(|s| {
        estimate_path_into(
            &graph.cell,
            &graph.input,
            slot,
            rx,
            layer,
            &graph.planner,
            &mut s.arena,
            out,
        );
    });
    if graph.est_remaining[slot].fetch_sub(1, Ordering::SeqCst) == 1 {
        let base = slot * n_rx * n_layers * n_sc;
        // SAFETY: the counter joined every writer of this slot's range;
        // other slots' writers touch disjoint ranges.
        let flat = unsafe { graph.est_buf.slice_mut(base, n_rx * n_layers * n_sc) };
        let w = UserScratch::with(|s| {
            s.weights_from_flat_estimate(n_rx, n_layers, n_sc, flat, graph.input.noise_var)
        });
        assert!(
            graph.weights[slot].set(w).is_ok(),
            "weights are computed once per slot"
        );
        for sym in 0..DATA_SYMBOLS_PER_SLOT {
            for layer in 0..n_layers {
                let graph = Arc::clone(graph);
                let inner = handle.clone();
                handle.spawn(move || combine_task(&inner, &graph, slot, sym, layer));
            }
        }
    }
}

/// One combine + demap task: (slot, symbol, layer), writing straight
/// into the flat LLR buffer in the transmitter's bit order. The last
/// one spawns the serial join.
fn combine_task(
    handle: &PoolHandle,
    graph: &Arc<UserGraph>,
    slot: usize,
    sym: usize,
    layer: usize,
) {
    let user = &graph.input.config;
    let n_sc = user.subcarriers();
    let chunk_bits = n_sc * user.modulation.bits_per_symbol();
    let idx = (slot * DATA_SYMBOLS_PER_SLOT + sym) * user.layers + layer;
    let weights = graph.weights[slot]
        .get()
        .expect("weights are set before the slot's combines are spawned");
    // SAFETY: each (slot, symbol, layer) tuple owns its range.
    let out = unsafe { graph.llr_buf.slice_mut(idx * chunk_bits, chunk_bits) };
    UserScratch::with(|s| {
        let mut combined = s.arena.take_c32(n_sc);
        combine_symbol_into(
            &graph.input,
            weights,
            slot,
            sym,
            layer,
            &graph.planner,
            &mut s.arena,
            &mut combined,
        );
        let mut llrs = s.arena.take_f32(chunk_bits);
        if graph.exact_demap {
            demap_block_exact_into(user.modulation, &combined, graph.input.noise_var, &mut llrs);
        } else {
            demap_block_into(user.modulation, &combined, graph.input.noise_var, &mut llrs);
        }
        out.copy_from_slice(&llrs);
        s.arena.recycle_f32(llrs);
        s.arena.recycle_c32(combined);
    });
    if graph.combine_remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        let graph = Arc::clone(graph);
        handle.spawn(move || finish_task(&graph));
    }
}

/// The serial join: deinterleave → turbo (pass-through) → CRC on the
/// completed LLR buffer, then the completion callback.
fn finish_task(graph: &UserGraph) {
    let total = graph.input.config.bits_per_subframe();
    // SAFETY: the combine counter joined every writer; this task is the
    // only remaining accessor.
    let llrs = unsafe { graph.llr_buf.slice_mut(0, total) };
    let result = UserScratch::with(|s| {
        finish_user_with_arena(
            &graph.cell,
            &graph.input,
            graph.turbo,
            llrs,
            &mut s.arena,
            &mut s.turbo,
        )
    });
    let cb = graph
        .on_done
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
        .expect("the join task runs once");
    cb(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_model::{ParameterModel, RampModel};

    fn quick_cfg() -> BenchmarkConfig {
        BenchmarkConfig {
            workers: 4,
            delta: Duration::from_millis(1),
            snr_db: 30.0,
            turbo: TurboMode::Passthrough,
            seed: 7,
            ..BenchmarkConfig::default()
        }
    }

    #[test]
    fn parallel_matches_serial_golden_reference() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        let subframes = RampModel::new(3).subframes(5);
        let run = bench.run(&subframes);
        bench
            .verify(&subframes, &run)
            .expect("parallel and serial must agree bit-exactly");
    }

    #[test]
    fn high_snr_run_passes_crc() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        // Small fixed allocation, clean channel.
        let subframes = vec![SubframeConfig::new(vec![UserConfig::new(
            4,
            1,
            lte_dsp::Modulation::Qpsk,
        )])];
        let run = bench.run(&subframes);
        assert_eq!(run.crc_pass_rate, 1.0);
    }

    #[test]
    fn input_cache_reuses_data() {
        let mut bench = UplinkBenchmark::new(CellConfig::default(), quick_cfg());
        let u = UserConfig::new(6, 2, lte_dsp::Modulation::Qam16);
        let a = bench.input_for(&u);
        let b = bench.input_for(&u);
        assert!(Arc::ptr_eq(&a, &b), "same config must reuse input data");
    }

    #[test]
    fn activity_is_positive_and_bounded() {
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        let subframes = RampModel::new(4).subframes(3);
        let run = bench.run(&subframes);
        assert!(run.activity > 0.0, "some work must have happened");
        // Helping threads can make busy/elapsed slightly exceed worker
        // count × wall in theory; sanity-bound it.
        assert!(run.activity < 1.5, "activity {} absurd", run.activity);
    }

    #[test]
    fn empty_subframe_sequence() {
        let mut bench = UplinkBenchmark::new(CellConfig::default(), quick_cfg());
        let run = bench.run(&[]);
        assert!(run.results.is_empty());
        assert_eq!(run.crc_pass_rate, 1.0);
    }

    #[test]
    fn zero_workers_is_a_clean_error() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::default(),
            BenchmarkConfig {
                workers: 0,
                ..quick_cfg()
            },
        );
        assert!(matches!(
            bench.try_run(&RampModel::new(1).subframes(1)),
            Err(lte_sched::PoolError::ZeroWorkers)
        ));
    }

    #[test]
    fn windowed_pipeline_matches_golden_reference() {
        // A tight in-flight window with a zero dispatch interval keeps
        // several subframes in the pipeline at once; results must still
        // be byte-identical to the serial reference.
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                delta: Duration::ZERO,
                max_in_flight: Some(2),
                ..quick_cfg()
            },
        );
        let subframes = RampModel::new(3).subframes(6);
        let run = bench.run(&subframes);
        bench
            .verify(&subframes, &run)
            .expect("pipelined subframes must stay bit-exact");
        // Every subframe completed and carries a latency stamp.
        assert_eq!(run.latencies_ns.len(), 6);
    }

    #[test]
    fn window_of_one_serialises_subframes() {
        // With a window of 1 a subframe is only admitted after its
        // predecessor fully completed: completions are monotone in
        // dispatch order and nothing overlaps.
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                delta: Duration::ZERO,
                max_in_flight: Some(1),
                ..quick_cfg()
            },
        );
        let subframes = RampModel::new(2).subframes(4);
        let run = bench.run(&subframes);
        bench.verify(&subframes, &run).expect("bit-exact");
        for pair in run.completions_ns.windows(2) {
            assert!(pair[0] <= pair[1], "window=1 must serialise completions");
        }
    }

    #[test]
    fn exact_demap_decodes_at_high_snr() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                exact_demap: true,
                ..quick_cfg()
            },
        );
        let subframes = vec![SubframeConfig::new(vec![UserConfig::new(
            4,
            1,
            lte_dsp::Modulation::Qam16,
        )])];
        let run = bench.run(&subframes);
        assert_eq!(run.crc_pass_rate, 1.0);
    }

    #[test]
    fn telemetry_sinks_see_every_user_and_subframe() {
        let sinks = Arc::new(BenchmarkTelemetry::new(4));
        let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), quick_cfg());
        bench.attach_telemetry(Arc::clone(&sinks));
        let subframes = RampModel::new(2).subframes(4);
        let run = bench.run(&subframes);
        bench
            .verify(&subframes, &run)
            .expect("telemetry must not change the decoded output");
        let latency = sinks.latency.snapshot();
        assert_eq!(latency.count, run.latencies_ns.len() as u64);
        let surface = sinks.ebler.snapshot();
        let expected: u64 = subframes.iter().map(|sf| sf.n_users() as u64).sum();
        assert_eq!(surface.total.measured(), expected);
        assert_eq!(surface.total.dtx, 0);
    }

    /// Overload setup: zero dispatch interval means every subframe after
    /// the first is dispatched while its predecessor is still in flight,
    /// so the policy triggers on (nearly) every subframe.
    fn pressured_cfg(policy: OverloadPolicy) -> BenchmarkConfig {
        BenchmarkConfig {
            workers: 2,
            delta: Duration::ZERO,
            deadline: Some(DeadlineBudget { budget: 1, policy }),
            ..quick_cfg()
        }
    }

    /// Six identical three-user subframes — enough PHY work per subframe
    /// that a zero-delta dispatch is always behind.
    fn pressured_subframes() -> Vec<SubframeConfig> {
        vec![
            SubframeConfig::new(vec![
                UserConfig::new(2, 1, lte_dsp::Modulation::Qpsk),
                UserConfig::new(4, 1, lte_dsp::Modulation::Qpsk),
                UserConfig::new(8, 2, lte_dsp::Modulation::Qam16),
            ]);
            6
        ]
    }

    #[test]
    fn drop_policy_sheds_whole_subframes_and_harq_redelivers() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                harq: 2,
                ..pressured_cfg(OverloadPolicy::DropSubframe)
            },
        );
        let subframes = pressured_subframes();
        let run = bench.run(&subframes);
        let d = &run.degradation;
        assert!(d.dropped_subframes > 0, "pressure must drop subframes");
        assert!(d.overruns > 0, "a 1 ns budget is always overrun");
        // HARQ redelivers every shed user from its buffered first
        // transmission, so no transport block is lost.
        let delivered: usize = run.results.iter().map(Vec::len).sum();
        let expected: usize = subframes.iter().map(SubframeConfig::n_users).sum();
        assert_eq!(delivered, expected, "HARQ must redeliver dropped users");
        assert!(d.harq.transmissions >= d.shed_users);
    }

    #[test]
    fn shed_policy_drops_cheapest_users_and_keeps_one() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            pressured_cfg(OverloadPolicy::ShedUsers),
        );
        let subframes = pressured_subframes();
        let run = bench.run(&subframes);
        assert!(run.degradation.shed_users > 0, "pressure must shed users");
        let delivered: usize = run.results.iter().map(Vec::len).sum();
        let expected: usize = subframes.iter().map(SubframeConfig::n_users).sum();
        assert_eq!(
            delivered + run.degradation.shed_users as usize,
            expected,
            "every user is either delivered or counted as shed"
        );
        for (sf, row) in subframes.iter().zip(&run.results) {
            if sf.n_users() > 0 {
                assert!(!row.is_empty(), "shedding must keep at least one user");
            }
        }
    }

    #[test]
    fn telemetry_counts_shed_users_as_dtx() {
        let sinks = Arc::new(BenchmarkTelemetry::new(4));
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            pressured_cfg(OverloadPolicy::ShedUsers),
        );
        bench.attach_telemetry(Arc::clone(&sinks));
        let run = bench.run(&pressured_subframes());
        let surface = sinks.ebler.snapshot();
        assert_eq!(surface.total.dtx, run.degradation.shed_users);
        let expected: u64 = pressured_subframes()
            .iter()
            .map(|sf| sf.n_users() as u64)
            .sum();
        assert_eq!(surface.total.measured(), expected);
    }

    #[test]
    fn degrade_policy_counts_degraded_subframes() {
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                exact_demap: true,
                ..pressured_cfg(OverloadPolicy::DegradeDemap)
            },
        );
        let subframes = pressured_subframes();
        let run = bench.run(&subframes);
        assert!(run.degradation.degraded_subframes > 0);
        // Degrading fidelity sheds nothing: every user is delivered.
        let delivered: usize = run.results.iter().map(Vec::len).sum();
        let expected: usize = subframes.iter().map(SubframeConfig::n_users).sum();
        assert_eq!(delivered, expected);
    }

    #[test]
    fn harq_pass_recovers_low_snr_failures() {
        // At -6 dB QPSK single shots mostly fail; chase combining over
        // independently faded retransmissions recovers them.
        let mut bench = UplinkBenchmark::new(
            CellConfig::with_antennas(2),
            BenchmarkConfig {
                snr_db: -6.0,
                harq: 6,
                ..quick_cfg()
            },
        );
        let subframes = vec![
            SubframeConfig::new(vec![
                UserConfig::new(2, 1, lte_dsp::Modulation::Qpsk),
                UserConfig::new(3, 1, lte_dsp::Modulation::Qpsk),
            ]);
            3
        ];
        let run = bench.run(&subframes);
        let d = &run.degradation;
        assert!(
            d.harq.transmissions > 0,
            "low SNR must push blocks into HARQ"
        );
        assert!(
            run.crc_pass_rate > 0.5,
            "combining should recover most blocks, got {}",
            run.crc_pass_rate
        );
    }
}
