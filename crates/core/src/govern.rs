//! The `govern` command: the closed power-governance loop on both
//! execution substrates.
//!
//! * **DES side** — replays the evaluation sequence through a stepping
//!   [`SimSession`](lte_sched::SimSession), with a [`PolicyGovernor`]
//!   deciding the Eq. 5 active-core target at every subframe boundary
//!   and auditing its Eq. 4 estimate against the simulator's measured
//!   Eq. 2 activity — the paper's Fig. 12 comparison, taken per
//!   subframe instead of per 1 s window.
//! * **Pool side** — runs the real benchmark under governance: the same
//!   governor parks and unparks workers of the work-stealing pool at
//!   each dispatch boundary, the decoded output is compared
//!   byte-for-byte against an ungoverned run (governance changes where
//!   work runs, never what is computed), and the estimator's Eq. 3
//!   slopes can be re-fitted from measured pool activity so the loop
//!   closes on the machine it actually controls.

use std::time::Duration;

use lte_dsp::Modulation;
use lte_model::{ParameterModel, RampModel, SteadyModel};
use lte_obs::{Event, Recorder};
use lte_phy::params::{CellConfig, SubframeConfig, UserConfig};
use lte_power::estimator::CalibrationPoint;
use lte_power::{
    governed_boundary, CoreController, NapPolicy, PolicyGovernor, UserLoad, WorkloadEstimator,
};
use lte_sched::sim::Simulator;
use lte_sched::TaskPool;

use crate::benchmark::{BenchmarkConfig, UplinkBenchmark};
use crate::experiments::ExperimentContext;

/// Cap on the governed DES burst. The ramp's opening stretch covers the
/// low-load regime where proactive deactivation matters most, and a
/// bounded burst keeps the four-policy sweep (and its recorded trace)
/// snappy.
pub const GOVERN_DES_SUBFRAME_CAP: usize = 600;

/// Metrics-key slug for a policy (`+` is not welcome in metric names).
pub fn policy_slug(policy: NapPolicy) -> &'static str {
    match policy {
        NapPolicy::NoNap => "nonap",
        NapPolicy::Idle => "idle",
        NapPolicy::Nap => "nap",
        NapPolicy::NapIdle => "nap_idle",
    }
}

/// Outcome of one governed DES burst.
#[derive(Clone, Debug)]
pub struct DesGovernRun {
    /// The policy governed under.
    pub policy: NapPolicy,
    /// Subframes in the burst.
    pub subframes: usize,
    /// Mean |estimated − measured| activity over closed windows.
    pub mean_abs_err: f64,
    /// Maximum |estimated − measured| activity over closed windows.
    pub max_abs_err: f64,
    /// Deactivated core time (nap + dead), simulated cycles.
    pub deactivated_cycles: u64,
    /// Mean Eq. 2 activity of the burst.
    pub mean_activity: f64,
    /// Jobs completed (must equal the dispatched total).
    pub jobs_total: usize,
}

/// Runs one governed DES burst: the governor decides a target at every
/// subframe boundary, the session applies it before the dispatch, and
/// each decision is recorded as a [`Event::GovernorDecision`] alongside
/// the simulator's own trace.
pub fn run_des_governed<R: Recorder>(
    ctx: &ExperimentContext,
    estimator: &WorkloadEstimator,
    policy: NapPolicy,
    recorder: &R,
) -> DesGovernRun {
    let all = ctx.subframes();
    let n = all.len().min(GOVERN_DES_SUBFRAME_CAP);
    let subframes = &all[..n];
    let cfg = ctx.sim_config(policy);
    // The static per-load target is the full machine; the governor's
    // per-boundary override supplies the real Eq. 5 target.
    let loads = ctx.loads(subframes, &vec![cfg.n_workers; n]);
    let user_loads: Vec<Vec<UserLoad>> = subframes
        .iter()
        .map(|sf| sf.users.iter().map(UserLoad::from).collect())
        .collect();

    let mut gov = PolicyGovernor::new(policy, estimator.clone(), ctx.controller);
    let mut session = Simulator::with_recorder(cfg, recorder).session(&loads);
    while let Some(boundary) = session.advance() {
        let target = governed_boundary(
            &mut session,
            &mut gov,
            boundary.subframe,
            &user_loads[boundary.subframe],
        );
        if recorder.enabled() {
            let estimated = gov.trace().last().map(|r| r.estimated).unwrap_or_default();
            recorder.record(Event::GovernorDecision {
                subframe: boundary.subframe as u32,
                t: boundary.t,
                policy: policy.name(),
                estimated_activity: estimated,
                target: target.active_cores as u32,
            });
        }
    }
    gov.close(Some(session.boundary_activity()));
    let deactivated_cycles = session.deactivated_cycles();
    let report = session.finish();
    let (mean_abs_err, max_abs_err) = gov.estimation_error().unwrap_or((0.0, 0.0));
    DesGovernRun {
        policy,
        subframes: n,
        mean_abs_err,
        max_abs_err,
        deactivated_cycles,
        mean_activity: report.mean_activity(&cfg),
        jobs_total: report.jobs_total,
    }
}

/// Outcome of one governed real-pool run.
#[derive(Clone, Debug)]
pub struct PoolGovernRun {
    /// The policy governed under.
    pub policy: NapPolicy,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Subframes dispatched.
    pub subframes: usize,
    /// `true` when the governed decoded output equals the ungoverned
    /// run's byte for byte.
    pub identical: bool,
    /// Governor-parked worker time as of the last dispatch boundary,
    /// nanoseconds.
    pub parked_nanos: u64,
    /// Mean |estimated − measured| activity over closed windows, when
    /// at least one window closed.
    pub mean_abs_err: Option<f64>,
    /// Maximum |estimated − measured| activity over closed windows.
    pub max_abs_err: Option<f64>,
    /// Governance decisions taken (one per dispatched subframe).
    pub decisions: usize,
}

/// Runs the real benchmark twice — ungoverned, then governed under
/// `policy` — and compares the decoded output byte for byte.
///
/// # Errors
///
/// Returns the [`PoolError`](lte_sched::PoolError) message when a
/// worker pool cannot be spawned.
pub fn run_pool_governed(
    workers: usize,
    n_subframes: usize,
    delta: Duration,
    seed: u64,
    estimator: &WorkloadEstimator,
    policy: NapPolicy,
) -> Result<PoolGovernRun, lte_sched::PoolError> {
    let subframes = RampModel::new(seed).subframes(n_subframes);
    run_pool_governed_subframes(&subframes, workers, delta, estimator, policy)
}

/// [`run_pool_governed`] over an explicit subframe sequence — the
/// command uses a steady low-load burst to demonstrate parked core
/// time, where a host-scaled ramp would saturate a small worker pool.
///
/// # Errors
///
/// Returns the [`PoolError`](lte_sched::PoolError) message when a
/// worker pool cannot be spawned.
pub fn run_pool_governed_subframes(
    subframes: &[SubframeConfig],
    workers: usize,
    delta: Duration,
    estimator: &WorkloadEstimator,
    policy: NapPolicy,
) -> Result<PoolGovernRun, lte_sched::PoolError> {
    let cfg = BenchmarkConfig {
        workers,
        delta,
        ..BenchmarkConfig::default()
    };
    let baseline = UplinkBenchmark::new(CellConfig::default(), cfg).try_run(subframes)?;

    // Margin 1 (the paper uses 2 on 62 cores): on a handful of host
    // workers a two-core margin would swallow the whole budget and the
    // proactive path would never park anyone.
    let controller = CoreController {
        max_cores: workers,
        min_cores: 1,
        margin: 1,
    };
    let mut gov = PolicyGovernor::new(policy, estimator.clone(), controller);
    let mut parked_nanos = 0u64;
    let mut hook = |pool: &TaskPool, sf_idx: usize, sf: &SubframeConfig| {
        let users: Vec<UserLoad> = sf.users.iter().map(UserLoad::from).collect();
        governed_boundary(&mut &*pool, &mut gov, sf_idx, &users);
        parked_nanos = pool.governor_parked_nanos();
    };
    let governed = UplinkBenchmark::new(CellConfig::default(), cfg)
        .try_run_governed(subframes, Some(&mut hook))?;
    // The pool is gone once the run returns, so the last window stays
    // open; the audit covers every window closed at a boundary.
    gov.close(None);
    let (mean_abs_err, max_abs_err) = match gov.estimation_error() {
        Some((mean, max)) => (Some(mean), Some(max)),
        None => (None, None),
    };
    Ok(PoolGovernRun {
        policy,
        workers,
        subframes: subframes.len(),
        identical: baseline.results == governed.results,
        parked_nanos,
        mean_abs_err,
        max_abs_err,
        decisions: gov.trace().len(),
    })
}

/// The steady low-load burst used to demonstrate parked core time: one
/// minimal user per subframe leaves most of each dispatch window idle
/// even on a two-worker host, so a proactive policy parks real time.
/// (The ramp sequence cannot serve here: slopes calibrated on a small
/// host are steep, and the ramp saturates the pool almost immediately.)
pub fn low_load_subframes(n: usize) -> Vec<SubframeConfig> {
    let user = UserConfig::new(4, 1, Modulation::Qpsk);
    let mut model = SteadyModel::new(user);
    model.subframes(n)
}

/// Re-fits the Eq. 3 slopes from *measured pool activity*: one paced
/// steady single-user run per (layers, modulation) pair at each probe
/// PRB count, with the run's Eq. 2 activity as the calibration point.
/// This closes the loop the paper leaves open — the estimator that
/// governs the real machine is calibrated on the real machine.
///
/// # Errors
///
/// Returns the [`PoolError`](lte_sched::PoolError) message when a
/// worker pool cannot be spawned.
pub fn calibrate_real(
    workers: usize,
    delta: Duration,
    cal_subframes: usize,
    probe_prbs: &[usize],
) -> Result<WorkloadEstimator, lte_sched::PoolError> {
    let mut estimator = WorkloadEstimator::new();
    let cfg = BenchmarkConfig {
        workers,
        delta,
        ..BenchmarkConfig::default()
    };
    for layers in 1..=4 {
        for modulation in Modulation::ALL {
            let mut points = Vec::new();
            for &prbs in probe_prbs {
                let user = UserConfig::new(prbs, layers, modulation);
                let mut model = SteadyModel::new(user);
                let subframes = model.subframes(cal_subframes);
                let run = UplinkBenchmark::new(CellConfig::default(), cfg).try_run(&subframes)?;
                points.push(CalibrationPoint {
                    prbs,
                    activity: run.activity,
                });
            }
            estimator.fit(layers, modulation, &points);
        }
    }
    Ok(estimator)
}

/// Everything the `govern` command measures, renderable as one JSON
/// report (`GOVERN.json`).
#[derive(Clone, Debug, Default)]
pub struct GovernReport {
    /// Worker threads used for the pool runs.
    pub pool_workers: usize,
    /// The governed DES bursts, one per policy.
    pub des: Vec<DesGovernRun>,
    /// The governed pool runs, one per policy.
    pub pool: Vec<PoolGovernRun>,
}

impl GovernReport {
    /// Renders the report as stable, hand-rolled JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"lte-sim-govern-v1\",\n");
        out.push_str(&format!("  \"pool_workers\": {},\n", self.pool_workers));
        out.push_str("  \"des\": [\n");
        for (i, r) in self.des.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"policy\": \"{}\", \"subframes\": {}, \"mean_abs_err\": {}, \"max_abs_err\": {}, \"deactivated_cycles\": {}, \"mean_activity\": {}, \"jobs_total\": {}}}{}\n",
                r.policy,
                r.subframes,
                r.mean_abs_err,
                r.max_abs_err,
                r.deactivated_cycles,
                r.mean_activity,
                r.jobs_total,
                if i + 1 < self.des.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"pool\": [\n");
        for (i, r) in self.pool.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"policy\": \"{}\", \"workers\": {}, \"subframes\": {}, \"identical\": {}, \"parked_nanos\": {}, \"mean_abs_err\": {}, \"decisions\": {}}}{}\n",
                r.policy,
                r.workers,
                r.subframes,
                r.identical,
                r.parked_nanos,
                r.mean_abs_err.unwrap_or(-1.0),
                r.decisions,
                if i + 1 < self.pool.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_obs::{JsonLinesRecorder, NoopRecorder};

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext {
            n_subframes: 200,
            cal_subframes: 12,
            cal_prb_step: 100,
            ..ExperimentContext::quick()
        }
    }

    #[test]
    fn des_governed_burst_audits_every_subframe() {
        let ctx = tiny_ctx();
        let (_curves, estimator) = ctx.run_calibration();
        let run = run_des_governed(&ctx, &estimator, NapPolicy::NapIdle, &NoopRecorder);
        assert_eq!(run.subframes, 200);
        assert!(run.jobs_total > 0, "the burst must dispatch work");
        assert!(
            run.deactivated_cycles > 0,
            "NAP+IDLE must bank nap cycles on the low-load ramp"
        );
        assert!(
            run.mean_abs_err < 0.10,
            "calibrated estimator must track the simulator it was fitted on, got {:.3}",
            run.mean_abs_err
        );
        assert!(run.max_abs_err >= run.mean_abs_err);
    }

    #[test]
    fn nonap_burst_deactivates_nothing_and_matches_ungoverned() {
        let ctx = tiny_ctx();
        let (_curves, estimator) = ctx.run_calibration();
        let governed = run_des_governed(&ctx, &estimator, NapPolicy::NoNap, &NoopRecorder);
        assert_eq!(governed.deactivated_cycles, 0, "NONAP never gates a core");
        // The ungoverned NONAP reference: same loads, full-width target.
        let all = ctx.subframes();
        let subframes = &all[..governed.subframes];
        let cfg = ctx.sim_config(NapPolicy::NoNap);
        let report =
            Simulator::new(cfg).run(&ctx.loads(subframes, &vec![cfg.n_workers; subframes.len()]));
        assert_eq!(governed.jobs_total, report.jobs_total);
        assert!((governed.mean_activity - report.mean_activity(&cfg)).abs() < 1e-12);
    }

    #[test]
    fn des_decisions_are_recorded_as_events() {
        let ctx = tiny_ctx();
        let (_curves, estimator) = ctx.run_calibration();
        let recorder = JsonLinesRecorder::new();
        let run = run_des_governed(&ctx, &estimator, NapPolicy::Nap, &recorder);
        let log = recorder.into_string();
        let decisions = log
            .lines()
            .filter(|l| l.contains("\"ev\":\"governor\""))
            .count();
        assert_eq!(decisions, run.subframes, "one decision per subframe");
        assert!(log.contains("\"policy\":\"NAP\""));
    }

    #[test]
    fn govern_report_renders_balanced_json() {
        let report = GovernReport {
            pool_workers: 4,
            des: vec![DesGovernRun {
                policy: NapPolicy::NapIdle,
                subframes: 10,
                mean_abs_err: 0.01,
                max_abs_err: 0.05,
                deactivated_cycles: 123,
                mean_activity: 0.4,
                jobs_total: 30,
            }],
            pool: vec![PoolGovernRun {
                policy: NapPolicy::NoNap,
                workers: 4,
                subframes: 10,
                identical: true,
                parked_nanos: 0,
                mean_abs_err: None,
                max_abs_err: None,
                decisions: 10,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"lte-sim-govern-v1\""));
        assert!(json.contains("\"policy\": \"NAP+IDLE\""));
        assert!(json.contains("\"identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn policy_slugs_are_metric_safe() {
        for policy in NapPolicy::ALL {
            let slug = policy_slug(policy);
            assert!(slug.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }
}
