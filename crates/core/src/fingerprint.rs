//! One-line run fingerprints: a stable 64-bit hash over a run's decoded
//! bytes, cheap enough to compute inline and stable enough to diff.
//!
//! The golden record ([`lte_phy::verify::GoldenRecord`]) answers "is
//! this run byte-identical to the serial reference?" by carrying the
//! full decoded payloads around. The fingerprint collapses the same
//! evidence into a single line, so two runs — different worker counts,
//! different machines, a drain-interrupted serve versus a batch bench —
//! can be compared by eye or by `diff` on one token. The drain/reload
//! tests use it to assert that a serve campaign's admitted subframes
//! decode to exactly the batch path's bytes.
//!
//! The hash is FNV-1a 64 over a canonical encoding (subframe count,
//! then per subframe the user count, then per user the CRC flag,
//! payload length and payload bits), dependency-free and identical on
//! every host.

use lte_dsp::fft::FftPlanner;
use lte_dsp::Xoshiro256;
use lte_model::{ParameterModel, RampModel};
use lte_obs::{event_json, RingRecorder};
use lte_phy::params::{CellConfig, TurboMode};
use lte_phy::receiver::{process_user_with_planner, UserResult};
use lte_phy::tx::synthesize_user_with_mode;
use lte_power::NapPolicy;
use lte_sched::sim::Simulator;

use crate::experiments::ExperimentContext;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte stream.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a length/count as a fixed-width little-endian u64.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes decoded results, `rows[subframe][user]`, canonically.
pub fn fingerprint_results(rows: &[Vec<UserResult>]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(rows.len() as u64);
    for row in rows {
        h.write_u64(row.len() as u64);
        for r in row {
            h.write(&[u8::from(r.crc_ok)]);
            h.write_u64(r.payload.len() as u64);
            h.write(&r.payload);
        }
    }
    h.finish()
}

/// A canonical serial run: `subframes` ramp-model subframes from
/// `seed`, synthesised and decoded exactly like the batch benchmark's
/// serial reference. Returns `(hash, total_users)`.
pub fn canonical_fingerprint(seed: u64, subframes: usize) -> (u64, usize) {
    let cell = CellConfig::with_antennas(2);
    let planner = FftPlanner::new();
    let mut model = RampModel::new(seed);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let sequence = model.subframes(subframes);
    let mut rows = Vec::with_capacity(sequence.len());
    let mut users = 0usize;
    for sf in &sequence {
        let row: Vec<UserResult> = sf
            .users
            .iter()
            .map(|u| {
                users += 1;
                let input =
                    synthesize_user_with_mode(&cell, u, TurboMode::Passthrough, 30.0, &mut rng);
                process_user_with_planner(&cell, &input, TurboMode::Passthrough, &planner)
            })
            .collect();
        rows.push(row);
    }
    (fingerprint_results(&rows), users)
}

/// A canonical scheduler run: the same ramp-model subframes dispatched
/// through the deterministic discrete-event simulator (NAP+IDLE, every
/// core targeted) with a ring recorder attached, and every recorded
/// trace event's canonical JSON line hashed in order. DES events carry
/// *simulated* cycle timestamps — pure functions of the load sequence —
/// so the hash is identical on every host and across worker interleavings
/// that don't exist in the DES. Returns `(hash, event_count)`.
///
/// Together with [`canonical_fingerprint`] this closes the fingerprint
/// gap: decoded bytes prove the PHY pipeline, the trace stream proves
/// the scheduling-visible state (dispatch order, steal traffic, core
/// occupancy, governor decisions).
pub fn canonical_trace_fingerprint(seed: u64, subframes: usize) -> (u64, u64) {
    let mut ctx = ExperimentContext::quick();
    ctx.seed = seed;
    ctx.n_subframes = subframes;
    let sequence = ctx.subframes();
    let cfg = ctx.sim_config(NapPolicy::NapIdle);
    // Fixed all-cores targets: the trace hash must not depend on a
    // host-side calibration run.
    let targets = vec![cfg.n_workers; sequence.len()];
    let capacity = (sequence.len() * cfg.n_workers * 64).clamp(1024, 4_000_000);
    let recorder = RingRecorder::new(capacity);
    let _report = Simulator::with_recorder(cfg, &recorder).run(&ctx.loads(&sequence, &targets));
    assert_eq!(
        recorder.total_recorded() as usize,
        recorder.events().len(),
        "trace ring overflowed; the hash would be truncated"
    );
    let mut h = Fnv1a::new();
    let events = recorder.events();
    h.write_u64(events.len() as u64);
    for ev in &events {
        h.write(event_json(ev).as_bytes());
        h.write(b"\n");
    }
    (h.finish(), events.len() as u64)
}

/// The one-line report `lte-sim fingerprint` prints: decoded-byte hash
/// plus the canonical trace-stream hash.
pub fn fingerprint_line(seed: u64, subframes: usize) -> String {
    let (hash, users) = canonical_fingerprint(seed, subframes);
    let (trace, events) = canonical_trace_fingerprint(seed, subframes);
    format!(
        "lte-sim-fingerprint-v2 seed={seed} subframes={subframes} users={users} \
         hash={hash:016x} trace_events={events} trace={trace:016x}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fingerprint_is_sensitive_to_structure() {
        let a = vec![vec![UserResult {
            payload: vec![1, 0, 1],
            crc_ok: true,
        }]];
        let mut b = a.clone();
        b[0][0].crc_ok = false;
        assert_ne!(fingerprint_results(&a), fingerprint_results(&b));
        let mut c = a.clone();
        c[0][0].payload[2] = 0;
        assert_ne!(fingerprint_results(&a), fingerprint_results(&c));
        // One subframe of two users ≠ two subframes of one user.
        let flat = vec![
            vec![a[0][0].clone()],
            vec![UserResult {
                payload: vec![],
                crc_ok: false,
            }],
        ];
        let nested = vec![vec![
            a[0][0].clone(),
            UserResult {
                payload: vec![],
                crc_ok: false,
            },
        ]];
        assert_ne!(fingerprint_results(&flat), fingerprint_results(&nested));
    }

    #[test]
    fn canonical_fingerprint_is_reproducible_and_seed_sensitive() {
        let (a1, users) = canonical_fingerprint(7, 4);
        let (a2, _) = canonical_fingerprint(7, 4);
        assert_eq!(a1, a2);
        assert!(users >= 4, "ramp model schedules at least one user per sf");
        let (b, _) = canonical_fingerprint(8, 4);
        assert_ne!(a1, b);
        let line = fingerprint_line(7, 4);
        assert!(line.starts_with("lte-sim-fingerprint-v2 seed=7 subframes=4"));
        assert!(line.contains(&format!("hash={a1:016x}")));
        assert!(line.contains("trace_events="));
        assert!(line.contains("trace="));
    }

    #[test]
    fn trace_fingerprint_is_reproducible_and_seed_sensitive() {
        let (a1, n1) = canonical_trace_fingerprint(7, 4);
        let (a2, n2) = canonical_trace_fingerprint(7, 4);
        assert_eq!(a1, a2);
        assert_eq!(n1, n2);
        assert!(n1 > 0, "a non-empty run records at least one trace event");
        let (b, _) = canonical_trace_fingerprint(8, 4);
        assert_ne!(a1, b);
    }
}
