//! Deterministic reproductions of every figure and table in the paper's
//! evaluation (§V–§VI), driven by the discrete-event simulator and the
//! calibrated power model.
//!
//! | Experiment | Paper | Runner |
//! |---|---|---|
//! | Users per subframe | Fig. 7 | [`ExperimentContext::trace`] |
//! | PRB allocation | Fig. 8 | [`ExperimentContext::trace`] |
//! | Layers | Fig. 9 | [`ExperimentContext::trace`] |
//! | Activity vs PRBs | Fig. 11 | [`ExperimentContext::run_calibration`] |
//! | Estimated vs measured activity | Fig. 12 | [`ExperimentContext::run_estimation_validation`] |
//! | Estimated active cores | Fig. 13 | [`ExperimentContext::estimated_targets`] |
//! | NONAP vs NAP power | Fig. 14 | [`ExperimentContext::run_power_study`] |
//! | All four policies | Fig. 15 | [`ExperimentContext::run_power_study`] |
//! | Power gating | Fig. 16 | [`ExperimentContext::run_power_study`] |
//! | Average dynamic power | Table I | [`PowerStudy::table1`] |
//! | Average total power | Table II | [`PowerStudy::table2`] |

use lte_dsp::Modulation;
use lte_model::trace::Trace;
use lte_model::{ParameterModel, RampModel, SteadyModel};
use lte_phy::params::{SubframeConfig, UserConfig, MAX_PRB};
use lte_power::estimator::{CalibrationPoint, CoreController, WorkloadEstimator};
use lte_power::gating::PowerGating;
use lte_power::meter::{mean_windows, rms_windows};
use lte_power::model::PowerModel;
use lte_power::NapPolicy;
use lte_sched::cycles::CostModel;
use lte_sched::sim::{SimConfig, SimReport, Simulator, SubframeLoad};

/// Shared parameters for every experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentContext {
    /// Parameter-model seed.
    pub seed: u64,
    /// Subframes in the main evaluation run (the paper: 68 000).
    pub n_subframes: usize,
    /// Steady-state subframes per calibration point.
    pub cal_subframes: usize,
    /// PRB step of the calibration sweep (the paper: 2).
    pub cal_prb_step: usize,
    /// Receive antennas.
    pub n_rx: usize,
    /// The kernel cost model.
    pub cost: CostModel,
    /// The chip power model.
    pub power: PowerModel,
    /// The active-core controller (Eq. 5).
    pub controller: CoreController,
    /// The power-gating model (Eqs. 6–9).
    pub gating: PowerGating,
    /// Buckets per activity window (200 subframes = 1 s).
    pub activity_window: usize,
    /// Buckets per RMS power window (20 subframes = 100 ms).
    pub rms_window: usize,
}

impl ExperimentContext {
    /// The paper's full evaluation setup: 68 000 subframes, calibration
    /// sweep 2..=200 PRBs in steps of 2.
    pub fn paper() -> Self {
        ExperimentContext {
            seed: 2012,
            n_subframes: 68_000,
            cal_subframes: 60,
            cal_prb_step: 2,
            n_rx: 4,
            cost: CostModel::tilepro64(),
            power: PowerModel::tilepro64(),
            controller: CoreController::paper(),
            gating: PowerGating::paper(),
            activity_window: 200,
            rms_window: 20,
        }
    }

    /// A reduced setup for smoke tests and CI: 4 000 subframes, coarse
    /// calibration sweep.
    pub fn quick() -> Self {
        ExperimentContext {
            n_subframes: 4_000,
            cal_subframes: 24,
            cal_prb_step: 40,
            ..Self::paper()
        }
    }

    /// The simulator configuration for a policy.
    pub fn sim_config(&self, policy: NapPolicy) -> SimConfig {
        let mut cfg = SimConfig::tilepro64(policy.mode());
        cfg.n_workers = self.controller.max_cores;
        cfg
    }

    /// Builds the simulator job for one user.
    pub fn job_for(&self, user: &UserConfig) -> lte_sched::SimJob {
        self.cost.user_job(
            user.prbs,
            user.layers,
            user.modulation.bits_per_symbol(),
            self.n_rx,
        )
    }

    /// Converts subframe configs plus per-subframe targets into simulator
    /// loads.
    pub fn loads(&self, subframes: &[SubframeConfig], targets: &[usize]) -> Vec<SubframeLoad> {
        assert_eq!(subframes.len(), targets.len(), "targets per subframe");
        subframes
            .iter()
            .zip(targets)
            .map(|(sf, &t)| SubframeLoad {
                jobs: sf.users.iter().map(|u| self.job_for(u)).collect(),
                active_target: t,
            })
            .collect()
    }

    /// The evaluation subframe sequence (deterministic in `seed`).
    pub fn subframes(&self) -> Vec<SubframeConfig> {
        RampModel::new(self.seed).subframes(self.n_subframes)
    }

    /// Figs. 7–9: the input-parameter trace of the evaluation run.
    pub fn trace(&self) -> Trace {
        Trace::from_configs(&self.subframes())
    }

    /// Fig. 11: sweeps steady-state single-user configurations and
    /// measures activity, then fits the workload estimator's slopes.
    pub fn run_calibration(&self) -> (Vec<CalibrationCurve>, WorkloadEstimator) {
        let mut curves = Vec::new();
        let mut estimator = WorkloadEstimator::new();
        let cfg = self.sim_config(NapPolicy::NoNap);
        for layers in 1..=4 {
            for modulation in Modulation::ALL {
                let mut points = Vec::new();
                let mut prbs = self.cal_prb_step.max(2);
                while prbs <= MAX_PRB {
                    let user = UserConfig::new(prbs, layers, modulation);
                    let mut model = SteadyModel::new(user);
                    let subframes = model.subframes(self.cal_subframes);
                    let targets = vec![cfg.n_workers; subframes.len()];
                    let report = Simulator::new(cfg).run(&self.loads(&subframes, &targets));
                    points.push(CalibrationPoint {
                        prbs,
                        activity: steady_activity(&report, &cfg),
                    });
                    prbs += self.cal_prb_step;
                }
                estimator.fit(layers, modulation, &points);
                curves.push(CalibrationCurve {
                    layers,
                    modulation,
                    points,
                });
            }
        }
        (curves, estimator)
    }

    /// Fig. 13 / Eq. 5: per-subframe active-core targets.
    pub fn estimated_targets(
        &self,
        estimator: &WorkloadEstimator,
        subframes: &[SubframeConfig],
    ) -> Vec<usize> {
        self.controller.targets(estimator, subframes)
    }

    /// Fig. 12: runs the evaluation sequence (NONAP) and compares
    /// windowed measured activity against the estimator.
    pub fn run_estimation_validation(
        &self,
        estimator: &WorkloadEstimator,
        subframes: &[SubframeConfig],
    ) -> EstimationValidation {
        let cfg = self.sim_config(NapPolicy::NoNap);
        let targets = vec![cfg.n_workers; subframes.len()];
        let report = Simulator::new(cfg).run(&self.loads(subframes, &targets));
        let measured = report.windowed_activity(&cfg, self.activity_window);
        let per_subframe: Vec<f64> = subframes
            .iter()
            .map(|sf| estimator.subframe_activity(sf))
            .collect();
        let estimated = mean_windows(&per_subframe, self.activity_window);
        let errors: Vec<f64> = estimated
            .iter()
            .zip(&measured)
            .map(|(e, m)| e - m)
            .collect();
        let mean_abs_err = errors.iter().map(|e| e.abs()).sum::<f64>() / errors.len().max(1) as f64;
        let max_abs_err = errors.iter().map(|e| e.abs()).fold(0.0, f64::max);
        EstimationValidation {
            estimated,
            measured,
            mean_abs_err,
            max_abs_err,
        }
    }

    /// Runs one policy over the evaluation sequence and converts the
    /// occupancy into power.
    pub fn run_policy(
        &self,
        policy: NapPolicy,
        subframes: &[SubframeConfig],
        targets: &[usize],
    ) -> PolicyRun {
        let cfg = self.sim_config(policy);
        let report = Simulator::new(cfg).run(&self.loads(subframes, targets));
        let power = self.power.power_trace(&report.buckets, &cfg);
        let rms = rms_windows(&power, self.rms_window);
        let mean_total = PowerModel::mean(&power);
        PolicyRun {
            policy,
            mean_total,
            mean_dynamic: mean_total - self.power.base_watts,
            rms,
            power,
            report,
        }
    }

    /// Figs. 14–16 and Tables I–II: calibrates the estimator, runs all
    /// four policies, and applies the analytical power-gating model on
    /// top of NAP+IDLE.
    pub fn run_power_study(&self) -> PowerStudy {
        let (curves, estimator) = self.run_calibration();
        let subframes = self.subframes();
        let targets = self.estimated_targets(&estimator, &subframes);
        let full = vec![self.controller.max_cores; subframes.len()];
        let runs: Vec<PolicyRun> = NapPolicy::ALL
            .iter()
            .map(|&policy| {
                let t = if policy.proactive() { &targets } else { &full };
                self.run_policy(policy, &subframes, t)
            })
            .collect();
        let napidle = runs
            .iter()
            .find(|r| r.policy == NapPolicy::NapIdle)
            .expect("NAP+IDLE always runs");
        let gated_power = self.gating.apply(&napidle.power, &targets);
        let gated_rms = rms_windows(&gated_power, self.rms_window);
        let gated_mean = PowerModel::mean(&gated_power);
        let validation = self.run_estimation_validation(&estimator, &subframes);
        PowerStudy {
            base_watts: self.power.base_watts,
            curves,
            estimator,
            targets,
            runs,
            gated_power,
            gated_rms,
            gated_mean,
            validation,
        }
    }
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self::paper()
    }
}

/// Mean activity of a steady-state run.
///
/// Uses the whole run: the simulator conserves work exactly (every
/// dispatched job's cycles appear in the buckets, with end-of-run drain
/// folded into the final bucket), so total-busy over total-capacity is
/// the unbiased per-subframe activity. Skipping "warm-up" buckets would
/// *inflate* the estimate — spillover from the skipped jobs still lands
/// in the measured window.
fn steady_activity(report: &SimReport, cfg: &SimConfig) -> f64 {
    let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
    busy as f64
        / (cfg.n_workers as u64 * cfg.dispatch_period * report.buckets.len().max(1) as u64) as f64
}

/// One Fig. 11 curve: activity vs PRBs for a (layers, modulation) pair.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationCurve {
    /// Layer count of the calibration user.
    pub layers: usize,
    /// Modulation of the calibration user.
    pub modulation: Modulation,
    /// Measured points across the PRB sweep.
    pub points: Vec<CalibrationPoint>,
}

/// Fig. 12 data: windowed estimated vs measured activity.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimationValidation {
    /// Estimated activity per window (Eq. 4 averaged).
    pub estimated: Vec<f64>,
    /// Measured activity per window (Eq. 2).
    pub measured: Vec<f64>,
    /// Mean absolute error (the paper: 1.2 %).
    pub mean_abs_err: f64,
    /// Maximum absolute error (the paper: 5.4 %, an underestimation).
    pub max_abs_err: f64,
}

/// One policy's run: occupancy, power trace and summary statistics.
#[derive(Clone, Debug)]
pub struct PolicyRun {
    /// The policy.
    pub policy: NapPolicy,
    /// Power per dispatch bucket (5 ms), watts.
    pub power: Vec<f64>,
    /// RMS power per 100 ms window — what the paper plots.
    pub rms: Vec<f64>,
    /// Mean total power.
    pub mean_total: f64,
    /// Mean dynamic power (total minus base) — Table I's view.
    pub mean_dynamic: f64,
    /// The underlying occupancy report.
    pub report: SimReport,
}

/// A Table I/II row.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerRow {
    /// Technique name as printed in the paper.
    pub technique: String,
    /// Average power in watts (dynamic for Table I, total for Table II).
    pub watts: f64,
    /// Reduction relative to NONAP (negative = saving), as a fraction.
    pub vs_nonap: f64,
    /// Reduction relative to IDLE, as a fraction (Table II only).
    pub vs_idle: f64,
}

/// The complete power study (Figs. 11–16, Tables I–II).
#[derive(Clone, Debug)]
pub struct PowerStudy {
    /// The model's base power (14 W).
    pub base_watts: f64,
    /// Fig. 11 calibration curves.
    pub curves: Vec<CalibrationCurve>,
    /// The fitted estimator.
    pub estimator: WorkloadEstimator,
    /// Fig. 13: per-subframe active-core targets.
    pub targets: Vec<usize>,
    /// The four policy runs, in [`NapPolicy::ALL`] order.
    pub runs: Vec<PolicyRun>,
    /// Fig. 16: NAP+IDLE power with analytical gating applied.
    pub gated_power: Vec<f64>,
    /// RMS-metered gated power.
    pub gated_rms: Vec<f64>,
    /// Mean gated power.
    pub gated_mean: f64,
    /// Fig. 12 data.
    pub validation: EstimationValidation,
}

impl PowerStudy {
    /// The run for a policy.
    pub fn run(&self, policy: NapPolicy) -> &PolicyRun {
        self.runs
            .iter()
            .find(|r| r.policy == policy)
            .expect("all policies present")
    }

    /// Table I: average dynamic power (base subtracted).
    pub fn table1(&self) -> Vec<PowerRow> {
        let nonap = self.run(NapPolicy::NoNap).mean_dynamic;
        NapPolicy::ALL
            .iter()
            .map(|&p| {
                let w = self.run(p).mean_dynamic;
                PowerRow {
                    technique: p.to_string(),
                    watts: w,
                    vs_nonap: (w - nonap) / nonap,
                    vs_idle: f64::NAN,
                }
            })
            .collect()
    }

    /// Table II: average total power including the PowerGating row.
    pub fn table2(&self) -> Vec<PowerRow> {
        let nonap = self.run(NapPolicy::NoNap).mean_total;
        let idle = self.run(NapPolicy::Idle).mean_total;
        let mut rows: Vec<PowerRow> = NapPolicy::ALL
            .iter()
            .map(|&p| {
                let w = self.run(p).mean_total;
                PowerRow {
                    technique: p.to_string(),
                    watts: w,
                    vs_nonap: (w - nonap) / nonap,
                    vs_idle: (w - idle) / idle,
                }
            })
            .collect();
        rows.push(PowerRow {
            technique: "PowerGating".to_string(),
            watts: self.gated_mean,
            vs_nonap: (self.gated_mean - nonap) / nonap,
            vs_idle: (self.gated_mean - idle) / idle,
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentContext {
        ExperimentContext {
            n_subframes: 600,
            cal_subframes: 16,
            cal_prb_step: 50,
            ..ExperimentContext::paper()
        }
    }

    #[test]
    fn trace_has_requested_length() {
        let ctx = tiny();
        assert_eq!(ctx.trace().len(), 600);
    }

    #[test]
    fn calibration_curves_are_increasing_and_ordered() {
        let ctx = tiny();
        let (curves, estimator) = ctx.run_calibration();
        assert_eq!(curves.len(), 12);
        assert!(estimator.is_calibrated());
        for c in &curves {
            // Activity grows with PRBs within each curve (Fig. 11).
            for w in c.points.windows(2) {
                assert!(
                    w[1].activity > w[0].activity,
                    "{} x{}: {:?}",
                    c.modulation,
                    c.layers,
                    w
                );
            }
        }
        // Slopes increase with layers for fixed modulation.
        for m in Modulation::ALL {
            let mut last = 0.0;
            for l in 1..=4 {
                let k = estimator.k(l, m);
                assert!(k > last, "{m} x{l}: k={k} last={last}");
                last = k;
            }
        }
    }

    #[test]
    fn estimation_validation_tracks_measured() {
        let ctx = tiny();
        let (_, estimator) = ctx.run_calibration();
        let subframes = ctx.subframes();
        let v = ctx.run_estimation_validation(&estimator, &subframes);
        assert_eq!(v.estimated.len(), v.measured.len());
        assert!(
            v.mean_abs_err < 0.08,
            "mean error {:.3} too large",
            v.mean_abs_err
        );
    }

    #[test]
    fn power_study_reproduces_paper_ordering() {
        let ctx = tiny();
        let study = ctx.run_power_study();
        let nonap = study.run(NapPolicy::NoNap).mean_total;
        let idle = study.run(NapPolicy::Idle).mean_total;
        let nap = study.run(NapPolicy::Nap).mean_total;
        let napidle = study.run(NapPolicy::NapIdle).mean_total;
        // Table II ordering: NONAP > IDLE, NAP > NAP+IDLE > gated.
        assert!(nonap > idle, "NONAP {nonap} !> IDLE {idle}");
        assert!(nonap > nap, "NONAP {nonap} !> NAP {nap}");
        assert!(idle > napidle, "IDLE {idle} !> NAP+IDLE {napidle}");
        assert!(nap > napidle, "NAP {nap} !> NAP+IDLE {napidle}");
        assert!(
            napidle > study.gated_mean,
            "NAP+IDLE {napidle} !> gated {}",
            study.gated_mean
        );
        // Everything sits above base power minus the maximum gating saving.
        assert!(study.gated_mean > study.base_watts - 3.5);
    }

    #[test]
    fn tables_are_consistent() {
        let ctx = tiny();
        let study = ctx.run_power_study();
        let t1 = study.table1();
        let t2 = study.table2();
        assert_eq!(t1.len(), 4);
        assert_eq!(t2.len(), 5);
        assert_eq!(t1[0].technique, "NONAP");
        assert!((t1[0].vs_nonap).abs() < 1e-12);
        assert_eq!(t2[4].technique, "PowerGating");
        // Table II watts = Table I watts + base.
        for (a, b) in t1.iter().zip(&t2) {
            assert!((a.watts + study.base_watts - b.watts).abs() < 1e-9);
        }
    }

    #[test]
    fn targets_vary_with_load() {
        let ctx = tiny();
        let (_, estimator) = ctx.run_calibration();
        let subframes = ctx.subframes();
        let targets = ctx.estimated_targets(&estimator, &subframes);
        assert_eq!(targets.len(), subframes.len());
        let min = *targets.iter().min().unwrap();
        let max = *targets.iter().max().unwrap();
        assert!(min >= 2);
        assert!(max <= ctx.controller.max_cores);
        assert!(max > min, "targets must vary over the ramp");
    }
}

/// The diurnal-load study testing the paper's closing claim.
#[derive(Clone, Debug)]
pub struct DiurnalStudy {
    /// Mean measured activity over the day (the paper cites ≈ 25 % as
    /// typical).
    pub mean_activity: f64,
    /// Table II-style rows for the diurnal day.
    pub rows: Vec<PowerRow>,
    /// Power-gated saving vs NONAP, as a fraction.
    pub gated_saving_vs_nonap: f64,
    /// Power-gated saving vs IDLE (the best estimate-free technique).
    pub gated_saving_vs_idle: f64,
}

impl ExperimentContext {
    /// Runs the power study over a compressed diurnal day instead of the
    /// paper's stress ramp — §VIII: "most base stations have an average
    /// load of about 25 % and have long periods where the load is much
    /// lower (e.g., nights) … Our technique would show even greater
    /// benefits for a more realistic use case."
    pub fn run_diurnal_study(&self) -> DiurnalStudy {
        use lte_model::DiurnalModel;
        let (_, estimator) = self.run_calibration();
        let mut model = DiurnalModel::new(self.seed, self.n_subframes);
        let subframes = model.subframes(self.n_subframes);
        let targets = self.controller.targets(&estimator, &subframes);
        let full = vec![self.controller.max_cores; subframes.len()];
        let runs: Vec<PolicyRun> = NapPolicy::ALL
            .iter()
            .map(|&policy| {
                let t = if policy.proactive() { &targets } else { &full };
                self.run_policy(policy, &subframes, t)
            })
            .collect();
        let napidle = runs
            .iter()
            .find(|r| r.policy == NapPolicy::NapIdle)
            .expect("NAP+IDLE present");
        let gated = self.gating.apply(&napidle.power, &targets);
        let gated_mean = PowerModel::mean(&gated);
        let cfg = self.sim_config(NapPolicy::NoNap);
        let nonap = runs
            .iter()
            .find(|r| r.policy == NapPolicy::NoNap)
            .expect("NONAP present");
        let idle = runs
            .iter()
            .find(|r| r.policy == NapPolicy::Idle)
            .expect("IDLE present");
        let mean_activity = nonap.report.mean_activity(&cfg);
        let mut rows: Vec<PowerRow> = runs
            .iter()
            .map(|r| PowerRow {
                technique: r.policy.to_string(),
                watts: r.mean_total,
                vs_nonap: (r.mean_total - nonap.mean_total) / nonap.mean_total,
                vs_idle: (r.mean_total - idle.mean_total) / idle.mean_total,
            })
            .collect();
        rows.push(PowerRow {
            technique: "PowerGating".to_string(),
            watts: gated_mean,
            vs_nonap: (gated_mean - nonap.mean_total) / nonap.mean_total,
            vs_idle: (gated_mean - idle.mean_total) / idle.mean_total,
        });
        DiurnalStudy {
            mean_activity,
            gated_saving_vs_nonap: (nonap.mean_total - gated_mean) / nonap.mean_total,
            gated_saving_vs_idle: (idle.mean_total - gated_mean) / idle.mean_total,
            rows,
        }
    }
}

#[cfg(test)]
mod diurnal_tests {
    use super::*;

    #[test]
    fn diurnal_study_is_light_and_ordered() {
        // The full "greater benefits at realistic load" comparison needs
        // the 68 000-subframe ramp (50 % average) and runs via
        // `lte-sim diurnal`; at unit scale we check the study's internal
        // properties: the day is light, the orderings hold, and the
        // estimate-guided saving is substantial.
        let ctx = ExperimentContext {
            n_subframes: 1_500,
            cal_subframes: 16,
            cal_prb_step: 50,
            ..ExperimentContext::paper()
        };
        let diurnal = ctx.run_diurnal_study();
        assert!(
            diurnal.mean_activity < 0.45,
            "diurnal day should be light: {:.2}",
            diurnal.mean_activity
        );
        assert_eq!(diurnal.rows.len(), 5);
        // NONAP worst, PowerGating best.
        let watts: Vec<f64> = diurnal.rows.iter().map(|r| r.watts).collect();
        assert!(watts[0] > watts[3], "NONAP must exceed NAP+IDLE");
        assert!(watts[4] < watts[3], "gating must beat NAP+IDLE");
        assert!(
            diurnal.gated_saving_vs_nonap > 0.2,
            "saving {:.2}",
            diurnal.gated_saving_vs_nonap
        );
        assert!(diurnal.gated_saving_vs_idle > 0.0);
    }
}
