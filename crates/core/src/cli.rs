//! `lte-sim` — command-line runner for every experiment in the paper.
//!
//! ```text
//! lte-sim <command> [--quick] [--subframes N] [--seed S] [--out DIR]
//!         [--perfetto FILE] [--metrics FILE]
//!
//! Commands:
//!   fig7 fig8 fig9   input parameter traces
//!   fig11            activity/PRB calibration sweep
//!   fig12            estimator validation
//!   fig13            estimated active cores
//!   fig14 fig15 fig16 power traces (all run the full power study)
//!   table1 table2    average power tables
//!   trace            instrumented run: Perfetto trace + metrics JSON
//!   chaos            deterministic fault-injection campaign
//!   govern           closed-loop power governance on both substrates
//!   soak             continuous-telemetry soak with SLO windows
//!   serve            continuously-running ingest service with
//!                    admission control, backpressure and graceful drain
//!   fingerprint      one-line fingerprint of a canonical run's bytes
//!   vectors          check (or --write) the golden kernel vectors
//!   bench            run the real parallel benchmark briefly
//!   perf             steady-state throughput harness (BENCH_PR3.json)
//!   all              everything above, written to --out
//! ```
//!
//! Run `lte-sim --help` for the full command and flag reference.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::ablation;
use crate::experiments::ExperimentContext;
use crate::report;
use crate::{BenchmarkConfig, UplinkBenchmark};
use lte_fault::OverloadPolicy;
use lte_model::{ParameterModel, RampModel};
use lte_phy::params::CellConfig;

struct Options {
    command: String,
    ctx: ExperimentContext,
    out: PathBuf,
    perfetto: Option<PathBuf>,
    metrics: Option<PathBuf>,
    stride: usize,
    /// Raw `--policy` value: an overload policy for `chaos`, a nap
    /// policy (or `all`) for `govern`. Parsed at the use site because
    /// the two commands accept different vocabularies.
    policy: Option<String>,
    calibration: Option<PathBuf>,
    chaos: bool,
    quick: bool,
    subframes_override: Option<usize>,
    seed_override: Option<u64>,
    baseline: Option<PathBuf>,
    workers: Option<Vec<usize>>,
    window: Option<usize>,
    pin: bool,
    scaling_baseline: Option<PathBuf>,
    /// perf: BENCH_PR9.json baseline for the decode-tail gate.
    decode_baseline: Option<PathBuf>,
    traffic: Option<String>,
    config: Option<PathBuf>,
    /// vectors: regenerate the golden file instead of checking it.
    write_vectors: bool,
    /// vectors: pin every kernel to the scalar reference path.
    scalar: bool,
    /// vectors: golden-file location (default conformance/golden.json).
    golden: Option<PathBuf>,
    /// deploy: number of cells to provision.
    cells: Option<usize>,
    /// deploy: total UE population across cells.
    ues: Option<usize>,
    /// deploy: inter-cell coupling amplitude in thousandths.
    coupling_milli: Option<u32>,
    /// deploy: cell kind — macro | nbiot.
    cell_kind: Option<String>,
}

const USAGE: &str = "\
lte-sim — the LTE Uplink Receiver PHY benchmark and power study

USAGE:
    lte-sim [COMMAND] [FLAGS]

COMMANDS:
    fig7 fig8 fig9    input parameter traces (users, PRBs, layers) as CSV
    fig11             activity/PRB calibration sweep (CSV + SVG)
    fig12             workload-estimator validation (CSV + SVG)
    fig13             estimated active-core targets (CSV)
    fig14 fig15 fig16 power traces for all nap policies (CSV + SVG)
    table1 table2     average dynamic / total power tables (markdown)
    concurrency       subframe concurrency and job latency percentiles
    trace             record an instrumented NAP+IDLE run: Perfetto
                      trace-event JSON plus a flat metrics snapshot
    chaos             deterministic fault-injection campaign: DES chaos
                      under an overload policy, real-pool conservation,
                      link-level HARQ recovery (trace + metrics JSON)
    govern            closed-loop power governance on both substrates:
                      governed DES bursts with an estimated-vs-measured
                      activity audit (Fig. 12 per subframe), governed
                      real-pool runs verified byte-identical against
                      ungoverned ones with parked-core-time accounting,
                      and Eq. 3 slope re-calibration from real runs
                      (GOVERN.json + governor trace/metrics)
    bench             run the real parallel benchmark briefly
    perf              throughput harness: steady-state Fig. 8 load at
                      zero dispatch interval, serial-vs-parallel
                      byte-identity check, BENCH_PR3.json under --out,
                      a turbo-decode leg run twice in the same process
                      (SIMD dispatch, then forced-scalar) for the
                      decode-tail speedup, per-stage time-breakdown
                      tables for both modes (BENCH_PR9.json), then the
                      worker-scaling matrix (BENCH_PR4.json):
                      throughput/speedup/efficiency per worker count,
                      byte-identity verified at every point
    soak              continuous-telemetry soak: N subframes through the
                      governed DES in rolling windows of W, with
                      per-window latency histograms (p50/p99/p999),
                      an EBLER surface from real receiver decodes,
                      per-window energy and governor target-vs-achieved
                      cores, and SLO budgets (deadline-miss rate, shed
                      rate). Writes SOAK.json + the rolling SOAK.jsonl
                      stream + an OpenMetrics exposition (all byte-
                      deterministic) plus a separate wall-clock host-
                      metrics file; exits 1 when any window violates
                      its SLO
    serve             continuously-running ingest service: deterministic
                      traffic (full-buffer, bursty-IoT or VoIP duty
                      cycles) arrives through a bounded ring with
                      token-bucket admission and a reject → shed →
                      degrade escalation ladder, while the pressure-
                      wrapped governor closes its power loop on live
                      queue depth. Drains gracefully on SIGINT/SIGTERM,
                      hot-reloads --config at a tick boundary, self-
                      heals worker crashes, and a watchdog restarts a
                      stalled pipeline. Writes SERVE.json + SERVE.om;
                      exits 0 on a clean drain, 1 when a calm (chaos-
                      free) window violates its SLO, 3 when drained by
                      a signal
    deploy            multi-cell deployment: provision --cells cells
                      (each with its own physical-cell identity,
                      Zadoff-Chu root and scrambling sequence) and
                      split --ues UEs across them; every tick each
                      cell's traffic model offers population-scaled
                      load, the per-cell scheduler grants within its
                      PRB budget, and one receiver per cell shards
                      onto the shared pool with fair round-robin
                      dispatch. Nonzero --coupling-milli injects
                      deterministic inter-cell interference; at zero
                      coupling cells are provably independent. Writes
                      DEPLOY.json + DEPLOY.om, byte-deterministic
                      under a fixed seed for every worker count
    fingerprint       print a one-line FNV-1a 64 fingerprint of the
                      canonical run's decoded bytes plus the canonical
                      trace-event stream (seed, subframes, user count,
                      hash, trace_events, trace) for byte-identity
                      diffing
    vectors           conformance gate: recompute the golden kernel
                      vectors (FFT, Zadoff-Chu, channel estimate, MMSE
                      weights, demap LLRs, segmentation/rate matching,
                      turbo, CRC, end-to-end receiver) and compare them
                      against conformance/golden.json, failing on any
                      byte drift; --write regenerates the file,
                      --scalar forces the scalar reference path so the
                      SIMD and fallback kernels are both gated
    ablation          sweep the design constants the paper fixes
    diurnal           the diurnal-day power study
    golden            store and verify a serial golden record
    all               every figure and table, written to --out
                      (default command)

FLAGS:
    --quick           reduced setup for smoke tests (4 000 subframes,
                      coarse calibration sweep)
    --subframes N     length of the main evaluation run
    --seed S          parameter-model seed
    --out DIR         output directory (default: results)
    --perfetto FILE   trace: write the trace-event JSON here
                      (default: <out>/trace.perfetto.json)
    --metrics FILE    trace: write the metrics snapshot here
                      (default: <out>/metrics.json)
    --policy P        chaos: overload policy — drop | shed | degrade
                      (default: shed)
                      govern: nap policy — nonap | idle | nap | nap+idle
                      | all (default: all)
                      soak: nap policy — nonap | idle | nap | nap+idle
                      (default: nonap)
                      serve: nap policy (default: nap+idle)
    --chaos           soak: inject the seeded fault plan (noise bursts,
                      a fail-stopped core, task panics)
                      serve: inject the seeded ingest chaos (an arrival
                      stall, a 2x flood burst, malformed arrivals)
    --calibration FILE
                      govern: load the estimator's fitted slopes from
                      this JSON file when it exists; otherwise fit the
                      Fig. 11 sweep and save the table here
    --baseline FILE   perf: compare against this BENCH_PR3.json and exit
                      1 on a >10% subframes/sec regression
    --workers LIST    perf: comma-separated worker counts for the
                      scaling matrix (default: powers of two up to the
                      host's available parallelism)
    --window N        perf: multi-subframe pipelining window — admit
                      subframe n+1 while up to N earlier subframes are
                      still in flight (0 = unbounded; default 4 for the
                      scaling matrix)
                      soak: telemetry window length in subframes
                      (default 1000)
                      serve: SLO window length in ticks (default 40)
    --pin             perf: pin workers to CPUs round-robin
    --scaling-baseline FILE
                      perf: compare against this BENCH_PR4.json and exit
                      1 on a >10% max-workers speedup regression
    --decode-baseline FILE
                      perf: compare against this BENCH_PR9.json and exit
                      1 on a >10% regression of either the pass-through
                      or the turbo-mode subframes/sec
    --traffic MODEL   serve: built-in traffic generator — full-buffer |
                      bursty-iot | voip (default: full-buffer)
    --write           vectors: write the recomputed vectors to the
                      golden file instead of checking against it
    --check           vectors: check against the golden file (the
                      default)
    --scalar          vectors: force scalar dispatch (disable the SIMD
                      kernels) before computing
    --golden FILE     vectors: golden-file location
                      (default: conformance/golden.json)
    --cells N         deploy: number of cells (default 2)
    --ues N           deploy: total UE population (default 1000)
    --coupling-milli N
                      deploy: inter-cell coupling amplitude in
                      thousandths (default 0 = isolated cells)
    --cell-kind KIND  deploy: macro | nbiot (default macro); nbiot
                      squeezes grants to 2-3 PRB single-layer QPSK
                      with 4 coverage repetitions and selection
                      combining
    --config FILE     serve: key=value service parameters (traffic,
                      rate_milli, burst, fill watermarks, SLO budgets);
                      the file is watched while serving and re-applied
                      at the next tick boundary when it changes
    -h, --help        print this help

Parse errors exit with status 2; runtime failures exit with status 1.
The long-running commands (serve, soak, perf, govern) latch SIGINT and
SIGTERM: they stop admitting work, flush complete artifacts for what
ran, and exit with status 3.
";

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut ctx = ExperimentContext::paper();
    let mut out = PathBuf::from("results");
    let mut perfetto = None;
    let mut metrics = None;
    let mut policy = None;
    let mut calibration = None;
    let mut chaos = false;
    let mut quick = false;
    let mut subframes_override = None;
    let mut seed_override = None;
    let mut baseline = None;
    let mut workers = None;
    let mut window = None;
    let mut pin = false;
    let mut scaling_baseline = None;
    let mut decode_baseline = None;
    let mut traffic = None;
    let mut config = None;
    let mut write_vectors = false;
    let mut scalar = false;
    let mut golden = None;
    let mut cells = None;
    let mut ues = None;
    let mut coupling_milli = None;
    let mut cell_kind = None;
    let mut i = 0;
    // Fetch the value of `--flag value`, exiting with a clear message if
    // it is missing.
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
    };
    let parse_number = |text: &str, flag: &str| -> u64 {
        text.parse().unwrap_or_else(|_| {
            eprintln!("{flag} takes a number, got '{text}'");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--quick" => {
                ctx = ExperimentContext::quick();
                quick = true;
            }
            "--subframes" => {
                ctx.n_subframes =
                    parse_number(&value_of(&args, i, "--subframes"), "--subframes") as usize;
                subframes_override = Some(ctx.n_subframes);
                i += 1;
            }
            "--seed" => {
                ctx.seed = parse_number(&value_of(&args, i, "--seed"), "--seed");
                seed_override = Some(ctx.seed);
                i += 1;
            }
            "--out" => {
                out = PathBuf::from(value_of(&args, i, "--out"));
                i += 1;
            }
            "--perfetto" => {
                perfetto = Some(PathBuf::from(value_of(&args, i, "--perfetto")));
                i += 1;
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(value_of(&args, i, "--metrics")));
                i += 1;
            }
            "--policy" => {
                policy = Some(value_of(&args, i, "--policy"));
                i += 1;
            }
            "--calibration" => {
                calibration = Some(PathBuf::from(value_of(&args, i, "--calibration")));
                i += 1;
            }
            "--chaos" => chaos = true,
            "--baseline" => {
                baseline = Some(PathBuf::from(value_of(&args, i, "--baseline")));
                i += 1;
            }
            "--workers" => {
                let text = value_of(&args, i, "--workers");
                let counts: Vec<usize> = text
                    .split(',')
                    .map(|part| parse_number(part.trim(), "--workers") as usize)
                    .collect();
                if counts.contains(&0) {
                    eprintln!("--workers counts must be positive, got '{text}'");
                    std::process::exit(2);
                }
                workers = Some(counts);
                i += 1;
            }
            "--window" => {
                window = Some(parse_number(&value_of(&args, i, "--window"), "--window") as usize);
                i += 1;
            }
            "--pin" => pin = true,
            "--scaling-baseline" => {
                scaling_baseline = Some(PathBuf::from(value_of(&args, i, "--scaling-baseline")));
                i += 1;
            }
            "--decode-baseline" => {
                decode_baseline = Some(PathBuf::from(value_of(&args, i, "--decode-baseline")));
                i += 1;
            }
            "--traffic" => {
                traffic = Some(value_of(&args, i, "--traffic"));
                i += 1;
            }
            "--config" => {
                config = Some(PathBuf::from(value_of(&args, i, "--config")));
                i += 1;
            }
            "--write" => write_vectors = true,
            // Checking is the vectors default; the explicit flag is
            // accepted so scripts can spell out their intent.
            "--check" => write_vectors = false,
            "--scalar" => scalar = true,
            "--golden" => {
                golden = Some(PathBuf::from(value_of(&args, i, "--golden")));
                i += 1;
            }
            "--cells" => {
                let n = parse_number(&value_of(&args, i, "--cells"), "--cells") as usize;
                if n == 0 {
                    eprintln!("--cells must be positive");
                    std::process::exit(2);
                }
                cells = Some(n);
                i += 1;
            }
            "--ues" => {
                ues = Some(parse_number(&value_of(&args, i, "--ues"), "--ues") as usize);
                i += 1;
            }
            "--coupling-milli" => {
                coupling_milli = Some(parse_number(
                    &value_of(&args, i, "--coupling-milli"),
                    "--coupling-milli",
                ) as u32);
                i += 1;
            }
            "--cell-kind" => {
                cell_kind = Some(value_of(&args, i, "--cell-kind"));
                i += 1;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag: {flag}");
                eprintln!("run 'lte-sim --help' for the full flag list");
                std::process::exit(2);
            }
            cmd => command = cmd.to_string(),
        }
        i += 1;
    }
    Options {
        command,
        ctx,
        out,
        perfetto,
        metrics,
        stride: 25,
        policy,
        calibration,
        chaos,
        quick,
        subframes_override,
        seed_override,
        baseline,
        workers,
        window,
        pin,
        scaling_baseline,
        decode_baseline,
        traffic,
        config,
        write_vectors,
        scalar,
        golden,
        cells,
        ues,
        coupling_milli,
        cell_kind,
    }
}

/// Writes an artifact atomically: the contents land in a `.tmp`
/// sibling first and are renamed into place, so an interrupted run
/// never leaves a truncated SOAK.json/GOVERN.json/SERVE.json behind —
/// the file either has the old contents or the complete new ones.
fn write(path: &Path, contents: &str) {
    if let Err(e) = crate::report::write_atomic(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

/// Has a termination signal been latched? The long-running commands
/// poll this at phase boundaries and drain instead of dying.
fn interrupted() -> bool {
    crate::signals::termination_requested().is_some()
}

fn run_traces(opts: &Options, which: &str) {
    let trace = opts.ctx.trace();
    match which {
        "fig7" => write(
            &opts.out.join("fig7_users.csv"),
            &report::fig7_csv(&trace, opts.stride),
        ),
        "fig8" => write(
            &opts.out.join("fig8_prbs.csv"),
            &report::fig8_csv(&trace, opts.stride),
        ),
        "fig9" => write(
            &opts.out.join("fig9_layers.csv"),
            &report::fig9_csv(&trace, opts.stride),
        ),
        _ => {
            write(
                &opts.out.join("fig7_users.csv"),
                &report::fig7_csv(&trace, opts.stride),
            );
            write(
                &opts.out.join("fig8_prbs.csv"),
                &report::fig8_csv(&trace, opts.stride),
            );
            write(
                &opts.out.join("fig9_layers.csv"),
                &report::fig9_csv(&trace, opts.stride),
            );
        }
    }
    println!(
        "trace: {} subframes, mean users {:.2}, mean PRBs {:.1}",
        trace.len(),
        trace.mean_users(),
        trace.mean_total_prbs()
    );
}

fn run_power_study(opts: &Options, emit: &[&str]) {
    let ctx = &opts.ctx;
    println!(
        "running power study: {} subframes, calibration step {} PRBs …",
        ctx.n_subframes, ctx.cal_prb_step
    );
    let study = ctx.run_power_study();
    let window_s = ctx.activity_window as f64
        * ctx
            .sim_config(lte_power::NapPolicy::NoNap)
            .dispatch_seconds();
    let rms_s = ctx.rms_window as f64
        * ctx
            .sim_config(lte_power::NapPolicy::NoNap)
            .dispatch_seconds();
    for e in emit {
        match *e {
            "fig11" => {
                write(
                    &opts.out.join("fig11_calibration.csv"),
                    &report::fig11_csv(&study.curves),
                );
                write(
                    &opts.out.join("fig11_calibration.svg"),
                    &report::fig11_svg(&study.curves),
                );
            }
            "fig12" => {
                write(
                    &opts.out.join("fig12_estimation.csv"),
                    &report::fig12_csv(&study.validation, window_s),
                );
                write(
                    &opts.out.join("fig12_estimation.svg"),
                    &report::fig12_svg(&study.validation, window_s),
                );
                println!(
                    "fig12: mean |err| {:.2}% (paper 1.2%), max |err| {:.2}% (paper 5.4%)",
                    100.0 * study.validation.mean_abs_err,
                    100.0 * study.validation.max_abs_err
                );
            }
            "fig13" => write(
                &opts.out.join("fig13_active_cores.csv"),
                &report::fig13_csv(&study.targets, opts.stride),
            ),
            "fig14" | "fig15" | "fig16" => {
                write(
                    &opts.out.join("fig14_15_16_power.csv"),
                    &report::power_traces_csv(&study, rms_s),
                );
                write(
                    &opts.out.join("fig14_15_16_power.svg"),
                    &report::power_svg(&study, rms_s),
                );
            }
            "table1" => {
                let md = report::table1_markdown(&study.table1());
                write(&opts.out.join("table1_dynamic_power.md"), &md);
                println!("\nTable I — average dynamic power (base subtracted)\n{md}");
            }
            "concurrency" => {
                // The paper's "no more than two to three subframes
                // concurrently" describes a real base station's
                // responsiveness budget (1 ms dispatch, ~3 ms deadline);
                // the benchmark's stress ramp deliberately drives the
                // 5 ms-dispatch TILEPro64 model to saturation, where the
                // backlog grows deeper at the load peak.
                let clock = ctx.sim_config(lte_power::NapPolicy::NoNap).clock_hz;
                let to_ms = |c: u64| c as f64 / clock * 1e3;
                let nonap = study.run(lte_power::NapPolicy::NoNap);
                println!(
                    "NONAP: max concurrent subframes {} | job latency p50 {:.1} ms, p95 {:.1} ms, max {:.1} ms",
                    nonap.report.max_concurrent_subframes,
                    to_ms(nonap.report.latency_percentile(50)),
                    to_ms(nonap.report.latency_percentile(95)),
                    to_ms(nonap.report.latency_percentile(100)),
                );
                let napidle = study.run(lte_power::NapPolicy::NapIdle);
                println!(
                    "NAP+IDLE: max concurrent subframes {} | job latency p50 {:.1} ms, p95 {:.1} ms, max {:.1} ms",
                    napidle.report.max_concurrent_subframes,
                    to_ms(napidle.report.latency_percentile(50)),
                    to_ms(napidle.report.latency_percentile(95)),
                    to_ms(napidle.report.latency_percentile(100)),
                );
            }
            "table2" => {
                let md = report::table2_markdown(&study.table2());
                write(&opts.out.join("table2_total_power.md"), &md);
                println!("\nTable II — average total power\n{md}");
            }
            _ => {}
        }
    }
}

fn run_ablations(opts: &Options) {
    let ctx = ExperimentContext {
        // Ablations sweep many runs; cap the per-run length.
        n_subframes: opts.ctx.n_subframes.min(8_000),
        ..opts.ctx
    };
    println!("Eq. 5 margin ablation (NAP+IDLE):");
    println!("  margin |  power (W) | p95 latency | max latency");
    for row in ablation::margin_ablation(&ctx, &[0, 1, 2, 4, 8, 16]) {
        println!(
            "  {:6} | {:9.2} | {:8.2} ms | {:8.2} ms",
            row.margin, row.mean_watts, row.p95_latency_ms, row.max_latency_ms
        );
    }
    let study = ctx.run_power_study();
    println!("\npower-domain group-size ablation (Eq. 6):");
    println!("  group |  gated (W) | saving (W)");
    for row in ablation::gating_group_ablation(&study, &[1, 2, 4, 8, 16, 32, 64]) {
        println!(
            "  {:5} | {:9.2} | {:8.2}",
            row.group_size, row.mean_watts, row.mean_saving
        );
    }
    println!("\nnap wake-period ablation:");
    println!("  period |  IDLE (W) |  NAP (W)");
    for row in ablation::wake_period_ablation(&ctx, &[0.25, 0.5, 1.0, 2.0, 4.0]) {
        println!(
            "  {:4.2} ms | {:8.2} | {:7.2}",
            row.period_ms, row.idle_watts, row.nap_watts
        );
    }
    println!("\nDVFS extension (estimator-driven ladder on NAP+IDLE):");
    let dvfs = ablation::dvfs_study(&ctx, &study, &lte_power::DvfsPolicy::default_ladder());
    println!(
        "  NAP+IDLE {:.2} W -> with DVFS {:.2} W ({:.0}% of subframes run below nominal f)",
        dvfs.baseline_watts,
        dvfs.dvfs_watts,
        100.0 * dvfs.scaled_fraction
    );
}

fn run_golden(opts: &Options) {
    use lte_phy::verify::GoldenRecord;
    // Build the predetermined sequence, store the serial record, then
    // verify a parallel run against the stored file — the paper's §IV-D
    // methodology including the "recording and storing" step.
    let subframes = RampModel::new(opts.ctx.seed).subframes(10);
    let mut bench = UplinkBenchmark::new(CellConfig::with_antennas(2), BenchmarkConfig::default());
    let inputs: Vec<Vec<lte_phy::grid::UserInput>> = subframes
        .iter()
        .map(|sf| {
            sf.users
                .iter()
                .map(|u| (*bench.input_for(u)).clone())
                .collect()
        })
        .collect();
    let golden = GoldenRecord::build(
        &CellConfig::with_antennas(2),
        &inputs,
        lte_phy::params::TurboMode::Passthrough,
    );
    let path = opts.out.join("golden_record.txt");
    write(&path, &golden.to_text());
    let restored =
        GoldenRecord::from_text(&fs::read_to_string(&path).expect("read back golden record"))
            .expect("parse stored record");
    let run = bench.try_run(&subframes).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    match restored.verify(&run.results) {
        Ok(()) => println!("parallel run verified against the stored golden record"),
        Err(e) => {
            eprintln!("verification FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn run_diurnal(opts: &Options) {
    println!(
        "running the diurnal-day study ({} subframes) …",
        opts.ctx.n_subframes
    );
    let study = opts.ctx.run_diurnal_study();
    println!(
        "mean activity over the day: {:.1}% (paper: 'about 25%' is typical)",
        100.0 * study.mean_activity
    );
    for row in &study.rows {
        println!(
            "  {:12} {:5.2} W  ({:+.0}% vs NONAP, {:+.0}% vs IDLE)",
            row.technique,
            row.watts,
            100.0 * row.vs_nonap,
            100.0 * row.vs_idle
        );
    }
    println!(
        "power-gated saving: {:.0}% vs NONAP, {:.0}% vs IDLE (ramp study: 24-26% / 9-11%)",
        100.0 * study.gated_saving_vs_nonap,
        100.0 * study.gated_saving_vs_idle
    );
}

fn run_bench(opts: &Options) {
    let subframes = RampModel::new(opts.ctx.seed).subframes(20);
    let mut bench = UplinkBenchmark::new(
        CellConfig::default(),
        BenchmarkConfig {
            delta: Duration::from_millis(5),
            ..BenchmarkConfig::default()
        },
    );
    println!("running the real parallel benchmark on 20 subframes …");
    let run = bench.try_run(&subframes).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!(
        "processed {} subframes in {:?}; activity {:.1}%, CRC pass rate {:.1}%",
        run.results.len(),
        run.elapsed,
        100.0 * run.activity,
        100.0 * run.crc_pass_rate
    );
    match bench.verify(&subframes, &run) {
        Ok(()) => println!("golden-reference verification: OK (bit-exact with serial)"),
        Err(e) => {
            eprintln!("golden-reference verification FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn run_perf_cmd(opts: &Options) {
    use crate::perf;
    let subframes = opts.subframes_override.unwrap_or(if opts.quick {
        perf::QUICK_SUBFRAMES
    } else {
        perf::FULL_SUBFRAMES
    });
    // The harness scenario is fixed, and so is its default seed —
    // reports stay comparable across machines and sessions unless the
    // operator explicitly overrides the channel realisations.
    let mut cfg = perf::PerfConfig {
        subframes,
        pin_workers: opts.pin,
        ..perf::PerfConfig::default()
    };
    if let Some(seed) = opts.seed_override {
        cfg.seed = seed;
    }
    // --window 0 means unbounded (no admission limit).
    if let Some(w) = opts.window {
        cfg.window = if w == 0 { None } else { Some(w) };
    }
    let turbo_subframes = if opts.quick {
        perf::TURBO_QUICK_SUBFRAMES
    } else {
        perf::TURBO_FULL_SUBFRAMES
    };
    println!(
        "running the throughput harness: {} steady-state subframes on {} workers, \
         then a {}-subframe turbo leg (SIMD and forced-scalar) …",
        cfg.subframes, cfg.workers, turbo_subframes
    );
    let decode = perf::run_decode_perf(&cfg, turbo_subframes).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = &decode.passthrough;
    write(&opts.out.join("BENCH_PR3.json"), &report.to_json());
    write(&opts.out.join("BENCH_PR9.json"), &decode.to_json());
    println!(
        "parallel {:.1} subframes/sec (serial {:.1}, speedup {:.2}x)",
        report.subframes_per_sec,
        report.serial_subframes_per_sec,
        report.speedup()
    );
    println!(
        "subframe latency p50 {:.0} us, p99 {:.0} us; CRC pass rate {:.1}%",
        report.p50_latency_us,
        report.p99_latency_us,
        100.0 * report.crc_pass_rate
    );
    println!(
        "arena buffers: {} fresh, {} reused ({:.1}% reuse)",
        report.arena_fresh,
        report.arena_reused,
        100.0 * report.arena_reused as f64
            / (report.arena_fresh + report.arena_reused).max(1) as f64
    );
    println!("serial-vs-parallel byte-identity: OK");
    println!(
        "turbo decode ({} iterations, {}): {:.1} subframes/sec parallel, \
         {:.1} serial; forced-scalar {:.1} serial → SIMD speedup {:.2}x",
        decode.turbo_iterations,
        decode.dispatch,
        decode.turbo.subframes_per_sec,
        decode.turbo.serial_subframes_per_sec,
        decode.turbo_scalar.serial_subframes_per_sec,
        decode.turbo_simd_speedup()
    );
    for (label, stages) in [
        ("pass-through", &decode.passthrough_stages),
        ("turbo-decode", &decode.turbo_stages),
    ] {
        println!("per-stage breakdown ({label} mode):");
        println!("  {:>16} | {:>11} | {:>6}", "stage", "total us", "share");
        for s in stages {
            println!(
                "  {:>16} | {:>11.1} | {:>5.1}%",
                s.stage,
                s.total_us,
                100.0 * s.share
            );
        }
    }
    if let Some(baseline_path) = &opts.baseline {
        let baseline = fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {}: {e}", baseline_path.display());
            std::process::exit(1);
        });
        match perf::check_against_baseline(report, &baseline) {
            Ok(()) => println!(
                "throughput holds against the baseline in {}",
                baseline_path.display()
            ),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(baseline_path) = &opts.decode_baseline {
        let baseline = fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!(
                "cannot read decode baseline {}: {e}",
                baseline_path.display()
            );
            std::process::exit(1);
        });
        match perf::check_decode_against_baseline(&decode, &baseline) {
            Ok(()) => println!(
                "decode-tail throughput holds against the baseline in {}",
                baseline_path.display()
            ),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }

    if interrupted() {
        println!("interrupted by signal: BENCH_PR3.json flushed, skipping the scaling matrix");
        std::process::exit(crate::signals::EXIT_INTERRUPTED);
    }

    // The worker-scaling matrix: same load at a ladder of worker counts,
    // byte-identity verified at every point.
    let scaling_cfg = perf::ScalingConfig {
        subframes,
        worker_counts: opts
            .workers
            .clone()
            .unwrap_or_else(perf::default_worker_ladder),
        seed: cfg.seed,
        window: match opts.window {
            Some(0) => None,
            Some(w) => Some(w),
            None => perf::ScalingConfig::default().window,
        },
        pin_workers: opts.pin,
    };
    println!(
        "running the scaling matrix: {} subframes at worker counts {:?} (host parallelism {}) …",
        scaling_cfg.subframes,
        scaling_cfg.worker_counts,
        perf::host_parallelism()
    );
    let scaling = perf::run_scaling_with_stop(&scaling_cfg, &interrupted).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    write(&opts.out.join("BENCH_PR4.json"), &scaling.to_json());
    if interrupted() {
        println!(
            "interrupted by signal: BENCH_PR4.json flushed with the {} point(s) that ran",
            scaling.points.len(),
        );
        std::process::exit(crate::signals::EXIT_INTERRUPTED);
    }
    println!(
        "serial reference {:.1} subframes/sec; byte-identity OK at every point",
        scaling.serial_subframes_per_sec
    );
    println!("  workers (eff) |    sf/sec | speedup | efficiency |  steals | batches | slot hits");
    for p in &scaling.points {
        println!(
            "  {:7} ({:3}) | {:9.1} | {:7.2} | {:10.2} | {:7} | {:7} | {:9}",
            p.workers_requested,
            p.workers_effective,
            p.subframes_per_sec,
            p.speedup,
            p.efficiency,
            p.pool.steals,
            p.pool.steal_batches,
            p.pool.lifo_slot_hits
        );
    }
    if let Some(baseline_path) = &opts.scaling_baseline {
        let baseline = fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!(
                "cannot read scaling baseline {}: {e}",
                baseline_path.display()
            );
            std::process::exit(1);
        });
        match perf::check_scaling_against_baseline(&scaling, &baseline) {
            Ok(()) => println!(
                "scaling holds against the baseline in {}",
                baseline_path.display()
            ),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}

fn run_trace_cmd(opts: &Options) {
    use crate::trace;
    println!(
        "recording an instrumented NAP+IDLE run ({} subframes max) …",
        opts.ctx.n_subframes.min(trace::TRACE_SUBFRAME_CAP)
    );
    let art = trace::run_trace(&opts.ctx);
    let perfetto_path = opts
        .perfetto
        .clone()
        .unwrap_or_else(|| opts.out.join("trace.perfetto.json"));
    let metrics_path = opts
        .metrics
        .clone()
        .unwrap_or_else(|| opts.out.join("metrics.json"));
    write(&perfetto_path, &art.perfetto_json);
    write(&metrics_path, &art.metrics_json);
    let cfg = opts.ctx.sim_config(lte_power::NapPolicy::NapIdle);
    println!(
        "traced {} subframes: activity {:.1}% (Eq. 2), {} jobs",
        art.subframes,
        100.0 * art.report.mean_activity(&cfg),
        art.report.jobs_total,
    );
    let busy: u64 = art.report.stage_breakdown().iter().map(|(_, c)| c).sum();
    for (stage, cycles) in art.report.stage_breakdown() {
        println!(
            "  {:12} {:>14} cycles ({:4.1}%)",
            stage.name(),
            cycles,
            100.0 * cycles as f64 / busy.max(1) as f64
        );
    }
    if art.dropped_events > 0 {
        eprintln!(
            "warning: ring filled, dropped {} oldest events — lower --subframes for a complete trace",
            art.dropped_events
        );
    }
    println!("open the trace in https://ui.perfetto.dev or chrome://tracing");
}

/// The `chaos` reading of `--policy`: an overload policy, shed by
/// default.
fn overload_policy(opts: &Options) -> OverloadPolicy {
    match opts.policy.as_deref() {
        None => OverloadPolicy::ShedUsers,
        Some(text) => text.parse().unwrap_or_else(|e| {
            eprintln!("--policy: {e}");
            std::process::exit(2);
        }),
    }
}

fn run_chaos_cmd(opts: &Options) {
    use crate::chaos;
    let policy = overload_policy(opts);
    println!(
        "running the chaos campaign ({} DES subframes, policy {}, seed {}) …",
        opts.ctx.n_subframes.min(chaos::CHAOS_SUBFRAME_CAP),
        policy.name(),
        opts.ctx.seed,
    );
    let art = chaos::run_chaos(&opts.ctx, policy).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let perfetto_path = opts
        .perfetto
        .clone()
        .unwrap_or_else(|| opts.out.join("chaos.perfetto.json"));
    let metrics_path = opts
        .metrics
        .clone()
        .unwrap_or_else(|| opts.out.join("chaos.metrics.json"));
    write(&perfetto_path, &art.perfetto_json);
    write(&metrics_path, &art.metrics_json);
    let s = &art.summary;
    println!(
        "DES ({} subframes): overruns {}, dropped subframes {}, shed jobs {}, degraded subframes {}, poisoned tasks {}, adopted jobs {}",
        art.subframes,
        s.overruns,
        s.dropped_subframes,
        s.shed_jobs,
        s.degraded_subframes,
        s.sim_poisoned_tasks,
        s.adopted_jobs,
    );
    println!(
        "pool: {} tasks expected, {} run, {} panics injected, kills {}, worker respawns {}",
        s.pool_tasks_expected, s.pool_tasks_run, s.task_panics, s.kills_injected, s.worker_respawns,
    );
    println!(
        "link: {} blocks, noise bursts {}, grid corruptions {}, delivered ok {}",
        s.link_blocks, s.noise_bursts, s.grid_corruptions, s.delivered_ok,
    );
    println!(
        "harq transmissions: {} (retransmissions {}, failures {})",
        s.harq.transmissions, s.harq.retransmissions, s.harq.failures,
    );
    println!("harq recoveries: {}", s.harq.recoveries);
    println!("lost tasks: {}", s.lost_tasks);
    println!("duplicated tasks: {}", s.duplicated_tasks);
    if !s.conserved() {
        eprintln!("chaos campaign LOST OR DUPLICATED tasks");
        std::process::exit(1);
    }
}

fn run_soak_cmd(opts: &Options) {
    use crate::soak::{self, SoakConfig};
    use std::io::Write as _;

    let mut cfg = SoakConfig::new(
        opts.subframes_override
            .unwrap_or(if opts.quick { 2_000 } else { 20_000 }),
        opts.window.unwrap_or(1_000).max(1),
        opts.ctx.seed,
    );
    cfg.chaos = opts.chaos;
    if let Some(text) = opts.policy.as_deref() {
        cfg.policy = text.parse().unwrap_or_else(|e| {
            eprintln!("--policy: {e}");
            std::process::exit(2);
        });
    }
    cfg.host_workers = opts
        .workers
        .as_ref()
        .and_then(|w| w.first().copied())
        .unwrap_or_else(|| 4.min(crate::perf::host_parallelism()));
    println!(
        "soaking {} subframes in windows of {} (policy {}, overload {}, chaos {}, seed {}) …",
        cfg.subframes,
        cfg.window,
        cfg.policy,
        cfg.overload.name(),
        cfg.chaos,
        cfg.seed,
    );

    // Stream each closed window into SOAK.jsonl as it happens, and echo
    // a one-line digest so a long soak shows a heartbeat.
    fs::create_dir_all(&opts.out).expect("create output directory");
    let jsonl_path = opts.out.join("SOAK.jsonl");
    let mut jsonl_file = fs::File::create(&jsonl_path).expect("create SOAK.jsonl");
    let clock_hz = opts.ctx.sim_config(lte_power::NapPolicy::NapIdle).clock_hz;
    let mut on_window = |w: &soak::SoakWindow, line: &str| {
        writeln!(jsonl_file, "{line}").expect("append SOAK.jsonl");
        let to_ms = |c: u64| c as f64 / clock_hz * 1e3;
        println!(
            "window {:>4}: {} sf, p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms, misses {}, shed {}, bler {:.2}% {}",
            w.index,
            w.subframes,
            to_ms(w.latency.quantile(0.50)),
            to_ms(w.latency.quantile(0.99)),
            to_ms(w.latency.quantile(0.999)),
            w.deadline_misses,
            w.shed_jobs,
            w.ebler.total.bler_pct,
            if w.verdict.ok() { "OK" } else { "SLO-VIOLATION" },
        );
    };
    let art =
        soak::run_soak_with_stop(&cfg, Some(&mut on_window), &interrupted).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
    drop(jsonl_file);
    println!("wrote {}", jsonl_path.display());
    write(&opts.out.join("SOAK.json"), &art.report.to_json());
    write(&opts.out.join("SOAK.om"), &art.openmetrics);
    if let Some(host) = &art.host_json {
        write(&opts.out.join("SOAK_HOST.json"), host);
    }
    let r = &art.report;
    println!(
        "soak totals: {} jobs, energy {:.1} J ({:.1} mJ/subframe), mean power {:.2} W",
        r.latency.count,
        r.energy_joules,
        1e3 * r.energy_joules / cfg.subframes.max(1) as f64,
        r.mean_power_watts,
    );
    println!(
        "EBLER: ack {:.2}%, nack {:.2}%, dtx {:.2}%, BLER {:.2}%, throughput {:.1} kbit/s avg",
        r.ebler.total.ack_pct,
        r.ebler.total.nack_pct,
        r.ebler.total.dtx_pct,
        r.ebler.total.bler_pct,
        r.ebler.total.throughput_avg_kbps,
    );
    if interrupted() {
        println!(
            "interrupted by signal: flushed complete artifacts for the {} windows that ran",
            r.windows.len(),
        );
        std::process::exit(crate::signals::EXIT_INTERRUPTED);
    }
    if r.healthy() {
        println!("SLO: all {} windows within budget", r.windows.len());
    } else {
        eprintln!(
            "SLO: {} of {} windows violated ({} violations total)",
            r.violating_windows,
            r.windows.len(),
            r.violations,
        );
        std::process::exit(1);
    }
}

fn run_serve_cmd(opts: &Options) {
    use crate::serve::{self, ServeConfig, ServeControl};
    use crate::signals;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::SystemTime;

    let ticks = opts
        .subframes_override
        .unwrap_or(if opts.quick { 200 } else { 2_000 }) as u64;
    let mut cfg = ServeConfig::new(ticks, opts.ctx.seed);
    // A real service ticks at the paper's subframe period: one
    // dispatch opportunity per millisecond. (The library default is
    // free-running for tests and drills.)
    cfg.delta = Duration::from_millis(1);
    cfg.window = opts.window.unwrap_or(40).max(1) as u64;
    cfg.workers = opts
        .workers
        .as_ref()
        .and_then(|w| w.first().copied())
        .unwrap_or_else(|| 4.min(crate::perf::host_parallelism()));
    if let Some(text) = opts.policy.as_deref() {
        cfg.policy = text.parse().unwrap_or_else(|e| {
            eprintln!("--policy: {e}");
            std::process::exit(2);
        });
    }
    if opts.chaos {
        cfg.faults = Some(lte_fault::IngestFaults::smoke(opts.ctx.seed));
    }
    if let Some(path) = &opts.config {
        let text = fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        cfg.params = serve::ServeParams::parse(&text).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(2);
        });
    }
    if let Some(text) = opts.traffic.as_deref() {
        cfg.params.traffic = text.parse().unwrap_or_else(|e| {
            eprintln!("--traffic: {e}");
            std::process::exit(2);
        });
    }

    println!(
        "serving {} ticks of {} traffic ({} workers, queue {}, window {}, policy {}, chaos {}, seed {}) …",
        cfg.ticks,
        cfg.params.traffic.name(),
        cfg.workers,
        cfg.queue_capacity,
        cfg.window,
        cfg.policy,
        cfg.faults.is_some(),
        cfg.seed,
    );

    // The monitor thread owns the outside world: it translates a
    // latched SIGINT/SIGTERM into a drain request and a changed
    // --config file into a staged hot reload, both picked up by the
    // serve loop at the next tick boundary.
    let mtime_of = |path: &Path| fs::metadata(path).ok().and_then(|m| m.modified().ok());
    let control = Arc::new(ServeControl::new());
    let monitor_stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let control = Arc::clone(&control);
        let stop = Arc::clone(&monitor_stop);
        let config_path = opts.config.clone();
        let mut last_mtime: Option<SystemTime> = config_path.as_deref().and_then(mtime_of);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if signals::termination_requested().is_some() {
                    control.request_drain();
                }
                if let Some(path) = config_path.as_deref() {
                    let mtime = mtime_of(path);
                    if mtime.is_some() && mtime != last_mtime {
                        last_mtime = mtime;
                        match fs::read_to_string(path)
                            .map_err(|e| e.to_string())
                            .and_then(|t| serve::ServeParams::parse(&t))
                        {
                            Ok(params) => {
                                println!("hot reload staged from {}", path.display());
                                control.request_reload(params);
                            }
                            Err(e) => eprintln!("hot reload skipped: {e}"),
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    let outcome = serve::run_serve(&cfg, &control).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    monitor_stop.store(true, Ordering::Relaxed);
    monitor.join().ok();

    write(&opts.out.join("SERVE.json"), &outcome.json);
    write(&opts.out.join("SERVE.om"), &outcome.openmetrics);
    let s = &outcome.snapshot;
    println!(
        "serve {}: {} ticks, {} arrivals, {} admitted, {} rejected ({} backpressure / {} rate-limited / {} malformed)",
        outcome.drain_reason.name(),
        outcome.ticks_run,
        s.arrivals,
        s.admitted,
        s.rejected_total(),
        s.rejected_backpressure,
        s.rejected_rate_limited,
        s.rejected_malformed,
    );
    println!(
        "  completed {} subframes ({} jobs, {} CRC pass), shed {} users, degraded {} subframes, drain-shed {}",
        s.completed_subframes,
        outcome.jobs_completed,
        outcome.crc_pass,
        s.shed_users,
        s.degraded_subframes,
        s.drain_shed_subframes,
    );
    let tier = |t: Option<u64>| t.map_or("never".to_string(), |t| format!("tick {t}"));
    println!(
        "  escalation: {} episode(s); reject {} / shed {} / degrade {}; deadline misses {}",
        outcome.episodes,
        tier(outcome.first_tier_tick[0]),
        tier(outcome.first_tier_tick[1]),
        tier(outcome.first_tier_tick[2]),
        s.deadline_misses,
    );
    println!(
        "  lifecycle: {} reload(s), {} watchdog restart(s), {} worker respawn(s), {} boosted boundaries",
        s.reloads, s.watchdog_restarts, outcome.worker_respawns, outcome.boosted_boundaries,
    );
    println!(
        "  fingerprint {:016x} ({}); drained in {:.1?} of {:.1?} total",
        outcome.fingerprint,
        if outcome.verified {
            "verified byte-identical to the serial reference"
        } else {
            "verification skipped"
        },
        outcome.drain_elapsed,
        outcome.elapsed,
    );
    if let Some(e) = &outcome.verify_error {
        eprintln!("golden-reference verification FAILED: {e}");
        std::process::exit(1);
    }
    let healthy = outcome.calm_windows_healthy();
    if healthy {
        println!(
            "SLO: all {} calm windows within budget ({} windows total)",
            outcome.windows.iter().filter(|w| !w.chaos_active).count(),
            outcome.windows.len(),
        );
    } else {
        eprintln!("SLO: a calm (chaos-free) window violated its budget");
    }
    if interrupted() {
        println!("drained on signal; artifacts are complete");
        std::process::exit(signals::EXIT_INTERRUPTED);
    }
    if !healthy {
        std::process::exit(1);
    }
}

fn run_vectors_cmd(opts: &Options) {
    use crate::conformance;
    if opts.scalar {
        lte_dsp::simd::force_scalar(true);
    }
    println!(
        "computing golden kernel vectors (dispatch: {}) …",
        lte_dsp::simd::dispatch_label()
    );
    let vectors = conformance::compute_vectors();
    for v in &vectors {
        println!("  {:24} {:016x}", v.kernel, v.hash);
    }
    let golden_path = opts
        .golden
        .clone()
        .unwrap_or_else(|| PathBuf::from(conformance::DEFAULT_GOLDEN_PATH));
    if opts.write_vectors {
        write(&golden_path, &conformance::render_golden(&vectors));
        return;
    }
    let text = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", golden_path.display());
        eprintln!("generate the golden set with 'lte-sim vectors --write'");
        std::process::exit(1);
    });
    let golden = conformance::parse_golden(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", golden_path.display());
        std::process::exit(1);
    });
    let drift = conformance::diff_vectors(&golden, &vectors);
    if drift.is_empty() {
        println!(
            "conformance: all {} kernels bit-identical to {}",
            vectors.len(),
            golden_path.display()
        );
    } else {
        for line in &drift {
            eprintln!("conformance DRIFT: {line}");
        }
        eprintln!(
            "{} kernel(s) drifted from {}",
            drift.len(),
            golden_path.display()
        );
        std::process::exit(1);
    }
}

fn run_fingerprint_cmd(opts: &Options) {
    let subframes = opts.subframes_override.unwrap_or(20);
    println!(
        "{}",
        crate::fingerprint::fingerprint_line(opts.ctx.seed, subframes)
    );
}

fn run_deploy_cmd(opts: &Options) {
    use crate::deploy::{run_deploy, DeployConfig};

    let mut cfg = DeployConfig::new(
        opts.cells.unwrap_or(2),
        opts.ues.unwrap_or(1000),
        opts.subframes_override.unwrap_or(32) as u64,
        opts.ctx.seed,
    );
    cfg.workers = opts
        .workers
        .as_ref()
        .and_then(|w| w.first().copied())
        .unwrap_or_else(|| 4.min(crate::perf::host_parallelism()));
    cfg.coupling_milli = opts.coupling_milli.unwrap_or(0);
    if let Some(text) = opts.traffic.as_deref() {
        cfg.traffic = text.parse().unwrap_or_else(|e| {
            eprintln!("--traffic: {e}");
            std::process::exit(2);
        });
    }
    if let Some(text) = opts.cell_kind.as_deref() {
        cfg.kind = text.parse().unwrap_or_else(|e| {
            eprintln!("--cell-kind: {e}");
            std::process::exit(2);
        });
    }

    println!(
        "deploying {} {} cells, {} UEs, {} ticks of {} traffic (coupling {}/1000, {} workers, seed {}) …",
        cfg.cells,
        cfg.kind.name(),
        cfg.ues,
        cfg.ticks,
        cfg.traffic.name(),
        cfg.coupling_milli,
        cfg.workers,
        cfg.seed,
    );
    let report = run_deploy(&cfg).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    write(&opts.out.join("DEPLOY.json"), &report.to_json());
    write(&opts.out.join("DEPLOY.om"), &report.openmetrics());
    let agg = &report.aggregate.total;
    println!(
        "deploy complete: fingerprint {:016x}, {} decodes ({} ack / {} nack / {} dtx), BLER {:.2}%, mean target {:.1} cores (max {})",
        report.fingerprint,
        agg.ack + agg.nack,
        agg.ack,
        agg.nack,
        agg.dtx,
        agg.bler_pct,
        report.mean_target_cores,
        report.max_target_cores,
    );
    for c in &report.per_cell {
        println!(
            "  cell {:3}: pop {:7}, offered {:6}, scheduled {:5}, deferred {:6}, fingerprint {:016x}",
            c.cell_id, c.population, c.offered, c.scheduled, c.deferred, c.fingerprint
        );
    }
}

fn run_govern_cmd(opts: &Options) {
    use crate::govern;
    use lte_obs::{MetricsRegistry, NoopRecorder, PerfettoExporter, RingRecorder};
    use lte_power::{NapPolicy, WorkloadEstimator};

    // The `govern` reading of `--policy`: one nap policy, or `all`.
    let policies: Vec<NapPolicy> = match opts.policy.as_deref() {
        None | Some("all") => NapPolicy::ALL.to_vec(),
        Some(text) => vec![text.parse().unwrap_or_else(|e| {
            eprintln!("--policy: {e}");
            std::process::exit(2);
        })],
    };

    // Calibration: load a saved table when --calibration names an
    // existing file; otherwise fit the Fig. 11 sweep and save it when a
    // path was given.
    let estimator = match &opts.calibration {
        Some(path) if path.exists() => {
            let text = fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read calibration {}: {e}", path.display());
                std::process::exit(1);
            });
            let est = WorkloadEstimator::from_json(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse calibration {}: {e}", path.display());
                std::process::exit(1);
            });
            println!("loaded calibration from {}", path.display());
            est
        }
        maybe_path => {
            println!("calibrating the estimator (Fig. 11 sweep) …");
            let (_curves, est) = opts.ctx.run_calibration();
            if let Some(path) = maybe_path {
                write(path, &est.to_json());
            }
            est
        }
    };

    let metrics = MetricsRegistry::new();
    let mut report = govern::GovernReport::default();

    // DES bursts for every selected policy. The NAP+IDLE burst (or the
    // last selected one) is recorded so the governor.target counter
    // track sits next to the core occupancy tracks in the trace.
    let traced_policy = if policies.contains(&NapPolicy::NapIdle) {
        NapPolicy::NapIdle
    } else {
        *policies.last().expect("at least one policy")
    };
    let cfg = opts.ctx.sim_config(traced_policy);
    let cap = opts.ctx.n_subframes.min(govern::GOVERN_DES_SUBFRAME_CAP);
    let capacity = (cap * cfg.n_workers * 64).clamp(1024, 4_000_000);
    let recorder = RingRecorder::new(capacity);
    let mut gate_failed = false;
    // Every phase boundary polls for a latched SIGINT/SIGTERM; on
    // interruption the remaining phases are skipped and whatever ran is
    // flushed below before exiting with the interrupted status.
    'phases: {
        for &policy in &policies {
            if interrupted() {
                break 'phases;
            }
            let run = if policy == traced_policy {
                govern::run_des_governed(&opts.ctx, &estimator, policy, &recorder)
            } else {
                govern::run_des_governed(&opts.ctx, &estimator, policy, &NoopRecorder)
            };
            let slug = govern::policy_slug(policy);
            metrics.set_gauge(&format!("governor.{slug}.mean_abs_err"), run.mean_abs_err);
            metrics.set_gauge(&format!("governor.{slug}.max_abs_err"), run.max_abs_err);
            metrics.set_counter(
                &format!("governor.{slug}.deactivated_cycles"),
                run.deactivated_cycles,
            );
            metrics.set_counter(&format!("governor.{slug}.decisions"), run.subframes as u64);
            println!(
            "govern DES {}: {} subframes, activity {:.1}%, mean |err| {:.2}%, max |err| {:.2}%, deactivated {} cycles",
            run.policy,
            run.subframes,
            100.0 * run.mean_activity,
            100.0 * run.mean_abs_err,
            100.0 * run.max_abs_err,
            run.deactivated_cycles,
        );
            let pass = run.mean_abs_err < 0.10;
            println!(
                "govern gate: {} estimator mean error {:.2}% {} 10% — {}",
                run.policy,
                100.0 * run.mean_abs_err,
                if pass { "<" } else { ">=" },
                if pass { "PASS" } else { "FAIL" },
            );
            gate_failed |= !pass;
            report.des.push(run);
        }

        // Real-pool side: re-fit the Eq. 3 slopes from measured pool
        // activity, then run governed vs ungoverned under each policy and
        // require byte-identical decoded output.
        let workers = 4.min(crate::perf::host_parallelism()).max(2);
        report.pool_workers = workers;
        let delta = Duration::from_millis(2);
        if interrupted() {
            break 'phases;
        }
        println!("re-fitting Eq. 3 slopes from real pool runs ({workers} workers) …");
        let real = govern::calibrate_real(workers, delta, 8, &[25, 100]).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        println!(
            "  k(1, QPSK): DES {:.6} vs real {:.6} activity per PRB",
            estimator.k(1, lte_dsp::Modulation::Qpsk),
            real.k(1, lte_dsp::Modulation::Qpsk),
        );
        for &policy in &policies {
            if interrupted() {
                break 'phases;
            }
            let run = govern::run_pool_governed(workers, 30, delta, opts.ctx.seed, &real, policy)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            let slug = govern::policy_slug(policy);
            metrics.set_counter(
                &format!("governor.pool.{slug}.parked_nanos"),
                run.parked_nanos,
            );
            metrics.set_counter(
                &format!("governor.pool.{slug}.identical"),
                u64::from(run.identical),
            );
            println!(
                "govern pool {}: {} workers, {} decisions, parked {:.2} ms, output {}",
                run.policy,
                run.workers,
                run.decisions,
                run.parked_nanos as f64 / 1e6,
                if run.identical {
                    "byte-identical"
                } else {
                    "DIVERGED"
                },
            );
            if !run.identical {
                eprintln!("governed pool output diverged from the ungoverned run");
                std::process::exit(1);
            }
            report.pool.push(run);
        }

        // Parked-core-time demonstration: a steady low-load burst under
        // NAP+IDLE, where the Eq. 5 target sits below the worker count and
        // the surplus workers must bank real parked time.
        if interrupted() {
            break 'phases;
        }
        let low = govern::low_load_subframes(20);
        let low_run =
            govern::run_pool_governed_subframes(&low, workers, delta, &real, NapPolicy::NapIdle)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
        metrics.set_counter("governor.pool.low_load.parked_nanos", low_run.parked_nanos);
        println!(
        "govern pool NAP+IDLE low load: {} workers, parked {:.2} ms over {} subframes, output {}",
        low_run.workers,
        low_run.parked_nanos as f64 / 1e6,
        low_run.subframes,
        if low_run.identical {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    );
        if !low_run.identical {
            eprintln!("governed pool output diverged from the ungoverned run");
            std::process::exit(1);
        }
        if low_run.parked_nanos == 0 {
            eprintln!("NAP+IDLE parked no worker time at low load");
            std::process::exit(1);
        }
        report.pool.push(low_run);
    }

    let events = recorder.events();
    let perfetto_path = opts
        .perfetto
        .clone()
        .unwrap_or_else(|| opts.out.join("govern.perfetto.json"));
    let metrics_path = opts
        .metrics
        .clone()
        .unwrap_or_else(|| opts.out.join("govern.metrics.json"));
    write(
        &perfetto_path,
        &PerfettoExporter::new(cfg.clock_hz).export(&events, cfg.n_workers),
    );
    write(&metrics_path, &metrics.to_json());
    write(&opts.out.join("GOVERN.json"), &report.to_json());
    if interrupted() {
        println!(
            "interrupted by signal: flushed GOVERN.json with the {} DES and {} pool run(s) that completed",
            report.des.len(),
            report.pool.len(),
        );
        std::process::exit(crate::signals::EXIT_INTERRUPTED);
    }
    if gate_failed {
        eprintln!("estimator error gate failed");
        std::process::exit(1);
    }
}

/// Parses `std::env::args` and runs the selected command. The two
/// `lte-sim`/`lte_sim` binaries are thin wrappers around this.
pub fn run() {
    let opts = parse_args();
    // The long-running commands drain and flush complete artifacts on
    // SIGINT/SIGTERM (exit 3) instead of dying mid-write. Short
    // commands keep the default die-on-signal behaviour.
    if matches!(opts.command.as_str(), "serve" | "soak" | "perf" | "govern") {
        crate::signals::install_termination_handlers();
    }
    match opts.command.as_str() {
        "fig7" | "fig8" | "fig9" => run_traces(&opts, &opts.command),
        "fig11" | "fig12" | "fig13" | "fig14" | "fig15" | "fig16" | "table1" | "table2"
        | "concurrency" => run_power_study(&opts, &[opts.command.as_str()]),
        "trace" => run_trace_cmd(&opts),
        "chaos" => run_chaos_cmd(&opts),
        "govern" => run_govern_cmd(&opts),
        "soak" => run_soak_cmd(&opts),
        "serve" => run_serve_cmd(&opts),
        "deploy" => run_deploy_cmd(&opts),
        "fingerprint" => run_fingerprint_cmd(&opts),
        "vectors" => run_vectors_cmd(&opts),
        "bench" => run_bench(&opts),
        "perf" => run_perf_cmd(&opts),
        "ablation" => run_ablations(&opts),
        "diurnal" => run_diurnal(&opts),
        "golden" => run_golden(&opts),
        "all" => {
            run_traces(&opts, "all");
            run_power_study(
                &opts,
                &["fig11", "fig12", "fig13", "fig14", "table1", "table2"],
            );
            run_bench(&opts);
        }
        other => {
            eprintln!("unknown command: {other}");
            eprintln!("commands: fig7 fig8 fig9 fig11 fig12 fig13 fig14 fig15 fig16 table1 table2 concurrency trace chaos govern soak serve deploy fingerprint vectors ablation diurnal golden bench perf all");
            eprintln!("run 'lte-sim --help' for details");
            std::process::exit(2);
        }
    }
}
