//! The `trace` command: one fully observed NAP+IDLE run.
//!
//! Produces the two artefacts of the observability layer:
//!
//! * a Chrome/Perfetto trace-event file — one track per simulated core
//!   (busy/spin/barrier/nap states, coloured by state), dispatch and
//!   wake-pulse instants, per-subframe latency spans, the modelled
//!   power trace as counter tracks, and a wall-clock track of the real
//!   receiver's pipeline stages;
//! * a flat metrics JSON snapshot — Eq. 2 activity, the per-stage cycle
//!   breakdown (which sums exactly to the busy cycles behind that
//!   activity figure), per-core steal/task/wake counters, latency
//!   percentiles, power summary, and the real worker pool's per-worker
//!   counters.

use lte_dsp::fft::FftPlanner;
use lte_dsp::Xoshiro256;
use lte_obs::{MetricsRegistry, PerfettoExporter, RingRecorder};
use lte_phy::params::{CellConfig, TurboMode, UserConfig};
use lte_phy::receiver::process_user_traced;
use lte_phy::trace::StageTimer;
use lte_phy::tx::synthesize_user;
use lte_power::NapPolicy;
use lte_sched::sim::{SimReport, Simulator};
use lte_sched::TaskPool;

use crate::experiments::ExperimentContext;

/// Cap on the traced run length: 500 subframes = 2.5 s of simulated
/// time. Beyond that the trace-event JSON outgrows what the Perfetto UI
/// loads comfortably, and a ring large enough to hold every event would
/// dominate the run's memory.
pub const TRACE_SUBFRAME_CAP: usize = 500;

/// Everything the `trace` command produces.
pub struct TraceArtifacts {
    /// Chrome/Perfetto trace-event JSON (`{"traceEvents": [...]}`).
    pub perfetto_json: String,
    /// Flat metrics snapshot (sorted-key JSON object).
    pub metrics_json: String,
    /// The instrumented run's report.
    pub report: SimReport,
    /// Subframes actually traced (`min(ctx.n_subframes, cap)`).
    pub subframes: usize,
    /// Events discarded because the ring filled (0 in normal runs).
    pub dropped_events: u64,
}

/// Runs the instrumented study: calibrate the estimator, trace a
/// NAP+IDLE run of the evaluation sequence, meter its power, sample the
/// real receiver, and export both artefacts.
pub fn run_trace(ctx: &ExperimentContext) -> TraceArtifacts {
    let (_curves, estimator) = ctx.run_calibration();
    let all = ctx.subframes();
    let n = all.len().min(TRACE_SUBFRAME_CAP);
    let subframes = &all[..n];
    let targets = ctx.estimated_targets(&estimator, subframes);

    let cfg = ctx.sim_config(NapPolicy::NapIdle);
    let capacity = (n * cfg.n_workers * 64).clamp(1024, 4_000_000);
    let recorder = RingRecorder::new(capacity);
    let report = Simulator::with_recorder(cfg, &recorder).run(&ctx.loads(subframes, &targets));

    // The modelled power trace becomes two recorded series: the raw
    // per-dispatch samples and the paper's 100 ms RMS metering.
    let power = ctx.power.power_trace(&report.buckets, &cfg);
    let rms = lte_power::meter::rms_windows_recorded(
        &recorder,
        "power.watts",
        "power.rms_watts",
        &power,
        ctx.rms_window,
    );

    // A real receiver sample: run one representative user through the
    // serial pipeline with every stage timed (wall-clock, pid 1 track).
    let cell = CellConfig::with_antennas(ctx.n_rx);
    let user = UserConfig::new(36, 2, lte_dsp::Modulation::Qam16);
    let mut rng = Xoshiro256::seed_from_u64(ctx.seed);
    let input = synthesize_user(&cell, &user, 30.0, &mut rng);
    let timer = StageTimer::new(&recorder);
    let phy = process_user_traced(
        &cell,
        &input,
        TurboMode::Passthrough,
        &FftPlanner::new(),
        &timer,
    );

    let metrics = MetricsRegistry::new();
    fill_sim_metrics(&metrics, ctx, &report, n);
    metrics.set_gauge("power.mean_watts", lte_power::PowerModel::mean(&power));
    metrics.set_counter("power.rms_windows", rms.len() as u64);
    metrics.set_counter("phy.sample.crc_ok", u64::from(phy.crc_ok));

    // The real work-stealing pool's counters: process the same sample
    // input as parallel task graphs (the paper's task decomposition)
    // so the per-worker counters carry genuine PHY work.
    let pool = TaskPool::new(4).expect("spawn the trace sample pool");
    let handle = pool.handle();
    let shared = std::sync::Arc::new(input.clone());
    let planner = std::sync::Arc::new(FftPlanner::new());
    for _ in 0..8 {
        crate::benchmark::spawn_user_graph(
            &handle,
            &cell,
            &shared,
            TurboMode::Passthrough,
            &planner,
            false,
            Box::new(|_| {}),
        );
    }
    pool.wait_all();
    pool.export_metrics(&metrics);

    let events = recorder.events();
    let dropped = recorder.total_recorded() - events.len() as u64;
    metrics.set_counter("trace.events", events.len() as u64);
    metrics.set_counter("trace.dropped_events", dropped);

    let perfetto_json = PerfettoExporter::new(cfg.clock_hz).export(&events, cfg.n_workers);
    TraceArtifacts {
        perfetto_json,
        metrics_json: metrics.to_json(),
        report,
        subframes: n,
        dropped_events: dropped,
    }
}

/// Writes the simulator side of the snapshot: Eq. 2 activity, the
/// per-stage cycle breakdown, per-core counters and latency percentiles.
pub fn fill_sim_metrics(
    metrics: &MetricsRegistry,
    ctx: &ExperimentContext,
    report: &SimReport,
    n_subframes: usize,
) {
    let cfg = ctx.sim_config(NapPolicy::NapIdle);
    let busy: u64 = report.buckets.iter().map(|b| b.busy_cycles).sum();
    let capacity = cfg.n_workers as u64 * cfg.dispatch_period * report.buckets.len().max(1) as u64;
    metrics.set_counter("sim.subframes", n_subframes as u64);
    metrics.set_counter("sim.jobs_total", report.jobs_total as u64);
    metrics.set_counter("sim.busy_cycles", busy);
    metrics.set_counter("sim.capacity_cycles", capacity);
    metrics.set_gauge("sim.activity", report.mean_activity(&cfg));
    metrics.set_counter("sim.end_time_cycles", report.end_time);
    metrics.set_counter(
        "sim.max_concurrent_subframes",
        report.max_concurrent_subframes as u64,
    );
    for p in [50, 95, 100] {
        metrics.set_counter(
            &format!("sim.latency.p{p}_cycles"),
            report.latency_percentile(p),
        );
    }
    metrics.set_counter("sim.overruns", report.overruns);
    metrics.set_counter("sim.dropped_subframes", report.dropped_subframes);
    metrics.set_counter("sim.shed_jobs", report.shed_jobs);
    metrics.set_counter("sim.degraded_subframes", report.degraded_subframes);
    metrics.set_counter("sim.poisoned_tasks", report.poisoned_tasks);
    metrics.set_counter("sim.adopted_jobs", report.adopted_jobs);
    let mut stage_total = 0;
    for (stage, cycles) in report.stage_breakdown() {
        metrics.set_counter(&format!("sim.stage.{}.cycles", stage.name()), cycles);
        stage_total += cycles;
    }
    metrics.set_counter("sim.stage.total_cycles", stage_total);
    for core in 0..cfg.n_workers {
        let prefix = format!("sim.core.{core}");
        metrics.set_counter(&format!("{prefix}.busy_cycles"), report.busy_per_core[core]);
        metrics.set_counter(&format!("{prefix}.tasks"), report.tasks_per_core[core]);
        metrics.set_counter(&format!("{prefix}.steals"), report.steals_per_core[core]);
        metrics.set_counter(
            &format!("{prefix}.steal_fails"),
            report.steal_fails_per_core[core],
        );
        metrics.set_counter(
            &format!("{prefix}.wake_pulses"),
            report.wake_pulses_per_core[core],
        );
    }
}
