//! Multi-cell deployment engine: N cells, mMTC-scale UE populations,
//! one shared pool, deterministic inter-cell interference.
//!
//! The batch benchmark, the soak and the serve loop all assume a single
//! cell. This module lifts that assumption: a deployment provisions
//! `cells` cells — each a first-class [`CellConfig`] with its own
//! physical-cell identity, Zadoff-Chu root and scrambling sequence — and
//! splits a UE population of `ues` across them. Every subframe tick,
//! each cell's traffic model offers load proportional to its population,
//! the per-cell scheduler grants at most [`MAX_USERS`] allocations
//! within the cell's PRB budget, and the rest of the offered load is
//! counted as deferred (DTX at the measurement box). One receiver runs
//! per cell; all of them shard onto the *same* work-stealing pool, with
//! [`interleave_shards`] releasing work round-robin across cells so no
//! wide cell monopolises the queue head and [`ShardCounters`] proving
//! every cell drained.
//!
//! # Determinism
//!
//! The run is byte-deterministic under a fixed seed, independent of the
//! worker count:
//!
//! * every cell draws from its own RNG stream seeded by
//!   [`cell_seed`]`(seed, cell_id)` — a function of the cell's
//!   *identity*, not its index, so cell `i` of an N-cell deployment and
//!   a 1-cell deployment with `first_cell = i` synthesize identical
//!   subframes;
//! * synthesis and interference injection run coordinator-serially in
//!   cell order before any task is spawned;
//! * each `(cell, user)` decode writes its own result slot, and results
//!   are harvested in `(cell, user)` order after the pool drains, so
//!   counters and fingerprints never see a worker interleaving;
//! * the report deliberately excludes the worker count, and the Eq. 3/5
//!   power estimate uses the paper's 62-core controller rather than the
//!   host's — `DEPLOY.json` from a 1-worker and a 64-worker run must be
//!   `cmp`-identical.
//!
//! # Inter-cell interference
//!
//! All cells share the same spectrum: each cell lays its grants out
//! first-fit from subcarrier 0, so allocations in different cells
//! overlap. With a nonzero coupling, the coordinator sums each cell's
//! radiated frequency-domain field over the deployment band and adds
//! `coupling × Σ_{d≠c} field_d` into every one of cell `c`'s received
//! symbols before dispatch. The injection is plain f32 arithmetic in a
//! fixed order — deterministic — and is *skipped entirely* at zero
//! coupling, so an isolated deployment is bit-identical to independent
//! single-cell runs (the equivalence the zero-coupling test proves).
//!
//! # NB-IoT cells
//!
//! [`CellKind::NbIot`] models a narrowband machine-type cell: every
//! grant is squeezed to a 2–3-PRB single-layer QPSK allocation, the
//! per-subframe budget drops to [`NBIOT_PRB_BUDGET`] PRBs, and each
//! grant is transmitted [`NBIOT_REPETITIONS`] times (same transport
//! block, fresh channel and noise — the coverage-enhancement repetition
//! of NB-IoT). The receiver applies selection combining: the first
//! repetition whose CRC passes is the user's result. For interference
//! purposes the repetitions occupy distinct narrowband carriers
//! (multi-tone first-fit), keeping the field construction uniform.

use std::sync::{Arc, OnceLock};

use lte_dsp::fft::FftPlanner;
use lte_dsp::{Complex32, Modulation, Xoshiro256};
use lte_obs::{f64_json, EblerBank, EblerSurface, OpenMetrics};
use lte_phy::grid::UserInput;
use lte_phy::params::{
    CellConfig, SubframeConfig, TurboMode, UserConfig, DATA_SYMBOLS_PER_SLOT, MAX_PRB, MAX_USERS,
    N_CELL_IDENTITIES, SLOTS_PER_SUBFRAME,
};
use lte_phy::receiver::UserResult;
use lte_phy::tx::{prewarm_cell, synthesize_retransmission, synthesize_user_with_mode};
use lte_power::{CoreController, WorkloadEstimator};
use lte_sched::pool::{PoolConfig, TaskPool};
use lte_sched::{interleave_shards, ShardCounters};

use crate::benchmark::spawn_user_graph;
use crate::fingerprint::Fnv1a;
use crate::serve::TrafficModel;

/// Version tag of the `DEPLOY.json` artifact.
pub const DEPLOY_SCHEMA: &str = "lte-sim-deploy-v1";

/// Synthesis SNR for deployment traffic (clean decodes at zero
/// coupling, matching the batch benchmark's default).
const DEPLOY_SNR_DB: f64 = 30.0;

/// UE-population unit behind one arrival-generator draw: a cell with
/// `POP_UNIT` UEs offers the traffic model's nominal arrivals; larger
/// populations offer proportionally more contenders for the same grant
/// budget, and the surplus is deferred.
const POP_UNIT: usize = 1000;

/// Coverage-enhancement repetitions per NB-IoT grant.
pub const NBIOT_REPETITIONS: usize = 4;

/// Narrowband PRB budget of an NB-IoT cell's subframe.
const NBIOT_PRB_BUDGET: usize = 12;

/// The kind of cell a deployment provisions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CellKind {
    /// A wideband macro cell: the paper's 2-antenna receiver with the
    /// full [`MAX_PRB`] budget.
    #[default]
    Macro,
    /// A narrowband machine-type cell: tiny single-layer QPSK grants,
    /// a [`NBIOT_PRB_BUDGET`]-PRB budget, [`NBIOT_REPETITIONS`]
    /// repetitions with selection combining.
    NbIot,
}

impl CellKind {
    /// Stable name used in flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Macro => "macro",
            CellKind::NbIot => "nbiot",
        }
    }
}

impl std::str::FromStr for CellKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "macro" => Ok(CellKind::Macro),
            "nbiot" | "nb-iot" | "nb_iot" => Ok(CellKind::NbIot),
            other => Err(format!("unknown cell kind '{other}' (macro, nbiot)")),
        }
    }
}

/// Parameters of one deployment campaign.
#[derive(Clone, Debug)]
pub struct DeployConfig {
    /// Number of cells to provision.
    pub cells: usize,
    /// Total UE population, split round-robin across cells.
    pub ues: usize,
    /// Subframe ticks to run.
    pub ticks: u64,
    /// Campaign seed.
    pub seed: u64,
    /// Worker threads of the shared pool. Affects wall time only —
    /// never the report bytes.
    pub workers: usize,
    /// Per-cell traffic generator.
    pub traffic: TrafficModel,
    /// Cell kind (uniform across the deployment).
    pub kind: CellKind,
    /// Inter-cell coupling amplitude in thousandths (0 = isolated).
    pub coupling_milli: u32,
    /// Physical-cell identity of cell 0; cell `i` gets
    /// `first_cell + i`. A 1-cell deployment with `first_cell = i`
    /// reproduces cell `i` of an N-cell deployment at zero coupling.
    pub first_cell: usize,
}

impl DeployConfig {
    /// A small macro-cell deployment with every knob at its default.
    pub fn new(cells: usize, ues: usize, ticks: u64, seed: u64) -> Self {
        DeployConfig {
            cells,
            ues,
            ticks,
            seed,
            workers: 2,
            traffic: TrafficModel::FullBuffer,
            kind: CellKind::Macro,
            coupling_milli: 0,
            first_cell: 0,
        }
    }
}

/// SplitMix64 avalanche of `(seed, cell_id)`. Keyed by the cell's
/// *identity*, not its deployment index — see the module docs.
fn cell_seed(seed: u64, cell_id: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x6465_706c_6f79_3121) // "deploy1!"
        .wrapping_add(cell_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One cell's grant decision for one tick.
struct TickSchedule {
    /// The scheduled subframe (possibly empty).
    subframe: SubframeConfig,
    /// Grants the population offered this tick.
    offered: u64,
    /// Offered grants that did not fit the budget (DTX).
    deferred: u64,
}

/// Squeezes a macro grant into an NB-IoT allocation: 2–3 single-layer
/// QPSK PRBs, deterministically derived from the original width.
fn nbiot_grant(user: UserConfig) -> UserConfig {
    UserConfig::new(2 + user.prbs % 2, 1, Modulation::Qpsk)
}

/// The per-tick scheduler: the traffic model's arrival palette, scaled
/// by population, granted first-come within the cell's PRB and user
/// budgets. A pure function of its arguments.
fn schedule_tick(
    kind: CellKind,
    traffic: TrafficModel,
    population: usize,
    seed: u64,
    tick: u64,
) -> TickSchedule {
    let palette: Vec<UserConfig> = traffic
        .arrivals(seed, tick)
        .iter()
        .flat_map(|sf| sf.users.iter().copied())
        .map(|u| match kind {
            CellKind::Macro => u,
            CellKind::NbIot => nbiot_grant(u),
        })
        .collect();
    if palette.is_empty() || population == 0 {
        return TickSchedule {
            subframe: SubframeConfig::new(Vec::new()),
            offered: 0,
            deferred: 0,
        };
    }
    let factor = population.div_ceil(POP_UNIT).max(1) as u64;
    let offered = palette.len() as u64 * factor;
    let budget = match kind {
        CellKind::Macro => MAX_PRB,
        CellKind::NbIot => NBIOT_PRB_BUDGET,
    };
    let mut users = Vec::new();
    let mut prbs = 0usize;
    for i in 0..offered {
        if users.len() == MAX_USERS {
            break;
        }
        let u = palette[(i as usize) % palette.len()];
        if prbs + u.prbs > budget {
            break;
        }
        prbs += u.prbs;
        users.push(u);
    }
    let deferred = offered - users.len() as u64;
    TickSchedule {
        subframe: SubframeConfig::new(users),
        offered,
        deferred,
    }
}

/// Every user configuration a traffic model can emit under a cell kind —
/// the prewarm set, so reference/interleaver/FFT caches are populated
/// before the first tick.
fn prewarm_palette(kind: CellKind, traffic: TrafficModel) -> Vec<UserConfig> {
    let base = match traffic {
        TrafficModel::FullBuffer => vec![
            UserConfig::new(16, 2, Modulation::Qam16),
            UserConfig::new(20, 2, Modulation::Qam16),
            UserConfig::new(25, 2, Modulation::Qam16),
            UserConfig::new(12, 1, Modulation::Qpsk),
            UserConfig::new(4, 1, Modulation::Qpsk),
        ],
        TrafficModel::BurstyIot | TrafficModel::Voip => vec![
            UserConfig::new(2, 1, Modulation::Qpsk),
            UserConfig::new(3, 1, Modulation::Qpsk),
        ],
    };
    let mut out: Vec<UserConfig> = Vec::new();
    for u in base {
        let u = match kind {
            CellKind::Macro => u,
            CellKind::NbIot => nbiot_grant(u),
        };
        if !out.contains(&u) {
            out.push(u);
        }
    }
    out
}

/// One cell's radiated frequency-domain field for one tick:
/// `sym[slot][0]` is the reference symbol, `sym[slot][1 + s]` data
/// symbol `s`, each `[rx][band_subcarrier]` over the deployment band.
struct CellField {
    sym: Vec<Vec<Vec<Vec<Complex32>>>>,
}

impl CellField {
    /// Accumulates `inputs` (laid out at `offsets`) over `band`
    /// subcarriers.
    fn radiated(inputs: &[UserInput], offsets: &[usize], n_rx: usize, band: usize) -> Self {
        let mut sym = vec![
            vec![vec![vec![Complex32::ZERO; band]; n_rx]; 1 + DATA_SYMBOLS_PER_SLOT];
            SLOTS_PER_SUBFRAME
        ];
        for (input, &offset) in inputs.iter().zip(offsets) {
            for (slot_idx, slot) in input.slots.iter().enumerate() {
                for (rx, dst) in sym[slot_idx][0].iter_mut().enumerate().take(n_rx) {
                    for (sc, &v) in slot.reference.antenna(rx).iter().enumerate() {
                        dst[offset + sc] += v;
                    }
                }
                for (s, data) in slot.data.iter().enumerate() {
                    for (rx, dst) in sym[slot_idx][1 + s].iter_mut().enumerate().take(n_rx) {
                        for (sc, &v) in data.antenna(rx).iter().enumerate() {
                            dst[offset + sc] += v;
                        }
                    }
                }
            }
        }
        CellField { sym }
    }
}

/// Adds `coupling ×` the neighbour fields into one received input.
fn inject_interference(
    input: &mut UserInput,
    offset: usize,
    neighbours: &[&CellField],
    coupling: f32,
) {
    let n_rx = input.slots[0].reference.n_rx();
    let n_sc = input.config.subcarriers();
    for (slot_idx, slot) in input.slots.iter_mut().enumerate() {
        for rx in 0..n_rx {
            let dst = slot.reference.antenna_mut(rx);
            for field in neighbours {
                let src = &field.sym[slot_idx][0][rx];
                for (sc, d) in dst.iter_mut().enumerate().take(n_sc) {
                    *d += src[offset + sc] * coupling;
                }
            }
        }
        for (s, data) in slot.data.iter_mut().enumerate() {
            for rx in 0..n_rx {
                let dst = data.antenna_mut(rx);
                for field in neighbours {
                    let src = &field.sym[slot_idx][1 + s][rx];
                    for (sc, d) in dst.iter_mut().enumerate().take(n_sc) {
                        *d += src[offset + sc] * coupling;
                    }
                }
            }
        }
    }
}

/// One cell's slice of the deployment report.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Physical-cell identity.
    pub cell_id: usize,
    /// UEs homed on this cell.
    pub population: usize,
    /// Grants offered by the population across the campaign.
    pub offered: u64,
    /// Grants scheduled (decode attempts; NB-IoT repetitions count as
    /// one grant).
    pub scheduled: u64,
    /// Offered grants deferred past the budget (DTX).
    pub deferred: u64,
    /// FNV-1a 64 over the cell's selected decode results in tick/user
    /// order.
    pub fingerprint: u64,
    /// The cell's R&S-shaped measurement surface.
    pub ebler: EblerSurface,
}

/// The campaign-level deployment report behind `DEPLOY.json`.
#[derive(Clone, Debug)]
pub struct DeployReport {
    /// The configuration that produced it (worker count excluded from
    /// serialization by design).
    pub config: DeployConfig,
    /// Per-cell results, in cell order.
    pub per_cell: Vec<CellReport>,
    /// The deployment-wide measurement surface.
    pub aggregate: EblerSurface,
    /// FNV-1a 64 over the per-cell fingerprints, in cell order.
    pub fingerprint: u64,
    /// Mean per-tick estimated activity summed over cells (Eq. 3/4).
    pub mean_activity: f64,
    /// Mean per-tick active-core target (Eq. 5 on the paper's 62-core
    /// controller, from the aggregate multi-cell PRB/MCS mix).
    pub mean_target_cores: f64,
    /// Largest per-tick active-core target seen.
    pub max_target_cores: usize,
}

impl DeployReport {
    /// Canonical JSON artifact. Byte-deterministic under a fixed seed —
    /// the worker count does not appear.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{DEPLOY_SCHEMA}\",\n"));
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"cells\": {},\n", self.config.cells));
        out.push_str(&format!("  \"ues\": {},\n", self.config.ues));
        out.push_str(&format!("  \"ticks\": {},\n", self.config.ticks));
        out.push_str(&format!(
            "  \"traffic\": \"{}\",\n",
            self.config.traffic.name()
        ));
        out.push_str(&format!("  \"kind\": \"{}\",\n", self.config.kind.name()));
        out.push_str(&format!(
            "  \"coupling_milli\": {},\n",
            self.config.coupling_milli
        ));
        out.push_str(&format!("  \"first_cell\": {},\n", self.config.first_cell));
        out.push_str(&format!(
            "  \"fingerprint\": \"{:016x}\",\n",
            self.fingerprint
        ));
        out.push_str(&format!(
            "  \"power\": {{\"mean_activity\": {}, \"mean_target_cores\": {}, \"max_target_cores\": {}}},\n",
            f64_json(self.mean_activity),
            f64_json(self.mean_target_cores),
            self.max_target_cores
        ));
        out.push_str(&format!("  \"aggregate\": {},\n", self.aggregate.to_json()));
        out.push_str("  \"per_cell\": [\n");
        for (i, c) in self.per_cell.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"cell_id\": {}, \"population\": {}, \"offered\": {}, \"scheduled\": {}, \"deferred\": {}, \"fingerprint\": \"{:016x}\", \"ebler\": {}}}{}\n",
                c.cell_id,
                c.population,
                c.offered,
                c.scheduled,
                c.deferred,
                c.fingerprint,
                c.ebler.to_json(),
                if i + 1 < self.per_cell.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// OpenMetrics exposition: the aggregate surface plus one labelled
    /// block per cell.
    pub fn openmetrics(&self) -> String {
        let mut om = OpenMetrics::new();
        om.ebler("deploy", &self.aggregate);
        for c in &self.per_cell {
            om.ebler(&format!("deploy_cell{}", c.cell_id), &c.ebler);
        }
        om.render()
    }
}

/// Per-cell state carried across ticks.
struct CellState {
    config: CellConfig,
    population: usize,
    rng: Xoshiro256,
    hash: Fnv1a,
    offered: u64,
    scheduled: u64,
    deferred: u64,
}

/// Runs one deployment campaign to completion.
///
/// # Errors
///
/// Returns a description when the configuration is out of range, the
/// pool cannot be spawned, or the shard accounting fails to drain.
pub fn run_deploy(cfg: &DeployConfig) -> Result<DeployReport, String> {
    if cfg.cells == 0 {
        return Err("a deployment needs at least one cell".into());
    }
    if cfg.first_cell + cfg.cells > N_CELL_IDENTITIES {
        return Err(format!(
            "cell identities {}..{} exceed the {} physical-cell identities",
            cfg.first_cell,
            cfg.first_cell + cfg.cells,
            N_CELL_IDENTITIES
        ));
    }
    if cfg.workers == 0 {
        return Err("a deployment needs at least one worker".into());
    }
    let pool = TaskPool::with_config(PoolConfig {
        n_workers: cfg.workers,
        pin_workers: false,
    })
    .map_err(|e| format!("failed to start the worker pool: {e}"))?;
    let handle = pool.handle();
    let planner = Arc::new(FftPlanner::new());
    let turbo = TurboMode::Passthrough;
    let reps = match cfg.kind {
        CellKind::Macro => 1,
        CellKind::NbIot => NBIOT_REPETITIONS,
    };
    let coupling = cfg.coupling_milli as f32 / 1000.0;

    let palette = prewarm_palette(cfg.kind, cfg.traffic);
    let mut cells: Vec<CellState> = (0..cfg.cells)
        .map(|i| {
            let cell_id = cfg.first_cell + i;
            let config = CellConfig::with_identity(2, cell_id);
            prewarm_cell(&config, &palette, &planner);
            CellState {
                config,
                population: cfg.ues / cfg.cells + usize::from(i < cfg.ues % cfg.cells),
                rng: Xoshiro256::seed_from_u64(cell_seed(cfg.seed, cell_id as u64)),
                hash: Fnv1a::new(),
                offered: 0,
                scheduled: 0,
                deferred: 0,
            }
        })
        .collect();

    let bank = EblerBank::new(cells.iter().map(|c| format!("cell{}", c.config.cell_id)), 1);
    let shards = Arc::new(ShardCounters::new(cfg.cells));
    // Eq. 3 slopes: the flat library calibration serve uses; the Eq. 5
    // controller stays on the paper's 62-core machine so the estimate —
    // and hence the report — is independent of the host's worker count.
    let estimator = WorkloadEstimator::from_slopes([[0.002, 0.003, 0.004]; 4]);
    let controller = CoreController::paper();
    let mut activity_sum = 0.0f64;
    let mut target_sum = 0u64;
    let mut target_max = 0usize;

    for tick in 0..cfg.ticks {
        // ---- Coordinator-serial synthesis, cell by cell. ------------
        let mut tick_sched: Vec<TickSchedule> = Vec::with_capacity(cfg.cells);
        let mut tick_inputs: Vec<Vec<UserInput>> = Vec::with_capacity(cfg.cells);
        for cell in cells.iter_mut() {
            let sched = schedule_tick(
                cfg.kind,
                cfg.traffic,
                cell.population,
                cell_seed(cfg.seed, cell.config.cell_id as u64),
                tick,
            );
            let mut inputs = Vec::with_capacity(sched.subframe.users.len() * reps);
            for user in &sched.subframe.users {
                let first = synthesize_user_with_mode(
                    &cell.config,
                    user,
                    turbo,
                    DEPLOY_SNR_DB,
                    &mut cell.rng,
                );
                let payload = first.ground_truth.clone();
                inputs.push(first);
                for _ in 1..reps {
                    inputs.push(synthesize_retransmission(
                        &cell.config,
                        user,
                        turbo,
                        &payload,
                        DEPLOY_SNR_DB,
                        &mut cell.rng,
                    ));
                }
            }
            tick_sched.push(sched);
            tick_inputs.push(inputs);
        }

        // ---- Inter-cell interference (skipped when isolated). -------
        if coupling > 0.0 && cfg.cells > 1 {
            let offsets: Vec<Vec<usize>> = tick_inputs
                .iter()
                .map(|inputs| {
                    let mut cursor = 0usize;
                    inputs
                        .iter()
                        .map(|input| {
                            let at = cursor;
                            cursor += input.config.subcarriers();
                            at
                        })
                        .collect()
                })
                .collect();
            let band = tick_inputs
                .iter()
                .map(|inputs| inputs.iter().map(|i| i.config.subcarriers()).sum::<usize>())
                .max()
                .unwrap_or(0);
            if band > 0 {
                let fields: Vec<CellField> = tick_inputs
                    .iter()
                    .zip(&offsets)
                    .map(|(inputs, offs)| CellField::radiated(inputs, offs, 2, band))
                    .collect();
                for (ci, inputs) in tick_inputs.iter_mut().enumerate() {
                    let neighbours: Vec<&CellField> = fields
                        .iter()
                        .enumerate()
                        .filter(|(di, _)| *di != ci)
                        .map(|(_, f)| f)
                        .collect();
                    for (input, &offset) in inputs.iter_mut().zip(&offsets[ci]) {
                        inject_interference(input, offset, &neighbours, coupling);
                    }
                }
            }
        }

        // ---- Eq. 3/5 on the aggregate multi-cell mix. ---------------
        let total_activity: f64 = tick_sched
            .iter()
            .map(|s| estimator.subframe_activity(&s.subframe))
            .sum();
        let target = controller.active_cores(total_activity / cfg.cells as f64);
        activity_sum += total_activity;
        target_sum += target as u64;
        target_max = target_max.max(target);

        // ---- Sharded dispatch onto the shared pool. -----------------
        let arcs: Vec<Vec<Arc<UserInput>>> = tick_inputs
            .into_iter()
            .map(|inputs| inputs.into_iter().map(Arc::new).collect())
            .collect();
        let counts: Vec<usize> = arcs.iter().map(Vec::len).collect();
        let slots: Vec<Vec<Arc<OnceLock<UserResult>>>> = counts
            .iter()
            .map(|&n| (0..n).map(|_| Arc::new(OnceLock::new())).collect())
            .collect();
        for (ci, item) in interleave_shards(&counts) {
            shards.record_spawned(ci, 1);
            let slot = Arc::clone(&slots[ci][item]);
            let counters = Arc::clone(&shards);
            spawn_user_graph(
                &handle,
                &cells[ci].config,
                &arcs[ci][item],
                turbo,
                &planner,
                false,
                Box::new(move |result| {
                    slot.set(result)
                        .expect("each (cell, user) slot is written once");
                    counters.record_completed(ci);
                }),
            );
        }
        pool.wait_all();
        if !shards.all_drained() {
            return Err(format!("tick {tick}: shard accounting failed to drain"));
        }

        // ---- Deterministic harvest, (cell, user) order. -------------
        for (ci, cell) in cells.iter_mut().enumerate() {
            let sched = &tick_sched[ci];
            cell.offered += sched.offered;
            cell.deferred += sched.deferred;
            cell.scheduled += sched.subframe.users.len() as u64;
            for ui in 0..sched.subframe.users.len() {
                let chunk = &slots[ci][ui * reps..(ui + 1) * reps];
                let results: Vec<&UserResult> = chunk
                    .iter()
                    .map(|s| s.get().expect("slot is set after the pool drained"))
                    .collect();
                // Selection combining: the first repetition that
                // survives its CRC wins; otherwise report the first.
                let selected = results
                    .iter()
                    .copied()
                    .find(|r| r.crc_ok)
                    .unwrap_or(results[0]);
                bank.record_decode(ci, 0, selected.crc_ok, selected.payload.len() as u64);
                cell.hash.write_u64(tick);
                cell.hash.write_u64(ui as u64);
                cell.hash.write(&[u8::from(selected.crc_ok)]);
                cell.hash.write_u64(selected.payload.len() as u64);
                cell.hash.write(&selected.payload);
            }
            for _ in 0..sched.deferred {
                bank.record_dtx(ci, 0);
            }
        }
    }

    let per_cell: Vec<CellReport> = cells
        .iter()
        .enumerate()
        .map(|(ci, c)| CellReport {
            cell_id: c.config.cell_id,
            population: c.population,
            offered: c.offered,
            scheduled: c.scheduled,
            deferred: c.deferred,
            fingerprint: c.hash.finish(),
            ebler: bank.cell_snapshot(ci),
        })
        .collect();
    let mut agg = Fnv1a::new();
    for c in &per_cell {
        agg.write_u64(c.fingerprint);
    }
    let ticks = cfg.ticks.max(1) as f64;
    Ok(DeployReport {
        config: cfg.clone(),
        per_cell,
        aggregate: bank.aggregate_snapshot(),
        fingerprint: agg.finish(),
        mean_activity: activity_sum / ticks,
        mean_target_cores: target_sum as f64 / ticks,
        max_target_cores: target_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_defers_past_the_budget() {
        // A million-UE cell offers factor-1000 load; the grant budget
        // caps the subframe and the rest is deferred.
        let s = schedule_tick(CellKind::Macro, TrafficModel::FullBuffer, 1_000_000, 7, 0);
        assert!(s.subframe.users.len() <= MAX_USERS);
        assert!(s.subframe.total_prbs() <= MAX_PRB);
        assert_eq!(
            s.offered,
            s.deferred + s.subframe.users.len() as u64,
            "every offered grant is scheduled or deferred"
        );
        assert!(s.deferred > 0);
        // The schedule is a pure function of its arguments.
        let again = schedule_tick(CellKind::Macro, TrafficModel::FullBuffer, 1_000_000, 7, 0);
        assert_eq!(s.subframe, again.subframe);
    }

    #[test]
    fn nbiot_schedule_is_narrowband() {
        let s = schedule_tick(CellKind::NbIot, TrafficModel::FullBuffer, 10_000, 7, 0);
        assert!(s.subframe.total_prbs() <= NBIOT_PRB_BUDGET);
        for u in &s.subframe.users {
            assert!(u.prbs <= 3);
            assert_eq!(u.layers, 1);
            assert_eq!(u.modulation, Modulation::Qpsk);
        }
    }

    #[test]
    fn cell_seed_is_identity_keyed() {
        assert_ne!(cell_seed(7, 0), cell_seed(7, 1));
        assert_ne!(cell_seed(7, 0), cell_seed(8, 0));
        assert_eq!(cell_seed(7, 3), cell_seed(7, 3));
    }

    #[test]
    fn prewarm_palette_is_deduplicated() {
        let p = prewarm_palette(CellKind::NbIot, TrafficModel::FullBuffer);
        for (i, a) in p.iter().enumerate() {
            assert!(!p[i + 1..].contains(a));
        }
        assert!(!p.is_empty());
    }
}
