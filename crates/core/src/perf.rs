//! Throughput harness for the steady-state receive pipeline.
//!
//! The paper's Fig. 8 scenario holds the cell near its PRB budget with a
//! mixed user population; this module replays that load shape as fast as
//! the host allows (dispatch interval zero) and reports machine-readable
//! throughput numbers so every future PR has a perf trajectory to
//! defend:
//!
//! * parallel subframes/sec over the worker pool,
//! * serial subframes/sec over the reference path (same inputs),
//! * p50/p99 dispatch-to-completion subframe latency,
//! * scratch-arena allocation counters (fresh vs reused buffers).
//!
//! Every perf run re-verifies the parallel results against the serial
//! golden record — the throughput claim is only valid while the outputs
//! stay byte-identical (§IV-D).
//!
//! `lte-sim perf [--quick] [--subframes N] [--out DIR] [--baseline FILE]`
//! writes `BENCH_PR3.json` under `--out` and, when given a baseline,
//! fails if subframes/sec regresses more than 10%.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lte_dsp::fft::FftPlanner;
use lte_phy::grid::UserInput;
use lte_phy::params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
use lte_phy::receiver::process_user_pooled;

use crate::{BenchmarkConfig, UplinkBenchmark};

/// Subframes in the default (full) measurement.
pub const FULL_SUBFRAMES: usize = 600;
/// Subframes in the `--quick` measurement.
pub const QUICK_SUBFRAMES: usize = 120;
/// Warmup subframes processed (and discarded) before timing starts, so
/// plan caches, input synthesis and scratch arenas reach steady state.
const WARMUP_SUBFRAMES: usize = 16;
/// Subframes timed on the serial reference path (enough for a stable
/// rate without doubling the harness runtime).
const SERIAL_SUBFRAMES: usize = 40;
/// Tolerated regression against a committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Throughput harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Subframes in the timed parallel run.
    pub subframes: usize,
    /// Worker threads.
    pub workers: usize,
    /// Input-synthesis seed.
    pub seed: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            subframes: FULL_SUBFRAMES,
            workers: BenchmarkConfig::default().workers,
            seed: 42,
        }
    }
}

/// One measured perf run, serialisable to `BENCH_PR3.json`.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Subframes in the timed run.
    pub subframes: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock seconds of the timed parallel run.
    pub elapsed_s: f64,
    /// Parallel throughput.
    pub subframes_per_sec: f64,
    /// Serial reference throughput over the same inputs.
    pub serial_subframes_per_sec: f64,
    /// Median per-subframe service latency, microseconds. Under the
    /// harness's saturating zero-interval dispatch a queueing delay would
    /// swamp dispatch-to-completion times, so service latency is measured
    /// as the spacing between consecutive subframe completions.
    pub p50_latency_us: f64,
    /// 99th-percentile per-subframe service latency, microseconds.
    pub p99_latency_us: f64,
    /// Fraction of users whose CRC passed (sanity: must be 1.0 at the
    /// harness SNR).
    pub crc_pass_rate: f64,
    /// Scratch-arena buffers allocated fresh during the timed run.
    pub arena_fresh: u64,
    /// Scratch-arena buffers reused from free lists during the timed run.
    pub arena_reused: u64,
}

impl PerfReport {
    /// Parallel speedup over the serial reference.
    pub fn speedup(&self) -> f64 {
        if self.serial_subframes_per_sec > 0.0 {
            self.subframes_per_sec / self.serial_subframes_per_sec
        } else {
            0.0
        }
    }

    /// Renders the flat JSON document written to `BENCH_PR3.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"lte-sim-perf-v1\",\n");
        out.push_str(&format!("  \"subframes\": {},\n", self.subframes));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"elapsed_s\": {:.6},\n", self.elapsed_s));
        out.push_str(&format!(
            "  \"subframes_per_sec\": {:.3},\n",
            self.subframes_per_sec
        ));
        out.push_str(&format!(
            "  \"serial_subframes_per_sec\": {:.3},\n",
            self.serial_subframes_per_sec
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!(
            "  \"p50_latency_us\": {:.1},\n",
            self.p50_latency_us
        ));
        out.push_str(&format!(
            "  \"p99_latency_us\": {:.1},\n",
            self.p99_latency_us
        ));
        out.push_str(&format!(
            "  \"crc_pass_rate\": {:.4},\n",
            self.crc_pass_rate
        ));
        out.push_str(&format!("  \"arena_fresh\": {},\n", self.arena_fresh));
        out.push_str(&format!("  \"arena_reused\": {}\n", self.arena_reused));
        out.push('}');
        out.push('\n');
        out
    }
}

/// Reads one numeric field out of a flat JSON perf report. Only the
/// `"key": number` shape written by [`PerfReport::to_json`] is
/// understood — enough to compare against a committed baseline without a
/// JSON dependency.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The harness's steady-state subframe: four users spanning every
/// modulation and 1–4 layers, 100 PRBs total — the sustained-load shape
/// of the paper's Fig. 8 trace near the cell budget.
pub fn steady_state_subframe() -> SubframeConfig {
    SubframeConfig::new(vec![
        UserConfig::new(25, 2, lte_dsp::Modulation::Qam16),
        UserConfig::new(10, 1, lte_dsp::Modulation::Qpsk),
        UserConfig::new(50, 2, lte_dsp::Modulation::Qam64),
        UserConfig::new(15, 4, lte_dsp::Modulation::Qam16),
    ])
}

fn percentile_us(sorted_ns: &[u64], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = (pct * sorted_ns.len()).div_ceil(100).saturating_sub(1);
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e3
}

/// Runs the throughput harness: a warmed-up parallel run, a serial
/// reference timing, and the byte-identity verification.
///
/// # Errors
///
/// Returns a message when the worker pool cannot start or the parallel
/// results diverge from the serial golden record.
pub fn run_perf(cfg: &PerfConfig) -> Result<PerfReport, String> {
    let cell = CellConfig::default();
    let subframe = steady_state_subframe();
    let bench_cfg = BenchmarkConfig {
        workers: cfg.workers,
        // Zero dispatch interval: measure the pipeline, not the pacing.
        delta: Duration::ZERO,
        turbo: TurboMode::Passthrough,
        seed: cfg.seed,
        ..BenchmarkConfig::default()
    };
    let mut bench = UplinkBenchmark::new(cell, bench_cfg);

    // Warmup: synthesise inputs, fill plan caches, populate arenas.
    let warmup = vec![subframe.clone(); WARMUP_SUBFRAMES];
    bench.try_run(&warmup).map_err(|e| e.to_string())?;

    // Timed parallel run.
    let arena_before = lte_dsp::arena::stats();
    let subframes = vec![subframe.clone(); cfg.subframes];
    let run = bench.try_run(&subframes).map_err(|e| e.to_string())?;
    let arena_after = lte_dsp::arena::stats();

    // Serial reference throughput on the identical (cached) inputs,
    // through the pooled (zero-allocation) serial pipeline.
    let planner = Arc::new(FftPlanner::new());
    let serial_inputs: Vec<Arc<UserInput>> =
        subframe.users.iter().map(|u| bench.input_for(u)).collect();
    let serial_n = SERIAL_SUBFRAMES.min(cfg.subframes).max(1);
    let serial_start = Instant::now();
    for _ in 0..serial_n {
        for input in &serial_inputs {
            let result = process_user_pooled(&cell, input, TurboMode::Passthrough, &planner);
            std::hint::black_box(&result);
        }
    }
    let serial_elapsed = serial_start.elapsed().as_secs_f64();

    // The throughput claim is only valid while parallel == serial.
    bench
        .verify(&subframes, &run)
        .map_err(|e| format!("serial/parallel divergence: {e}"))?;

    // Service latency per subframe = spacing between consecutive
    // completions (the first subframe contributes its full latency; its
    // queue wait at a zero dispatch interval is negligible).
    let mut completions = run.completions_ns.clone();
    completions.sort_unstable();
    let mut latencies: Vec<u64> = completions
        .iter()
        .scan(0u64, |prev, &done| {
            let service = done - *prev;
            *prev = done;
            Some(service)
        })
        .collect();
    latencies.sort_unstable();
    Ok(PerfReport {
        subframes: cfg.subframes,
        workers: cfg.workers,
        elapsed_s: run.elapsed.as_secs_f64(),
        subframes_per_sec: cfg.subframes as f64 / run.elapsed.as_secs_f64(),
        serial_subframes_per_sec: serial_n as f64 / serial_elapsed,
        p50_latency_us: percentile_us(&latencies, 50),
        p99_latency_us: percentile_us(&latencies, 99),
        crc_pass_rate: run.crc_pass_rate,
        arena_fresh: arena_after.fresh - arena_before.fresh,
        arena_reused: arena_after.reused - arena_before.reused,
    })
}

/// Compares a fresh report against a committed baseline document.
///
/// # Errors
///
/// Returns a message when the baseline cannot be parsed or throughput
/// regressed beyond [`REGRESSION_TOLERANCE`].
pub fn check_against_baseline(report: &PerfReport, baseline_json: &str) -> Result<(), String> {
    let baseline = json_number(baseline_json, "subframes_per_sec")
        .ok_or("baseline file has no subframes_per_sec field")?;
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if report.subframes_per_sec < floor {
        return Err(format!(
            "throughput regression: {:.1} subframes/sec is below the {:.1} floor \
             ({:.1} baseline − {:.0}% tolerance)",
            report.subframes_per_sec,
            floor,
            baseline,
            100.0 * REGRESSION_TOLERANCE
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_exposes_every_metric() {
        let report = PerfReport {
            subframes: 120,
            workers: 8,
            elapsed_s: 1.5,
            subframes_per_sec: 80.0,
            serial_subframes_per_sec: 20.0,
            p50_latency_us: 950.0,
            p99_latency_us: 2100.0,
            crc_pass_rate: 1.0,
            arena_fresh: 64,
            arena_reused: 4096,
        };
        let json = report.to_json();
        assert_eq!(json_number(&json, "subframes"), Some(120.0));
        assert_eq!(json_number(&json, "subframes_per_sec"), Some(80.0));
        assert_eq!(json_number(&json, "serial_subframes_per_sec"), Some(20.0));
        assert_eq!(json_number(&json, "speedup"), Some(4.0));
        assert_eq!(json_number(&json, "p99_latency_us"), Some(2100.0));
        assert_eq!(json_number(&json, "arena_reused"), Some(4096.0));
    }

    #[test]
    fn baseline_gate_triggers_on_regression() {
        let mut report = PerfReport {
            subframes: 120,
            workers: 8,
            elapsed_s: 1.5,
            subframes_per_sec: 80.0,
            serial_subframes_per_sec: 20.0,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            crc_pass_rate: 1.0,
            arena_fresh: 0,
            arena_reused: 0,
        };
        let baseline = report.to_json();
        assert!(check_against_baseline(&report, &baseline).is_ok());
        report.subframes_per_sec = 80.0 * 0.95;
        assert!(check_against_baseline(&report, &baseline).is_ok());
        report.subframes_per_sec = 80.0 * 0.85;
        assert!(check_against_baseline(&report, &baseline).is_err());
        assert!(check_against_baseline(&report, "{}").is_err());
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let ns: Vec<u64> = (1..=100).map(|v| v * 1000).collect();
        assert_eq!(percentile_us(&ns, 50), 50.0);
        assert_eq!(percentile_us(&ns, 99), 99.0);
        assert_eq!(percentile_us(&[], 50), 0.0);
    }

    #[test]
    fn quick_perf_run_produces_consistent_report() {
        let cfg = PerfConfig {
            subframes: 6,
            workers: 4,
            seed: 1,
        };
        let report = run_perf(&cfg).expect("perf run");
        assert_eq!(report.subframes, 6);
        assert!(report.subframes_per_sec > 0.0);
        assert!(report.serial_subframes_per_sec > 0.0);
        assert_eq!(report.crc_pass_rate, 1.0);
        assert!(report.p99_latency_us >= report.p50_latency_us);
    }
}
