//! Throughput harness for the steady-state receive pipeline.
//!
//! The paper's Fig. 8 scenario holds the cell near its PRB budget with a
//! mixed user population; this module replays that load shape as fast as
//! the host allows (dispatch interval zero) and reports machine-readable
//! throughput numbers so every future PR has a perf trajectory to
//! defend:
//!
//! * parallel subframes/sec over the worker pool,
//! * serial subframes/sec over the reference path (same inputs),
//! * p50/p99 dispatch-to-completion subframe latency,
//! * scratch-arena allocation counters (fresh vs reused buffers).
//!
//! Every perf run re-verifies the parallel results against the serial
//! golden record — the throughput claim is only valid while the outputs
//! stay byte-identical (§IV-D).
//!
//! On top of the single-point harness sits a *scaling matrix*
//! ([`run_scaling`]): the same steady-state load replayed at a ladder of
//! worker counts (default: powers of two up to `available_parallelism`),
//! each point reporting throughput, speedup over the serial reference,
//! parallel efficiency, scheduler counters (steals, batch steals, LIFO
//! slot hits, parks) and a byte-identity verdict. Because speedup on a
//! host with fewer cores than requested workers is physically capped,
//! every point records both the *requested* and the *effective*
//! (`min(requested, host)`) worker count, plus the host's parallelism.
//!
//! `lte-sim perf [--quick] [--subframes N] [--out DIR] [--baseline FILE]
//! [--workers LIST] [--window N] [--pin] [--scaling-baseline FILE]`
//! writes `BENCH_PR3.json` (single point) and `BENCH_PR4.json` (scaling
//! matrix) under `--out` and, when given baselines, fails if
//! subframes/sec or max-workers speedup regresses more than 10%.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lte_dsp::fft::FftPlanner;
use lte_obs::Histogram;
use lte_phy::grid::UserInput;
use lte_phy::params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
use lte_phy::receiver::process_user_pooled;

use crate::{BenchmarkConfig, PoolActivity, UplinkBenchmark};

/// Subframes in the default (full) measurement.
pub const FULL_SUBFRAMES: usize = 600;
/// Subframes in the `--quick` measurement.
pub const QUICK_SUBFRAMES: usize = 120;
/// Warmup subframes processed (and discarded) before timing starts, so
/// plan caches, input synthesis and scratch arenas reach steady state.
const WARMUP_SUBFRAMES: usize = 16;
/// Subframes timed on the serial reference path (enough for a stable
/// rate without doubling the harness runtime).
const SERIAL_SUBFRAMES: usize = 40;
/// Tolerated regression against a committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Throughput harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Subframes in the timed parallel run.
    pub subframes: usize,
    /// Worker threads (requested; the host may cap the effective count).
    pub workers: usize,
    /// Input-synthesis seed.
    pub seed: u64,
    /// Multi-subframe pipelining window (`None` = unbounded, matching
    /// the pre-pipelining harness so baselines stay comparable).
    pub window: Option<usize>,
    /// Pin workers to CPUs round-robin.
    pub pin_workers: bool,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            subframes: FULL_SUBFRAMES,
            workers: BenchmarkConfig::default().workers,
            seed: 42,
            window: None,
            pin_workers: false,
        }
    }
}

/// The host's available hardware parallelism (1 if unknown) — the
/// scheduler crate's single source of truth, re-exported for report
/// fields and the worker ladder.
pub fn host_parallelism() -> usize {
    lte_sched::host_parallelism()
}

/// Worker threads that can actually run concurrently for a request: the
/// pool spawns every requested thread, but no more than the host's core
/// count can execute at once — the honest denominator for efficiency.
pub fn effective_workers(requested: usize) -> usize {
    requested.min(host_parallelism()).max(1)
}

/// One measured perf run, serialisable to `BENCH_PR3.json`.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Subframes in the timed run.
    pub subframes: usize,
    /// Worker threads requested (and spawned).
    pub workers: usize,
    /// Worker threads that can run concurrently on this host
    /// (`min(workers, host_parallelism)`).
    pub workers_effective: usize,
    /// The host's available hardware parallelism.
    pub host_parallelism: usize,
    /// Wall-clock seconds of the timed parallel run.
    pub elapsed_s: f64,
    /// Parallel throughput.
    pub subframes_per_sec: f64,
    /// Serial reference throughput over the same inputs.
    pub serial_subframes_per_sec: f64,
    /// Median per-subframe service latency, microseconds. Under the
    /// harness's saturating zero-interval dispatch a queueing delay would
    /// swamp dispatch-to-completion times, so service latency is measured
    /// as the spacing between consecutive subframe completions.
    pub p50_latency_us: f64,
    /// 99th-percentile per-subframe service latency, microseconds.
    pub p99_latency_us: f64,
    /// Fraction of users whose CRC passed (sanity: must be 1.0 at the
    /// harness SNR).
    pub crc_pass_rate: f64,
    /// Scratch-arena buffers allocated fresh during the timed run.
    pub arena_fresh: u64,
    /// Scratch-arena buffers reused from free lists during the timed run.
    pub arena_reused: u64,
}

impl PerfReport {
    /// Parallel speedup over the serial reference.
    pub fn speedup(&self) -> f64 {
        if self.serial_subframes_per_sec > 0.0 {
            self.subframes_per_sec / self.serial_subframes_per_sec
        } else {
            0.0
        }
    }

    /// Renders the flat JSON document written to `BENCH_PR3.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"lte-sim-perf-v1\",\n");
        out.push_str(&format!("  \"subframes\": {},\n", self.subframes));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!(
            "  \"workers_effective\": {},\n",
            self.workers_effective
        ));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!("  \"elapsed_s\": {:.6},\n", self.elapsed_s));
        out.push_str(&format!(
            "  \"subframes_per_sec\": {:.3},\n",
            self.subframes_per_sec
        ));
        out.push_str(&format!(
            "  \"serial_subframes_per_sec\": {:.3},\n",
            self.serial_subframes_per_sec
        ));
        out.push_str(&format!("  \"speedup\": {:.3},\n", self.speedup()));
        out.push_str(&format!(
            "  \"p50_latency_us\": {:.1},\n",
            self.p50_latency_us
        ));
        out.push_str(&format!(
            "  \"p99_latency_us\": {:.1},\n",
            self.p99_latency_us
        ));
        out.push_str(&format!(
            "  \"crc_pass_rate\": {:.4},\n",
            self.crc_pass_rate
        ));
        out.push_str(&format!("  \"arena_fresh\": {},\n", self.arena_fresh));
        out.push_str(&format!("  \"arena_reused\": {}\n", self.arena_reused));
        out.push('}');
        out.push('\n');
        out
    }
}

/// Reads one numeric field out of a flat JSON perf report. Only the
/// `"key": number` shape written by [`PerfReport::to_json`] is
/// understood — enough to compare against a committed baseline without a
/// JSON dependency.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The harness's steady-state subframe: four users spanning every
/// modulation and 1–4 layers, 100 PRBs total — the sustained-load shape
/// of the paper's Fig. 8 trace near the cell budget.
pub fn steady_state_subframe() -> SubframeConfig {
    SubframeConfig::new(vec![
        UserConfig::new(25, 2, lte_dsp::Modulation::Qam16),
        UserConfig::new(10, 1, lte_dsp::Modulation::Qpsk),
        UserConfig::new(50, 2, lte_dsp::Modulation::Qam64),
        UserConfig::new(15, 4, lte_dsp::Modulation::Qam16),
    ])
}

/// Latency quantile in microseconds from the telemetry histogram.
///
/// Bucket resolution bounds the estimate to at most 1/32 (≈3.1%) above
/// the exact order statistic; the fields derived from it are
/// informational (the regression gate checks throughput, not latency).
fn quantile_us(snapshot: &lte_obs::HistogramSnapshot, q: f64) -> f64 {
    snapshot.quantile(q) as f64 / 1e3
}

/// Service-latency distribution from completion timestamps: the spacing
/// between consecutive completions (sorted), with the first subframe
/// contributing its full dispatch-to-completion time (its queue wait at
/// a zero dispatch interval is negligible).
///
/// Degenerate runs are explicit rather than accidental: zero
/// completions yield the empty snapshot (count 0, every quantile 0 —
/// see `HistogramSnapshot::quantile`), and a single completion yields
/// exactly one sample (that subframe's own latency), so p50 == p99 ==
/// the one measurement instead of a panic or a bogus tail estimate.
pub fn completion_spacing(completions_ns: &[u64]) -> lte_obs::HistogramSnapshot {
    let mut completions = completions_ns.to_vec();
    completions.sort_unstable();
    let hist = Histogram::new();
    let mut prev = 0u64;
    for &done in &completions {
        hist.record(done - prev);
        prev = done;
    }
    hist.snapshot()
}

/// Runs the throughput harness: a warmed-up parallel run, a serial
/// reference timing, and the byte-identity verification.
///
/// # Errors
///
/// Returns a message when the worker pool cannot start or the parallel
/// results diverge from the serial golden record.
pub fn run_perf(cfg: &PerfConfig) -> Result<PerfReport, String> {
    let cell = CellConfig::default();
    let subframe = steady_state_subframe();
    let bench_cfg = BenchmarkConfig {
        workers: cfg.workers,
        // Zero dispatch interval: measure the pipeline, not the pacing.
        delta: Duration::ZERO,
        turbo: TurboMode::Passthrough,
        seed: cfg.seed,
        max_in_flight: cfg.window,
        pin_workers: cfg.pin_workers,
        ..BenchmarkConfig::default()
    };
    let mut bench = UplinkBenchmark::new(cell, bench_cfg);

    // Warmup: synthesise inputs, fill plan caches, populate arenas.
    let warmup = vec![subframe.clone(); WARMUP_SUBFRAMES];
    bench.try_run(&warmup).map_err(|e| e.to_string())?;

    // Timed parallel run.
    let arena_before = lte_dsp::arena::stats();
    let subframes = vec![subframe.clone(); cfg.subframes];
    let run = bench.try_run(&subframes).map_err(|e| e.to_string())?;
    let arena_after = lte_dsp::arena::stats();

    // Serial reference throughput on the identical (cached) inputs,
    // through the pooled (zero-allocation) serial pipeline.
    let planner = Arc::new(FftPlanner::new());
    let serial_inputs: Vec<Arc<UserInput>> =
        subframe.users.iter().map(|u| bench.input_for(u)).collect();
    let serial_n = SERIAL_SUBFRAMES.min(cfg.subframes).max(1);
    let serial_start = Instant::now();
    for _ in 0..serial_n {
        for input in &serial_inputs {
            let result = process_user_pooled(&cell, input, TurboMode::Passthrough, &planner);
            std::hint::black_box(&result);
        }
    }
    let serial_elapsed = serial_start.elapsed().as_secs_f64();

    // The throughput claim is only valid while parallel == serial.
    bench
        .verify(&subframes, &run)
        .map_err(|e| format!("serial/parallel divergence: {e}"))?;

    let latency = completion_spacing(&run.completions_ns);
    Ok(PerfReport {
        subframes: cfg.subframes,
        workers: cfg.workers,
        workers_effective: effective_workers(cfg.workers),
        host_parallelism: host_parallelism(),
        elapsed_s: run.elapsed.as_secs_f64(),
        subframes_per_sec: cfg.subframes as f64 / run.elapsed.as_secs_f64(),
        serial_subframes_per_sec: serial_n as f64 / serial_elapsed,
        p50_latency_us: quantile_us(&latency, 0.50),
        p99_latency_us: quantile_us(&latency, 0.99),
        crc_pass_rate: run.crc_pass_rate,
        arena_fresh: arena_after.fresh - arena_before.fresh,
        arena_reused: arena_after.reused - arena_before.reused,
    })
}

/// Compares a fresh report against a committed baseline document.
///
/// # Errors
///
/// Returns a message when the baseline cannot be parsed or throughput
/// regressed beyond [`REGRESSION_TOLERANCE`].
pub fn check_against_baseline(report: &PerfReport, baseline_json: &str) -> Result<(), String> {
    let baseline = json_number(baseline_json, "subframes_per_sec")
        .ok_or("baseline file has no subframes_per_sec field")?;
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if report.subframes_per_sec < floor {
        return Err(format!(
            "throughput regression: {:.1} subframes/sec is below the {:.1} floor \
             ({:.1} baseline − {:.0}% tolerance)",
            report.subframes_per_sec,
            floor,
            baseline,
            100.0 * REGRESSION_TOLERANCE
        ));
    }
    Ok(())
}

/// Scaling-matrix configuration: the same steady-state load replayed at
/// a ladder of worker counts.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// Subframes in each timed run (per worker count).
    pub subframes: usize,
    /// Worker counts to measure, in order.
    pub worker_counts: Vec<usize>,
    /// Input-synthesis seed (shared by every point, so every point sees
    /// byte-identical inputs).
    pub seed: u64,
    /// Multi-subframe pipelining window applied at every point.
    pub window: Option<usize>,
    /// Pin workers to CPUs round-robin.
    pub pin_workers: bool,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            subframes: FULL_SUBFRAMES,
            worker_counts: default_worker_ladder(),
            seed: 42,
            window: Some(4),
            pin_workers: false,
        }
    }
}

/// The default worker ladder: powers of two up to the host's available
/// parallelism, always ending at the host's core count. On a 1-core
/// host this is just `[1]` — the matrix never pretends to parallelism
/// the hardware cannot deliver.
pub fn default_worker_ladder() -> Vec<usize> {
    let host = host_parallelism();
    let mut ladder = Vec::new();
    let mut w = 1;
    while w <= host {
        ladder.push(w);
        w *= 2;
    }
    if *ladder.last().expect("ladder has at least 1") != host {
        ladder.push(host);
    }
    ladder
}

/// One point of the scaling matrix.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Worker threads requested (and spawned).
    pub workers_requested: usize,
    /// Worker threads that can run concurrently on this host.
    pub workers_effective: usize,
    /// Parallel throughput at this point.
    pub subframes_per_sec: f64,
    /// Speedup over the shared serial reference.
    pub speedup: f64,
    /// Parallel efficiency: speedup / effective workers.
    pub efficiency: f64,
    /// Whether this point's outputs matched the serial golden record
    /// byte for byte (run_scaling fails hard otherwise, so a committed
    /// report always shows `true` — the field keeps the claim explicit).
    pub byte_identical: bool,
    /// Scheduler counters for this point's run.
    pub pool: PoolActivity,
}

/// A measured scaling matrix, serialisable to `BENCH_PR4.json`.
#[derive(Clone, Debug)]
pub struct ScalingReport {
    /// Subframes per timed run.
    pub subframes: usize,
    /// The host's available hardware parallelism.
    pub host_parallelism: usize,
    /// Pipelining window (0 = unbounded).
    pub window: usize,
    /// Serial reference throughput shared by every point.
    pub serial_subframes_per_sec: f64,
    /// One entry per measured worker count.
    pub points: Vec<ScalingPoint>,
}

impl ScalingReport {
    /// The point with the largest requested worker count.
    pub fn max_workers_point(&self) -> &ScalingPoint {
        self.points
            .iter()
            .max_by_key(|p| p.workers_requested)
            .expect("a scaling report has at least one point")
    }

    /// Speedup at the largest worker count — the headline number the
    /// regression gate defends.
    pub fn max_workers_speedup(&self) -> f64 {
        self.max_workers_point().speedup
    }

    /// Renders the JSON document written to `BENCH_PR4.json`. The gate
    /// keys (`max_workers_speedup`, `serial_subframes_per_sec`,
    /// `host_parallelism`) come before the points array so the flat
    /// [`json_number`] parser finds the top-level values first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"lte-sim-scaling-v1\",\n");
        out.push_str(&format!("  \"subframes\": {},\n", self.subframes));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!("  \"window\": {},\n", self.window));
        out.push_str(&format!(
            "  \"serial_subframes_per_sec\": {:.3},\n",
            self.serial_subframes_per_sec
        ));
        let top = self.max_workers_point();
        out.push_str(&format!("  \"max_workers\": {},\n", top.workers_requested));
        out.push_str(&format!("  \"max_workers_speedup\": {:.3},\n", top.speedup));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"workers_requested\": {},\n",
                p.workers_requested
            ));
            out.push_str(&format!(
                "      \"workers_effective\": {},\n",
                p.workers_effective
            ));
            out.push_str(&format!(
                "      \"subframes_per_sec\": {:.3},\n",
                p.subframes_per_sec
            ));
            out.push_str(&format!("      \"speedup\": {:.3},\n", p.speedup));
            out.push_str(&format!("      \"efficiency\": {:.3},\n", p.efficiency));
            out.push_str(&format!(
                "      \"byte_identical\": {},\n",
                p.byte_identical
            ));
            out.push_str(&format!("      \"tasks\": {},\n", p.pool.executed_tasks));
            out.push_str(&format!("      \"steals\": {},\n", p.pool.steals));
            out.push_str(&format!(
                "      \"steal_batches\": {},\n",
                p.pool.steal_batches
            ));
            out.push_str(&format!(
                "      \"lifo_slot_hits\": {},\n",
                p.pool.lifo_slot_hits
            ));
            out.push_str(&format!("      \"parks\": {}\n", p.pool.parks));
            out.push_str(if i + 1 == self.points.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the scaling matrix: one serial reference timing, then for every
/// worker count a warmed-up pipelined run whose outputs are verified
/// byte-for-byte against the serial golden record.
///
/// # Errors
///
/// Returns a message when the worker ladder is empty, a pool cannot
/// start, or any point diverges from the serial reference.
pub fn run_scaling(cfg: &ScalingConfig) -> Result<ScalingReport, String> {
    run_scaling_with_stop(cfg, &|| false)
}

/// [`run_scaling`] with an early-stop hook, polled between worker
/// counts. When `stop` returns `true` the remaining points are skipped
/// and the report covers the points measured so far — the CLI wires a
/// latched SIGINT/SIGTERM into this so an interrupted matrix still
/// flushes a valid (partial) BENCH_PR4.json.
///
/// # Errors
///
/// Same as [`run_scaling`].
pub fn run_scaling_with_stop(
    cfg: &ScalingConfig,
    stop: &dyn Fn() -> bool,
) -> Result<ScalingReport, String> {
    if cfg.worker_counts.is_empty() {
        return Err("scaling matrix needs at least one worker count".into());
    }
    let cell = CellConfig::default();
    let subframe = steady_state_subframe();
    let subframes = vec![subframe.clone(); cfg.subframes];

    // Serial reference, timed once: every point below replays the same
    // seed, so the same reference applies to all of them.
    let mut serial_bench = UplinkBenchmark::new(
        cell,
        BenchmarkConfig {
            workers: 1,
            delta: Duration::ZERO,
            turbo: TurboMode::Passthrough,
            seed: cfg.seed,
            ..BenchmarkConfig::default()
        },
    );
    let planner = Arc::new(FftPlanner::new());
    let serial_inputs: Vec<Arc<UserInput>> = subframe
        .users
        .iter()
        .map(|u| serial_bench.input_for(u))
        .collect();
    // Warm the serial path (plan caches, scratch arenas) before timing.
    for input in &serial_inputs {
        let result = process_user_pooled(&cell, input, TurboMode::Passthrough, &planner);
        std::hint::black_box(&result);
    }
    let serial_n = SERIAL_SUBFRAMES.min(cfg.subframes).max(1);
    let serial_start = Instant::now();
    for _ in 0..serial_n {
        for input in &serial_inputs {
            let result = process_user_pooled(&cell, input, TurboMode::Passthrough, &planner);
            std::hint::black_box(&result);
        }
    }
    let serial_rate = serial_n as f64 / serial_start.elapsed().as_secs_f64();

    let mut points = Vec::with_capacity(cfg.worker_counts.len());
    for &workers in &cfg.worker_counts {
        if stop() {
            break;
        }
        let bench_cfg = BenchmarkConfig {
            workers,
            delta: Duration::ZERO,
            turbo: TurboMode::Passthrough,
            seed: cfg.seed,
            max_in_flight: cfg.window,
            pin_workers: cfg.pin_workers,
            ..BenchmarkConfig::default()
        };
        let mut bench = UplinkBenchmark::new(cell, bench_cfg);
        let warmup = vec![subframe.clone(); WARMUP_SUBFRAMES];
        bench
            .try_run(&warmup)
            .map_err(|e| format!("{workers}-worker warmup: {e}"))?;
        let run = bench
            .try_run(&subframes)
            .map_err(|e| format!("{workers}-worker run: {e}"))?;
        bench
            .verify(&subframes, &run)
            .map_err(|e| format!("{workers}-worker divergence from serial reference: {e}"))?;
        let rate = cfg.subframes as f64 / run.elapsed.as_secs_f64();
        let effective = effective_workers(workers);
        let speedup = if serial_rate > 0.0 {
            rate / serial_rate
        } else {
            0.0
        };
        points.push(ScalingPoint {
            workers_requested: workers,
            workers_effective: effective,
            subframes_per_sec: rate,
            speedup,
            efficiency: speedup / effective as f64,
            byte_identical: true,
            pool: run.pool,
        });
    }

    Ok(ScalingReport {
        subframes: cfg.subframes,
        host_parallelism: host_parallelism(),
        window: cfg.window.unwrap_or(0),
        serial_subframes_per_sec: serial_rate,
        points,
    })
}

/// Compares a fresh scaling report against a committed baseline.
///
/// The gate defends the *speedup* at the largest worker count, not the
/// absolute rate: speedup is a ratio of two measurements on the same
/// host, so it transfers across machines far better than subframes/sec.
///
/// # Errors
///
/// Returns a message when the baseline cannot be parsed or speedup
/// regressed beyond [`REGRESSION_TOLERANCE`].
pub fn check_scaling_against_baseline(
    report: &ScalingReport,
    baseline_json: &str,
) -> Result<(), String> {
    let baseline = json_number(baseline_json, "max_workers_speedup")
        .ok_or("scaling baseline has no max_workers_speedup field")?;
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    let actual = report.max_workers_speedup();
    if actual < floor {
        return Err(format!(
            "scaling regression: max-workers speedup {actual:.3} is below the {floor:.3} floor \
             ({baseline:.3} baseline − {:.0}% tolerance)",
            100.0 * REGRESSION_TOLERANCE
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_exposes_every_metric() {
        let report = PerfReport {
            subframes: 120,
            workers: 8,
            workers_effective: 4,
            host_parallelism: 4,
            elapsed_s: 1.5,
            subframes_per_sec: 80.0,
            serial_subframes_per_sec: 20.0,
            p50_latency_us: 950.0,
            p99_latency_us: 2100.0,
            crc_pass_rate: 1.0,
            arena_fresh: 64,
            arena_reused: 4096,
        };
        let json = report.to_json();
        assert_eq!(json_number(&json, "subframes"), Some(120.0));
        assert_eq!(json_number(&json, "workers"), Some(8.0));
        assert_eq!(json_number(&json, "workers_effective"), Some(4.0));
        assert_eq!(json_number(&json, "host_parallelism"), Some(4.0));
        assert_eq!(json_number(&json, "subframes_per_sec"), Some(80.0));
        assert_eq!(json_number(&json, "serial_subframes_per_sec"), Some(20.0));
        assert_eq!(json_number(&json, "speedup"), Some(4.0));
        assert_eq!(json_number(&json, "p99_latency_us"), Some(2100.0));
        assert_eq!(json_number(&json, "arena_reused"), Some(4096.0));
    }

    #[test]
    fn baseline_gate_triggers_on_regression() {
        let mut report = PerfReport {
            subframes: 120,
            workers: 8,
            workers_effective: 4,
            host_parallelism: 4,
            elapsed_s: 1.5,
            subframes_per_sec: 80.0,
            serial_subframes_per_sec: 20.0,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            crc_pass_rate: 1.0,
            arena_fresh: 0,
            arena_reused: 0,
        };
        let baseline = report.to_json();
        assert!(check_against_baseline(&report, &baseline).is_ok());
        report.subframes_per_sec = 80.0 * 0.95;
        assert!(check_against_baseline(&report, &baseline).is_ok());
        report.subframes_per_sec = 80.0 * 0.85;
        assert!(check_against_baseline(&report, &baseline).is_err());
        assert!(check_against_baseline(&report, "{}").is_err());
    }

    #[test]
    fn percentiles_track_order_statistics_within_bucket_resolution() {
        let hist = Histogram::new();
        for v in 1..=100u64 {
            hist.record(v * 1000);
        }
        let snap = hist.snapshot();
        // Never below the exact order statistic, at most 1/32 above it.
        for (q, exact_us) in [(0.50, 50.0), (0.99, 99.0)] {
            let est = quantile_us(&snap, q);
            assert!(est >= exact_us, "p{q} {est} under-reports {exact_us}");
            assert!(
                est <= exact_us * (1.0 + 1.0 / 32.0) + 1e-9,
                "p{q} {est} exceeds resolution bound around {exact_us}"
            );
        }
        assert_eq!(quantile_us(&Histogram::new().snapshot(), 0.50), 0.0);
    }

    #[test]
    fn completion_spacing_handles_degenerate_runs() {
        // Zero completions: the explicit empty report, not a panic.
        let empty = completion_spacing(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(quantile_us(&empty, 0.50), 0.0);
        assert_eq!(quantile_us(&empty, 0.999), 0.0);

        // One completion: a single sample — its own latency — for every
        // quantile, rather than an out-of-bounds spacing index.
        let single = completion_spacing(&[2_000_000]);
        assert_eq!(single.count, 1);
        assert_eq!(single.min, 2_000_000);
        assert_eq!(single.max, 2_000_000);
        assert_eq!(quantile_us(&single, 0.50), quantile_us(&single, 0.99));
        assert_eq!(single.quantile(1.0), 2_000_000);

        // Multiple completions, unsorted input: spacings 1ms, 1ms, 3ms.
        let multi = completion_spacing(&[2_000_000, 1_000_000, 5_000_000]);
        assert_eq!(multi.count, 3);
        assert_eq!(multi.min, 1_000_000);
        assert_eq!(multi.max, 3_000_000);
    }

    #[test]
    fn quick_perf_run_produces_consistent_report() {
        let cfg = PerfConfig {
            subframes: 6,
            workers: 4,
            seed: 1,
            window: Some(3),
            pin_workers: false,
        };
        let report = run_perf(&cfg).expect("perf run");
        assert_eq!(report.subframes, 6);
        assert_eq!(report.workers, 4);
        assert_eq!(report.workers_effective, effective_workers(4));
        assert_eq!(report.host_parallelism, host_parallelism());
        assert!(report.subframes_per_sec > 0.0);
        assert!(report.serial_subframes_per_sec > 0.0);
        assert_eq!(report.crc_pass_rate, 1.0);
        assert!(report.p99_latency_us >= report.p50_latency_us);
    }

    #[test]
    fn default_ladder_is_powers_of_two_ending_at_the_host() {
        let ladder = default_worker_ladder();
        let host = host_parallelism();
        assert_eq!(ladder[0], 1);
        assert_eq!(*ladder.last().unwrap(), host);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert!(ladder.iter().all(|&w| w <= host));
    }

    fn sample_scaling_report() -> ScalingReport {
        let point = |w: usize, rate: f64| ScalingPoint {
            workers_requested: w,
            workers_effective: w.min(4),
            subframes_per_sec: rate,
            speedup: rate / 20.0,
            efficiency: rate / 20.0 / w.min(4) as f64,
            byte_identical: true,
            pool: PoolActivity {
                executed_tasks: 1000,
                steals: 40,
                steal_batches: 8,
                batch_stolen_tasks: 60,
                lifo_slot_hits: 700,
                parks: 12,
                pinned_workers: 0,
            },
        };
        ScalingReport {
            subframes: 120,
            host_parallelism: 4,
            window: 4,
            serial_subframes_per_sec: 20.0,
            points: vec![point(1, 19.0), point(2, 36.0), point(4, 64.0)],
        }
    }

    #[test]
    fn scaling_json_exposes_the_gate_keys_at_top_level() {
        let report = sample_scaling_report();
        let json = report.to_json();
        // The flat parser must resolve the gate keys to the *top-level*
        // values, not to a field inside the points array.
        assert_eq!(json_number(&json, "max_workers"), Some(4.0));
        assert_eq!(json_number(&json, "max_workers_speedup"), Some(3.2));
        assert_eq!(json_number(&json, "serial_subframes_per_sec"), Some(20.0));
        assert_eq!(json_number(&json, "host_parallelism"), Some(4.0));
        assert_eq!(json_number(&json, "window"), Some(4.0));
        assert_eq!(json_number(&json, "workers_requested"), Some(1.0));
        assert!(json.contains("\"byte_identical\": true"));
        assert!(json.contains("\"steal_batches\": 8"));
        assert!(json.contains("\"lifo_slot_hits\": 700"));
    }

    #[test]
    fn scaling_gate_triggers_on_speedup_regression() {
        let mut report = sample_scaling_report();
        let baseline = report.to_json();
        assert!(check_scaling_against_baseline(&report, &baseline).is_ok());
        // 5% down: within tolerance.
        report.points[2].speedup *= 0.95;
        assert!(check_scaling_against_baseline(&report, &baseline).is_ok());
        // 15% down: regression.
        report.points[2].speedup = 3.2 * 0.85;
        assert!(check_scaling_against_baseline(&report, &baseline).is_err());
        assert!(check_scaling_against_baseline(&report, "{}").is_err());
    }

    #[test]
    fn quick_scaling_run_verifies_every_point() {
        let cfg = ScalingConfig {
            subframes: 6,
            worker_counts: vec![1, 2],
            seed: 1,
            window: Some(2),
            pin_workers: false,
        };
        let report = run_scaling(&cfg).expect("scaling run");
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.host_parallelism, host_parallelism());
        for point in &report.points {
            assert!(point.byte_identical);
            assert!(point.subframes_per_sec > 0.0);
            assert!(point.speedup > 0.0);
            assert!(point.efficiency > 0.0);
            assert_eq!(
                point.workers_effective,
                effective_workers(point.workers_requested)
            );
            assert!(point.pool.executed_tasks > 0);
        }
        assert_eq!(report.max_workers_point().workers_requested, 2);
        assert!(run_scaling(&ScalingConfig {
            worker_counts: vec![],
            ..cfg
        })
        .is_err());
    }
}
