//! Throughput harness for the steady-state receive pipeline.
//!
//! The paper's Fig. 8 scenario holds the cell near its PRB budget with a
//! mixed user population; this module replays that load shape as fast as
//! the host allows (dispatch interval zero) and reports machine-readable
//! throughput numbers so every future PR has a perf trajectory to
//! defend:
//!
//! * parallel subframes/sec over the worker pool,
//! * serial subframes/sec over the reference path (same inputs),
//! * p50/p99 dispatch-to-completion subframe latency,
//! * scratch-arena allocation counters (fresh vs reused buffers).
//!
//! Every perf run re-verifies the parallel results against the serial
//! golden record — the throughput claim is only valid while the outputs
//! stay byte-identical (§IV-D).
//!
//! On top of the single-point harness sits a *scaling matrix*
//! ([`run_scaling`]): the same steady-state load replayed at a ladder of
//! worker counts (default: powers of two up to `available_parallelism`),
//! each point reporting throughput, speedup over the serial reference,
//! parallel efficiency, scheduler counters (steals, batch steals, LIFO
//! slot hits, parks) and a byte-identity verdict. Because speedup on a
//! host with fewer cores than requested workers is physically capped,
//! every point records both the *requested* and the *effective*
//! (`min(requested, host)`) worker count, plus the host's parallelism.
//!
//! `lte-sim perf [--quick] [--subframes N] [--out DIR] [--baseline FILE]
//! [--workers LIST] [--window N] [--pin] [--scaling-baseline FILE]`
//! writes `BENCH_PR3.json` (single point) and `BENCH_PR4.json` (scaling
//! matrix) under `--out` and, when given baselines, fails if
//! subframes/sec or max-workers speedup regresses more than 10%.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lte_dsp::fft::FftPlanner;
use lte_obs::Histogram;
use lte_phy::grid::UserInput;
use lte_phy::params::{CellConfig, SubframeConfig, TurboMode, UserConfig};
use lte_phy::receiver::process_user_pooled;

use crate::{BenchmarkConfig, PoolActivity, UplinkBenchmark};

/// Subframes in the default (full) measurement.
pub const FULL_SUBFRAMES: usize = 600;
/// Subframes in the `--quick` measurement.
pub const QUICK_SUBFRAMES: usize = 120;
/// Warmup subframes processed (and discarded) before timing starts, so
/// plan caches, input synthesis and scratch arenas reach steady state.
const WARMUP_SUBFRAMES: usize = 16;
/// Subframes timed on the serial reference path (enough for a stable
/// rate without doubling the harness runtime).
const SERIAL_SUBFRAMES: usize = 40;
/// Back-to-back passes of each timed phase; the report keeps the
/// fastest. A single pass is at the mercy of scheduler interference
/// (the harness often runs on small shared hosts), and since every
/// pass performs identical deterministic work, the least-perturbed
/// pass is the measurement.
const MEASURE_PASSES: usize = 3;
/// Tolerated regression against a committed baseline.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Throughput harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct PerfConfig {
    /// Subframes in the timed parallel run.
    pub subframes: usize,
    /// Worker threads (requested; the host may cap the effective count).
    pub workers: usize,
    /// Input-synthesis seed.
    pub seed: u64,
    /// Multi-subframe pipelining window (`None` = unbounded, matching
    /// the pre-pipelining harness so baselines stay comparable).
    pub window: Option<usize>,
    /// Pin workers to CPUs round-robin.
    pub pin_workers: bool,
    /// Receiver tail mode for both the parallel and serial legs —
    /// `Decode` turns the harness into the turbo-decode benchmark.
    pub mode: TurboMode,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            subframes: FULL_SUBFRAMES,
            workers: BenchmarkConfig::default().workers,
            seed: 42,
            window: None,
            pin_workers: false,
            mode: TurboMode::Passthrough,
        }
    }
}

/// The host's available hardware parallelism (1 if unknown) — the
/// scheduler crate's single source of truth, re-exported for report
/// fields and the worker ladder.
pub fn host_parallelism() -> usize {
    lte_sched::host_parallelism()
}

/// Worker threads that can actually run concurrently for a request: the
/// pool spawns every requested thread, but no more than the host's core
/// count can execute at once — the honest denominator for efficiency.
pub fn effective_workers(requested: usize) -> usize {
    requested.min(host_parallelism()).max(1)
}

/// One measured perf run, serialisable to `BENCH_PR3.json`.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Subframes in the timed run.
    pub subframes: usize,
    /// Worker threads requested (and spawned).
    pub workers: usize,
    /// Worker threads that can run concurrently on this host
    /// (`min(workers, host_parallelism)`).
    pub workers_effective: usize,
    /// The host's available hardware parallelism.
    pub host_parallelism: usize,
    /// Wall-clock seconds of the timed parallel run.
    pub elapsed_s: f64,
    /// Parallel throughput.
    pub subframes_per_sec: f64,
    /// Serial reference throughput over the same inputs.
    pub serial_subframes_per_sec: f64,
    /// Median per-subframe service latency, microseconds. Under the
    /// harness's saturating zero-interval dispatch a queueing delay would
    /// swamp dispatch-to-completion times, so service latency is measured
    /// as the spacing between consecutive subframe completions.
    pub p50_latency_us: f64,
    /// 99th-percentile per-subframe service latency, microseconds.
    pub p99_latency_us: f64,
    /// Fraction of users whose CRC passed (sanity: must be 1.0 at the
    /// harness SNR).
    pub crc_pass_rate: f64,
    /// Scratch-arena buffers allocated fresh during the timed run.
    pub arena_fresh: u64,
    /// Scratch-arena buffers reused from free lists during the timed run.
    pub arena_reused: u64,
}

impl PerfReport {
    /// Parallel speedup over the serial reference.
    pub fn speedup(&self) -> f64 {
        if self.serial_subframes_per_sec > 0.0 {
            self.subframes_per_sec / self.serial_subframes_per_sec
        } else {
            0.0
        }
    }

    /// The report's flat `"key": value` entries, optionally key-prefixed
    /// (`turbo_`), without commas — shared by [`Self::to_json`] and the
    /// composite PR 9 document.
    fn json_fields(&self, prefix: &str) -> Vec<String> {
        vec![
            format!("\"{prefix}subframes\": {}", self.subframes),
            format!("\"{prefix}workers\": {}", self.workers),
            format!("\"{prefix}workers_effective\": {}", self.workers_effective),
            format!("\"{prefix}host_parallelism\": {}", self.host_parallelism),
            format!("\"{prefix}elapsed_s\": {:.6}", self.elapsed_s),
            format!(
                "\"{prefix}subframes_per_sec\": {:.3}",
                self.subframes_per_sec
            ),
            format!(
                "\"{prefix}serial_subframes_per_sec\": {:.3}",
                self.serial_subframes_per_sec
            ),
            format!("\"{prefix}speedup\": {:.3}", self.speedup()),
            format!("\"{prefix}p50_latency_us\": {:.1}", self.p50_latency_us),
            format!("\"{prefix}p99_latency_us\": {:.1}", self.p99_latency_us),
            format!("\"{prefix}crc_pass_rate\": {:.4}", self.crc_pass_rate),
            format!("\"{prefix}arena_fresh\": {}", self.arena_fresh),
            format!("\"{prefix}arena_reused\": {}", self.arena_reused),
        ]
    }

    /// Renders the flat JSON document written to `BENCH_PR3.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"lte-sim-perf-v1\"");
        for field in self.json_fields("") {
            out.push_str(",\n  ");
            out.push_str(&field);
        }
        out.push_str("\n}\n");
        out
    }
}

/// Reads one numeric field out of a flat JSON perf report. Only the
/// `"key": number` shape written by [`PerfReport::to_json`] is
/// understood — enough to compare against a committed baseline without a
/// JSON dependency.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The harness's steady-state subframe: four users spanning every
/// modulation and 1–4 layers, 100 PRBs total — the sustained-load shape
/// of the paper's Fig. 8 trace near the cell budget.
pub fn steady_state_subframe() -> SubframeConfig {
    SubframeConfig::new(vec![
        UserConfig::new(25, 2, lte_dsp::Modulation::Qam16),
        UserConfig::new(10, 1, lte_dsp::Modulation::Qpsk),
        UserConfig::new(50, 2, lte_dsp::Modulation::Qam64),
        UserConfig::new(15, 4, lte_dsp::Modulation::Qam16),
    ])
}

/// Latency quantile in microseconds from the telemetry histogram.
///
/// Bucket resolution bounds the estimate to at most 1/32 (≈3.1%) above
/// the exact order statistic; the fields derived from it are
/// informational (the regression gate checks throughput, not latency).
fn quantile_us(snapshot: &lte_obs::HistogramSnapshot, q: f64) -> f64 {
    snapshot.quantile(q) as f64 / 1e3
}

/// Service-latency distribution from completion timestamps: the spacing
/// between consecutive completions (sorted), with the first subframe
/// contributing its full dispatch-to-completion time (its queue wait at
/// a zero dispatch interval is negligible).
///
/// Degenerate runs are explicit rather than accidental: zero
/// completions yield the empty snapshot (count 0, every quantile 0 —
/// see `HistogramSnapshot::quantile`), and a single completion yields
/// exactly one sample (that subframe's own latency), so p50 == p99 ==
/// the one measurement instead of a panic or a bogus tail estimate.
pub fn completion_spacing(completions_ns: &[u64]) -> lte_obs::HistogramSnapshot {
    let mut completions = completions_ns.to_vec();
    completions.sort_unstable();
    let hist = Histogram::new();
    let mut prev = 0u64;
    for &done in &completions {
        hist.record(done - prev);
        prev = done;
    }
    hist.snapshot()
}

/// Runs the throughput harness: a warmed-up parallel run, a serial
/// reference timing, and the byte-identity verification.
///
/// # Errors
///
/// Returns a message when the worker pool cannot start or the parallel
/// results diverge from the serial golden record.
pub fn run_perf(cfg: &PerfConfig) -> Result<PerfReport, String> {
    let cell = CellConfig::default();
    let subframe = steady_state_subframe();
    let bench_cfg = BenchmarkConfig {
        workers: cfg.workers,
        // Zero dispatch interval: measure the pipeline, not the pacing.
        delta: Duration::ZERO,
        turbo: cfg.mode,
        seed: cfg.seed,
        max_in_flight: cfg.window,
        pin_workers: cfg.pin_workers,
        ..BenchmarkConfig::default()
    };
    let mut bench = UplinkBenchmark::new(cell, bench_cfg);

    // Warmup: synthesise inputs, fill plan caches, populate arenas.
    let warmup = vec![subframe.clone(); WARMUP_SUBFRAMES];
    bench.try_run(&warmup).map_err(|e| e.to_string())?;

    // Timed parallel run: best of [`MEASURE_PASSES`] identical passes.
    let arena_before = lte_dsp::arena::stats();
    let subframes = vec![subframe.clone(); cfg.subframes];
    let mut run = bench.try_run(&subframes).map_err(|e| e.to_string())?;
    for _ in 1..MEASURE_PASSES {
        let pass = bench.try_run(&subframes).map_err(|e| e.to_string())?;
        if pass.elapsed < run.elapsed {
            run = pass;
        }
    }
    let arena_after = lte_dsp::arena::stats();

    // Serial reference throughput on the identical (cached) inputs,
    // through the pooled (zero-allocation) serial pipeline — also the
    // best of [`MEASURE_PASSES`] passes.
    let planner = Arc::new(FftPlanner::new());
    let serial_inputs: Vec<Arc<UserInput>> =
        subframe.users.iter().map(|u| bench.input_for(u)).collect();
    let serial_n = SERIAL_SUBFRAMES.min(cfg.subframes).max(1);
    let mut serial_elapsed = f64::INFINITY;
    for _ in 0..MEASURE_PASSES {
        let serial_start = Instant::now();
        for _ in 0..serial_n {
            for input in &serial_inputs {
                let result = process_user_pooled(&cell, input, cfg.mode, &planner);
                std::hint::black_box(&result);
            }
        }
        serial_elapsed = serial_elapsed.min(serial_start.elapsed().as_secs_f64());
    }

    // The throughput claim is only valid while parallel == serial.
    bench
        .verify(&subframes, &run)
        .map_err(|e| format!("serial/parallel divergence: {e}"))?;

    let latency = completion_spacing(&run.completions_ns);
    Ok(PerfReport {
        subframes: cfg.subframes,
        workers: cfg.workers,
        workers_effective: effective_workers(cfg.workers),
        host_parallelism: host_parallelism(),
        elapsed_s: run.elapsed.as_secs_f64(),
        subframes_per_sec: cfg.subframes as f64 / run.elapsed.as_secs_f64(),
        serial_subframes_per_sec: serial_n as f64 / serial_elapsed,
        p50_latency_us: quantile_us(&latency, 0.50),
        p99_latency_us: quantile_us(&latency, 0.99),
        crc_pass_rate: run.crc_pass_rate,
        arena_fresh: arena_after.fresh - arena_before.fresh,
        arena_reused: arena_after.reused - arena_before.reused,
    })
}

/// Compares a fresh report against a committed baseline document.
///
/// # Errors
///
/// Returns a message when the baseline cannot be parsed or throughput
/// regressed beyond [`REGRESSION_TOLERANCE`].
pub fn check_against_baseline(report: &PerfReport, baseline_json: &str) -> Result<(), String> {
    let baseline = json_number(baseline_json, "subframes_per_sec")
        .ok_or("baseline file has no subframes_per_sec field")?;
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if report.subframes_per_sec < floor {
        return Err(format!(
            "throughput regression: {:.1} subframes/sec is below the {:.1} floor \
             ({:.1} baseline − {:.0}% tolerance)",
            report.subframes_per_sec,
            floor,
            baseline,
            100.0 * REGRESSION_TOLERANCE
        ));
    }
    Ok(())
}

/// One stage's share of the serial reference pipeline's wall clock.
#[derive(Clone, Debug)]
pub struct StageShare {
    /// Stage name as reported by the trace spans.
    pub stage: &'static str,
    /// Total wall-clock microseconds across the breakdown run.
    pub total_us: f64,
    /// Fraction of the summed stage time (0..1).
    pub share: f64,
}

/// Subframes replayed through the traced serial path for a per-stage
/// time breakdown — enough rounds for stable shares without doubling
/// the harness runtime.
const BREAKDOWN_SUBFRAMES: usize = 8;

/// Measures the per-stage time breakdown of the serial reference
/// pipeline under the steady-state load: every subframe runs through
/// [`lte_phy::receiver::process_user_traced`] with a span recorder, and
/// span durations are aggregated per stage (sorted, largest first).
pub fn stage_breakdown(mode: TurboMode, seed: u64) -> Vec<StageShare> {
    use lte_obs::{Event, RingRecorder};
    use lte_phy::receiver::process_user_traced;
    use lte_phy::trace::StageTimer;

    let cell = CellConfig::default();
    let subframe = steady_state_subframe();
    let mut bench = UplinkBenchmark::new(
        cell,
        BenchmarkConfig {
            turbo: mode,
            seed,
            ..BenchmarkConfig::default()
        },
    );
    let inputs: Vec<Arc<UserInput>> = subframe.users.iter().map(|u| bench.input_for(u)).collect();
    let planner = FftPlanner::new();
    // Warm plan caches and decoder state outside the recorded window.
    for input in &inputs {
        let result = process_user_traced(&cell, input, mode, &planner, &StageTimer::disabled());
        std::hint::black_box(&result);
    }
    let recorder = RingRecorder::new(1 << 20);
    let timer = StageTimer::new(&recorder);
    for _ in 0..BREAKDOWN_SUBFRAMES {
        for input in &inputs {
            let result = process_user_traced(&cell, input, mode, &planner, &timer);
            std::hint::black_box(&result);
        }
    }
    let mut totals: Vec<(&'static str, u64)> = Vec::new();
    for ev in recorder.events() {
        if let Event::StageSpan {
            stage,
            start_ns,
            end_ns,
        } = ev
        {
            let name = stage.name();
            match totals.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => *t += end_ns.saturating_sub(start_ns),
                None => totals.push((name, end_ns.saturating_sub(start_ns))),
            }
        }
    }
    totals.sort_by_key(|e| std::cmp::Reverse(e.1));
    let grand: u64 = totals.iter().map(|&(_, t)| t).sum();
    totals
        .into_iter()
        .map(|(stage, t)| StageShare {
            stage,
            total_us: t as f64 / 1e3,
            share: t as f64 / grand.max(1) as f64,
        })
        .collect()
}

fn stages_json(stages: &[StageShare]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in stages.iter().enumerate() {
        let comma = if i + 1 < stages.len() { "," } else { "" };
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "    {{ \"stage\": \"{}\", \"total_us\": {:.1}, \"share\": {:.4} }}{comma}\n",
                s.stage, s.total_us, s.share
            ),
        );
    }
    out.push_str("  ]");
    out
}

/// Subframes in the full turbo-mode legs (turbo decode is an order of
/// magnitude heavier per subframe than pass-through, so the legs run
/// shorter while still timing thousands of code-block decodes).
pub const TURBO_FULL_SUBFRAMES: usize = 120;
/// Subframes in the `--quick` turbo-mode legs.
pub const TURBO_QUICK_SUBFRAMES: usize = 24;
/// Decoder iterations in the turbo-mode legs (the repo's default
/// operating point).
pub const TURBO_ITERATIONS: usize = 4;

/// The decode-tail perf document (`BENCH_PR9.json`): the pass-through
/// single point (same gate keys as `BENCH_PR3.json`), the turbo-mode
/// legs with SIMD dispatch and with the scalar reference forced — both
/// measured in the same process on the same inputs, so their ratio is
/// the state-parallel decoder's speedup — and a per-stage serial time
/// breakdown for each mode.
#[derive(Clone, Debug)]
pub struct DecodePerfReport {
    /// The pass-through single point (the PR 3 scenario).
    pub passthrough: PerfReport,
    /// Pass-through per-stage serial time breakdown.
    pub passthrough_stages: Vec<StageShare>,
    /// Decoder iterations in the turbo legs.
    pub turbo_iterations: usize,
    /// The turbo-mode point with native SIMD dispatch.
    pub turbo: PerfReport,
    /// The turbo-mode point with the scalar reference forced.
    pub turbo_scalar: PerfReport,
    /// Turbo-mode per-stage serial time breakdown.
    pub turbo_stages: Vec<StageShare>,
    /// The dispatch label of the native path (`avx2+fma` or `scalar`).
    pub dispatch: &'static str,
}

impl DecodePerfReport {
    /// Turbo-mode SIMD throughput over forced-scalar throughput — the
    /// headline the PR 9 gate defends.
    pub fn turbo_simd_speedup(&self) -> f64 {
        if self.turbo_scalar.subframes_per_sec > 0.0 {
            self.turbo.subframes_per_sec / self.turbo_scalar.subframes_per_sec
        } else {
            0.0
        }
    }

    /// Renders the JSON document written to `BENCH_PR9.json`. The flat
    /// gate keys (`subframes_per_sec` for the pass-through point,
    /// `turbo_subframes_per_sec` for the turbo point) come before the
    /// stage arrays so [`json_number`] resolves them at top level.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"lte-sim-perf-pr9-v1\"");
        for field in self.passthrough.json_fields("") {
            out.push_str(",\n  ");
            out.push_str(&field);
        }
        out.push_str(&format!(
            ",\n  \"turbo_iterations\": {}",
            self.turbo_iterations
        ));
        for field in self.turbo.json_fields("turbo_") {
            out.push_str(",\n  ");
            out.push_str(&field);
        }
        out.push_str(&format!(
            ",\n  \"turbo_scalar_subframes_per_sec\": {:.3}",
            self.turbo_scalar.subframes_per_sec
        ));
        out.push_str(&format!(
            ",\n  \"turbo_scalar_serial_subframes_per_sec\": {:.3}",
            self.turbo_scalar.serial_subframes_per_sec
        ));
        out.push_str(&format!(
            ",\n  \"turbo_simd_speedup\": {:.3}",
            self.turbo_simd_speedup()
        ));
        out.push_str(&format!(",\n  \"dispatch\": \"{}\"", self.dispatch));
        out.push_str(",\n  \"passthrough_stages\": ");
        out.push_str(&stages_json(&self.passthrough_stages));
        out.push_str(",\n  \"turbo_stages\": ");
        out.push_str(&stages_json(&self.turbo_stages));
        out.push_str("\n}\n");
        out
    }
}

/// Runs the full PR 9 harness: the pass-through point, the turbo-mode
/// point with SIMD dispatch, the turbo-mode point with the scalar
/// reference forced (same inputs, same process), and the per-stage
/// breakdowns.
///
/// # Errors
///
/// Returns a message when any leg's pool cannot start or its parallel
/// results diverge from the serial golden record.
pub fn run_decode_perf(
    cfg: &PerfConfig,
    turbo_subframes: usize,
) -> Result<DecodePerfReport, String> {
    let pass_cfg = PerfConfig {
        mode: TurboMode::Passthrough,
        ..*cfg
    };
    let passthrough = run_perf(&pass_cfg)?;
    let passthrough_stages = stage_breakdown(TurboMode::Passthrough, cfg.seed);

    let mode = TurboMode::Decode {
        iterations: TURBO_ITERATIONS,
    };
    let turbo_cfg = PerfConfig {
        mode,
        subframes: turbo_subframes,
        ..*cfg
    };
    let turbo = run_perf(&turbo_cfg)?;
    lte_dsp::simd::force_scalar(true);
    let scalar_result = run_perf(&turbo_cfg);
    lte_dsp::simd::force_scalar(false);
    let turbo_scalar = scalar_result.map_err(|e| format!("forced-scalar turbo leg: {e}"))?;
    let turbo_stages = stage_breakdown(mode, cfg.seed);

    Ok(DecodePerfReport {
        passthrough,
        passthrough_stages,
        turbo_iterations: TURBO_ITERATIONS,
        turbo,
        turbo_scalar,
        turbo_stages,
        dispatch: lte_dsp::simd::dispatch_label(),
    })
}

/// Compares a fresh decode-tail report against a committed
/// `BENCH_PR9.json` baseline: both the pass-through and the turbo-mode
/// throughput must hold within [`REGRESSION_TOLERANCE`].
///
/// # Errors
///
/// Returns a message when the baseline cannot be parsed or either
/// mode's throughput regressed beyond tolerance.
pub fn check_decode_against_baseline(
    report: &DecodePerfReport,
    baseline_json: &str,
) -> Result<(), String> {
    check_against_baseline(&report.passthrough, baseline_json)?;
    let baseline = json_number(baseline_json, "turbo_subframes_per_sec")
        .ok_or("baseline file has no turbo_subframes_per_sec field")?;
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if report.turbo.subframes_per_sec < floor {
        return Err(format!(
            "turbo throughput regression: {:.1} subframes/sec is below the {:.1} floor \
             ({:.1} baseline − {:.0}% tolerance)",
            report.turbo.subframes_per_sec,
            floor,
            baseline,
            100.0 * REGRESSION_TOLERANCE
        ));
    }
    Ok(())
}

/// Scaling-matrix configuration: the same steady-state load replayed at
/// a ladder of worker counts.
#[derive(Clone, Debug)]
pub struct ScalingConfig {
    /// Subframes in each timed run (per worker count).
    pub subframes: usize,
    /// Worker counts to measure, in order.
    pub worker_counts: Vec<usize>,
    /// Input-synthesis seed (shared by every point, so every point sees
    /// byte-identical inputs).
    pub seed: u64,
    /// Multi-subframe pipelining window applied at every point.
    pub window: Option<usize>,
    /// Pin workers to CPUs round-robin.
    pub pin_workers: bool,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            subframes: FULL_SUBFRAMES,
            worker_counts: default_worker_ladder(),
            seed: 42,
            window: Some(4),
            pin_workers: false,
        }
    }
}

/// The default worker ladder: powers of two up to the host's available
/// parallelism, always ending at the host's core count. On a 1-core
/// host this is just `[1]` — the matrix never pretends to parallelism
/// the hardware cannot deliver.
pub fn default_worker_ladder() -> Vec<usize> {
    let host = host_parallelism();
    let mut ladder = Vec::new();
    let mut w = 1;
    while w <= host {
        ladder.push(w);
        w *= 2;
    }
    if *ladder.last().expect("ladder has at least 1") != host {
        ladder.push(host);
    }
    ladder
}

/// One point of the scaling matrix.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// Worker threads requested (and spawned).
    pub workers_requested: usize,
    /// Worker threads that can run concurrently on this host.
    pub workers_effective: usize,
    /// Parallel throughput at this point.
    pub subframes_per_sec: f64,
    /// Speedup over the shared serial reference.
    pub speedup: f64,
    /// Parallel efficiency: speedup / effective workers.
    pub efficiency: f64,
    /// Whether this point's outputs matched the serial golden record
    /// byte for byte (run_scaling fails hard otherwise, so a committed
    /// report always shows `true` — the field keeps the claim explicit).
    pub byte_identical: bool,
    /// Scheduler counters for this point's run.
    pub pool: PoolActivity,
}

/// A measured scaling matrix, serialisable to `BENCH_PR4.json`.
#[derive(Clone, Debug)]
pub struct ScalingReport {
    /// Subframes per timed run.
    pub subframes: usize,
    /// The host's available hardware parallelism.
    pub host_parallelism: usize,
    /// Pipelining window (0 = unbounded).
    pub window: usize,
    /// Serial reference throughput shared by every point.
    pub serial_subframes_per_sec: f64,
    /// One entry per measured worker count.
    pub points: Vec<ScalingPoint>,
}

impl ScalingReport {
    /// The point with the largest requested worker count.
    pub fn max_workers_point(&self) -> &ScalingPoint {
        self.points
            .iter()
            .max_by_key(|p| p.workers_requested)
            .expect("a scaling report has at least one point")
    }

    /// Speedup at the largest worker count — the headline number the
    /// regression gate defends.
    pub fn max_workers_speedup(&self) -> f64 {
        self.max_workers_point().speedup
    }

    /// Renders the JSON document written to `BENCH_PR4.json`. The gate
    /// keys (`max_workers_speedup`, `serial_subframes_per_sec`,
    /// `host_parallelism`) come before the points array so the flat
    /// [`json_number`] parser finds the top-level values first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"lte-sim-scaling-v1\",\n");
        out.push_str(&format!("  \"subframes\": {},\n", self.subframes));
        out.push_str(&format!(
            "  \"host_parallelism\": {},\n",
            self.host_parallelism
        ));
        out.push_str(&format!("  \"window\": {},\n", self.window));
        out.push_str(&format!(
            "  \"serial_subframes_per_sec\": {:.3},\n",
            self.serial_subframes_per_sec
        ));
        let top = self.max_workers_point();
        out.push_str(&format!("  \"max_workers\": {},\n", top.workers_requested));
        out.push_str(&format!("  \"max_workers_speedup\": {:.3},\n", top.speedup));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"workers_requested\": {},\n",
                p.workers_requested
            ));
            out.push_str(&format!(
                "      \"workers_effective\": {},\n",
                p.workers_effective
            ));
            out.push_str(&format!(
                "      \"subframes_per_sec\": {:.3},\n",
                p.subframes_per_sec
            ));
            out.push_str(&format!("      \"speedup\": {:.3},\n", p.speedup));
            out.push_str(&format!("      \"efficiency\": {:.3},\n", p.efficiency));
            out.push_str(&format!(
                "      \"byte_identical\": {},\n",
                p.byte_identical
            ));
            out.push_str(&format!("      \"tasks\": {},\n", p.pool.executed_tasks));
            out.push_str(&format!("      \"steals\": {},\n", p.pool.steals));
            out.push_str(&format!(
                "      \"steal_batches\": {},\n",
                p.pool.steal_batches
            ));
            out.push_str(&format!(
                "      \"lifo_slot_hits\": {},\n",
                p.pool.lifo_slot_hits
            ));
            out.push_str(&format!("      \"parks\": {}\n", p.pool.parks));
            out.push_str(if i + 1 == self.points.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the scaling matrix: one serial reference timing, then for every
/// worker count a warmed-up pipelined run whose outputs are verified
/// byte-for-byte against the serial golden record.
///
/// # Errors
///
/// Returns a message when the worker ladder is empty, a pool cannot
/// start, or any point diverges from the serial reference.
pub fn run_scaling(cfg: &ScalingConfig) -> Result<ScalingReport, String> {
    run_scaling_with_stop(cfg, &|| false)
}

/// [`run_scaling`] with an early-stop hook, polled between worker
/// counts. When `stop` returns `true` the remaining points are skipped
/// and the report covers the points measured so far — the CLI wires a
/// latched SIGINT/SIGTERM into this so an interrupted matrix still
/// flushes a valid (partial) BENCH_PR4.json.
///
/// # Errors
///
/// Same as [`run_scaling`].
pub fn run_scaling_with_stop(
    cfg: &ScalingConfig,
    stop: &dyn Fn() -> bool,
) -> Result<ScalingReport, String> {
    if cfg.worker_counts.is_empty() {
        return Err("scaling matrix needs at least one worker count".into());
    }
    let cell = CellConfig::default();
    let subframe = steady_state_subframe();
    let subframes = vec![subframe.clone(); cfg.subframes];

    // Serial reference, timed once: every point below replays the same
    // seed, so the same reference applies to all of them.
    let mut serial_bench = UplinkBenchmark::new(
        cell,
        BenchmarkConfig {
            workers: 1,
            delta: Duration::ZERO,
            turbo: TurboMode::Passthrough,
            seed: cfg.seed,
            ..BenchmarkConfig::default()
        },
    );
    let planner = Arc::new(FftPlanner::new());
    let serial_inputs: Vec<Arc<UserInput>> = subframe
        .users
        .iter()
        .map(|u| serial_bench.input_for(u))
        .collect();
    // Warm the serial path (plan caches, scratch arenas) before timing.
    for input in &serial_inputs {
        let result = process_user_pooled(&cell, input, TurboMode::Passthrough, &planner);
        std::hint::black_box(&result);
    }
    let serial_n = SERIAL_SUBFRAMES.min(cfg.subframes).max(1);
    let serial_start = Instant::now();
    for _ in 0..serial_n {
        for input in &serial_inputs {
            let result = process_user_pooled(&cell, input, TurboMode::Passthrough, &planner);
            std::hint::black_box(&result);
        }
    }
    let serial_rate = serial_n as f64 / serial_start.elapsed().as_secs_f64();

    let mut points = Vec::with_capacity(cfg.worker_counts.len());
    for &workers in &cfg.worker_counts {
        if stop() {
            break;
        }
        let bench_cfg = BenchmarkConfig {
            workers,
            delta: Duration::ZERO,
            turbo: TurboMode::Passthrough,
            seed: cfg.seed,
            max_in_flight: cfg.window,
            pin_workers: cfg.pin_workers,
            ..BenchmarkConfig::default()
        };
        let mut bench = UplinkBenchmark::new(cell, bench_cfg);
        let warmup = vec![subframe.clone(); WARMUP_SUBFRAMES];
        bench
            .try_run(&warmup)
            .map_err(|e| format!("{workers}-worker warmup: {e}"))?;
        let run = bench
            .try_run(&subframes)
            .map_err(|e| format!("{workers}-worker run: {e}"))?;
        bench
            .verify(&subframes, &run)
            .map_err(|e| format!("{workers}-worker divergence from serial reference: {e}"))?;
        let rate = cfg.subframes as f64 / run.elapsed.as_secs_f64();
        let effective = effective_workers(workers);
        let speedup = if serial_rate > 0.0 {
            rate / serial_rate
        } else {
            0.0
        };
        points.push(ScalingPoint {
            workers_requested: workers,
            workers_effective: effective,
            subframes_per_sec: rate,
            speedup,
            efficiency: speedup / effective as f64,
            byte_identical: true,
            pool: run.pool,
        });
    }

    Ok(ScalingReport {
        subframes: cfg.subframes,
        host_parallelism: host_parallelism(),
        window: cfg.window.unwrap_or(0),
        serial_subframes_per_sec: serial_rate,
        points,
    })
}

/// Compares a fresh scaling report against a committed baseline.
///
/// The gate defends the *speedup* at the largest worker count, not the
/// absolute rate: speedup is a ratio of two measurements on the same
/// host, so it transfers across machines far better than subframes/sec.
///
/// # Errors
///
/// Returns a message when the baseline cannot be parsed or speedup
/// regressed beyond [`REGRESSION_TOLERANCE`].
pub fn check_scaling_against_baseline(
    report: &ScalingReport,
    baseline_json: &str,
) -> Result<(), String> {
    let baseline = json_number(baseline_json, "max_workers_speedup")
        .ok_or("scaling baseline has no max_workers_speedup field")?;
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    let actual = report.max_workers_speedup();
    if actual < floor {
        return Err(format!(
            "scaling regression: max-workers speedup {actual:.3} is below the {floor:.3} floor \
             ({baseline:.3} baseline − {:.0}% tolerance)",
            100.0 * REGRESSION_TOLERANCE
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_exposes_every_metric() {
        let report = PerfReport {
            subframes: 120,
            workers: 8,
            workers_effective: 4,
            host_parallelism: 4,
            elapsed_s: 1.5,
            subframes_per_sec: 80.0,
            serial_subframes_per_sec: 20.0,
            p50_latency_us: 950.0,
            p99_latency_us: 2100.0,
            crc_pass_rate: 1.0,
            arena_fresh: 64,
            arena_reused: 4096,
        };
        let json = report.to_json();
        assert_eq!(json_number(&json, "subframes"), Some(120.0));
        assert_eq!(json_number(&json, "workers"), Some(8.0));
        assert_eq!(json_number(&json, "workers_effective"), Some(4.0));
        assert_eq!(json_number(&json, "host_parallelism"), Some(4.0));
        assert_eq!(json_number(&json, "subframes_per_sec"), Some(80.0));
        assert_eq!(json_number(&json, "serial_subframes_per_sec"), Some(20.0));
        assert_eq!(json_number(&json, "speedup"), Some(4.0));
        assert_eq!(json_number(&json, "p99_latency_us"), Some(2100.0));
        assert_eq!(json_number(&json, "arena_reused"), Some(4096.0));
    }

    #[test]
    fn baseline_gate_triggers_on_regression() {
        let mut report = PerfReport {
            subframes: 120,
            workers: 8,
            workers_effective: 4,
            host_parallelism: 4,
            elapsed_s: 1.5,
            subframes_per_sec: 80.0,
            serial_subframes_per_sec: 20.0,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            crc_pass_rate: 1.0,
            arena_fresh: 0,
            arena_reused: 0,
        };
        let baseline = report.to_json();
        assert!(check_against_baseline(&report, &baseline).is_ok());
        report.subframes_per_sec = 80.0 * 0.95;
        assert!(check_against_baseline(&report, &baseline).is_ok());
        report.subframes_per_sec = 80.0 * 0.85;
        assert!(check_against_baseline(&report, &baseline).is_err());
        assert!(check_against_baseline(&report, "{}").is_err());
    }

    #[test]
    fn percentiles_track_order_statistics_within_bucket_resolution() {
        let hist = Histogram::new();
        for v in 1..=100u64 {
            hist.record(v * 1000);
        }
        let snap = hist.snapshot();
        // Never below the exact order statistic, at most 1/32 above it.
        for (q, exact_us) in [(0.50, 50.0), (0.99, 99.0)] {
            let est = quantile_us(&snap, q);
            assert!(est >= exact_us, "p{q} {est} under-reports {exact_us}");
            assert!(
                est <= exact_us * (1.0 + 1.0 / 32.0) + 1e-9,
                "p{q} {est} exceeds resolution bound around {exact_us}"
            );
        }
        assert_eq!(quantile_us(&Histogram::new().snapshot(), 0.50), 0.0);
    }

    #[test]
    fn completion_spacing_handles_degenerate_runs() {
        // Zero completions: the explicit empty report, not a panic.
        let empty = completion_spacing(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(quantile_us(&empty, 0.50), 0.0);
        assert_eq!(quantile_us(&empty, 0.999), 0.0);

        // One completion: a single sample — its own latency — for every
        // quantile, rather than an out-of-bounds spacing index.
        let single = completion_spacing(&[2_000_000]);
        assert_eq!(single.count, 1);
        assert_eq!(single.min, 2_000_000);
        assert_eq!(single.max, 2_000_000);
        assert_eq!(quantile_us(&single, 0.50), quantile_us(&single, 0.99));
        assert_eq!(single.quantile(1.0), 2_000_000);

        // Multiple completions, unsorted input: spacings 1ms, 1ms, 3ms.
        let multi = completion_spacing(&[2_000_000, 1_000_000, 5_000_000]);
        assert_eq!(multi.count, 3);
        assert_eq!(multi.min, 1_000_000);
        assert_eq!(multi.max, 3_000_000);
    }

    #[test]
    fn quick_perf_run_produces_consistent_report() {
        let cfg = PerfConfig {
            subframes: 6,
            workers: 4,
            seed: 1,
            window: Some(3),
            pin_workers: false,
            mode: TurboMode::Passthrough,
        };
        let report = run_perf(&cfg).expect("perf run");
        assert_eq!(report.subframes, 6);
        assert_eq!(report.workers, 4);
        assert_eq!(report.workers_effective, effective_workers(4));
        assert_eq!(report.host_parallelism, host_parallelism());
        assert!(report.subframes_per_sec > 0.0);
        assert!(report.serial_subframes_per_sec > 0.0);
        assert_eq!(report.crc_pass_rate, 1.0);
        assert!(report.p99_latency_us >= report.p50_latency_us);
    }

    fn sample_perf_report(rate: f64) -> PerfReport {
        PerfReport {
            subframes: 24,
            workers: 2,
            workers_effective: 2,
            host_parallelism: 4,
            elapsed_s: 1.0,
            subframes_per_sec: rate,
            serial_subframes_per_sec: rate / 2.0,
            p50_latency_us: 100.0,
            p99_latency_us: 200.0,
            crc_pass_rate: 1.0,
            arena_fresh: 0,
            arena_reused: 100,
        }
    }

    fn sample_decode_report() -> DecodePerfReport {
        let share = |stage, total_us, share| StageShare {
            stage,
            total_us,
            share,
        };
        DecodePerfReport {
            passthrough: sample_perf_report(200.0),
            passthrough_stages: vec![share("fft", 800.0, 0.8), share("demap", 200.0, 0.2)],
            turbo_iterations: 4,
            turbo: sample_perf_report(30.0),
            turbo_scalar: sample_perf_report(12.0),
            turbo_stages: vec![share("turbo", 900.0, 0.9), share("fft", 100.0, 0.1)],
            dispatch: "avx2+fma",
        }
    }

    #[test]
    fn decode_report_json_exposes_both_gates_and_the_stage_tables() {
        let report = sample_decode_report();
        let json = report.to_json();
        // Pass-through keys stay BENCH_PR3-compatible so the PR 8
        // baseline still gates this file.
        assert_eq!(json_number(&json, "subframes_per_sec"), Some(200.0));
        assert_eq!(json_number(&json, "speedup"), Some(2.0));
        // Turbo keys are distinct (quoted-needle lookup cannot collide).
        assert_eq!(json_number(&json, "turbo_subframes_per_sec"), Some(30.0));
        assert_eq!(
            json_number(&json, "turbo_scalar_subframes_per_sec"),
            Some(12.0)
        );
        assert_eq!(json_number(&json, "turbo_simd_speedup"), Some(2.5));
        assert_eq!(json_number(&json, "turbo_iterations"), Some(4.0));
        assert!(json.contains("\"dispatch\": \"avx2+fma\""));
        assert!(json.contains("\"stage\": \"turbo\""));
        assert!(json.contains("\"share\": 0.9000"));
    }

    #[test]
    fn decode_gate_defends_both_modes() {
        let mut report = sample_decode_report();
        let baseline = report.to_json();
        assert!(check_decode_against_baseline(&report, &baseline).is_ok());
        // Turbo 5% down: within tolerance.
        report.turbo.subframes_per_sec = 30.0 * 0.95;
        assert!(check_decode_against_baseline(&report, &baseline).is_ok());
        // Turbo 15% down: regression, even with pass-through healthy.
        report.turbo.subframes_per_sec = 30.0 * 0.85;
        assert!(check_decode_against_baseline(&report, &baseline).is_err());
        // Pass-through regression trips the shared gate too.
        report.turbo.subframes_per_sec = 30.0;
        report.passthrough.subframes_per_sec = 200.0 * 0.85;
        assert!(check_decode_against_baseline(&report, &baseline).is_err());
        assert!(check_decode_against_baseline(&report, "{}").is_err());
    }

    #[test]
    fn stage_breakdown_covers_the_decode_tail() {
        let stages = stage_breakdown(TurboMode::Decode { iterations: 2 }, 7);
        assert!(!stages.is_empty());
        let total: f64 = stages.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-6, "shares must sum to 1: {total}");
        assert!(
            stages.iter().any(|s| s.stage == "turbo"),
            "decode-mode breakdown must include the turbo stage: {stages:?}"
        );
        // Sorted largest-first.
        assert!(stages.windows(2).all(|w| w[0].total_us >= w[1].total_us));
    }

    #[test]
    fn default_ladder_is_powers_of_two_ending_at_the_host() {
        let ladder = default_worker_ladder();
        let host = host_parallelism();
        assert_eq!(ladder[0], 1);
        assert_eq!(*ladder.last().unwrap(), host);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert!(ladder.iter().all(|&w| w <= host));
    }

    fn sample_scaling_report() -> ScalingReport {
        let point = |w: usize, rate: f64| ScalingPoint {
            workers_requested: w,
            workers_effective: w.min(4),
            subframes_per_sec: rate,
            speedup: rate / 20.0,
            efficiency: rate / 20.0 / w.min(4) as f64,
            byte_identical: true,
            pool: PoolActivity {
                executed_tasks: 1000,
                steals: 40,
                steal_batches: 8,
                batch_stolen_tasks: 60,
                lifo_slot_hits: 700,
                parks: 12,
                pinned_workers: 0,
            },
        };
        ScalingReport {
            subframes: 120,
            host_parallelism: 4,
            window: 4,
            serial_subframes_per_sec: 20.0,
            points: vec![point(1, 19.0), point(2, 36.0), point(4, 64.0)],
        }
    }

    #[test]
    fn scaling_json_exposes_the_gate_keys_at_top_level() {
        let report = sample_scaling_report();
        let json = report.to_json();
        // The flat parser must resolve the gate keys to the *top-level*
        // values, not to a field inside the points array.
        assert_eq!(json_number(&json, "max_workers"), Some(4.0));
        assert_eq!(json_number(&json, "max_workers_speedup"), Some(3.2));
        assert_eq!(json_number(&json, "serial_subframes_per_sec"), Some(20.0));
        assert_eq!(json_number(&json, "host_parallelism"), Some(4.0));
        assert_eq!(json_number(&json, "window"), Some(4.0));
        assert_eq!(json_number(&json, "workers_requested"), Some(1.0));
        assert!(json.contains("\"byte_identical\": true"));
        assert!(json.contains("\"steal_batches\": 8"));
        assert!(json.contains("\"lifo_slot_hits\": 700"));
    }

    #[test]
    fn scaling_gate_triggers_on_speedup_regression() {
        let mut report = sample_scaling_report();
        let baseline = report.to_json();
        assert!(check_scaling_against_baseline(&report, &baseline).is_ok());
        // 5% down: within tolerance.
        report.points[2].speedup *= 0.95;
        assert!(check_scaling_against_baseline(&report, &baseline).is_ok());
        // 15% down: regression.
        report.points[2].speedup = 3.2 * 0.85;
        assert!(check_scaling_against_baseline(&report, &baseline).is_err());
        assert!(check_scaling_against_baseline(&report, "{}").is_err());
    }

    #[test]
    fn quick_scaling_run_verifies_every_point() {
        let cfg = ScalingConfig {
            subframes: 6,
            worker_counts: vec![1, 2],
            seed: 1,
            window: Some(2),
            pin_workers: false,
        };
        let report = run_scaling(&cfg).expect("scaling run");
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.host_parallelism, host_parallelism());
        for point in &report.points {
            assert!(point.byte_identical);
            assert!(point.subframes_per_sec > 0.0);
            assert!(point.speedup > 0.0);
            assert!(point.efficiency > 0.0);
            assert_eq!(
                point.workers_effective,
                effective_workers(point.workers_requested)
            );
            assert!(point.pool.executed_tasks > 0);
        }
        assert_eq!(report.max_workers_point().workers_requested, 2);
        assert!(run_scaling(&ScalingConfig {
            worker_counts: vec![],
            ..cfg
        })
        .is_err());
    }
}
