//! Minimal dependency-free POSIX signal latching for the long-running
//! commands (`serve`, `soak`, `perf`, `govern`).
//!
//! A signal handler may only do async-signal-safe work, so the handler
//! here does the one safe thing: store the signal number into a static
//! atomic. The run loops poll [`termination_requested`] at subframe
//! boundaries and perform the actual drain — finish or shed in-flight
//! work, flush artifacts, exit — in ordinary code.
//!
//! No external crates: the handler is registered straight through
//! `signal(2)` via a tiny `extern "C"` declaration. On non-Unix targets
//! everything compiles to a no-op and loops simply never see a signal.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// Exit code for a run that was interrupted by SIGINT/SIGTERM but
/// drained cleanly and flushed complete artifacts. Distinct from 0
/// (ran to completion), 1 (SLO violation) and 2 (usage error).
pub const EXIT_INTERRUPTED: i32 = 3;

/// SIGINT's portable number.
pub const SIGINT: i32 = 2;
/// SIGTERM's portable number.
pub const SIGTERM: i32 = 15;

/// 0 = no signal latched; otherwise the signal number.
static PENDING: AtomicUsize = AtomicUsize::new(0);
static INSTALL: Once = Once::new();

#[cfg(unix)]
extern "C" {
    /// `signal(2)`. `usize` stands in for the handler function pointer;
    /// the kernel only needs the address.
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn latch(signum: i32) {
    // Async-signal-safe: a single relaxed store.
    PENDING.store(signum as usize, Ordering::Relaxed);
}

/// Installs SIGINT/SIGTERM handlers that latch into [`termination_requested`].
/// Idempotent; later calls are free.
pub fn install_termination_handlers() {
    INSTALL.call_once(|| {
        #[cfg(unix)]
        // SAFETY: `latch` is async-signal-safe (one atomic store) and
        // stays alive for the program's lifetime.
        unsafe {
            signal(SIGINT, latch as *const () as usize);
            signal(SIGTERM, latch as *const () as usize);
        }
    });
}

/// The latched termination signal, if any. Latching is sticky: once a
/// signal arrives every poll reports it until [`clear_termination`].
pub fn termination_requested() -> Option<i32> {
    match PENDING.load(Ordering::Relaxed) {
        0 => None,
        s => Some(s as i32),
    }
}

/// Clears the latch (used by tests; real runs exit instead).
pub fn clear_termination() {
    PENDING.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_sticky_and_clearable() {
        clear_termination();
        assert_eq!(termination_requested(), None);
        PENDING.store(SIGTERM as usize, Ordering::Relaxed);
        assert_eq!(termination_requested(), Some(SIGTERM));
        assert_eq!(termination_requested(), Some(SIGTERM), "sticky");
        clear_termination();
        assert_eq!(termination_requested(), None);
    }

    #[test]
    fn install_is_idempotent() {
        install_termination_handlers();
        install_termination_handlers();
    }
}
