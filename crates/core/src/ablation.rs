//! Ablation studies of the design choices the paper fixes by fiat, plus
//! the DVFS extension it sketches as future work.
//!
//! * **Eq. 5 margin** — the paper over-provisions the active-core target
//!   by two cores "to provide some margin of error in the estimation".
//!   [`margin_ablation`] sweeps that margin and reports the power/latency
//!   trade-off.
//! * **Power-domain granularity** — Eq. 6 manages cores "in groups of
//!   eight … a reasonable number for a chip of this complexity".
//!   [`gating_group_ablation`] sweeps the group size.
//! * **Nap wake period** — the paper notes napping cores "periodically
//!   wake up"; the period is unspecified. [`wake_period_ablation`]
//!   sweeps it, exposing the reactive-polling overhead that separates
//!   IDLE from NAP.
//! * **DVFS** (§VII related work) — [`dvfs_study`] drives a
//!   voltage/frequency ladder from the same Eq. 4 estimate and stacks it
//!   on NAP+IDLE.

use lte_power::dvfs::DvfsPolicy;
use lte_power::gating::PowerGating;
use lte_power::model::PowerModel;
use lte_power::NapPolicy;

use crate::experiments::{ExperimentContext, PowerStudy};

/// One row of the Eq. 5 margin sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct MarginRow {
    /// Over-provisioning margin in cores.
    pub margin: usize,
    /// Mean total power under NAP+IDLE with this margin.
    pub mean_watts: f64,
    /// 95th-percentile job latency in milliseconds.
    pub p95_latency_ms: f64,
    /// Maximum job latency in milliseconds.
    pub max_latency_ms: f64,
}

/// Sweeps the Eq. 5 over-provisioning margin under NAP+IDLE.
pub fn margin_ablation(ctx: &ExperimentContext, margins: &[usize]) -> Vec<MarginRow> {
    let (_, estimator) = ctx.run_calibration();
    let subframes = ctx.subframes();
    let cfg = ctx.sim_config(NapPolicy::NapIdle);
    margins
        .iter()
        .map(|&margin| {
            let controller = lte_power::CoreController {
                margin,
                ..ctx.controller
            };
            let targets = controller.targets(&estimator, &subframes);
            let run = ctx.run_policy(NapPolicy::NapIdle, &subframes, &targets);
            let mut lat: Vec<u64> = run.report.job_latencies.clone();
            lat.sort_unstable();
            let to_ms = |c: u64| c as f64 / cfg.clock_hz * 1e3;
            let p95 = lat
                .get(lat.len().saturating_sub(1).min(lat.len() * 95 / 100))
                .copied()
                .unwrap_or(0);
            MarginRow {
                margin,
                mean_watts: run.mean_total,
                p95_latency_ms: to_ms(p95),
                max_latency_ms: to_ms(lat.last().copied().unwrap_or(0)),
            }
        })
        .collect()
}

/// One row of the power-gating granularity sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupRow {
    /// Power-domain group size in cores.
    pub group_size: usize,
    /// Mean gated power in watts.
    pub mean_watts: f64,
    /// Mean saving vs the ungated NAP+IDLE trace, watts.
    pub mean_saving: f64,
}

/// Sweeps the Eq. 6 power-domain group size over an existing study.
pub fn gating_group_ablation(study: &PowerStudy, group_sizes: &[usize]) -> Vec<GroupRow> {
    let napidle = study.run(NapPolicy::NapIdle);
    group_sizes
        .iter()
        .map(|&group_size| {
            let gating = PowerGating {
                group_size,
                ..PowerGating::paper()
            };
            let gated = gating.apply(&napidle.power, &study.targets);
            let mean = PowerModel::mean(&gated);
            GroupRow {
                group_size,
                mean_watts: mean,
                mean_saving: napidle.mean_total - mean,
            }
        })
        .collect()
}

/// One row of the nap wake-period sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct WakeRow {
    /// Wake period in milliseconds.
    pub period_ms: f64,
    /// Mean IDLE power (reactive polling pays per wake).
    pub idle_watts: f64,
    /// Mean NAP power (status checks are cheaper).
    pub nap_watts: f64,
}

/// Sweeps the nap wake period for the IDLE and NAP policies.
pub fn wake_period_ablation(ctx: &ExperimentContext, periods_ms: &[f64]) -> Vec<WakeRow> {
    let (_, estimator) = ctx.run_calibration();
    let subframes = ctx.subframes();
    let targets = ctx.estimated_targets(&estimator, &subframes);
    let full = vec![ctx.controller.max_cores; subframes.len()];
    periods_ms
        .iter()
        .map(|&period_ms| {
            let run_with = |policy: NapPolicy, t: &[usize]| {
                let mut cfg = ctx.sim_config(policy);
                cfg.wake_period = (period_ms * 1e-3 * cfg.clock_hz) as u64;
                let report = lte_sched::Simulator::new(cfg).run(&ctx.loads(&subframes, t));
                let power = ctx.power.power_trace(&report.buckets, &cfg);
                PowerModel::mean(&power)
            };
            let idle_watts = run_with(NapPolicy::Idle, &full);
            let nap_watts = run_with(NapPolicy::Nap, &targets);
            WakeRow {
                period_ms,
                idle_watts,
                nap_watts,
            }
        })
        .collect()
}

/// Result of stacking estimator-driven DVFS on NAP+IDLE.
#[derive(Clone, Debug, PartialEq)]
pub struct DvfsResult {
    /// Mean NAP+IDLE power without DVFS.
    pub baseline_watts: f64,
    /// Mean power with the DVFS ladder applied to the dynamic component.
    pub dvfs_watts: f64,
    /// Fraction of subframes run below nominal frequency.
    pub scaled_fraction: f64,
}

/// Applies the estimator-driven DVFS ladder on top of a NAP+IDLE run —
/// the combination the paper names as future work.
pub fn dvfs_study(ctx: &ExperimentContext, study: &PowerStudy, ladder: &DvfsPolicy) -> DvfsResult {
    let subframes = ctx.subframes();
    let estimates: Vec<f64> = subframes
        .iter()
        .map(|sf| study.estimator.subframe_activity(sf))
        .collect();
    let napidle = study.run(NapPolicy::NapIdle);
    let dynamic: Vec<f64> = napidle
        .power
        .iter()
        .map(|p| p - ctx.power.base_watts)
        .collect();
    let scaled = ladder.apply(&dynamic, &estimates);
    let dvfs_power: Vec<f64> = scaled.iter().map(|d| d + ctx.power.base_watts).collect();
    let below = estimates
        .iter()
        .filter(|&&e| ladder.select(e).freq < 1.0)
        .count();
    DvfsResult {
        baseline_watts: napidle.mean_total,
        dvfs_watts: PowerModel::mean(&dvfs_power),
        scaled_fraction: below as f64 / estimates.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext {
            n_subframes: 800,
            cal_subframes: 16,
            cal_prb_step: 50,
            ..ExperimentContext::paper()
        }
    }

    #[test]
    fn margin_trades_power_for_latency() {
        let rows = margin_ablation(&ctx(), &[0, 2, 8]);
        assert_eq!(rows.len(), 3);
        // More margin → more active cores → more power, less latency.
        assert!(rows[0].mean_watts <= rows[2].mean_watts + 0.05);
        assert!(rows[0].max_latency_ms >= rows[2].max_latency_ms);
    }

    #[test]
    fn finer_gating_saves_more() {
        let study = ctx().run_power_study();
        let rows = gating_group_ablation(&study, &[4, 8, 16, 32]);
        for w in rows.windows(2) {
            assert!(
                w[0].mean_saving >= w[1].mean_saving - 1e-9,
                "finer domains must save at least as much: {w:?}"
            );
        }
    }

    #[test]
    fn longer_wake_period_cheapens_idle() {
        let rows = wake_period_ablation(&ctx(), &[0.5, 4.0]);
        assert!(
            rows[1].idle_watts <= rows[0].idle_watts + 0.05,
            "fewer polls cannot cost more: {rows:?}"
        );
    }

    #[test]
    fn dvfs_saves_on_top_of_napidle() {
        let c = ctx();
        let study = c.run_power_study();
        let result = dvfs_study(&c, &study, &DvfsPolicy::default_ladder());
        assert!(result.dvfs_watts < result.baseline_watts);
        assert!(result.scaled_fraction > 0.0);
    }
}
