//! The `chaos` command: a deterministic fault-injection campaign.
//!
//! Three sub-campaigns run against one seeded [`FaultPlan`] and share a
//! single event recorder, so one Perfetto trace and one metrics snapshot
//! describe the whole exercise:
//!
//! 1. **DES chaos** — the tile simulator runs the evaluation ramp with a
//!    fail-stopped core, a slow core, seeded task panics and a subframe
//!    deadline budget, exercising orphan adoption, retry-after-panic and
//!    the overload policy (drop / shed / degrade).
//! 2. **Pool conservation** — the real work-stealing pool executes a
//!    known task population while the plan injects task panics and
//!    worker kills; every task must run exactly once and every killed
//!    worker must respawn.
//! 3. **Link recovery** — a small uplink user population is received
//!    through the HARQ entity while the plan injects deep noise bursts
//!    and resource-grid corruption; chase combining must recover the
//!    damaged blocks.
//!
//! Everything exported is derived from the seeded plan or from simulated
//! time — never from wall-clock measurements — so two runs with the same
//! seed produce byte-identical artefacts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lte_dsp::fft::FftPlanner;
use lte_dsp::{Complex32, Modulation, Xoshiro256};
use lte_fault::{DeadlineBudget, FaultPlan, OverloadPolicy};
use lte_obs::{Event, FaultKind, MetricsRegistry, PerfettoExporter, Recorder, RingRecorder};
use lte_phy::harq::{HarqDecision, HarqEntity, HarqStats};
use lte_phy::params::{CellConfig, TurboMode, UserConfig};
use lte_phy::tx::{synthesize_retransmission, synthesize_user};
use lte_power::NapPolicy;
use lte_sched::sim::{SimReport, Simulator};
use lte_sched::{silence_injected_panics, InjectedPanic, PoolError, TaskPool};

use crate::experiments::ExperimentContext;

/// Cap on the DES campaign length: chaos is a robustness exercise, not a
/// power study, and 400 subframes cover the full load ramp.
pub const CHAOS_SUBFRAME_CAP: usize = 400;

/// Workers in the real-pool conservation campaign. Small on purpose:
/// two injected kills against four workers take half the pool down over
/// the campaign, which is the interesting regime.
const POOL_WORKERS: usize = 4;
/// Subframes driven through the real pool.
const POOL_SUBFRAMES: usize = 64;
/// Jobs fanned out per pool subframe.
const POOL_JOBS: usize = 4;
/// Tasks scoped per pool job.
const POOL_TASKS: usize = 8;
/// Subframes in the link-level HARQ campaign.
const LINK_SUBFRAMES: usize = 40;
/// Users received per link subframe.
const LINK_USERS: usize = 2;
/// HARQ retransmission budget in the link campaign.
const LINK_HARQ_BUDGET: usize = 4;
/// SNR (dB) of un-bursted transmissions and of every retransmission.
const LINK_NOMINAL_SNR_DB: f64 = 10.0;

/// Deterministic counters from all three campaigns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosSummary {
    /// DES: subframes finishing past the deadline budget.
    pub overruns: u64,
    /// DES: subframes discarded whole (`DropSubframe`).
    pub dropped_subframes: u64,
    /// DES: user jobs shed (`ShedUsers` / `DropSubframe`).
    pub shed_jobs: u64,
    /// DES: subframes demapped at reduced fidelity (`DegradeDemap`).
    pub degraded_subframes: u64,
    /// DES: tasks that hit a seeded panic and were retried.
    pub sim_poisoned_tasks: u64,
    /// DES: jobs adopted by survivors after their owner fail-stopped.
    pub adopted_jobs: u64,
    /// Pool: tasks the plan dispatched.
    pub pool_tasks_expected: u64,
    /// Pool: tasks that actually started (== expected when healthy).
    pub pool_tasks_run: u64,
    /// Pool: tasks that never ran (`expected - run`, floored at 0).
    pub lost_tasks: u64,
    /// Pool: tasks that ran more than once (`run - expected`, floored).
    pub duplicated_tasks: u64,
    /// Pool: seeded task panics injected.
    pub task_panics: u64,
    /// Pool: worker kills injected.
    pub kills_injected: u64,
    /// Pool: workers respawned by the supervisor.
    pub worker_respawns: u64,
    /// Link: transport blocks received.
    pub link_blocks: u64,
    /// Link: deep noise bursts injected on first transmissions.
    pub noise_bursts: u64,
    /// Link: resource-grid corruption events injected.
    pub grid_corruptions: u64,
    /// Link: blocks delivered with a passing CRC.
    pub delivered_ok: u64,
    /// Link: the HARQ entity's transmission/recovery counters.
    pub harq: HarqStats,
}

impl ChaosSummary {
    /// True when no task was lost or double-run anywhere.
    pub fn conserved(&self) -> bool {
        self.lost_tasks == 0 && self.duplicated_tasks == 0
    }
}

/// Everything the `chaos` command produces.
pub struct ChaosArtifacts {
    /// Chrome/Perfetto trace-event JSON including every fault instant.
    pub perfetto_json: String,
    /// Flat metrics snapshot (sorted-key JSON object).
    pub metrics_json: String,
    /// The deterministic campaign counters.
    pub summary: ChaosSummary,
    /// DES subframes actually simulated.
    pub subframes: usize,
}

/// Runs the three chaos campaigns under one seeded plan and exports the
/// shared trace and metrics artefacts.
pub fn run_chaos(
    ctx: &ExperimentContext,
    policy: OverloadPolicy,
) -> Result<ChaosArtifacts, PoolError> {
    // The smoke plan's -2 dB bursts are survivable for well-conditioned
    // antenna configurations; chaos wants single-shot failures that only
    // chase combining digs out, so bursts go deeper here.
    let plan = FaultPlan {
        burst_snr_db: -12.0,
        ..FaultPlan::smoke(ctx.seed)
    };
    let n = ctx.n_subframes.min(CHAOS_SUBFRAME_CAP);
    let cfg = ctx.sim_config(NapPolicy::NapIdle);
    let capacity = (n * cfg.n_workers * 64).clamp(1024, 4_000_000);
    let recorder = RingRecorder::new(capacity);

    let report = run_des_campaign(ctx, &plan, policy, n, &recorder);
    let mut summary = ChaosSummary {
        overruns: report.overruns,
        dropped_subframes: report.dropped_subframes,
        shed_jobs: report.shed_jobs,
        degraded_subframes: report.degraded_subframes,
        sim_poisoned_tasks: report.poisoned_tasks,
        adopted_jobs: report.adopted_jobs,
        ..ChaosSummary::default()
    };
    run_pool_campaign(&plan, &mut summary, &recorder, report.end_time)?;
    run_link_campaign(ctx, &plan, &mut summary, &recorder, cfg.dispatch_period);

    let metrics = MetricsRegistry::new();
    fill_chaos_metrics(&metrics, &summary, n);
    metrics.set_gauge(
        "chaos.power.mean_watts",
        lte_power::PowerModel::mean(&ctx.power.power_trace(&report.buckets, &cfg)),
    );
    let perfetto_json =
        PerfettoExporter::new(cfg.clock_hz).export(&recorder.events(), cfg.n_workers);
    Ok(ChaosArtifacts {
        perfetto_json,
        metrics_json: metrics.to_json(),
        summary,
        subframes: n,
    })
}

/// Campaign 1: the DES under dead/slow cores, seeded panics and a
/// one-dispatch-period deadline budget (tight enough that the load
/// ramp's peak genuinely overruns).
fn run_des_campaign(
    ctx: &ExperimentContext,
    plan: &FaultPlan,
    policy: OverloadPolicy,
    n: usize,
    recorder: &RingRecorder,
) -> SimReport {
    let cfg = ctx.sim_config(NapPolicy::NapIdle);
    let subframes = &ctx.subframes()[..n];
    let targets = vec![cfg.n_workers; n];
    let loads = ctx.loads(subframes, &targets);
    Simulator::with_recorder(cfg, recorder)
        .with_degradation(DeadlineBudget {
            budget: cfg.dispatch_period,
            policy,
        })
        .with_chaos(plan.clone())
        .run(&loads)
}

/// Campaign 2: conservation on the real pool. Every task increments a
/// shared counter before (possibly) panicking, so `run == expected`
/// proves nothing was lost and nothing ran twice — through seeded task
/// panics and worker kills alike.
fn run_pool_campaign(
    plan: &FaultPlan,
    summary: &mut ChaosSummary,
    recorder: &RingRecorder,
    t_base: u64,
) -> Result<(), PoolError> {
    silence_injected_panics();
    let pool = TaskPool::new(POOL_WORKERS)?;
    let started = Arc::new(AtomicU64::new(0));
    let mut ordinal = 0u64;
    for sf in 0..POOL_SUBFRAMES {
        if let Some(worker) = plan.worker_kill_at(sf, POOL_SUBFRAMES, POOL_WORKERS) {
            pool.inject_worker_kill();
            summary.kills_injected += 1;
            recorder.record(Event::Fault {
                kind: FaultKind::CoreDeath,
                core: worker as u32,
                subframe: sf as u32,
                t: t_base + ordinal,
            });
            ordinal += 1;
        }
        for job in 0..POOL_JOBS {
            // Bookkeeping on the dispatch thread keeps the recorded
            // event order deterministic; the draws inside the tasks see
            // the exact same plan stream.
            for task in 0..POOL_TASKS {
                if plan.task_panics(sf, job * POOL_TASKS + task) {
                    summary.task_panics += 1;
                    recorder.record(Event::Fault {
                        kind: FaultKind::TaskPanic,
                        core: u32::MAX,
                        subframe: sf as u32,
                        t: t_base + ordinal,
                    });
                    ordinal += 1;
                }
            }
            let started = Arc::clone(&started);
            let plan = plan.clone();
            pool.submit_job(move |p| {
                let tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = (0..POOL_TASKS)
                    .map(|task| {
                        let started = Arc::clone(&started);
                        let panics = plan.task_panics(sf, job * POOL_TASKS + task);
                        Box::new(move || {
                            started.fetch_add(1, Ordering::SeqCst);
                            if panics {
                                std::panic::panic_any(InjectedPanic);
                            }
                        }) as Box<dyn FnOnce() + Send + 'static>
                    })
                    .collect();
                p.scope(tasks);
            });
        }
        pool.wait_all();
    }
    // Kill tasks ride the overflow queue; give idle workers a bounded
    // window to pick each one up and the supervisor to respawn them.
    let deadline = Instant::now() + Duration::from_secs(10);
    while pool.worker_respawns() < summary.kills_injected && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    summary.worker_respawns = pool.worker_respawns();
    for _ in 0..summary.worker_respawns {
        recorder.record(Event::Fault {
            kind: FaultKind::WorkerRespawn,
            core: u32::MAX,
            subframe: u32::MAX,
            t: t_base + ordinal,
        });
        ordinal += 1;
    }
    summary.pool_tasks_expected = (POOL_SUBFRAMES * POOL_JOBS * POOL_TASKS) as u64;
    summary.pool_tasks_run = started.load(Ordering::SeqCst);
    summary.lost_tasks = summary
        .pool_tasks_expected
        .saturating_sub(summary.pool_tasks_run);
    summary.duplicated_tasks = summary
        .pool_tasks_run
        .saturating_sub(summary.pool_tasks_expected);
    Ok(())
}

/// Campaign 3: link-level recovery. Bursted first transmissions arrive
/// at the plan's deep-fade SNR and corrupted grids lose cells to
/// garbage; the HARQ entity retransmits (at nominal SNR — bursts are
/// transient) until chase combining delivers the block.
fn run_link_campaign(
    ctx: &ExperimentContext,
    plan: &FaultPlan,
    summary: &mut ChaosSummary,
    recorder: &RingRecorder,
    dispatch_period: u64,
) {
    let cell = CellConfig::with_antennas(ctx.n_rx);
    let user = UserConfig::new(6, 1, Modulation::Qpsk);
    let mode = TurboMode::Passthrough;
    let planner = FftPlanner::new();
    let mut entity = HarqEntity::new(LINK_HARQ_BUDGET);
    for sf in 0..LINK_SUBFRAMES {
        for u in 0..LINK_USERS {
            let t = sf as u64 * dispatch_period + u as u64;
            let mut rng = Xoshiro256::seed_from_u64(link_seed(ctx.seed, sf, u));
            let bursted = plan.noise_burst(sf, u);
            let snr = if bursted {
                summary.noise_bursts += 1;
                recorder.record(Event::Fault {
                    kind: FaultKind::NoiseBurst,
                    core: u32::MAX,
                    subframe: sf as u32,
                    t,
                });
                f64::from(plan.burst_snr_db)
            } else {
                LINK_NOMINAL_SNR_DB
            };
            let mut input = synthesize_user(&cell, &user, snr, &mut rng);
            if plan.grid_corruption(sf, u) {
                summary.grid_corruptions += 1;
                corrupt_grid(&mut input, &cell, plan, sf, u);
                recorder.record(Event::Fault {
                    kind: FaultKind::GridCorruption,
                    core: u32::MAX,
                    subframe: sf as u32,
                    t,
                });
            }
            summary.link_blocks += 1;
            let mut decision = entity.on_reception(u as u32, &cell, &input, mode, &planner);
            while let HarqDecision::Retransmit { .. } = decision {
                recorder.record(Event::Fault {
                    kind: FaultKind::HarqRetransmit,
                    core: u32::MAX,
                    subframe: sf as u32,
                    t,
                });
                let retx = synthesize_retransmission(
                    &cell,
                    &user,
                    mode,
                    &input.ground_truth,
                    LINK_NOMINAL_SNR_DB,
                    &mut rng,
                );
                decision = entity.on_reception(u as u32, &cell, &retx, mode, &planner);
            }
            if let HarqDecision::Delivered {
                result, recovered, ..
            } = decision
            {
                if recovered {
                    recorder.record(Event::Fault {
                        kind: FaultKind::HarqRecovery,
                        core: u32::MAX,
                        subframe: sf as u32,
                        t,
                    });
                }
                if result.crc_ok {
                    summary.delivered_ok += 1;
                }
            }
        }
    }
    summary.harq = entity.stats;
}

/// Overwrites `corrupt_cells` resource-grid cells with large garbage
/// values, positions and values drawn from the plan's per-index stream.
fn corrupt_grid(
    input: &mut lte_phy::grid::UserInput,
    cell: &CellConfig,
    plan: &FaultPlan,
    sf: usize,
    u: usize,
) {
    let mut rng = plan.corruption_rng(sf, u);
    for _ in 0..plan.corrupt_cells {
        let slot = rng.next_below(input.slots.len() as u64) as usize;
        let sym = rng.next_below(input.slots[slot].data.len() as u64) as usize;
        let rx = rng.next_below(cell.n_rx as u64) as usize;
        let lane = input.slots[slot].data[sym].antenna_mut(rx);
        let idx = rng.next_below(lane.len() as u64) as usize;
        lane[idx] = Complex32::new(8.0 * (rng.next_f32() - 0.5), 8.0 * (rng.next_f32() - 0.5));
    }
}

/// A per-(subframe, user) seed for the link campaign: SplitMix64-style
/// avalanche so draw order can never matter.
fn link_seed(seed: u64, sf: usize, u: usize) -> u64 {
    let mut z = seed
        ^ (sf as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Writes the campaign counters into the metrics snapshot.
fn fill_chaos_metrics(metrics: &MetricsRegistry, s: &ChaosSummary, n: usize) {
    metrics.set_counter("chaos.sim.subframes", n as u64);
    metrics.set_counter("chaos.sim.overruns", s.overruns);
    metrics.set_counter("chaos.sim.dropped_subframes", s.dropped_subframes);
    metrics.set_counter("chaos.sim.shed_jobs", s.shed_jobs);
    metrics.set_counter("chaos.sim.degraded_subframes", s.degraded_subframes);
    metrics.set_counter("chaos.sim.poisoned_tasks", s.sim_poisoned_tasks);
    metrics.set_counter("chaos.sim.adopted_jobs", s.adopted_jobs);
    metrics.set_counter("chaos.pool.tasks_expected", s.pool_tasks_expected);
    metrics.set_counter("chaos.pool.tasks_run", s.pool_tasks_run);
    metrics.set_counter("chaos.pool.lost_tasks", s.lost_tasks);
    metrics.set_counter("chaos.pool.duplicated_tasks", s.duplicated_tasks);
    metrics.set_counter("chaos.pool.task_panics", s.task_panics);
    metrics.set_counter("chaos.pool.kills_injected", s.kills_injected);
    metrics.set_counter("chaos.pool.worker_respawns", s.worker_respawns);
    metrics.set_counter("chaos.link.blocks", s.link_blocks);
    metrics.set_counter("chaos.link.noise_bursts", s.noise_bursts);
    metrics.set_counter("chaos.link.grid_corruptions", s.grid_corruptions);
    metrics.set_counter("chaos.link.delivered_ok", s.delivered_ok);
    metrics.set_counter("chaos.link.harq_transmissions", s.harq.transmissions);
    metrics.set_counter("chaos.link.harq_retransmissions", s.harq.retransmissions);
    metrics.set_counter("chaos.link.harq_recoveries", s.harq.recoveries);
    metrics.set_counter("chaos.link.harq_failures", s.harq.failures);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx() -> ExperimentContext {
        ExperimentContext {
            n_subframes: 120,
            ..ExperimentContext::quick()
        }
    }

    #[test]
    fn chaos_campaign_conserves_tasks_and_recovers() {
        let art = run_chaos(&quick_ctx(), OverloadPolicy::ShedUsers).expect("pool spawns");
        let s = &art.summary;
        assert!(
            s.conserved(),
            "lost {} dup {}",
            s.lost_tasks,
            s.duplicated_tasks
        );
        assert_eq!(s.worker_respawns, s.kills_injected);
        assert!(s.task_panics > 0, "the smoke plan must inject panics");
        assert!(s.noise_bursts > 0, "the smoke plan must burst");
        assert!(s.harq.recoveries > 0, "combining must recover bursts");
        assert_eq!(s.link_blocks, (LINK_SUBFRAMES * LINK_USERS) as u64);
        assert!(!art.metrics_json.is_empty() && !art.perfetto_json.is_empty());
    }

    #[test]
    fn chaos_counters_are_deterministic() {
        let a = run_chaos(&quick_ctx(), OverloadPolicy::DropSubframe).expect("pool spawns");
        let b = run_chaos(&quick_ctx(), OverloadPolicy::DropSubframe).expect("pool spawns");
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.metrics_json, b.metrics_json);
    }
}
