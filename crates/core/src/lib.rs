//! The LTE Uplink Receiver PHY benchmark.
//!
//! This crate is the paper's primary artifact: an open benchmark that
//! "realistically captures the dynamic behavior of an LTE baseband uplink
//! as viewed by the base station", plus the subframe-based power
//! management study built on it.
//!
//! * [`benchmark`] — the executable benchmark: a maintenance loop
//!   generates subframe input parameters and data, dispatches a subframe
//!   every DELTA, and a work-stealing pool of worker threads runs the
//!   real DSP pipeline (channel estimation → combiner weights → antenna
//!   combining → demap → decode → CRC) with results verified against the
//!   serial golden reference (§IV of the paper).
//! * [`experiments`] — deterministic reproductions of every figure and
//!   table in the paper's evaluation, driven by the 64-core discrete-
//!   event simulator and the calibrated power model.
//! * [`ablation`] — sweeps of the design constants the paper fixes
//!   (Eq. 5 margin, power-domain group size, nap wake period) plus the
//!   estimator-driven DVFS extension the paper names as future work.
//! * [`govern`] — the closed power-governance loop on both substrates:
//!   governed DES bursts with a per-subframe estimated-vs-measured
//!   audit, governed real-pool runs verified byte-identical against
//!   ungoverned ones, and Eq. 3 slope re-calibration from real runs.
//! * [`chaos`] — the deterministic fault-injection campaign: seeded
//!   chaos in the DES, conservation proofs on the real pool, and
//!   link-level HARQ recovery, all exported as one trace + metrics pair.
//! * [`soak`] — continuous telemetry over a long governed run: rolling
//!   latency/EBLER/power windows judged against SLO budgets, exported
//!   as a deterministic snapshot stream plus an OpenMetrics exposition.
//! * [`serve`] — the continuously-running ingest service: subframe work
//!   arrives through a bounded ring, admission control and the
//!   reject → shed → degrade escalation ladder manage overload, the
//!   pressure-wrapped governor closes its loop on live queue depth, and
//!   the lifecycle machinery (graceful drain, hot reload, watchdog
//!   restart) keeps the receiver long-running.
//! * [`deploy`] — the multi-cell deployment engine: N cells with their
//!   own identities and mMTC-scale UE populations shard one shared
//!   pool, with deterministic inter-cell interference and per-cell
//!   fingerprints proving isolation at zero coupling.
//! * [`fingerprint`] — one-line FNV-1a 64 fingerprints of decoded
//!   bytes and of the canonical trace-event stream, for cheap
//!   byte-identity comparisons between runs.
//! * [`signals`] — dependency-free SIGINT/SIGTERM latching so every
//!   long-running command drains and flushes instead of dying.
//! * [`report`] — CSV/markdown rendering of experiment results.
//!
//! The `lte-sim` binary exposes all experiments from the command line:
//!
//! ```text
//! lte-sim all --out results/     # every figure and table
//! lte-sim fig12                  # estimator validation only
//! lte-sim table2 --quick         # reduced run for smoke testing
//! ```

pub mod ablation;
pub mod benchmark;
pub mod chaos;
pub mod cli;
pub mod conformance;
pub mod deploy;
pub mod experiments;
pub mod fingerprint;
pub mod govern;
pub mod perf;
pub mod report;
pub mod serve;
pub mod signals;
pub mod soak;
pub mod svg;
pub mod trace;

pub use benchmark::{
    BenchmarkConfig, BenchmarkRun, BenchmarkTelemetry, DegradationReport, PoolActivity,
    UplinkBenchmark,
};
pub use chaos::{ChaosArtifacts, ChaosSummary};
pub use conformance::{compute_vectors, diff_vectors, parse_golden, render_golden, KernelVector};
pub use deploy::{run_deploy, CellKind, CellReport, DeployConfig, DeployReport};
pub use experiments::ExperimentContext;
pub use fingerprint::{
    canonical_fingerprint, canonical_trace_fingerprint, fingerprint_line, fingerprint_results,
    Fnv1a,
};
pub use govern::{DesGovernRun, GovernReport, PoolGovernRun};
pub use perf::{PerfConfig, PerfReport, ScalingConfig, ScalingPoint, ScalingReport};
pub use serve::{
    run_serve, DrainReason, LifecycleEvent, ServeConfig, ServeControl, ServeOutcome, ServeParams,
    ServeWindow, TrafficModel,
};
pub use soak::{SoakArtifacts, SoakConfig, SoakReport, SoakWindow};
