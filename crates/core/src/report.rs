//! CSV and markdown rendering of experiment results.
//!
//! Every figure becomes a CSV with one row per plotted point; tables
//! become markdown with the paper's reference values alongside the
//! reproduced ones, ready for EXPERIMENTS.md.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use lte_model::trace::Trace;

use crate::experiments::{CalibrationCurve, EstimationValidation, PowerRow, PowerStudy};
use crate::svg::{line_chart, Chart, Series};

/// Writes an artifact atomically: the contents land in a `.tmp`
/// sibling first and are renamed into place, so an interrupted run
/// never leaves a truncated artifact behind — the destination either
/// has the old contents or the complete new ones. If the rename (or
/// the write itself) fails, the `.tmp` sibling is removed so failed
/// runs leave no litter next to the real artifacts.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("create directory {}: {e}", dir.display()))?;
    }
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let result = std::fs::write(&tmp, contents)
        .map_err(|e| format!("write {}: {e}", tmp.display()))
        .and_then(|()| {
            std::fs::rename(&tmp, path)
                .map_err(|e| format!("rename {} into place: {e}", tmp.display()))
        });
    if result.is_err() {
        // Best effort: the temp file may not exist if the write failed.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Renders rows as CSV with a header line.
pub fn csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Fig. 7 CSV: users per subframe (every `stride`-th).
pub fn fig7_csv(trace: &Trace, stride: usize) -> String {
    let rows: Vec<Vec<String>> = trace
        .every(stride)
        .iter()
        .map(|r| vec![r.subframe.to_string(), r.users.to_string()])
        .collect();
    csv(&["subframe", "users"], &rows)
}

/// Fig. 8 CSV: total/max/min PRBs per subframe.
pub fn fig8_csv(trace: &Trace, stride: usize) -> String {
    let rows: Vec<Vec<String>> = trace
        .every(stride)
        .iter()
        .map(|r| {
            vec![
                r.subframe.to_string(),
                r.total_prbs.to_string(),
                r.max_prbs.to_string(),
                r.min_prbs.to_string(),
            ]
        })
        .collect();
    csv(&["subframe", "total_prbs", "max_prbs", "min_prbs"], &rows)
}

/// Fig. 9 CSV: max/min layers per subframe.
pub fn fig9_csv(trace: &Trace, stride: usize) -> String {
    let rows: Vec<Vec<String>> = trace
        .every(stride)
        .iter()
        .map(|r| {
            vec![
                r.subframe.to_string(),
                r.max_layers.to_string(),
                r.min_layers.to_string(),
            ]
        })
        .collect();
    csv(&["subframe", "max_layers", "min_layers"], &rows)
}

/// Fig. 11 CSV: activity vs PRBs, one column per (modulation, layers).
pub fn fig11_csv(curves: &[CalibrationCurve]) -> String {
    let mut header: Vec<String> = vec!["prbs".to_string()];
    for c in curves {
        header.push(format!("{}_{}layer", c.modulation, c.layers));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let n_points = curves.first().map_or(0, |c| c.points.len());
    let rows: Vec<Vec<String>> = (0..n_points)
        .map(|i| {
            let mut row = vec![curves[0].points[i].prbs.to_string()];
            for c in curves {
                row.push(format!("{:.6}", c.points[i].activity));
            }
            row
        })
        .collect();
    csv(&header_refs, &rows)
}

/// Fig. 12 CSV: estimated and measured activity per window.
pub fn fig12_csv(v: &EstimationValidation, window_seconds: f64) -> String {
    let rows: Vec<Vec<String>> = v
        .estimated
        .iter()
        .zip(&v.measured)
        .enumerate()
        .map(|(i, (e, m))| {
            vec![
                format!("{:.1}", i as f64 * window_seconds),
                format!("{e:.6}"),
                format!("{m:.6}"),
            ]
        })
        .collect();
    csv(&["time_s", "estimated", "measured"], &rows)
}

/// Fig. 13 CSV: estimated active cores per subframe.
pub fn fig13_csv(targets: &[usize], stride: usize) -> String {
    let rows: Vec<Vec<String>> = targets
        .iter()
        .step_by(stride)
        .enumerate()
        .map(|(i, t)| vec![(i * stride).to_string(), t.to_string()])
        .collect();
    csv(&["subframe", "active_cores"], &rows)
}

/// Figs. 14–16 CSV: RMS power traces for all techniques.
pub fn power_traces_csv(study: &PowerStudy, rms_window_seconds: f64) -> String {
    let series: Vec<(&str, &[f64])> = study
        .runs
        .iter()
        .map(|r| (policy_label(&r.policy.to_string()), r.rms.as_slice()))
        .chain(std::iter::once(("PowerGating", study.gated_rms.as_slice())))
        .collect();
    let n = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut header = vec!["time_s".to_string()];
    header.extend(series.iter().map(|(name, _)| name.to_string()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let mut row = vec![format!("{:.2}", i as f64 * rms_window_seconds)];
            for (_, s) in &series {
                row.push(s.get(i).map_or(String::new(), |v| format!("{v:.4}")));
            }
            row
        })
        .collect();
    csv(&header_refs, &rows)
}

fn policy_label(name: &str) -> &'static str {
    match name {
        "NONAP" => "NONAP",
        "IDLE" => "IDLE",
        "NAP" => "NAP",
        _ => "NAP+IDLE",
    }
}

/// Table I markdown with the paper's reference column.
pub fn table1_markdown(rows: &[PowerRow]) -> String {
    let paper: &[(&str, f64, i32)] = &[
        ("NONAP", 11.0, 0),
        ("IDLE", 6.7, -39),
        ("NAP", 6.5, -41),
        ("NAP+IDLE", 5.9, -46),
    ];
    let mut out = String::from(
        "| Technique | Power (W) | Reduction | Paper (W) | Paper reduction |\n|---|---|---|---|---|\n",
    );
    for row in rows {
        let reference = paper.iter().find(|(n, _, _)| *n == row.technique);
        let (pw, pr) = reference.map_or((f64::NAN, 0), |&(_, w, r)| (w, r));
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:+.0}% | {:.1} | {:+}% |",
            row.technique,
            row.watts,
            100.0 * row.vs_nonap,
            pw,
            pr
        );
    }
    out
}

/// Table II markdown with the paper's reference column.
pub fn table2_markdown(rows: &[PowerRow]) -> String {
    let paper: &[(&str, f64, i32, i32)] = &[
        ("NONAP", 25.0, 0, 21),
        ("IDLE", 20.7, -17, 0),
        ("NAP", 20.5, -18, -1),
        ("NAP+IDLE", 19.9, -22, -4),
        ("PowerGating", 18.5, -26, -11),
    ];
    let mut out = String::from(
        "| Technique | Power (W) | vs NONAP | vs IDLE | Paper (W) | Paper vs NONAP |\n|---|---|---|---|---|---|\n",
    );
    for row in rows {
        let reference = paper.iter().find(|(n, _, _, _)| *n == row.technique);
        let (pw, pn) = reference.map_or((f64::NAN, 0), |&(_, w, n, _)| (w, n));
        let _ = writeln!(
            out,
            "| {} | {:.1} | {:+.0}% | {:+.0}% | {:.1} | {:+}% |",
            row.technique,
            row.watts,
            100.0 * row.vs_nonap,
            100.0 * row.vs_idle,
            pw,
            pn
        );
    }
    out
}

/// Fig. 11 SVG: the twelve activity-vs-PRB calibration curves.
pub fn fig11_svg(curves: &[CalibrationCurve]) -> String {
    let labels: Vec<String> = curves
        .iter()
        .map(|c| format!("{} {}L", c.modulation, c.layers))
        .collect();
    let series: Vec<Series<'_>> = curves
        .iter()
        .zip(&labels)
        .map(|(c, label)| Series {
            label,
            points: c
                .points
                .iter()
                .map(|p| (p.prbs as f64, 100.0 * p.activity))
                .collect(),
        })
        .collect();
    line_chart(
        &Chart {
            title: "Fig. 11 — activity vs PRBs (62 workers)",
            x_label: "physical resource blocks",
            y_label: "activity (%)",
            ..Chart::default()
        },
        &series,
    )
}

/// Fig. 12 SVG: estimated vs measured activity over the run.
pub fn fig12_svg(v: &EstimationValidation, window_seconds: f64) -> String {
    let to_points = |ys: &[f64]| {
        ys.iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 * window_seconds, y))
            .collect()
    };
    line_chart(
        &Chart {
            title: "Fig. 12 — estimated vs measured activity",
            x_label: "time (s)",
            y_label: "activity",
            ..Chart::default()
        },
        &[
            Series {
                label: "Estimated",
                points: to_points(&v.estimated),
            },
            Series {
                label: "Measured",
                points: to_points(&v.measured),
            },
        ],
    )
}

/// Figs. 14–16 SVG: RMS power for every technique.
pub fn power_svg(study: &PowerStudy, rms_window_seconds: f64) -> String {
    let to_points = |ys: &[f64]| {
        ys.iter()
            .enumerate()
            .map(|(i, &y)| (i as f64 * rms_window_seconds, y))
            .collect()
    };
    let mut series: Vec<Series<'_>> = study
        .runs
        .iter()
        .map(|r| Series {
            label: policy_label(&r.policy.to_string()),
            points: to_points(&r.rms),
        })
        .collect();
    series.push(Series {
        label: "PowerGating",
        points: to_points(&study.gated_rms),
    });
    line_chart(
        &Chart {
            title: "Figs. 14-16 — RMS power by technique",
            x_label: "time (s)",
            y_label: "power (W)",
            ..Chart::default()
        },
        &series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lte_model::{ParameterModel, RampModel};

    #[test]
    fn csv_shape() {
        let out = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(out, "a,b\n1,2\n");
    }

    #[test]
    fn trace_csvs_have_headers_and_rows() {
        let trace = Trace::from_configs(&RampModel::new(1).subframes(100));
        let f7 = fig7_csv(&trace, 25);
        assert!(f7.starts_with("subframe,users\n"));
        assert_eq!(f7.lines().count(), 1 + 4);
        let f8 = fig8_csv(&trace, 25);
        assert!(f8.contains("total_prbs"));
        let f9 = fig9_csv(&trace, 25);
        assert!(f9.contains("max_layers"));
    }

    #[test]
    fn fig13_stride() {
        let out = fig13_csv(&[2, 4, 6, 8, 10], 2);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1], "0,2");
        assert_eq!(lines[2], "2,6");
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lte-report-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn write_atomic_leaves_no_tmp_on_success() {
        let dir = scratch_dir("ok");
        let path = dir.join("artifact.json");
        write_atomic(&path, "{\"ok\":true}\n").expect("atomic write");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
        let tmp = dir.join("artifact.json.tmp");
        assert!(
            !tmp.exists(),
            "successful write left {} behind",
            tmp.display()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_no_tmp_litter() {
        // Force the rename to fail: the destination is a directory, so
        // renaming a regular file over it is an error on every platform.
        let dir = scratch_dir("litter");
        let path = dir.join("artifact.json");
        std::fs::create_dir_all(path.join("occupied")).unwrap();
        let err = write_atomic(&path, "contents").expect_err("rename must fail");
        assert!(err.contains("rename"), "unexpected error: {err}");
        let tmp = dir.join("artifact.json.tmp");
        assert!(
            !tmp.exists(),
            "failed write left orphaned {} behind",
            tmp.display()
        );
        // The destination (and its contents) are untouched.
        assert!(path.join("occupied").is_dir());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_markdown_includes_paper_reference() {
        let rows = vec![
            PowerRow {
                technique: "NONAP".into(),
                watts: 11.2,
                vs_nonap: 0.0,
                vs_idle: 0.2,
            },
            PowerRow {
                technique: "NAP+IDLE".into(),
                watts: 6.0,
                vs_nonap: -0.46,
                vs_idle: -0.05,
            },
        ];
        let md = table1_markdown(&rows);
        assert!(md.contains("| NONAP | 11.2 | +0% | 11.0 | +0% |"));
        assert!(md.contains("NAP+IDLE"));
        assert!(md.contains("-46%"));
    }
}

#[cfg(test)]
mod svg_tests {
    use super::*;
    use crate::experiments::{CalibrationCurve, EstimationValidation};
    use lte_dsp::Modulation;
    use lte_power::estimator::CalibrationPoint;

    fn curves() -> Vec<CalibrationCurve> {
        vec![CalibrationCurve {
            layers: 1,
            modulation: Modulation::Qpsk,
            points: (1..=5)
                .map(|i| CalibrationPoint {
                    prbs: 40 * i,
                    activity: 0.02 * i as f64,
                })
                .collect(),
        }]
    }

    #[test]
    fn fig11_svg_renders_each_curve() {
        let svg = fig11_svg(&curves());
        assert!(svg.contains("<svg"));
        assert!(svg.contains("QPSK 1L"));
        assert!(svg.contains("activity (%)"));
    }

    #[test]
    fn fig12_svg_renders_both_series() {
        let v = EstimationValidation {
            estimated: vec![0.1, 0.2, 0.3],
            measured: vec![0.11, 0.19, 0.31],
            mean_abs_err: 0.01,
            max_abs_err: 0.01,
        };
        let svg = fig12_svg(&v, 1.0);
        assert!(svg.contains("Estimated"));
        assert!(svg.contains("Measured"));
        assert_eq!(svg.matches("<path").count(), 2);
    }
}
