//! Golden kernel vectors: a committed, per-kernel hash of every DSP
//! stage's exact output bits.
//!
//! The SIMD hot path ([`lte_dsp::simd`]) promises bit-identity with the
//! scalar reference. This module turns that promise into a gate: each
//! kernel — the FFT at every 100-PRB grid size, Zadoff–Chu reference
//! generation, channel estimation per slot × antenna, the matched
//! filter, MMSE weights, exact and max-log demap LLRs, segmentation +
//! rate matching, turbo decode (including the SISO alpha/beta/extrinsic
//! planes), the CRC family, and the end-to-end receiver — is driven with
//! a fixed seeded input and its output bits are hashed with FNV-1a 64.
//! The hashes are committed to `conformance/golden.json`; `lte-sim
//! vectors --check` recomputes them and fails on any byte drift, with
//! SIMD dispatch on or forced off (`--scalar`), so a kernel change that
//! moves a single mantissa bit anywhere in the pipeline is caught
//! before it lands.
//!
//! The vectors are deterministic across hosts: every input comes from
//! the repo's own [`Xoshiro256`] and every hash is over IEEE-754 bit
//! patterns, never formatted decimals.

use std::fmt::Write as _;

use crate::fingerprint::Fnv1a;
use lte_dsp::channel::MimoChannel;
use lte_dsp::crc::{CRC16, CRC24A, CRC24B, CRC8};
use lte_dsp::fft::FftPlan;
use lte_dsp::fft::FftPlanner;
use lte_dsp::llr::{demap_block_exact_into, demap_block_into};
use lte_dsp::matched_filter::{matched_filter, matched_filter_inplace};
use lte_dsp::rate_match::RateMatcher;
use lte_dsp::segmentation::Segmentation;
use lte_dsp::turbo::{siso_probe, TurboDecoder, TurboEncoder, TurboWorkspace};
use lte_dsp::zadoff_chu::{layer_cyclic_shift, ReferenceSequence};
use lte_dsp::{Complex32, Modulation, Xoshiro256};
use lte_phy::combiner::{CombinerWeights, MmseScratch};
use lte_phy::estimator::estimate_slot;
use lte_phy::params::{CellConfig, TurboMode, UserConfig};
use lte_phy::tx::synthesize_user_over_channel;

/// Schema tag written into the golden file.
pub const SCHEMA: &str = "lte-sim-vectors-v1";

/// Where the committed golden vectors live, relative to the repo root.
pub const DEFAULT_GOLDEN_PATH: &str = "conformance/golden.json";

/// One kernel's digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KernelVector {
    /// Stable kernel name, e.g. `fft-forward`.
    pub kernel: String,
    /// FNV-1a 64 over the kernel's output bits.
    pub hash: u64,
}

/// The PRB allocations the 100-PRB grid can carry: every count up to
/// 100 whose DFT size `12·prbs` factors into 2, 3 and 5 (the LTE
/// transform-precoding constraint).
pub fn lte_prb_counts() -> Vec<usize> {
    (1..=100)
        .filter(|&prbs| {
            let mut n = prbs;
            for f in [2, 3, 5] {
                while n % f == 0 {
                    n /= f;
                }
            }
            n == 1
        })
        .collect()
}

fn hash_c32(h: &mut Fnv1a, data: &[Complex32]) {
    for z in data {
        h.write(&z.re.to_bits().to_le_bytes());
        h.write(&z.im.to_bits().to_le_bytes());
    }
}

fn hash_f32(h: &mut Fnv1a, data: &[f32]) {
    for v in data {
        h.write(&v.to_bits().to_le_bytes());
    }
}

fn random_block(rng: &mut Xoshiro256, n: usize) -> Vec<Complex32> {
    (0..n)
        .map(|_| Complex32::new(rng.next_f32() * 2.0 - 1.0, rng.next_f32() * 2.0 - 1.0))
        .collect()
}

fn random_bits(rng: &mut Xoshiro256, n: usize) -> Vec<u8> {
    (0..n).map(|_| (rng.next_u32() & 1) as u8).collect()
}

fn fft_vector(forward: bool) -> KernelVector {
    let mut rng = Xoshiro256::seed_from_u64(if forward { 0x0FF7 } else { 0x1FF7 });
    let mut h = Fnv1a::new();
    let mut sizes: Vec<usize> = lte_prb_counts().iter().map(|&p| 12 * p).collect();
    sizes.push(2048); // the receive grid's full-bandwidth FFT
    for &n in &sizes {
        let mut data = random_block(&mut rng, n);
        let plan = if forward {
            FftPlan::forward(n)
        } else {
            FftPlan::inverse(n)
        };
        plan.process(&mut data);
        h.write_u64(n as u64);
        hash_c32(&mut h, &data);
    }
    KernelVector {
        kernel: if forward {
            "fft-forward"
        } else {
            "fft-inverse"
        }
        .to_string(),
        hash: h.finish(),
    }
}

fn zadoff_chu_vector() -> KernelVector {
    let mut h = Fnv1a::new();
    for prbs in [1, 4, 6, 25, 64, 100] {
        let len = 12 * prbs;
        for root in [1, 7, 25] {
            let base = ReferenceSequence::new(len, root);
            h.write_u64(len as u64);
            h.write_u64(root as u64);
            hash_c32(&mut h, base.samples());
            for layer in 0..4 {
                let shifted = base.with_cyclic_shift(layer_cyclic_shift(layer, 4));
                hash_c32(&mut h, shifted.samples());
            }
        }
    }
    KernelVector {
        kernel: "zadoff-chu".to_string(),
        hash: h.finish(),
    }
}

/// One synthesized 4×2 user over a seeded multipath channel — shared by
/// the estimate, MMSE-weight and receiver-stage vectors so they all see
/// a realistic input.
fn conformance_input() -> (CellConfig, lte_phy::grid::UserInput) {
    let cell = CellConfig::with_antennas(4);
    let user = UserConfig::new(6, 2, Modulation::Qam16);
    let mut rng = Xoshiro256::seed_from_u64(0xE57);
    let channel = MimoChannel::randomize(4, 2, 3, &mut rng);
    let input = synthesize_user_over_channel(
        &cell,
        &user,
        TurboMode::Passthrough,
        20.0,
        &channel,
        &mut rng,
    );
    (cell, input)
}

fn estimate_vector() -> KernelVector {
    let (cell, input) = conformance_input();
    let planner = FftPlanner::new();
    let mut h = Fnv1a::new();
    for slot in 0..2 {
        let est = estimate_slot(&cell, &input, slot, &planner);
        h.write_u64(slot as u64);
        for rx in 0..est.n_rx() {
            for layer in 0..est.n_layers() {
                hash_c32(&mut h, est.path(rx, layer));
            }
        }
    }
    KernelVector {
        kernel: "channel-estimate".to_string(),
        hash: h.finish(),
    }
}

fn mmse_vector() -> KernelVector {
    let (cell, input) = conformance_input();
    let planner = FftPlanner::new();
    let mut h = Fnv1a::new();
    let mut weights = CombinerWeights::empty();
    let mut scratch = MmseScratch::new();
    for slot in 0..2 {
        let est = estimate_slot(&cell, &input, slot, &planner);
        weights.compute(&est, input.noise_var, &mut scratch);
        h.write_u64(slot as u64);
        for sc in 0..weights.n_sc() {
            for layer in 0..weights.n_layers() {
                hash_c32(&mut h, weights.row(sc, layer));
            }
        }
    }
    KernelVector {
        kernel: "mmse-weights".to_string(),
        hash: h.finish(),
    }
}

fn demap_vector(exact: bool) -> KernelVector {
    let mut rng = Xoshiro256::seed_from_u64(if exact { 0xDE4C } else { 0xDE4D });
    let mut h = Fnv1a::new();
    let mut out = Vec::new();
    for modulation in Modulation::ALL {
        // Cover the vector body, the scalar tail and sub-vector blocks.
        for n in [3, 8, 37, 300, 1200] {
            let symbols = random_block(&mut rng, n);
            let noise_var = 0.05 + rng.next_f32() * 0.5;
            out.clear();
            if exact {
                demap_block_exact_into(modulation, &symbols, noise_var, &mut out);
            } else {
                demap_block_into(modulation, &symbols, noise_var, &mut out);
            }
            h.write_u64(n as u64);
            hash_f32(&mut h, &out);
        }
    }
    KernelVector {
        kernel: if exact { "demap-exact" } else { "demap-maxlog" }.to_string(),
        hash: h.finish(),
    }
}

fn turbo_vector() -> KernelVector {
    let mut rng = Xoshiro256::seed_from_u64(0x7B0);
    let mut h = Fnv1a::new();
    for k in [40, 512, 6144] {
        let bits = random_bits(&mut rng, k);
        let code = TurboEncoder::new(k).encode(&bits);
        h.write_u64(k as u64);
        h.write(&code.systematic);
        h.write(&code.parity1);
        h.write(&code.parity2);
        let decoded = TurboDecoder::new(k, 4).decode(&code.to_llrs(4.0));
        h.write(&decoded);
    }
    KernelVector {
        kernel: "turbo".to_string(),
        hash: h.finish(),
    }
}

/// Pins the turbo decoder's *internal* stages — the alpha/beta metric
/// planes and the extrinsic LLR output of one SISO pass — not just the
/// final hard decisions. The state-parallel AVX2 trellis kernels must
/// reproduce every one of these f32 bit patterns.
fn turbo_siso_vector() -> KernelVector {
    let mut rng = Xoshiro256::seed_from_u64(0x5150);
    let mut h = Fnv1a::new();
    let mut ws = TurboWorkspace::new();
    for k in [40, 104, 512, 2048] {
        let bits = random_bits(&mut rng, k);
        let code = TurboEncoder::new(k).encode(&bits);
        // Noisy channel LLRs: clean ±4 observations plus seeded Gaussian-ish
        // perturbation, so the metric recursions see realistic mixed signs.
        let mut llrs = code.to_llrs(4.0);
        let mut perturb = |v: &mut f32| *v += (rng.next_f32() - 0.5) * 6.0;
        llrs.systematic.iter_mut().for_each(&mut perturb);
        llrs.parity1.iter_mut().for_each(&mut perturb);
        llrs.parity2.iter_mut().for_each(&mut perturb);
        for t in llrs.tail1.iter_mut().chain(llrs.tail2.iter_mut()) {
            perturb(&mut t.0);
            perturb(&mut t.1);
        }
        let (alpha, beta, extrinsic) = siso_probe(&llrs, &mut ws);
        h.write_u64(k as u64);
        hash_f32(&mut h, alpha);
        hash_f32(&mut h, beta);
        hash_f32(&mut h, extrinsic);
    }
    KernelVector {
        kernel: "turbo-siso".to_string(),
        hash: h.finish(),
    }
}

/// The channel-estimation matched filter (conjugate multiply), out of
/// place and in place, across lengths that cover the AVX2 body and the
/// scalar tail.
fn matched_filter_vector() -> KernelVector {
    let mut rng = Xoshiro256::seed_from_u64(0x3F17);
    let mut h = Fnv1a::new();
    for n in [3, 4, 8, 37, 48, 300] {
        let received = random_block(&mut rng, n);
        let reference = random_block(&mut rng, n);
        let mut out = vec![Complex32::ZERO; n];
        matched_filter(&received, &reference, &mut out);
        h.write_u64(n as u64);
        hash_c32(&mut h, &out);
        let mut inplace = received.clone();
        matched_filter_inplace(&mut inplace, &reference);
        hash_c32(&mut h, &inplace);
    }
    KernelVector {
        kernel: "matched-filter".to_string(),
        hash: h.finish(),
    }
}

fn segmentation_rate_match_vector() -> KernelVector {
    let mut rng = Xoshiro256::seed_from_u64(0x5E6);
    let mut h = Fnv1a::new();
    for b in [40, 6144, 6200, 13_000] {
        let bits = random_bits(&mut rng, b);
        let seg = Segmentation::segment(&bits);
        h.write_u64(b as u64);
        h.write_u64(seg.n_blocks() as u64);
        for block in &seg.blocks {
            h.write(block);
            let code = TurboEncoder::new(block.len()).encode(block);
            let matcher = RateMatcher::new(block.len());
            // Mother rate, puncturing and repetition.
            for e in [3 * block.len() + 12, block.len(), 4 * block.len()] {
                h.write(&matcher.match_bits(&code, e));
            }
        }
    }
    KernelVector {
        kernel: "segmentation-rate-match".to_string(),
        hash: h.finish(),
    }
}

fn rate_match_fused_vector() -> KernelVector {
    use lte_dsp::interleave::subblock_cached;
    use lte_dsp::turbo::TurboLlrs;
    // The fused gather path: sub-block deinterleaving folded into the
    // rate-match accumulation, exactly as the receiver's turbo tail
    // drives it — a 2-block transport whose interleaver permutation is
    // sliced per block. Guards the fusion against drift from the
    // two-step reference.
    let mut rng = Xoshiro256::seed_from_u64(0xF05E);
    let mut h = Fnv1a::new();
    for (k, total) in [(40usize, 194usize), (64, 408), (104, 648)] {
        let src: Vec<f32> = (0..total)
            .map(|_| (rng.next_u64() % 2000) as f32 / 100.0 - 10.0)
            .collect();
        let interleaver = subblock_cached(total);
        let inverse = interleaver.inverse_permutation();
        let base = total / 2;
        let matcher = RateMatcher::new(k);
        let mut llrs = TurboLlrs::default();
        h.write_u64(k as u64);
        h.write_u64(total as u64);
        for range in [0..base, base..total] {
            matcher.accumulate_llrs_gather_into(&src, &inverse[range], &mut llrs);
            hash_f32(&mut h, &llrs.systematic);
            hash_f32(&mut h, &llrs.parity1);
            hash_f32(&mut h, &llrs.parity2);
            for (s, p) in llrs.tail1.iter().chain(llrs.tail2.iter()) {
                hash_f32(&mut h, &[*s, *p]);
            }
        }
    }
    KernelVector {
        kernel: "rate-match-fused".to_string(),
        hash: h.finish(),
    }
}

fn crc_vector() -> KernelVector {
    let mut rng = Xoshiro256::seed_from_u64(0xCC);
    let mut h = Fnv1a::new();
    for n in [8, 63, 512, 6144] {
        let bits = random_bits(&mut rng, n);
        h.write_u64(n as u64);
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            h.write(&crc.compute_bits(&bits).to_le_bytes());
        }
    }
    KernelVector {
        kernel: "crc".to_string(),
        hash: h.finish(),
    }
}

fn receiver_vector() -> KernelVector {
    let (hash, _users) = crate::fingerprint::canonical_fingerprint(0x901D, 6);
    KernelVector {
        kernel: "receiver-e2e".to_string(),
        hash,
    }
}

/// Computes every kernel vector with the *current* SIMD dispatch — the
/// caller pins scalar mode via [`lte_dsp::simd::force_scalar`] when
/// checking the fallback path.
pub fn compute_vectors() -> Vec<KernelVector> {
    vec![
        fft_vector(true),
        fft_vector(false),
        zadoff_chu_vector(),
        estimate_vector(),
        mmse_vector(),
        demap_vector(false),
        demap_vector(true),
        segmentation_rate_match_vector(),
        rate_match_fused_vector(),
        turbo_vector(),
        turbo_siso_vector(),
        matched_filter_vector(),
        crc_vector(),
        receiver_vector(),
    ]
}

/// Renders the golden JSON document.
pub fn render_golden(vectors: &[KernelVector]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"vectors\": [\n");
    for (i, v) in vectors.iter().enumerate() {
        let comma = if i + 1 < vectors.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"kernel\": \"{}\", \"hash\": \"{:016x}\" }}{comma}",
            v.kernel, v.hash
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a golden document produced by [`render_golden`] (tolerant of
/// whitespace changes, strict about schema and hash syntax).
pub fn parse_golden(text: &str) -> Result<Vec<KernelVector>, String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\""))
        && !text.contains(&format!("\"schema\":\"{SCHEMA}\""))
    {
        return Err(format!("missing or unknown schema (expected {SCHEMA})"));
    }
    let mut vectors = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"kernel\"") {
        rest = &rest[at + "\"kernel\"".len()..];
        let kernel =
            quoted_value(&mut rest).ok_or_else(|| "malformed \"kernel\" entry".to_string())?;
        let at = rest
            .find("\"hash\"")
            .ok_or_else(|| format!("kernel {kernel}: missing \"hash\""))?;
        rest = &rest[at + "\"hash\"".len()..];
        let hex = quoted_value(&mut rest)
            .ok_or_else(|| format!("kernel {kernel}: malformed \"hash\""))?;
        let hash = u64::from_str_radix(&hex, 16)
            .map_err(|_| format!("kernel {kernel}: bad hash '{hex}'"))?;
        vectors.push(KernelVector { kernel, hash });
    }
    if vectors.is_empty() {
        return Err("no vectors found".to_string());
    }
    Ok(vectors)
}

/// After a `"key"` token: skips to the next quoted string and returns
/// it, advancing `rest` past the closing quote.
fn quoted_value(rest: &mut &str) -> Option<String> {
    let open = rest.find('"')?;
    // Reject a `"key" "value"` pair with no colon between.
    if !rest[..open].trim_start().starts_with(':') {
        return None;
    }
    let tail = &rest[open + 1..];
    let close = tail.find('"')?;
    let value = tail[..close].to_string();
    *rest = &tail[close + 1..];
    Some(value)
}

/// Compares freshly computed vectors against the golden set. Returns
/// human-readable drift descriptions — empty means conformant. Missing
/// and unexpected kernels are drift too: the golden file is the
/// exhaustive kernel inventory.
pub fn diff_vectors(golden: &[KernelVector], current: &[KernelVector]) -> Vec<String> {
    let mut drift = Vec::new();
    for g in golden {
        match current.iter().find(|c| c.kernel == g.kernel) {
            None => drift.push(format!("{}: missing from this build", g.kernel)),
            Some(c) if c.hash != g.hash => drift.push(format!(
                "{}: golden {:016x} != computed {:016x}",
                g.kernel, g.hash, c.hash
            )),
            Some(_) => {}
        }
    }
    for c in current {
        if !golden.iter().any(|g| g.kernel == c.kernel) {
            drift.push(format!("{}: not in the golden set (regenerate)", c.kernel));
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_deterministic() {
        assert_eq!(compute_vectors(), compute_vectors());
    }

    #[test]
    fn simd_and_scalar_dispatch_hash_identically() {
        // The heart of the conformance gate: forcing every kernel onto
        // the scalar reference path must not move a single output bit.
        let native = compute_vectors();
        lte_dsp::simd::force_scalar(true);
        let scalar = compute_vectors();
        lte_dsp::simd::force_scalar(false);
        assert_eq!(native, scalar);
    }

    #[test]
    fn golden_roundtrips_through_json() {
        let vectors = vec![
            KernelVector {
                kernel: "fft-forward".to_string(),
                hash: 0x0123_4567_89ab_cdef,
            },
            KernelVector {
                kernel: "crc".to_string(),
                hash: u64::MAX,
            },
        ];
        let parsed = parse_golden(&render_golden(&vectors)).expect("parse own output");
        assert_eq!(parsed, vectors);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_golden("").is_err());
        assert!(parse_golden("{\"schema\": \"other\"}").is_err());
        assert!(parse_golden(&format!("{{\"schema\": \"{SCHEMA}\"}}")).is_err());
        assert!(parse_golden(&format!(
            "{{\"schema\": \"{SCHEMA}\", \"vectors\": [{{\"kernel\": \"x\", \"hash\": \"zz\"}}]}}"
        ))
        .is_err());
    }

    #[test]
    fn diff_reports_drift_missing_and_extra() {
        let golden = vec![
            KernelVector {
                kernel: "a".into(),
                hash: 1,
            },
            KernelVector {
                kernel: "b".into(),
                hash: 2,
            },
        ];
        let current = vec![
            KernelVector {
                kernel: "a".into(),
                hash: 9,
            },
            KernelVector {
                kernel: "c".into(),
                hash: 3,
            },
        ];
        let drift = diff_vectors(&golden, &current);
        assert_eq!(drift.len(), 3, "{drift:?}");
        assert!(diff_vectors(&golden, &golden).is_empty());
    }

    #[test]
    fn committed_golden_matches_this_build() {
        // The committed file is the gate: any kernel change that moves
        // output bits must regenerate it (lte-sim vectors --write) and
        // justify the drift in review.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../conformance/golden.json");
        let text = std::fs::read_to_string(path).expect("committed conformance/golden.json");
        let golden = parse_golden(&text).expect("parse committed golden");
        let drift = diff_vectors(&golden, &compute_vectors());
        assert!(drift.is_empty(), "conformance drift: {drift:?}");
    }
}
