//! Turbo-code rate matching (TS 36.212 §5.1.4.1).
//!
//! The rate-1/3 mother code's three streams (systematic, parity 1,
//! parity 2, each carrying a share of the tail bits) are sub-block
//! interleaved, packed into a circular buffer — systematic first, the
//! two parity streams interlaced — and the transmitter reads exactly `E`
//! bits from the buffer, wrapping around: fewer than `3K` bits puncture
//! the code (higher rate), more repeat bits (lower rate, soft-combined
//! at the receiver). This lets a code block fill *any* allocation
//! exactly, with no filler.
//!
//! The tail-bit distribution onto the three streams is a fixed
//! convention documented on [`RateMatcher::new`]; encoder and decoder
//! agree by construction.

use crate::interleave::Interleaver;
use crate::turbo::{TurboCodeword, TurboLlrs};

/// Precomputed rate-matching maps for one turbo block size.
#[derive(Clone, Debug)]
pub struct RateMatcher {
    k: usize,
    /// Circular-buffer order: each entry addresses `(stream, index)` in
    /// the three length-`k+4` bit streams.
    buffer: Vec<(u8, u32)>,
}

/// Bits per stream: the block plus four distributed tail bits.
fn stream_len(k: usize) -> usize {
    k + 4
}

impl RateMatcher {
    /// Builds the rate matcher for turbo block size `k`.
    ///
    /// Tail distribution: stream 0 (systematic) carries the three
    /// encoder-1 tail systematic bits and the first encoder-2 tail
    /// systematic bit; stream 1 (parity 1) the three encoder-1 tail
    /// parities plus the second encoder-2 tail systematic bit; stream 2
    /// (parity 2) the three encoder-2 tail parities plus the third
    /// encoder-2 tail systematic bit.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "block size must be positive");
        let d = stream_len(k);
        // Sub-block interleave each stream with the standard 32-column
        // permutation (dummy-padded); dummies are skipped when packing
        // the circular buffer.
        let interleaver = Interleaver::subblock(d);
        let order: Vec<u32> = interleaver.permutation().to_vec();
        let mut buffer = Vec::with_capacity(3 * d);
        // v0 first …
        for &idx in &order {
            buffer.push((0u8, idx));
        }
        // … then v1 and v2 interlaced.
        for &idx in order.iter().take(d) {
            buffer.push((1u8, idx));
            buffer.push((2u8, idx));
        }
        RateMatcher { k, buffer }
    }

    /// Turbo block size `k`.
    pub fn block_size(&self) -> usize {
        self.k
    }

    /// Mother-code bits available before wrapping (`3·(k+4)`).
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Flattens a codeword into the three tail-augmented streams.
    fn streams(&self, code: &TurboCodeword) -> [Vec<u8>; 3] {
        let d = stream_len(self.k);
        let mut s0 = Vec::with_capacity(d);
        let mut s1 = Vec::with_capacity(d);
        let mut s2 = Vec::with_capacity(d);
        s0.extend_from_slice(&code.systematic);
        s1.extend_from_slice(&code.parity1);
        s2.extend_from_slice(&code.parity2);
        s0.extend([
            code.tail1[0].0,
            code.tail1[1].0,
            code.tail1[2].0,
            code.tail2[0].0,
        ]);
        s1.extend([
            code.tail1[0].1,
            code.tail1[1].1,
            code.tail1[2].1,
            code.tail2[1].0,
        ]);
        s2.extend([
            code.tail2[0].1,
            code.tail2[1].1,
            code.tail2[2].0,
            code.tail2[2].1,
        ]);
        [s0, s1, s2]
    }

    /// Produces exactly `e` transmitted bits for the codeword.
    ///
    /// # Panics
    ///
    /// Panics if the codeword's block size differs from the matcher's or
    /// `e == 0`.
    pub fn match_bits(&self, code: &TurboCodeword, e: usize) -> Vec<u8> {
        self.match_bits_rv(code, e, 0)
    }

    /// Circular-buffer start offset for a redundancy version (0..=3):
    /// HARQ retransmissions read from different points so combining
    /// recovers more of the mother code.
    pub fn rv_offset(&self, rv: u8) -> usize {
        (rv as usize % 4) * self.buffer.len() / 4
    }

    /// [`match_bits`](Self::match_bits) starting at redundancy version
    /// `rv`'s buffer offset.
    ///
    /// # Panics
    ///
    /// Panics if the codeword's block size differs from the matcher's or
    /// `e == 0`.
    pub fn match_bits_rv(&self, code: &TurboCodeword, e: usize, rv: u8) -> Vec<u8> {
        assert_eq!(code.systematic.len(), self.k, "block size mismatch");
        assert!(e > 0, "output length must be positive");
        let streams = self.streams(code);
        let k0 = self.rv_offset(rv);
        (0..e)
            .map(|j| {
                let (s, i) = self.buffer[(k0 + j) % self.buffer.len()];
                streams[s as usize][i as usize]
            })
            .collect()
    }

    /// Accumulates received LLRs back into mother-code positions:
    /// repeated bits soft-combine (LLRs add), punctured bits stay 0.
    ///
    /// # Panics
    ///
    /// Panics if `llrs` is empty.
    pub fn accumulate_llrs(&self, llrs: &[f32]) -> TurboLlrs {
        self.accumulate_llrs_rv(&[(llrs, 0)])
    }

    /// Soft-combines one or more (LLR block, redundancy version)
    /// transmissions into mother-code LLRs — the HARQ combining buffer.
    ///
    /// # Panics
    ///
    /// Panics if every block is empty.
    pub fn accumulate_llrs_rv(&self, transmissions: &[(&[f32], u8)]) -> TurboLlrs {
        let mut out = TurboLlrs::default();
        self.accumulate_llrs_rv_into(transmissions, &mut out);
        out
    }

    /// [`accumulate_llrs`](Self::accumulate_llrs) into a caller-provided
    /// buffer: with a warm `out` (capacity from a previous block of the
    /// same size) this allocates nothing — the receiver's turbo hot path.
    ///
    /// # Panics
    ///
    /// Panics if `llrs` is empty.
    pub fn accumulate_llrs_into(&self, llrs: &[f32], out: &mut TurboLlrs) {
        self.accumulate_llrs_rv_into(&[(llrs, 0)], out)
    }

    /// Fused deinterleave + rate-match accumulation: equivalent to
    /// deinterleaving `src` through `gather` (`deinterleaved[j] =
    /// src[gather[j]]`) and then calling
    /// [`accumulate_llrs_into`](Self::accumulate_llrs_into) on the
    /// result, but without ever materialising the deinterleaved buffer.
    /// The scatter-add visits positions in the same order with the same
    /// f32 values, so the output is bit-exact versus the two-step path —
    /// this removes the separate deinterleave pass (and its store/reload
    /// of the whole allocation) from the turbo decode tail.
    ///
    /// `gather` is one code block's slice of the allocation
    /// interleaver's inverse permutation
    /// ([`crate::interleave::Interleaver::inverse_permutation`]).
    ///
    /// # Panics
    ///
    /// Panics if `gather` is empty. Indexes `src` through `gather`
    /// unchecked-by-assert: an out-of-range table entry panics on the
    /// slice access.
    pub fn accumulate_llrs_gather_into(&self, src: &[f32], gather: &[u32], out: &mut TurboLlrs) {
        assert!(!gather.is_empty(), "need at least one LLR");
        let d = stream_len(self.k);
        for stream in [&mut out.systematic, &mut out.parity1, &mut out.parity2] {
            stream.clear();
            stream.resize(d, 0.0);
        }
        let acc = [&mut out.systematic, &mut out.parity1, &mut out.parity2];
        let len = self.buffer.len();
        for (j, &g) in gather.iter().enumerate() {
            let (s, i) = self.buffer[j % len];
            acc[s as usize][i as usize] += src[g as usize];
        }
        self.extract_tails(out);
    }

    /// Pulls the four distributed tail positions out of the length-`k+4`
    /// accumulators and truncates the streams to `k`.
    fn extract_tails(&self, out: &mut TurboLlrs) {
        let k = self.k;
        out.tail1 = [
            (out.systematic[k], out.parity1[k]),
            (out.systematic[k + 1], out.parity1[k + 1]),
            (out.systematic[k + 2], out.parity1[k + 2]),
        ];
        out.tail2 = [
            (out.systematic[k + 3], out.parity2[k]),
            (out.parity1[k + 3], out.parity2[k + 1]),
            (out.parity2[k + 2], out.parity2[k + 3]),
        ];
        out.systematic.truncate(k);
        out.parity1.truncate(k);
        out.parity2.truncate(k);
    }

    /// [`accumulate_llrs_rv`](Self::accumulate_llrs_rv) into a
    /// caller-provided buffer (see [`accumulate_llrs_into`]).
    ///
    /// The three stream vectors double as the length-`k+4` accumulators
    /// during the scatter-add and are truncated to `k` once the four tail
    /// positions have been extracted, so no scratch allocation is needed.
    ///
    /// # Panics
    ///
    /// Panics if every block is empty.
    ///
    /// [`accumulate_llrs_into`]: Self::accumulate_llrs_into
    pub fn accumulate_llrs_rv_into(&self, transmissions: &[(&[f32], u8)], out: &mut TurboLlrs) {
        assert!(
            transmissions.iter().any(|(l, _)| !l.is_empty()),
            "need at least one LLR"
        );
        let d = stream_len(self.k);
        for stream in [&mut out.systematic, &mut out.parity1, &mut out.parity2] {
            stream.clear();
            stream.resize(d, 0.0);
        }
        let acc = [&mut out.systematic, &mut out.parity1, &mut out.parity2];
        for &(llrs, rv) in transmissions {
            let k0 = self.rv_offset(rv);
            for (j, &l) in llrs.iter().enumerate() {
                let (s, i) = self.buffer[(k0 + j) % self.buffer.len()];
                acc[s as usize][i as usize] += l;
            }
        }
        self.extract_tails(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use crate::turbo::{TurboDecoder, TurboEncoder};

    fn random_bits(k: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..k).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    fn llrs_from_bits(bits: &[u8], mag: f32) -> Vec<f32> {
        bits.iter()
            .map(|&b| if b == 0 { mag } else { -mag })
            .collect()
    }

    #[test]
    fn buffer_covers_every_mother_bit_exactly_once() {
        let rm = RateMatcher::new(64);
        let mut seen = vec![[false; 3]; stream_len(64)];
        for &(s, i) in &rm.buffer {
            assert!(!seen[i as usize][s as usize], "duplicate ({s},{i})");
            seen[i as usize][s as usize] = true;
        }
        assert!(seen.iter().all(|row| row.iter().all(|&b| b)));
    }

    #[test]
    fn full_rate_round_trips() {
        // E = 3(k+4): every mother bit transmitted exactly once.
        let k = 128;
        let bits = random_bits(k, 1);
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        let e = rm.buffer_len();
        let tx = rm.match_bits(&code, e);
        let turbo_llrs = rm.accumulate_llrs(&llrs_from_bits(&tx, 4.0));
        let decoded = TurboDecoder::new(k, 4).decode(&turbo_llrs);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn punctured_code_still_decodes_cleanly() {
        // Rate ~1/2: transmit only 2(k+4) of the 3(k+4) mother bits.
        let k = 256;
        let bits = random_bits(k, 2);
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        let e = 2 * stream_len(k);
        let tx = rm.match_bits(&code, e);
        assert_eq!(tx.len(), e);
        let turbo_llrs = rm.accumulate_llrs(&llrs_from_bits(&tx, 4.0));
        let decoded = TurboDecoder::new(k, 6).decode(&turbo_llrs);
        assert_eq!(decoded, bits, "rate-1/2 puncturing must still decode");
    }

    #[test]
    fn repetition_soft_combines() {
        // E = 2 × buffer: every LLR doubles.
        let k = 64;
        let bits = random_bits(k, 3);
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        let once = rm.accumulate_llrs(&llrs_from_bits(&rm.match_bits(&code, rm.buffer_len()), 2.0));
        let twice = rm.accumulate_llrs(&llrs_from_bits(
            &rm.match_bits(&code, 2 * rm.buffer_len()),
            2.0,
        ));
        for (a, b) in once.systematic.iter().zip(&twice.systematic) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
        let decoded = TurboDecoder::new(k, 4).decode(&twice);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn systematic_bits_survive_heavy_puncturing() {
        // The circular buffer fronts the systematic stream, so even
        // E ≈ k+4 keeps all systematic bits (pure rate-1 transmission).
        let k = 104;
        let bits = random_bits(k, 4);
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        let e = stream_len(k);
        let turbo_llrs = rm.accumulate_llrs(&llrs_from_bits(&rm.match_bits(&code, e), 4.0));
        let nonzero_sys = turbo_llrs.systematic.iter().filter(|&&l| l != 0.0).count();
        assert_eq!(nonzero_sys, k, "all systematic bits must be transmitted");
        // Hard decision on the systematic LLRs recovers the bits.
        let hard: Vec<u8> = turbo_llrs
            .systematic
            .iter()
            .map(|&l| (l < 0.0) as u8)
            .collect();
        assert_eq!(hard, bits);
    }

    #[test]
    fn awkward_e_values_work() {
        let k = 40;
        let bits = random_bits(k, 5);
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        for e in [k + 10, 97, 131, 3 * (k + 4) - 1, 3 * (k + 4) + 1] {
            let tx = rm.match_bits(&code, e);
            assert_eq!(tx.len(), e);
            let _ = rm.accumulate_llrs(&llrs_from_bits(&tx, 1.0));
        }
    }

    #[test]
    fn gathered_accumulation_is_bit_exact_versus_two_step() {
        // The fused path must reproduce deinterleave-then-accumulate
        // exactly: same add order, same f32 values, bit-identical output.
        use crate::interleave::Interleaver;
        let mut rng = Xoshiro256::seed_from_u64(0xFA57);
        for (k, e) in [(40usize, 97usize), (64, 204), (128, 396), (104, 3 * 108)] {
            let rm = RateMatcher::new(k);
            // An allocation-level interleaver over several blocks' shares.
            let total = 2 * e + 3;
            let il = Interleaver::subblock(total);
            let scrambled: Vec<f32> = (0..total)
                .map(|_| (rng.next_u64() % 1000) as f32 / 250.0 - 2.0)
                .collect();
            let deinterleaved = il.invert(&scrambled);
            let inv = il.inverse_permutation();
            let mut cursor = 0usize;
            for share in [e, e + 3] {
                let mut two_step = TurboLlrs::default();
                rm.accumulate_llrs_into(&deinterleaved[cursor..cursor + share], &mut two_step);
                let mut fused = TurboLlrs::default();
                rm.accumulate_llrs_gather_into(
                    &scrambled,
                    &inv[cursor..cursor + share],
                    &mut fused,
                );
                assert_eq!(
                    two_step
                        .systematic
                        .iter()
                        .map(|f| f.to_bits())
                        .collect::<Vec<_>>(),
                    fused
                        .systematic
                        .iter()
                        .map(|f| f.to_bits())
                        .collect::<Vec<_>>(),
                    "k={k} share={share}: systematic diverged"
                );
                assert_eq!(two_step.parity1, fused.parity1, "k={k}");
                assert_eq!(two_step.parity2, fused.parity2, "k={k}");
                assert_eq!(two_step.tail1, fused.tail1, "k={k}");
                assert_eq!(two_step.tail2, fused.tail2, "k={k}");
                cursor += share;
            }
        }
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn wrong_block_size_rejected() {
        let code = TurboEncoder::new(40).encode(&random_bits(40, 6));
        RateMatcher::new(64).match_bits(&code, 10);
    }
}

#[cfg(test)]
mod harq_tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use crate::turbo::{TurboDecoder, TurboEncoder};

    fn noisy_llrs(bits: &[u8], sigma: f32, rng: &mut Xoshiro256) -> Vec<f32> {
        bits.iter()
            .map(|&b| {
                let tx = if b == 0 { 1.0f32 } else { -1.0 };
                let y = tx + sigma * rng.next_gaussian() as f32;
                2.0 * y / (sigma * sigma)
            })
            .collect()
    }

    #[test]
    fn rv_offsets_are_distinct_quarters() {
        let rm = RateMatcher::new(128);
        let offsets: Vec<usize> = (0..4).map(|rv| rm.rv_offset(rv)).collect();
        assert_eq!(offsets[0], 0);
        for w in offsets.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(rm.rv_offset(4), rm.rv_offset(0), "rv wraps mod 4");
    }

    #[test]
    fn different_rvs_transmit_different_bits() {
        let k = 64;
        let mut rng = Xoshiro256::seed_from_u64(1);
        let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        let e = k; // heavily punctured single transmission
        let rv0 = rm.match_bits_rv(&code, e, 0);
        let rv2 = rm.match_bits_rv(&code, e, 2);
        assert_ne!(rv0, rv2, "redundancy versions must differ");
    }

    #[test]
    fn harq_combining_rescues_failed_first_transmissions() {
        // A punctured rate-1/2 first transmission through a noisy
        // channel sometimes fails; whenever it does, combining a second
        // transmission at rv 2 must rescue the block. Deterministic
        // seeds; we require at least one genuine first-attempt failure
        // across the sweep so the combining path is actually exercised.
        let k = 512;
        let sigma = 1.05f32;
        let decoder = TurboDecoder::new(k, 8);
        let rm = RateMatcher::new(k);
        let e = (3 * (k + 4)) / 2; // rate ≈ 1/2 transmission
        let mut first_failures = 0;
        for seed in 30..38u64 {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
            let code = TurboEncoder::new(k).encode(&bits);
            let tx1_bits = rm.match_bits_rv(&code, e, 0);
            let tx1 = noisy_llrs(&tx1_bits, sigma, &mut rng);
            let first_alone = decoder.decode(&rm.accumulate_llrs_rv(&[(&tx1, 0)]));
            if first_alone == bits {
                continue; // this channel realisation got through
            }
            first_failures += 1;
            let tx2_bits = rm.match_bits_rv(&code, e, 2);
            let tx2 = noisy_llrs(&tx2_bits, sigma, &mut rng);
            let combined = decoder.decode(&rm.accumulate_llrs_rv(&[(&tx1, 0), (&tx2, 2)]));
            assert_eq!(combined, bits, "seed {seed}: HARQ combining must recover");
        }
        assert!(
            first_failures >= 1,
            "the sweep must contain at least one first-attempt failure"
        );
    }

    #[test]
    fn chase_combining_same_rv_also_helps() {
        // Retransmitting the SAME rv doubles every received LLR.
        let k = 64;
        let mut rng = Xoshiro256::seed_from_u64(5);
        let bits: Vec<u8> = (0..k).map(|_| (rng.next_u64() & 1) as u8).collect();
        let code = TurboEncoder::new(k).encode(&bits);
        let rm = RateMatcher::new(k);
        let e = rm.buffer_len();
        let tx = rm.match_bits_rv(&code, e, 0);
        let llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect();
        let once = rm.accumulate_llrs_rv(&[(&llrs, 0)]);
        let twice = rm.accumulate_llrs_rv(&[(&llrs, 0), (&llrs, 0)]);
        for (a, b) in once.systematic.iter().zip(&twice.systematic) {
            assert!((2.0 * a - b).abs() < 1e-6);
        }
    }
}
