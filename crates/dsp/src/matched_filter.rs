//! The channel-estimation matched filter.
//!
//! The first stage of channel estimation (Fig. 3 of the paper) multiplies
//! the received, channel-distorted reference symbol by the conjugate of the
//! known reference sequence. Because the reference is CAZAC (unit
//! magnitude), the product is exactly the raw per-subcarrier channel
//! estimate `H(f) = Y(f)·X*(f)`.
//!
//! Both entry points route through [`crate::simd`]'s conjugate-multiply
//! kernel: AVX2 when available, with the scalar expression below as the
//! bit-identical reference.

use crate::complex::Complex32;
use crate::simd::{cmul_conj_assign, cmul_conj_into};

/// Multiplies `received` by the conjugate of `reference`, writing the raw
/// frequency-domain channel estimate into `out`
/// (`out[i] = received[i]·reference[i].conj()`).
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn matched_filter(received: &[Complex32], reference: &[Complex32], out: &mut [Complex32]) {
    assert_eq!(received.len(), reference.len(), "length mismatch");
    assert_eq!(received.len(), out.len(), "output length mismatch");
    cmul_conj_into(out, received, reference);
}

/// In-place variant of [`matched_filter`].
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn matched_filter_inplace(received: &mut [Complex32], reference: &[Complex32]) {
    assert_eq!(received.len(), reference.len(), "length mismatch");
    cmul_conj_assign(received, reference);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zadoff_chu::ReferenceSequence;

    #[test]
    fn recovers_flat_channel_exactly() {
        // If the channel is a pure complex gain h, Y = h·X and the matched
        // filter output is h·|X|² = h for a unit-magnitude reference.
        let h = Complex32::new(0.8, -0.6);
        let reference = ReferenceSequence::new(24, 3);
        let received: Vec<Complex32> = reference.samples().iter().map(|x| h * *x).collect();
        let mut out = vec![Complex32::ZERO; 24];
        matched_filter(&received, reference.samples(), &mut out);
        for z in &out {
            assert!((*z - h).abs() < 1e-5);
        }
    }

    #[test]
    fn inplace_matches_out_of_place() {
        let reference = ReferenceSequence::new(12, 1);
        let mut received: Vec<Complex32> = (0..12).map(|i| Complex32::new(i as f32, 1.0)).collect();
        let mut out = vec![Complex32::ZERO; 12];
        matched_filter(&received, reference.samples(), &mut out);
        matched_filter_inplace(&mut received, reference.samples());
        assert_eq!(received, out);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut out = vec![Complex32::ZERO; 3];
        matched_filter(&[Complex32::ONE; 3], &[Complex32::ONE; 4], &mut out);
    }
}
