//! Time-domain windowing for channel-estimation denoising.
//!
//! After the matched filter and IFFT, the channel impulse response is
//! concentrated in the first few time-domain taps; everything beyond the
//! cyclic-prefix span is noise. The estimator therefore applies a window
//! that keeps the leading taps (and, because the response of a slightly
//! mistimed user can wrap, a small tail) and zeroes the rest, then returns
//! to the frequency domain. This is the `window` kernel of Fig. 3.

use crate::complex::Complex32;

/// Parameters of the rectangular channel-truncation window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelWindow {
    /// Number of leading taps kept (main channel energy).
    pub head: usize,
    /// Number of trailing taps kept (wrap-around of early energy).
    pub tail: usize,
}

impl ChannelWindow {
    /// A window keeping `head` leading and `tail` trailing taps.
    pub const fn new(head: usize, tail: usize) -> Self {
        ChannelWindow { head, tail }
    }

    /// The default used by the benchmark: keep 1/8 of the taps at the head
    /// and 1/32 at the tail, matching a normal-CP delay-spread budget.
    pub fn for_len(n: usize) -> Self {
        ChannelWindow {
            head: (n / 8).max(1),
            tail: n / 32,
        }
    }

    /// Applies the window in place: samples outside the kept regions are
    /// zeroed.
    ///
    /// If `head + tail >= data.len()` the window degenerates to a no-op
    /// (everything is kept).
    pub fn apply(&self, data: &mut [Complex32]) {
        let n = data.len();
        if self.head + self.tail >= n {
            return;
        }
        for z in data[self.head..n - self.tail].iter_mut() {
            *z = Complex32::ZERO;
        }
    }

    /// Fraction of taps kept, in `(0, 1]`.
    pub fn kept_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        ((self.head + self.tail).min(n)) as f64 / n as f64
    }
}

/// A raised-cosine (Hann) taper of length `n`, used by tests and available
/// for experiments with smoother windows.
pub fn hann(n: usize) -> Vec<f32> {
    if n <= 1 {
        return vec![1.0; n];
    }
    (0..n)
        .map(|i| {
            let x = std::f32::consts::TAU * i as f32 / (n - 1) as f32;
            0.5 * (1.0 - x.cos())
        })
        .collect()
}

/// Multiplies a complex block by a real taper, in place.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn apply_taper(data: &mut [Complex32], taper: &[f32]) {
    assert_eq!(data.len(), taper.len(), "taper length mismatch");
    for (z, &w) in data.iter_mut().zip(taper) {
        *z = z.scale(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new(1.0 + i as f32, -1.0))
            .collect()
    }

    #[test]
    fn keeps_head_and_tail() {
        let mut data = block(16);
        ChannelWindow::new(2, 1).apply(&mut data);
        assert_ne!(data[0], Complex32::ZERO);
        assert_ne!(data[1], Complex32::ZERO);
        for z in &data[2..15] {
            assert_eq!(*z, Complex32::ZERO);
        }
        assert_ne!(data[15], Complex32::ZERO);
    }

    #[test]
    fn degenerate_window_is_noop() {
        let mut data = block(4);
        let orig = data.clone();
        ChannelWindow::new(3, 2).apply(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn default_window_scales_with_length() {
        let w = ChannelWindow::for_len(256);
        assert_eq!(w.head, 32);
        assert_eq!(w.tail, 8);
        let tiny = ChannelWindow::for_len(4);
        assert_eq!(tiny.head, 1);
    }

    #[test]
    fn kept_fraction_bounds() {
        let w = ChannelWindow::new(2, 2);
        assert!((w.kept_fraction(16) - 0.25).abs() < 1e-12);
        assert_eq!(w.kept_fraction(0), 1.0);
        assert_eq!(ChannelWindow::new(8, 8).kept_fraction(4), 1.0);
    }

    #[test]
    fn hann_endpoints_and_peak() {
        let w = hann(65);
        assert!(w[0].abs() < 1e-6);
        assert!(w[64].abs() < 1e-6);
        assert!((w[32] - 1.0).abs() < 1e-6);
        assert_eq!(hann(1), vec![1.0]);
        assert!(hann(0).is_empty());
    }

    #[test]
    fn taper_multiplies() {
        let mut data = block(3);
        apply_taper(&mut data, &[0.0, 1.0, 2.0]);
        assert_eq!(data[0], Complex32::ZERO);
        assert_eq!(data[1], Complex32::new(2.0, -1.0));
        assert_eq!(data[2], Complex32::new(6.0, -2.0));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn taper_length_mismatch_panics() {
        apply_taper(&mut block(3), &[1.0; 2]);
    }
}
