//! Rate-1/3 PCCC turbo codec (TS 36.212 §5.1.3.2).
//!
//! The paper's benchmark passes turbo decoding through because base
//! stations run it on dedicated hardware; the pipeline stage is explicitly
//! designed to be replaceable. This module provides the real thing — the
//! 3GPP parallel-concatenated convolutional code with the 8-state
//! constituent encoders `g0 = 1 + D² + D³` (feedback) and
//! `g1 = 1 + D + D³` (parity), a QPP internal interleaver, trellis
//! termination, and an iterative max-log-MAP decoder.
//!
//! # Example
//!
//! ```
//! use lte_dsp::turbo::{TurboDecoder, TurboEncoder};
//!
//! let k = 64;
//! let encoder = TurboEncoder::new(k);
//! let bits: Vec<u8> = (0..k).map(|i| ((i * 7) % 3 == 0) as u8).collect();
//! let code = encoder.encode(&bits);
//!
//! // Noiseless channel: LLR +8 for bit 0, −8 for bit 1.
//! let llrs = code.to_llrs(8.0);
//! let decoder = TurboDecoder::new(k, 4);
//! assert_eq!(decoder.decode(&llrs), bits);
//! ```

use crate::interleave::Interleaver;
use crate::math::gcd;

/// Number of trellis states of each constituent encoder.
const STATES: usize = 8;
/// Tail steps used to terminate each constituent trellis.
const TAIL: usize = 3;

/// QPP parameters `(f1, f2)` for selected block sizes from TS 36.212
/// Table 5.1.3-3. Sizes not listed fall back to a validated search (see
/// [`QppInterleaver::new`]); either way the result is checked to be a
/// permutation.
const QPP_TABLE: &[(usize, usize, usize)] = &[
    (40, 3, 10),
    (48, 7, 12),
    (56, 19, 42),
    (64, 7, 16),
    (72, 7, 18),
    (80, 11, 20),
    (88, 5, 22),
    (96, 11, 24),
    (104, 7, 26),
    (112, 41, 84),
    (120, 103, 90),
    (128, 15, 32),
    (144, 17, 108),
    (160, 21, 120),
    (176, 21, 44),
    (192, 23, 48),
    (208, 27, 52),
    (224, 27, 56),
    (240, 29, 60),
    (256, 15, 32),
    (288, 19, 36),
    (320, 21, 120),
    (352, 21, 44),
    (384, 23, 48),
    (416, 25, 52),
    (448, 29, 168),
    (480, 89, 180),
    (512, 31, 64),
    (576, 65, 96),
    (640, 39, 80),
    (704, 155, 44),
    (768, 217, 48),
    (832, 25, 52),
    (896, 215, 56),
    (960, 29, 60),
    (1024, 31, 64),
    (1152, 35, 72),
    (1280, 199, 240),
    (1408, 43, 88),
    (1536, 71, 48),
    (2048, 57, 96),
    (3072, 233, 480),
    (4096, 31, 64),
    (6144, 263, 480),
];

/// The quadratic permutation polynomial interleaver
/// `Π(i) = (f1·i + f2·i²) mod K`.
#[derive(Clone, Debug)]
pub struct QppInterleaver {
    inner: Interleaver,
    f1: usize,
    f2: usize,
}

impl QppInterleaver {
    /// Builds the QPP interleaver for block size `k`, using the 3GPP table
    /// where available and otherwise searching for valid `(f1, f2)`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8` (3GPP's minimum is 40; 8 is the mathematical floor
    /// we accept for tests).
    pub fn new(k: usize) -> Self {
        assert!(k >= 8, "QPP block size must be at least 8");
        if let Some(&(_, f1, f2)) = QPP_TABLE.iter().find(|&&(kk, _, _)| kk == k) {
            if let Some(q) = Self::try_build(k, f1, f2) {
                return q;
            }
        }
        // Derived family covering the dense ladder of multiples of 64:
        // (k/2 − 1, k/2) is a valid QPP for these sizes (verified by
        // construction below).
        if k.is_multiple_of(64) {
            if let Some(q) = Self::try_build(k, k / 2 - 1, k / 2) {
                return q;
            }
        }
        // Search: f1 odd and coprime with k; f2 a multiple of the distinct
        // prime factors of k (sufficient for a permutation when k is even).
        for f2 in (2..k).step_by(2) {
            for f1 in (3..k).step_by(2) {
                if gcd(f1 as u64, k as u64) != 1 {
                    continue;
                }
                if let Some(q) = Self::try_build(k, f1, f2) {
                    return q;
                }
            }
        }
        unreachable!("a QPP permutation exists for every even k >= 8");
    }

    fn try_build(k: usize, f1: usize, f2: usize) -> Option<Self> {
        let mut perm = Vec::with_capacity(k);
        let mut seen = vec![false; k];
        for i in 0..k {
            // Compute (f1·i + f2·i²) mod k without overflow.
            let i64k = k as u128;
            let v = ((f1 as u128 * i as u128) + (f2 as u128 * i as u128 % i64k * i as u128)) % i64k;
            let v = v as usize;
            if seen[v] {
                return None;
            }
            seen[v] = true;
            perm.push(v as u32);
        }
        Some(QppInterleaver {
            inner: Interleaver::from_permutation(perm),
            f1,
            f2,
        })
    }

    /// Block size.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if the block size is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `(f1, f2)` in use.
    pub fn coefficients(&self) -> (usize, usize) {
        (self.f1, self.f2)
    }

    /// Interleaves a block.
    pub fn apply<T: Copy>(&self, input: &[T]) -> Vec<T> {
        self.inner.apply(input)
    }

    /// Deinterleaves a block.
    pub fn invert<T: Copy>(&self, input: &[T]) -> Vec<T> {
        self.inner.invert(input)
    }
}

/// One constituent-encoder trellis transition.
#[derive(Clone, Copy, Debug)]
struct Transition {
    next: u8,
    parity: u8,
}

/// Precomputed trellis: `TRELLIS[state][input]`.
fn trellis() -> [[Transition; 2]; STATES] {
    let mut t = [[Transition { next: 0, parity: 0 }; 2]; STATES];
    for (s, row) in t.iter_mut().enumerate() {
        let d1 = (s >> 2) & 1;
        let d2 = (s >> 1) & 1;
        let d3 = s & 1;
        for (x, tr) in row.iter_mut().enumerate() {
            let a = x ^ d2 ^ d3; // feedback g0 = 1 + D² + D³
            let parity = a ^ d1 ^ d3; // g1 = 1 + D + D³
            let next = (a << 2) | (d1 << 1) | d2;
            *tr = Transition {
                next: next as u8,
                parity: parity as u8,
            };
        }
    }
    t
}

/// Systematic + two parity streams plus per-encoder tail bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TurboCodeword {
    /// Systematic bits, length `k`.
    pub systematic: Vec<u8>,
    /// Parity from encoder 1, length `k`.
    pub parity1: Vec<u8>,
    /// Parity from encoder 2 (interleaved input), length `k`.
    pub parity2: Vec<u8>,
    /// Encoder-1 tail: `(systematic, parity)` pairs.
    pub tail1: [(u8, u8); TAIL],
    /// Encoder-2 tail: `(systematic, parity)` pairs.
    pub tail2: [(u8, u8); TAIL],
}

impl TurboCodeword {
    /// Total transmitted bits: `3k + 12`.
    pub fn len_bits(&self) -> usize {
        3 * self.systematic.len() + 4 * TAIL
    }

    /// Converts to channel LLRs for a noiseless channel with confidence
    /// `mag` (`+mag` for bit 0, `−mag` for bit 1) — handy for tests.
    pub fn to_llrs(&self, mag: f32) -> TurboLlrs {
        let f = |b: u8| if b == 0 { mag } else { -mag };
        TurboLlrs {
            systematic: self.systematic.iter().map(|&b| f(b)).collect(),
            parity1: self.parity1.iter().map(|&b| f(b)).collect(),
            parity2: self.parity2.iter().map(|&b| f(b)).collect(),
            tail1: self.tail1.map(|(x, p)| (f(x), f(p))),
            tail2: self.tail2.map(|(x, p)| (f(x), f(p))),
        }
    }
}

/// Channel LLRs for a turbo codeword (`ln P(0)/P(1)` convention).
#[derive(Clone, Debug, PartialEq)]
pub struct TurboLlrs {
    /// Systematic LLRs, length `k`.
    pub systematic: Vec<f32>,
    /// Encoder-1 parity LLRs, length `k`.
    pub parity1: Vec<f32>,
    /// Encoder-2 parity LLRs, length `k`.
    pub parity2: Vec<f32>,
    /// Encoder-1 tail `(systematic, parity)` LLRs.
    pub tail1: [(f32, f32); TAIL],
    /// Encoder-2 tail `(systematic, parity)` LLRs.
    pub tail2: [(f32, f32); TAIL],
}

/// The 3GPP turbo encoder for one block size.
#[derive(Clone, Debug)]
pub struct TurboEncoder {
    interleaver: QppInterleaver,
}

impl TurboEncoder {
    /// Creates an encoder for block size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8`.
    pub fn new(k: usize) -> Self {
        TurboEncoder {
            interleaver: QppInterleaver::new(k),
        }
    }

    /// Block size `k`.
    pub fn block_size(&self) -> usize {
        self.interleaver.len()
    }

    /// Encodes `k` information bits into a rate-1/3 codeword with tails.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != k` or any element is not 0 or 1.
    pub fn encode(&self, bits: &[u8]) -> TurboCodeword {
        let k = self.block_size();
        assert_eq!(bits.len(), k, "input must be exactly the block size");
        let interleaved = self.interleaver.apply(bits);
        let (parity1, tail1) = rsc_encode(bits);
        let (parity2, tail2) = rsc_encode(&interleaved);
        TurboCodeword {
            systematic: bits.to_vec(),
            parity1,
            parity2,
            tail1,
            tail2,
        }
    }

    /// The internal interleaver (exposed for decoder reuse and tests).
    pub fn interleaver(&self) -> &QppInterleaver {
        &self.interleaver
    }
}

/// Runs one RSC constituent encoder, returning parity bits and the
/// termination tail.
fn rsc_encode(bits: &[u8]) -> (Vec<u8>, [(u8, u8); TAIL]) {
    let trellis = trellis();
    let mut state = 0usize;
    let mut parity = Vec::with_capacity(bits.len());
    for &x in bits {
        assert!(x <= 1, "bits must be 0 or 1");
        let tr = trellis[state][x as usize];
        parity.push(tr.parity);
        state = tr.next as usize;
    }
    let mut tail = [(0u8, 0u8); TAIL];
    for t in tail.iter_mut() {
        // Feed back the register so the feedback XOR cancels (a = 0),
        // flushing the state to zero in three steps.
        let d2 = (state >> 1) & 1;
        let d3 = state & 1;
        let x = (d2 ^ d3) as u8;
        let tr = trellis[state][x as usize];
        *t = (x, tr.parity);
        state = tr.next as usize;
    }
    debug_assert_eq!(state, 0, "trellis must terminate at the zero state");
    (parity, tail)
}

/// Iterative max-log-MAP turbo decoder.
#[derive(Clone, Debug)]
pub struct TurboDecoder {
    interleaver: QppInterleaver,
    iterations: usize,
}

impl TurboDecoder {
    /// Creates a decoder for block size `k` running `iterations` full
    /// (two-SISO) iterations.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8` or `iterations == 0`.
    pub fn new(k: usize, iterations: usize) -> Self {
        assert!(iterations > 0, "at least one iteration is required");
        TurboDecoder {
            interleaver: QppInterleaver::new(k),
            iterations,
        }
    }

    /// Block size `k`.
    pub fn block_size(&self) -> usize {
        self.interleaver.len()
    }

    /// Decodes channel LLRs into hard information bits.
    ///
    /// # Panics
    ///
    /// Panics if the LLR block sizes do not match `k`.
    pub fn decode(&self, llrs: &TurboLlrs) -> Vec<u8> {
        self.decode_soft(llrs)
            .into_iter()
            .map(|l| if l >= 0.0 { 0 } else { 1 })
            .collect()
    }

    /// Decodes channel LLRs into a-posteriori LLRs for the information bits.
    ///
    /// # Panics
    ///
    /// Panics if the LLR block sizes do not match `k`.
    pub fn decode_soft(&self, llrs: &TurboLlrs) -> Vec<f32> {
        let k = self.block_size();
        assert_eq!(llrs.systematic.len(), k, "systematic length mismatch");
        assert_eq!(llrs.parity1.len(), k, "parity1 length mismatch");
        assert_eq!(llrs.parity2.len(), k, "parity2 length mismatch");

        let sys_interleaved = self.interleaver.apply(&llrs.systematic);
        let mut apriori1 = vec![0.0f32; k];
        let mut extrinsic1 = vec![0.0f32; k];
        let trellis = trellis();

        for _ in 0..self.iterations {
            extrinsic1 = siso_maxlog(
                &trellis,
                &llrs.systematic,
                &llrs.parity1,
                &apriori1,
                &llrs.tail1,
            );
            let apriori2 = self.interleaver.apply(&extrinsic1);
            let extrinsic2 = siso_maxlog(
                &trellis,
                &sys_interleaved,
                &llrs.parity2,
                &apriori2,
                &llrs.tail2,
            );
            apriori1 = self.interleaver.invert(&extrinsic2);
        }

        (0..k)
            .map(|i| llrs.systematic[i] + apriori1[i] + extrinsic1[i])
            .collect()
    }
}

/// One max-log-MAP (BCJR) pass over a terminated RSC trellis.
///
/// Inputs and outputs use the `ln P(0)/P(1)` convention; `sys`/`apriori`
/// refer to the information bit, `par` to the branch parity.
fn siso_maxlog(
    trellis: &[[Transition; 2]; STATES],
    sys: &[f32],
    par: &[f32],
    apriori: &[f32],
    tail: &[(f32, f32); TAIL],
) -> Vec<f32> {
    let k = sys.len();
    let n = k + TAIL;
    const NEG: f32 = -1.0e30;

    // Branch metric for (input u, parity p): +LLR/2 when the bit is 0.
    let half = |l: f32, bit: u8| if bit == 0 { 0.5 * l } else { -0.5 * l };

    // Forward recursion.
    let mut alpha = vec![[NEG; STATES]; n + 1];
    alpha[0][0] = 0.0;
    for i in 0..n {
        let (ls, lp) = if i < k {
            (sys[i] + apriori[i], par[i])
        } else {
            (tail[i - k].0, tail[i - k].1)
        };
        for s in 0..STATES {
            let a = alpha[i][s];
            if a <= NEG {
                continue;
            }
            for u in 0..2u8 {
                // Tail steps have a forced input, but metric-wise we still
                // weigh both branches; the termination constraint enters via
                // beta's zero-state boundary. For exactness we only allow the
                // flush branch during the tail.
                if i >= k {
                    let d2 = (s >> 1) & 1;
                    let d3 = s & 1;
                    if u as usize != (d2 ^ d3) {
                        continue;
                    }
                }
                let tr = trellis[s][u as usize];
                let m = a + half(ls, u) + half(lp, tr.parity);
                let t = &mut alpha[i + 1][tr.next as usize];
                if m > *t {
                    *t = m;
                }
            }
        }
    }

    // Backward recursion.
    #[allow(clippy::needless_range_loop)] // states index parallel arrays
    let mut beta_next = [NEG; STATES];
    beta_next[0] = 0.0; // terminated trellis
    let mut beta_store = vec![[NEG; STATES]; k + 1];
    beta_store[k] = beta_next;
    for i in (k..n).rev() {
        let (ls, lp) = (tail[i - k].0, tail[i - k].1);
        let mut beta = [NEG; STATES];
        for s in 0..STATES {
            let d2 = (s >> 1) & 1;
            let d3 = s & 1;
            let u = (d2 ^ d3) as u8;
            let tr = trellis[s][u as usize];
            let b = beta_next[tr.next as usize];
            if b <= NEG {
                continue;
            }
            let m = b + half(ls, u) + half(lp, tr.parity);
            if m > beta[s] {
                beta[s] = m;
            }
        }
        beta_next = beta;
    }
    beta_store[k] = beta_next;
    for i in (0..k).rev() {
        let ls = sys[i] + apriori[i];
        let lp = par[i];
        let mut beta = [NEG; STATES];
        for s in 0..STATES {
            for u in 0..2u8 {
                let tr = trellis[s][u as usize];
                let b = beta_store[i + 1][tr.next as usize];
                if b <= NEG {
                    continue;
                }
                let m = b + half(ls, u) + half(lp, tr.parity);
                if m > beta[s] {
                    beta[s] = m;
                }
            }
        }
        beta_store[i] = beta;
    }

    // Extrinsic output.
    let mut extrinsic = Vec::with_capacity(k);
    for i in 0..k {
        let ls = sys[i] + apriori[i];
        let lp = par[i];
        let mut best0 = NEG;
        let mut best1 = NEG;
        for s in 0..STATES {
            let a = alpha[i][s];
            if a <= NEG {
                continue;
            }
            for u in 0..2u8 {
                let tr = trellis[s][u as usize];
                let b = beta_store[i + 1][tr.next as usize];
                if b <= NEG {
                    continue;
                }
                let m = a + b + half(lp, tr.parity);
                if u == 0 {
                    if m > best0 {
                        best0 = m;
                    }
                } else if m > best1 {
                    best1 = m;
                }
            }
        }
        // Total APP for bit i is (best0 + ls/2) − (best1 − ls/2);
        // the extrinsic removes systematic and a-priori contributions.
        let app = (best0 + 0.5 * ls) - (best1 - 0.5 * ls);
        extrinsic.push(app - ls);
    }
    extrinsic
}

/// Supported 3GPP table sizes (sorted).
pub fn tabulated_block_sizes() -> Vec<usize> {
    QPP_TABLE.iter().map(|&(k, _, _)| k).collect()
}

/// All supported block sizes: the 3GPP table plus the derived dense
/// ladder of multiples of 64 up to 6144 (sorted, deduplicated). The
/// denser ladder keeps segmentation's padding overhead small, mirroring
/// the full 188-entry standard table's granularity.
pub fn supported_block_sizes() -> Vec<usize> {
    let mut sizes = tabulated_block_sizes();
    sizes.extend((1024..=6144).step_by(64));
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// The nearest supported block size `>= k` (or the maximum, 6144).
pub fn nearest_block_size(k: usize) -> usize {
    supported_block_sizes()
        .into_iter()
        .find(|&s| s >= k)
        .unwrap_or(6144)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_bits(k: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..k).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    #[test]
    fn qpp_table_entries_are_permutations() {
        for &(k, f1, f2) in QPP_TABLE {
            assert!(
                QppInterleaver::try_build(k, f1, f2).is_some(),
                "({k}, {f1}, {f2}) is not a permutation"
            );
        }
    }

    #[test]
    fn qpp_fallback_search_works() {
        // 100 is not in the table.
        let q = QppInterleaver::new(100);
        assert_eq!(q.len(), 100);
        let data: Vec<u32> = (0..100).collect();
        assert_eq!(q.invert(&q.apply(&data)), data);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // states index parallel tables
    fn trellis_is_well_formed() {
        let t = trellis();
        // Every state must be reachable and each input leads to a distinct
        // next state (invertibility of the shift register).
        for s in 0..STATES {
            assert_ne!(t[s][0].next, t[s][1].next, "state {s}");
        }
        // Each state has exactly two predecessors.
        let mut preds = [0; STATES];
        for s in 0..STATES {
            for u in 0..2 {
                preds[t[s][u].next as usize] += 1;
            }
        }
        assert!(preds.iter().all(|&p| p == 2), "{preds:?}");
    }

    #[test]
    fn encoder_terminates_both_trellises() {
        let bits = random_bits(64, 9);
        let (_, tail) = rsc_encode(&bits);
        // rsc_encode has a debug_assert; also check tails are 3 pairs.
        assert_eq!(tail.len(), TAIL);
    }

    #[test]
    fn codeword_rate_is_one_third_plus_tails() {
        let enc = TurboEncoder::new(40);
        let code = enc.encode(&random_bits(40, 1));
        assert_eq!(code.len_bits(), 3 * 40 + 12);
    }

    #[test]
    fn decode_noiseless_round_trip() {
        for k in [40, 64, 104, 256] {
            let bits = random_bits(k, k as u64);
            let enc = TurboEncoder::new(k);
            let dec = TurboDecoder::new(k, 4);
            let out = dec.decode(&enc.encode(&bits).to_llrs(6.0));
            assert_eq!(out, bits, "k={k}");
        }
    }

    #[test]
    fn decode_corrects_channel_noise() {
        // BPSK over AWGN at ~1.5 dB Eb/N0 (rate 1/3) — the turbo decoder
        // should recover the block where an uncoded decision would fail.
        let k = 256;
        let bits = random_bits(k, 77);
        let enc = TurboEncoder::new(k);
        let code = enc.encode(&bits);
        let mut rng = Xoshiro256::seed_from_u64(123);
        let sigma = 0.8f32; // noise std dev per real dimension
        let mut noisy = |b: u8| {
            let tx = if b == 0 { 1.0f32 } else { -1.0 };
            let y = tx + sigma * rng.next_gaussian() as f32;
            2.0 * y / (sigma * sigma)
        };
        let llrs = TurboLlrs {
            systematic: code.systematic.iter().map(|&b| noisy(b)).collect(),
            parity1: code.parity1.iter().map(|&b| noisy(b)).collect(),
            parity2: code.parity2.iter().map(|&b| noisy(b)).collect(),
            tail1: code.tail1.map(|(x, p)| (noisy(x), noisy(p))),
            tail2: code.tail2.map(|(x, p)| (noisy(x), noisy(p))),
        };
        // Check the channel actually flipped some hard decisions.
        let hard_errors = llrs
            .systematic
            .iter()
            .zip(&bits)
            .filter(|(&l, &b)| (l < 0.0) != (b == 1))
            .count();
        assert!(hard_errors > 0, "test should start from a noisy channel");
        let dec = TurboDecoder::new(k, 8);
        assert_eq!(dec.decode(&llrs), bits);
    }

    #[test]
    fn soft_output_magnitude_grows_with_iterations() {
        let k = 64;
        let bits = random_bits(k, 5);
        let code = TurboEncoder::new(k).encode(&bits);
        let llrs = code.to_llrs(2.0);
        let soft1 = TurboDecoder::new(k, 1).decode_soft(&llrs);
        let soft4 = TurboDecoder::new(k, 4).decode_soft(&llrs);
        let mag1: f32 = soft1.iter().map(|l| l.abs()).sum();
        let mag4: f32 = soft4.iter().map(|l| l.abs()).sum();
        assert!(mag4 > mag1, "confidence should grow: {mag1} vs {mag4}");
    }

    #[test]
    fn nearest_block_size_rounds_up() {
        assert_eq!(nearest_block_size(40), 40);
        assert_eq!(nearest_block_size(41), 48);
        assert_eq!(nearest_block_size(2049), 2112); // dense ladder
        assert_eq!(nearest_block_size(7000), 6144);
    }

    #[test]
    fn derived_ladder_sizes_all_work() {
        for k in (1024..=6144).step_by(64) {
            let q = QppInterleaver::new(k);
            assert_eq!(q.len(), k);
        }
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn wrong_input_length_panics() {
        TurboEncoder::new(40).encode(&[0; 39]);
    }
}
