//! Rate-1/3 PCCC turbo codec (TS 36.212 §5.1.3.2).
//!
//! The paper's benchmark passes turbo decoding through because base
//! stations run it on dedicated hardware; the pipeline stage is explicitly
//! designed to be replaceable. This module provides the real thing — the
//! 3GPP parallel-concatenated convolutional code with the 8-state
//! constituent encoders `g0 = 1 + D² + D³` (feedback) and
//! `g1 = 1 + D + D³` (parity), a QPP internal interleaver, trellis
//! termination, and an iterative max-log-MAP decoder.
//!
//! # Example
//!
//! ```
//! use lte_dsp::turbo::{TurboDecoder, TurboEncoder};
//!
//! let k = 64;
//! let encoder = TurboEncoder::new(k);
//! let bits: Vec<u8> = (0..k).map(|i| ((i * 7) % 3 == 0) as u8).collect();
//! let code = encoder.encode(&bits);
//!
//! // Noiseless channel: LLR +8 for bit 0, −8 for bit 1.
//! let llrs = code.to_llrs(8.0);
//! let decoder = TurboDecoder::new(k, 4);
//! assert_eq!(decoder.decode(&llrs), bits);
//! ```

use crate::interleave::Interleaver;
use crate::math::gcd;

/// Number of trellis states of each constituent encoder.
pub(crate) const STATES: usize = 8;
/// Tail steps used to terminate each constituent trellis.
const TAIL: usize = 3;

/// QPP parameters `(f1, f2)` for selected block sizes from TS 36.212
/// Table 5.1.3-3. Sizes not listed fall back to a validated search (see
/// [`QppInterleaver::new`]); either way the result is checked to be a
/// permutation.
const QPP_TABLE: &[(usize, usize, usize)] = &[
    (40, 3, 10),
    (48, 7, 12),
    (56, 19, 42),
    (64, 7, 16),
    (72, 7, 18),
    (80, 11, 20),
    (88, 5, 22),
    (96, 11, 24),
    (104, 7, 26),
    (112, 41, 84),
    (120, 103, 90),
    (128, 15, 32),
    (144, 17, 108),
    (160, 21, 120),
    (176, 21, 44),
    (192, 23, 48),
    (208, 27, 52),
    (224, 27, 56),
    (240, 29, 60),
    (256, 15, 32),
    (288, 19, 36),
    (320, 21, 120),
    (352, 21, 44),
    (384, 23, 48),
    (416, 25, 52),
    (448, 29, 168),
    (480, 89, 180),
    (512, 31, 64),
    (576, 65, 96),
    (640, 39, 80),
    (704, 155, 44),
    (768, 217, 48),
    (832, 25, 52),
    (896, 215, 56),
    (960, 29, 60),
    (1024, 31, 64),
    (1152, 35, 72),
    (1280, 199, 240),
    (1408, 43, 88),
    (1536, 71, 48),
    (2048, 57, 96),
    (3072, 233, 480),
    (4096, 31, 64),
    (6144, 263, 480),
];

/// The quadratic permutation polynomial interleaver
/// `Π(i) = (f1·i + f2·i²) mod K`.
#[derive(Clone, Debug)]
pub struct QppInterleaver {
    inner: Interleaver,
    f1: usize,
    f2: usize,
}

impl QppInterleaver {
    /// Builds the QPP interleaver for block size `k`, using the 3GPP table
    /// where available and otherwise searching for valid `(f1, f2)`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8` (3GPP's minimum is 40; 8 is the mathematical floor
    /// we accept for tests).
    pub fn new(k: usize) -> Self {
        assert!(k >= 8, "QPP block size must be at least 8");
        if let Some(&(_, f1, f2)) = QPP_TABLE.iter().find(|&&(kk, _, _)| kk == k) {
            if let Some(q) = Self::try_build(k, f1, f2) {
                return q;
            }
        }
        // Derived family covering the dense ladder of multiples of 64:
        // (k/2 − 1, k/2) is a valid QPP for these sizes (verified by
        // construction below).
        if k.is_multiple_of(64) {
            if let Some(q) = Self::try_build(k, k / 2 - 1, k / 2) {
                return q;
            }
        }
        // Search: f1 odd and coprime with k; f2 a multiple of the distinct
        // prime factors of k (sufficient for a permutation when k is even).
        for f2 in (2..k).step_by(2) {
            for f1 in (3..k).step_by(2) {
                if gcd(f1 as u64, k as u64) != 1 {
                    continue;
                }
                if let Some(q) = Self::try_build(k, f1, f2) {
                    return q;
                }
            }
        }
        unreachable!("a QPP permutation exists for every even k >= 8");
    }

    fn try_build(k: usize, f1: usize, f2: usize) -> Option<Self> {
        let mut perm = Vec::with_capacity(k);
        let mut seen = vec![false; k];
        for i in 0..k {
            // Compute (f1·i + f2·i²) mod k without overflow.
            let i64k = k as u128;
            let v = ((f1 as u128 * i as u128) + (f2 as u128 * i as u128 % i64k * i as u128)) % i64k;
            let v = v as usize;
            if seen[v] {
                return None;
            }
            seen[v] = true;
            perm.push(v as u32);
        }
        Some(QppInterleaver {
            inner: Interleaver::from_permutation(perm),
            f1,
            f2,
        })
    }

    /// Block size.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if the block size is zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// `(f1, f2)` in use.
    pub fn coefficients(&self) -> (usize, usize) {
        (self.f1, self.f2)
    }

    /// Interleaves a block.
    pub fn apply<T: Copy>(&self, input: &[T]) -> Vec<T> {
        self.inner.apply(input)
    }

    /// Deinterleaves a block.
    pub fn invert<T: Copy>(&self, input: &[T]) -> Vec<T> {
        self.inner.invert(input)
    }

    /// Interleaves into a caller-provided buffer (no allocation).
    pub fn apply_into<T: Copy>(&self, input: &[T], out: &mut [T]) {
        self.inner.apply_into(input, out)
    }

    /// Deinterleaves into a caller-provided buffer (no allocation).
    pub fn invert_into<T: Copy>(&self, input: &[T], out: &mut [T]) {
        self.inner.invert_into(input, out)
    }
}

/// One constituent-encoder trellis transition.
#[derive(Clone, Copy, Debug)]
struct Transition {
    next: u8,
    parity: u8,
}

/// Precomputed trellis: `TRELLIS[state][input]`.
fn trellis() -> [[Transition; 2]; STATES] {
    let mut t = [[Transition { next: 0, parity: 0 }; 2]; STATES];
    for (s, row) in t.iter_mut().enumerate() {
        let d1 = (s >> 2) & 1;
        let d2 = (s >> 1) & 1;
        let d3 = s & 1;
        for (x, tr) in row.iter_mut().enumerate() {
            let a = x ^ d2 ^ d3; // feedback g0 = 1 + D² + D³
            let parity = a ^ d1 ^ d3; // g1 = 1 + D + D³
            let next = (a << 2) | (d1 << 1) | d2;
            *tr = Transition {
                next: next as u8,
                parity: parity as u8,
            };
        }
    }
    t
}

/// Systematic + two parity streams plus per-encoder tail bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TurboCodeword {
    /// Systematic bits, length `k`.
    pub systematic: Vec<u8>,
    /// Parity from encoder 1, length `k`.
    pub parity1: Vec<u8>,
    /// Parity from encoder 2 (interleaved input), length `k`.
    pub parity2: Vec<u8>,
    /// Encoder-1 tail: `(systematic, parity)` pairs.
    pub tail1: [(u8, u8); TAIL],
    /// Encoder-2 tail: `(systematic, parity)` pairs.
    pub tail2: [(u8, u8); TAIL],
}

impl TurboCodeword {
    /// Total transmitted bits: `3k + 12`.
    pub fn len_bits(&self) -> usize {
        3 * self.systematic.len() + 4 * TAIL
    }

    /// Converts to channel LLRs for a noiseless channel with confidence
    /// `mag` (`+mag` for bit 0, `−mag` for bit 1) — handy for tests.
    pub fn to_llrs(&self, mag: f32) -> TurboLlrs {
        let f = |b: u8| if b == 0 { mag } else { -mag };
        TurboLlrs {
            systematic: self.systematic.iter().map(|&b| f(b)).collect(),
            parity1: self.parity1.iter().map(|&b| f(b)).collect(),
            parity2: self.parity2.iter().map(|&b| f(b)).collect(),
            tail1: self.tail1.map(|(x, p)| (f(x), f(p))),
            tail2: self.tail2.map(|(x, p)| (f(x), f(p))),
        }
    }
}

/// Channel LLRs for a turbo codeword (`ln P(0)/P(1)` convention).
///
/// `Default` gives an empty (`k = 0`) instance meant as a reusable
/// staging buffer for [`crate::rate_match::RateMatcher::accumulate_llrs_into`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TurboLlrs {
    /// Systematic LLRs, length `k`.
    pub systematic: Vec<f32>,
    /// Encoder-1 parity LLRs, length `k`.
    pub parity1: Vec<f32>,
    /// Encoder-2 parity LLRs, length `k`.
    pub parity2: Vec<f32>,
    /// Encoder-1 tail `(systematic, parity)` LLRs.
    pub tail1: [(f32, f32); TAIL],
    /// Encoder-2 tail `(systematic, parity)` LLRs.
    pub tail2: [(f32, f32); TAIL],
}

/// The 3GPP turbo encoder for one block size.
#[derive(Clone, Debug)]
pub struct TurboEncoder {
    interleaver: QppInterleaver,
}

impl TurboEncoder {
    /// Creates an encoder for block size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8`.
    pub fn new(k: usize) -> Self {
        TurboEncoder {
            interleaver: QppInterleaver::new(k),
        }
    }

    /// Block size `k`.
    pub fn block_size(&self) -> usize {
        self.interleaver.len()
    }

    /// Encodes `k` information bits into a rate-1/3 codeword with tails.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != k` or any element is not 0 or 1.
    pub fn encode(&self, bits: &[u8]) -> TurboCodeword {
        let k = self.block_size();
        assert_eq!(bits.len(), k, "input must be exactly the block size");
        let interleaved = self.interleaver.apply(bits);
        let (parity1, tail1) = rsc_encode(bits);
        let (parity2, tail2) = rsc_encode(&interleaved);
        TurboCodeword {
            systematic: bits.to_vec(),
            parity1,
            parity2,
            tail1,
            tail2,
        }
    }

    /// The internal interleaver (exposed for decoder reuse and tests).
    pub fn interleaver(&self) -> &QppInterleaver {
        &self.interleaver
    }
}

/// Runs one RSC constituent encoder, returning parity bits and the
/// termination tail.
fn rsc_encode(bits: &[u8]) -> (Vec<u8>, [(u8, u8); TAIL]) {
    let trellis = trellis();
    let mut state = 0usize;
    let mut parity = Vec::with_capacity(bits.len());
    for &x in bits {
        assert!(x <= 1, "bits must be 0 or 1");
        let tr = trellis[state][x as usize];
        parity.push(tr.parity);
        state = tr.next as usize;
    }
    let mut tail = [(0u8, 0u8); TAIL];
    for t in tail.iter_mut() {
        // Feed back the register so the feedback XOR cancels (a = 0),
        // flushing the state to zero in three steps.
        let d2 = (state >> 1) & 1;
        let d3 = state & 1;
        let x = (d2 ^ d3) as u8;
        let tr = trellis[state][x as usize];
        *t = (x, tr.parity);
        state = tr.next as usize;
    }
    debug_assert_eq!(state, 0, "trellis must terminate at the zero state");
    (parity, tail)
}

/// Unreachable-path sentinel for the max-log recursions.
///
/// Finite rather than `-inf` so that the guard-free gather form below can
/// add branch metrics to unreachable states without producing NaN
/// (`-inf + inf`): for any metric `|x|` below one ulp of 1e30 (~7.6e22),
/// `NEG + x == NEG` exactly, so unreachable lanes stay pinned at the
/// sentinel and never win a max against a reachable path.
pub(crate) const NEG: f32 = -1.0e30;

/// Predecessor state feeding next-state `t` whose oldest register bit
/// (the one shifted out) is `d3`: `ALPHA_PRED[d3][t]`. Every state has
/// exactly one even (`d3 = 0`) and one odd (`d3 = 1`) predecessor, which
/// is what makes the forward recursion two vector gathers.
pub(crate) const ALPHA_PRED: [[usize; STATES]; 2] =
    [[0, 2, 4, 6, 0, 2, 4, 6], [1, 3, 5, 7, 1, 3, 5, 7]];

/// Information bit on the branch `ALPHA_PRED[d3][t] → t`
/// (`u = t2 ^ t0 ^ d3` with `t = (t2,t1,t0)`).
pub(crate) const ALPHA_INPUT: [[u8; STATES]; 2] =
    [[0, 1, 0, 1, 1, 0, 1, 0], [1, 0, 1, 0, 0, 1, 0, 1]];

/// Parity bit on the branch `ALPHA_PRED[d3][t] → t` (`p = t2 ^ t1 ^ d3`).
pub(crate) const ALPHA_PARITY: [[u8; STATES]; 2] =
    [[0, 0, 1, 1, 1, 1, 0, 0], [1, 1, 0, 0, 0, 0, 1, 1]];

/// Successor state `NEXT_STATE[u][s]` of the constituent encoder
/// (`next = (u^d2^d3, d1, d2)`), used by the backward recursion and the
/// LLR extraction as vector gathers over the next-step column.
pub(crate) const NEXT_STATE: [[usize; STATES]; 2] =
    [[0, 4, 5, 1, 2, 6, 7, 3], [4, 0, 1, 5, 6, 2, 3, 7]];

/// Parity bit on the branch `s → NEXT_STATE[u][s]` (`p = u ^ d1 ^ d2`).
pub(crate) const BRANCH_PARITY: [[u8; STATES]; 2] =
    [[0, 0, 1, 1, 1, 1, 0, 0], [1, 1, 0, 0, 0, 0, 1, 1]];

/// `+h` when the branch bit is 0, `-h` (a sign-bit flip, the scalar twin
/// of the vector XOR-with-`-0.0`) when it is 1.
#[inline(always)]
fn signed(h: f32, bit: u8) -> f32 {
    if bit == 0 {
        h
    } else {
        -h
    }
}

/// Reusable scratch for the iterative decoder: the per-iteration LLR
/// vectors plus the flat state-major `alpha`/`beta` metric planes
/// (`metric[i * 8 + state]`, one cache-aligned-enough 8-lane row per
/// trellis step). Grown on first use per block size and then reused, so
/// a warm workspace makes [`TurboDecoder::decode_into`] allocation-free.
#[derive(Clone, Debug, Default)]
pub struct TurboWorkspace {
    sys_interleaved: Vec<f32>,
    apriori1: Vec<f32>,
    apriori2: Vec<f32>,
    extrinsic1: Vec<f32>,
    extrinsic2: Vec<f32>,
    next_apriori: Vec<f32>,
    alpha: Vec<f32>,
    beta: Vec<f32>,
    app: Vec<f32>,
}

impl TurboWorkspace {
    /// Creates an empty workspace; buffers grow on first decode.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, k: usize) {
        self.sys_interleaved.resize(k, 0.0);
        self.apriori1.resize(k, 0.0);
        self.apriori2.resize(k, 0.0);
        self.extrinsic1.resize(k, 0.0);
        self.extrinsic2.resize(k, 0.0);
        self.next_apriori.resize(k, 0.0);
        // alpha/beta are sized inside the SISO pass.
    }
}

/// Iterative max-log-MAP turbo decoder.
#[derive(Clone, Debug)]
pub struct TurboDecoder {
    interleaver: QppInterleaver,
    iterations: usize,
    early_termination: bool,
}

impl TurboDecoder {
    /// Creates a decoder for block size `k` running `iterations` full
    /// (two-SISO) iterations.
    ///
    /// # Panics
    ///
    /// Panics if `k < 8` or `iterations == 0`.
    pub fn new(k: usize, iterations: usize) -> Self {
        assert!(iterations > 0, "at least one iteration is required");
        TurboDecoder {
            interleaver: QppInterleaver::new(k),
            iterations,
            early_termination: false,
        }
    }

    /// Enables deterministic early termination: the iteration loop exits
    /// as soon as the deinterleaved extrinsic feedback reaches a bitwise
    /// fixed point (`apriori1` identical, bit for bit, to the previous
    /// iteration's). Because each iteration is a pure function of
    /// `(channel LLRs, apriori1)`, a repeated `apriori1` reproduces the
    /// same `extrinsic1` and `apriori1` for every remaining iteration, so
    /// the final APP — `sys + apriori1 + extrinsic1` — is provably
    /// identical to running all `iterations`.
    pub fn with_early_termination(mut self) -> Self {
        self.early_termination = true;
        self
    }

    /// Whether deterministic early termination is enabled.
    pub fn early_termination(&self) -> bool {
        self.early_termination
    }

    /// Configured full-iteration count.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Block size `k`.
    pub fn block_size(&self) -> usize {
        self.interleaver.len()
    }

    /// Decodes channel LLRs into hard information bits.
    ///
    /// # Panics
    ///
    /// Panics if the LLR block sizes do not match `k`.
    pub fn decode(&self, llrs: &TurboLlrs) -> Vec<u8> {
        let mut ws = TurboWorkspace::new();
        let mut out = Vec::new();
        self.decode_into(llrs, &mut ws, &mut out);
        out
    }

    /// Decodes channel LLRs into a-posteriori LLRs for the information bits.
    ///
    /// # Panics
    ///
    /// Panics if the LLR block sizes do not match `k`.
    pub fn decode_soft(&self, llrs: &TurboLlrs) -> Vec<f32> {
        let mut ws = TurboWorkspace::new();
        let mut out = Vec::new();
        self.decode_soft_into(llrs, &mut ws, &mut out);
        out
    }

    /// [`decode`](Self::decode) into caller-provided buffers; with a warm
    /// workspace and sufficient `out` capacity this allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the LLR block sizes do not match `k`.
    pub fn decode_into(&self, llrs: &TurboLlrs, ws: &mut TurboWorkspace, out: &mut Vec<u8>) {
        let mut app = std::mem::take(&mut ws.app);
        self.decode_soft_into(llrs, ws, &mut app);
        out.clear();
        out.extend(app.iter().map(|&l| if l >= 0.0 { 0u8 } else { 1 }));
        ws.app = app;
    }

    /// [`decode_soft`](Self::decode_soft) into caller-provided buffers;
    /// with a warm workspace and sufficient `out` capacity this allocates
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if the LLR block sizes do not match `k`.
    pub fn decode_soft_into(&self, llrs: &TurboLlrs, ws: &mut TurboWorkspace, out: &mut Vec<f32>) {
        let k = self.block_size();
        assert_eq!(llrs.systematic.len(), k, "systematic length mismatch");
        assert_eq!(llrs.parity1.len(), k, "parity1 length mismatch");
        assert_eq!(llrs.parity2.len(), k, "parity2 length mismatch");

        ws.prepare(k);
        let TurboWorkspace {
            sys_interleaved,
            apriori1,
            apriori2,
            extrinsic1,
            extrinsic2,
            next_apriori,
            alpha,
            beta,
            ..
        } = ws;
        self.interleaver
            .apply_into(&llrs.systematic, sys_interleaved);
        apriori1.fill(0.0);

        for _ in 0..self.iterations {
            siso_maxlog_into(
                &llrs.systematic,
                &llrs.parity1,
                apriori1,
                &llrs.tail1,
                alpha,
                beta,
                extrinsic1,
            );
            self.interleaver.apply_into(extrinsic1, apriori2);
            siso_maxlog_into(
                sys_interleaved,
                &llrs.parity2,
                apriori2,
                &llrs.tail2,
                alpha,
                beta,
                extrinsic2,
            );
            self.interleaver.invert_into(extrinsic2, next_apriori);
            let converged = self.early_termination
                && next_apriori
                    .iter()
                    .zip(apriori1.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            std::mem::swap(apriori1, next_apriori);
            if converged {
                break;
            }
        }

        out.clear();
        out.reserve(k);
        for i in 0..k {
            out.push(llrs.systematic[i] + apriori1[i] + extrinsic1[i]);
        }
    }
}

/// Runs one SISO pass with zero a-priori input and exposes the raw
/// `alpha`/`beta` metric planes and extrinsic output — the conformance
/// hook that pins each turbo sub-kernel (not just the final bits) on
/// both dispatch paths.
pub fn siso_probe<'w>(
    llrs: &TurboLlrs,
    ws: &'w mut TurboWorkspace,
) -> (&'w [f32], &'w [f32], &'w [f32]) {
    let k = llrs.systematic.len();
    assert_eq!(llrs.parity1.len(), k, "parity1 length mismatch");
    ws.prepare(k);
    let TurboWorkspace {
        apriori1,
        extrinsic1,
        alpha,
        beta,
        ..
    } = ws;
    apriori1.fill(0.0);
    siso_maxlog_into(
        &llrs.systematic,
        &llrs.parity1,
        apriori1,
        &llrs.tail1,
        alpha,
        beta,
        extrinsic1,
    );
    (alpha.as_slice(), beta.as_slice(), extrinsic1.as_slice())
}

/// One max-log-MAP (BCJR) pass over a terminated RSC trellis, writing
/// into workspace buffers.
///
/// Inputs and outputs use the `ln P(0)/P(1)` convention; `sys`/`apriori`
/// refer to the information bit, `par` to the branch parity. The three
/// hot loops (forward, backward, extrinsic) are gather-form over the
/// 8-state rows — [`crate::simd`] runs the same operation DAG with each
/// row in one AVX2 register — while the three tail steps stay scalar.
fn siso_maxlog_into(
    sys: &[f32],
    par: &[f32],
    apriori: &[f32],
    tail: &[(f32, f32); TAIL],
    alpha: &mut Vec<f32>,
    beta: &mut Vec<f32>,
    extrinsic: &mut [f32],
) {
    let k = sys.len();
    let n = k + TAIL;
    debug_assert_eq!(par.len(), k);
    debug_assert_eq!(apriori.len(), k);
    debug_assert_eq!(extrinsic.len(), k);

    // Both recursions over the information section: alpha rows 1..=k
    // forward, beta rows k-1..=0 backward. The walks are completely
    // independent (alpha reads only earlier alpha rows, beta only later
    // beta rows), so the vector kernel interleaves them in one loop —
    // two dependency chains in flight instead of one, with each row's
    // operation DAG unchanged. The scalar reference keeps the two
    // separate loops; independence makes the results identical.
    alpha.resize((n + 1) * STATES, 0.0);
    alpha[..STATES].copy_from_slice(&[0.0, NEG, NEG, NEG, NEG, NEG, NEG, NEG]);
    beta.resize((k + 1) * STATES, 0.0);
    beta_tail(beta, tail, k);
    if !crate::simd::turbo_alpha_beta(sys, par, apriori, alpha, beta) {
        scalar_alpha(sys, par, apriori, alpha);
        scalar_beta(sys, par, apriori, beta);
    }
    // The three forced-flush tail steps extend alpha past row k; they
    // only read row k, so they run after the fused kernel.
    alpha_tail(alpha, tail, k);

    if !crate::simd::turbo_extrinsic(sys, par, apriori, alpha, beta, extrinsic) {
        scalar_extrinsic(sys, par, apriori, alpha, beta, extrinsic);
    }
}

/// Scalar forward recursion over the information section, in gather form:
/// `alpha[i+1][t] = max over d3 of alpha[i][pred] + branch metric`, with
/// the max seeded at [`NEG`] and candidates taken in `d3 = 0, 1` order —
/// the exact DAG of the vector kernel.
pub(crate) fn scalar_alpha(sys: &[f32], par: &[f32], apriori: &[f32], alpha: &mut [f32]) {
    for i in 0..sys.len() {
        let hs = 0.5 * (sys[i] + apriori[i]);
        let hp = 0.5 * par[i];
        let (prev, rest) = alpha[i * STATES..].split_at_mut(STATES);
        let next = &mut rest[..STATES];
        for t in 0..STATES {
            let c0 = (prev[ALPHA_PRED[0][t]] + signed(hs, ALPHA_INPUT[0][t]))
                + signed(hp, ALPHA_PARITY[0][t]);
            let c1 = (prev[ALPHA_PRED[1][t]] + signed(hs, ALPHA_INPUT[1][t]))
                + signed(hp, ALPHA_PARITY[1][t]);
            let mut best = NEG;
            if c0 > best {
                best = c0;
            }
            if c1 > best {
                best = c1;
            }
            next[t] = best;
        }
    }
}

/// The three forced-flush tail steps of the forward recursion (scalar on
/// both dispatch paths; 24 branches total, not worth a vector twin).
fn alpha_tail(alpha: &mut [f32], tail: &[(f32, f32); TAIL], k: usize) {
    for (j, &(ls, lp)) in tail.iter().enumerate() {
        let hs = 0.5 * ls;
        let hp = 0.5 * lp;
        let (prev, rest) = alpha[(k + j) * STATES..].split_at_mut(STATES);
        let next = &mut rest[..STATES];
        next.fill(NEG);
        for (s, &a) in prev.iter().enumerate() {
            if a <= NEG {
                continue;
            }
            let d1 = (s >> 2) & 1;
            let d2 = (s >> 1) & 1;
            let d3 = s & 1;
            // Forced flush input cancels the feedback (a = 0).
            let u = (d2 ^ d3) as u8;
            let parity = (u as usize ^ d1 ^ d2) as u8;
            let nxt = (d1 << 1) | d2;
            let m = (a + signed(hs, u)) + signed(hp, parity);
            if m > next[nxt] {
                next[nxt] = m;
            }
        }
    }
}

/// Seeds `beta[k]` by walking the three forced-flush tail steps backward
/// from the terminated zero state (scalar on both dispatch paths).
fn beta_tail(beta: &mut [f32], tail: &[(f32, f32); TAIL], k: usize) {
    let mut next = [NEG; STATES];
    next[0] = 0.0; // terminated trellis
    for &(ls, lp) in tail.iter().rev() {
        let hs = 0.5 * ls;
        let hp = 0.5 * lp;
        let mut row = [NEG; STATES];
        for (s, r) in row.iter_mut().enumerate() {
            let d1 = (s >> 2) & 1;
            let d2 = (s >> 1) & 1;
            let d3 = s & 1;
            let u = (d2 ^ d3) as u8;
            let parity = (u as usize ^ d1 ^ d2) as u8;
            let nxt = (d1 << 1) | d2;
            let b = next[nxt];
            if b <= NEG {
                continue;
            }
            let m = (b + signed(hs, u)) + signed(hp, parity);
            if m > *r {
                *r = m;
            }
        }
        next = row;
    }
    beta[k * STATES..(k + 1) * STATES].copy_from_slice(&next);
}

/// Scalar backward recursion over the information section, in gather
/// form: `beta[i][s] = max over u of beta[i+1][next] + branch metric`,
/// candidates in `u = 0, 1` order — the exact DAG of the vector kernel.
pub(crate) fn scalar_beta(sys: &[f32], par: &[f32], apriori: &[f32], beta: &mut [f32]) {
    for i in (0..sys.len()).rev() {
        let hs = 0.5 * (sys[i] + apriori[i]);
        let hp = 0.5 * par[i];
        let (row, rest) = beta[i * STATES..].split_at_mut(STATES);
        let next = &rest[..STATES];
        for s in 0..STATES {
            let c0 = (next[NEXT_STATE[0][s]] + hs) + signed(hp, BRANCH_PARITY[0][s]);
            let c1 = (next[NEXT_STATE[1][s]] + (-hs)) + signed(hp, BRANCH_PARITY[1][s]);
            let mut best = NEG;
            if c0 > best {
                best = c0;
            }
            if c1 > best {
                best = c1;
            }
            row[s] = best;
        }
    }
}

/// Scalar LLR extraction: per step, the 8 branch metrics for `u = 0` and
/// `u = 1` are formed in gather form and reduced by [`finish_llr`].
pub(crate) fn scalar_extrinsic(
    sys: &[f32],
    par: &[f32],
    apriori: &[f32],
    alpha: &[f32],
    beta: &[f32],
    extrinsic: &mut [f32],
) {
    let mut m0 = [0f32; STATES];
    let mut m1 = [0f32; STATES];
    for i in 0..sys.len() {
        let hp = 0.5 * par[i];
        let a = &alpha[i * STATES..(i + 1) * STATES];
        let b = &beta[(i + 1) * STATES..(i + 2) * STATES];
        for s in 0..STATES {
            m0[s] = (a[s] + b[NEXT_STATE[0][s]]) + signed(hp, BRANCH_PARITY[0][s]);
            m1[s] = (a[s] + b[NEXT_STATE[1][s]]) + signed(hp, BRANCH_PARITY[1][s]);
        }
        extrinsic[i] = finish_llr(&m0, &m1, sys[i] + apriori[i]);
    }
}

/// `if cand > acc { cand } else { acc }` — the one max primitive both
/// dispatch paths reduce with. Candidate-first `MAXPS` has exactly these
/// semantics (ties, signed zeros, and NaNs all resolve to the
/// accumulator), so the vector tree in [`crate::simd`] matches this
/// scalar fold bit-for-bit.
#[inline(always)]
pub(crate) fn pick(acc: f32, cand: f32) -> f32 {
    if cand > acc {
        cand
    } else {
        acc
    }
}

/// Balanced-tree max over the 8 branch metrics, seeded at [`NEG`]:
/// adjacent lane pairs, then quads, then halves — the order an in-register
/// shuffle/max ladder reduces in, so the vector kernel never has to spill
/// its metric rows to memory to match the scalar reduction.
#[inline(always)]
pub(crate) fn reduce_states(m: &[f32; STATES]) -> f32 {
    let x01 = pick(m[0], m[1]);
    let x23 = pick(m[2], m[3]);
    let x45 = pick(m[4], m[5]);
    let x67 = pick(m[6], m[7]);
    let lo = pick(x01, x23);
    let hi = pick(x45, x67);
    pick(NEG, pick(lo, hi))
}

/// Tree max reduction plus APP assembly; the vector kernel runs the
/// identical tree in-register (see [`reduce_states`]), so the reduction
/// order is the same on both dispatch paths by construction.
pub(crate) fn finish_llr(m0: &[f32; STATES], m1: &[f32; STATES], ls: f32) -> f32 {
    let best0 = reduce_states(m0);
    let best1 = reduce_states(m1);
    // Total APP for bit i is (best0 + ls/2) − (best1 − ls/2);
    // the extrinsic removes systematic and a-priori contributions.
    let app = (best0 + 0.5 * ls) - (best1 - 0.5 * ls);
    app - ls
}

/// Supported 3GPP table sizes (sorted).
pub fn tabulated_block_sizes() -> Vec<usize> {
    QPP_TABLE.iter().map(|&(k, _, _)| k).collect()
}

/// All supported block sizes: the 3GPP table plus the derived dense
/// ladder of multiples of 64 up to 6144 (sorted, deduplicated). The
/// denser ladder keeps segmentation's padding overhead small, mirroring
/// the full 188-entry standard table's granularity.
pub fn supported_block_sizes() -> Vec<usize> {
    supported_block_sizes_cached().to_vec()
}

/// [`supported_block_sizes`] as a borrowed static table — the form the
/// receiver's steady-state segmentation lookups use, since it never
/// touches the heap after the first call.
pub fn supported_block_sizes_cached() -> &'static [usize] {
    static SIZES: std::sync::OnceLock<Vec<usize>> = std::sync::OnceLock::new();
    SIZES.get_or_init(|| {
        let mut sizes = tabulated_block_sizes();
        sizes.extend((1024..=6144).step_by(64));
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    })
}

/// The nearest supported block size `>= k` (or the maximum, 6144).
pub fn nearest_block_size(k: usize) -> usize {
    supported_block_sizes_cached()
        .iter()
        .copied()
        .find(|&s| s >= k)
        .unwrap_or(6144)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_bits(k: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..k).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    #[test]
    fn qpp_table_entries_are_permutations() {
        for &(k, f1, f2) in QPP_TABLE {
            assert!(
                QppInterleaver::try_build(k, f1, f2).is_some(),
                "({k}, {f1}, {f2}) is not a permutation"
            );
        }
    }

    #[test]
    fn qpp_fallback_search_works() {
        // 100 is not in the table.
        let q = QppInterleaver::new(100);
        assert_eq!(q.len(), 100);
        let data: Vec<u32> = (0..100).collect();
        assert_eq!(q.invert(&q.apply(&data)), data);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // states index parallel tables
    fn trellis_is_well_formed() {
        let t = trellis();
        // Every state must be reachable and each input leads to a distinct
        // next state (invertibility of the shift register).
        for s in 0..STATES {
            assert_ne!(t[s][0].next, t[s][1].next, "state {s}");
        }
        // Each state has exactly two predecessors.
        let mut preds = [0; STATES];
        for s in 0..STATES {
            for u in 0..2 {
                preds[t[s][u].next as usize] += 1;
            }
        }
        assert!(preds.iter().all(|&p| p == 2), "{preds:?}");
    }

    #[test]
    fn encoder_terminates_both_trellises() {
        let bits = random_bits(64, 9);
        let (_, tail) = rsc_encode(&bits);
        // rsc_encode has a debug_assert; also check tails are 3 pairs.
        assert_eq!(tail.len(), TAIL);
    }

    #[test]
    fn codeword_rate_is_one_third_plus_tails() {
        let enc = TurboEncoder::new(40);
        let code = enc.encode(&random_bits(40, 1));
        assert_eq!(code.len_bits(), 3 * 40 + 12);
    }

    #[test]
    fn decode_noiseless_round_trip() {
        for k in [40, 64, 104, 256] {
            let bits = random_bits(k, k as u64);
            let enc = TurboEncoder::new(k);
            let dec = TurboDecoder::new(k, 4);
            let out = dec.decode(&enc.encode(&bits).to_llrs(6.0));
            assert_eq!(out, bits, "k={k}");
        }
    }

    #[test]
    fn decode_corrects_channel_noise() {
        // BPSK over AWGN at ~1.5 dB Eb/N0 (rate 1/3) — the turbo decoder
        // should recover the block where an uncoded decision would fail.
        let k = 256;
        let bits = random_bits(k, 77);
        let enc = TurboEncoder::new(k);
        let code = enc.encode(&bits);
        let mut rng = Xoshiro256::seed_from_u64(123);
        let sigma = 0.8f32; // noise std dev per real dimension
        let mut noisy = |b: u8| {
            let tx = if b == 0 { 1.0f32 } else { -1.0 };
            let y = tx + sigma * rng.next_gaussian() as f32;
            2.0 * y / (sigma * sigma)
        };
        let llrs = TurboLlrs {
            systematic: code.systematic.iter().map(|&b| noisy(b)).collect(),
            parity1: code.parity1.iter().map(|&b| noisy(b)).collect(),
            parity2: code.parity2.iter().map(|&b| noisy(b)).collect(),
            tail1: code.tail1.map(|(x, p)| (noisy(x), noisy(p))),
            tail2: code.tail2.map(|(x, p)| (noisy(x), noisy(p))),
        };
        // Check the channel actually flipped some hard decisions.
        let hard_errors = llrs
            .systematic
            .iter()
            .zip(&bits)
            .filter(|(&l, &b)| (l < 0.0) != (b == 1))
            .count();
        assert!(hard_errors > 0, "test should start from a noisy channel");
        let dec = TurboDecoder::new(k, 8);
        assert_eq!(dec.decode(&llrs), bits);
    }

    #[test]
    fn soft_output_magnitude_grows_with_iterations() {
        let k = 64;
        let bits = random_bits(k, 5);
        let code = TurboEncoder::new(k).encode(&bits);
        let llrs = code.to_llrs(2.0);
        let soft1 = TurboDecoder::new(k, 1).decode_soft(&llrs);
        let soft4 = TurboDecoder::new(k, 4).decode_soft(&llrs);
        let mag1: f32 = soft1.iter().map(|l| l.abs()).sum();
        let mag4: f32 = soft4.iter().map(|l| l.abs()).sum();
        assert!(mag4 > mag1, "confidence should grow: {mag1} vs {mag4}");
    }

    #[test]
    fn nearest_block_size_rounds_up() {
        assert_eq!(nearest_block_size(40), 40);
        assert_eq!(nearest_block_size(41), 48);
        assert_eq!(nearest_block_size(2049), 2112); // dense ladder
        assert_eq!(nearest_block_size(7000), 6144);
    }

    #[test]
    fn derived_ladder_sizes_all_work() {
        for k in (1024..=6144).step_by(64) {
            let q = QppInterleaver::new(k);
            assert_eq!(q.len(), k);
        }
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn wrong_input_length_panics() {
        TurboEncoder::new(40).encode(&[0; 39]);
    }

    #[test]
    fn gather_tables_match_trellis() {
        let t = trellis();
        for s in 0..STATES {
            for u in 0..2usize {
                assert_eq!(
                    t[s][u].next as usize, NEXT_STATE[u][s],
                    "next state ({s}, {u})"
                );
                assert_eq!(t[s][u].parity, BRANCH_PARITY[u][s], "parity ({s}, {u})");
            }
        }
        for d3 in 0..2usize {
            for nxt in 0..STATES {
                let pred = ALPHA_PRED[d3][nxt];
                assert_eq!(pred & 1, d3, "predecessor parity ({d3}, {nxt})");
                let u = ALPHA_INPUT[d3][nxt] as usize;
                assert_eq!(t[pred][u].next as usize, nxt, "pred edge ({d3}, {nxt})");
                assert_eq!(
                    t[pred][u].parity, ALPHA_PARITY[d3][nxt],
                    "pred parity ({d3}, {nxt})"
                );
            }
        }
    }

    fn noisy_llrs(k: usize, sigma: f32, seed: u64) -> (Vec<u8>, TurboLlrs) {
        let bits = random_bits(k, seed);
        let code = TurboEncoder::new(k).encode(&bits);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD00D);
        let mut noisy = |b: u8| {
            let tx = if b == 0 { 1.0f32 } else { -1.0 };
            let y = tx + sigma * rng.next_gaussian() as f32;
            2.0 * y / (sigma * sigma)
        };
        let llrs = TurboLlrs {
            systematic: code.systematic.iter().map(|&b| noisy(b)).collect(),
            parity1: code.parity1.iter().map(|&b| noisy(b)).collect(),
            parity2: code.parity2.iter().map(|&b| noisy(b)).collect(),
            tail1: code.tail1.map(|(x, p)| (noisy(x), noisy(p))),
            tail2: code.tail2.map(|(x, p)| (noisy(x), noisy(p))),
        };
        (bits, llrs)
    }

    #[test]
    fn decode_into_matches_decode_across_workspace_reuse() {
        // One workspace serves mixed block sizes; results must not depend
        // on what the buffers previously held.
        let mut ws = TurboWorkspace::new();
        let mut hard = Vec::new();
        let mut soft = Vec::new();
        for (k, sigma) in [(104, 0.6), (40, 0.9), (512, 0.7), (48, 0.5)] {
            let (_, llrs) = noisy_llrs(k, sigma, k as u64);
            let dec = TurboDecoder::new(k, 3);
            dec.decode_into(&llrs, &mut ws, &mut hard);
            assert_eq!(hard, dec.decode(&llrs), "hard k={k}");
            dec.decode_soft_into(&llrs, &mut ws, &mut soft);
            let fresh = dec.decode_soft(&llrs);
            assert_eq!(soft.len(), fresh.len());
            for (a, b) in soft.iter().zip(&fresh) {
                assert_eq!(a.to_bits(), b.to_bits(), "soft k={k}");
            }
        }
    }

    #[test]
    fn simd_and_scalar_decodes_are_bit_identical() {
        for (k, sigma) in [(40, 0.4), (104, 0.8), (256, 1.0), (1088, 0.7)] {
            let (_, llrs) = noisy_llrs(k, sigma, 0x51D ^ k as u64);
            let dec = TurboDecoder::new(k, 4);
            crate::simd::force_scalar(false);
            let simd = dec.decode_soft(&llrs);
            crate::simd::force_scalar(true);
            let scalar = dec.decode_soft(&llrs);
            crate::simd::force_scalar(false);
            for (i, (a, b)) in simd.iter().zip(&scalar).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "k={k} bit {i}: {a:e} vs {b:e}");
            }
        }
    }

    #[test]
    fn early_termination_is_output_preserving() {
        // Saturated noiseless inputs converge in a couple of iterations,
        // so the early-exit path is definitely taken; the soft outputs
        // must still match the full run bit for bit.
        let k = 104;
        let bits = random_bits(k, 21);
        let llrs = TurboEncoder::new(k).encode(&bits).to_llrs(8.0);
        let full = TurboDecoder::new(k, 8);
        let early = TurboDecoder::new(k, 8).with_early_termination();
        assert!(early.early_termination());
        let a = full.decode_soft(&llrs);
        let b = early.decode_soft(&llrs);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(early.decode(&llrs), bits);
    }

    #[test]
    fn siso_probe_is_dispatch_invariant() {
        let (_, llrs) = noisy_llrs(104, 0.7, 3);
        let mut ws = TurboWorkspace::new();
        crate::simd::force_scalar(false);
        let (a, b, e) = siso_probe(&llrs, &mut ws);
        let (a, b, e) = (a.to_vec(), b.to_vec(), e.to_vec());
        let mut ws2 = TurboWorkspace::new();
        crate::simd::force_scalar(true);
        let (a2, b2, e2) = siso_probe(&llrs, &mut ws2);
        crate::simd::force_scalar(false);
        for (x, y) in a
            .iter()
            .zip(a2)
            .chain(b.iter().zip(b2))
            .chain(e.iter().zip(e2))
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
