//! Small numeric helpers shared across the DSP kernels.

/// Converts a linear power ratio to decibels.
///
/// # Example
///
/// ```
/// assert!((lte_dsp::math::to_db(100.0) - 20.0).abs() < 1e-6);
/// ```
#[inline]
pub fn to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// `true` if `n` has no prime factors other than 2, 3 and 5.
///
/// LTE transform sizes (12 × number of PRBs with standard allocations) are
/// 5-smooth, which is what lets the mixed-radix FFT cover them all.
///
/// # Example
///
/// ```
/// assert!(lte_dsp::math::is_5_smooth(1200));
/// assert!(!lte_dsp::math::is_5_smooth(132)); // 132 = 2²·3·11
/// ```
pub fn is_5_smooth(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    for p in [2, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// The smallest power of two that is `>= n`.
///
/// # Panics
///
/// Panics if `n == 0` or the result would overflow `usize`.
pub fn next_pow2(n: usize) -> usize {
    assert!(n > 0, "next_pow2 of zero is undefined");
    n.checked_next_power_of_two()
        .expect("next power of two overflows usize")
}

/// Factorises `n` into its prime factors in non-decreasing order.
///
/// # Example
///
/// ```
/// assert_eq!(lte_dsp::math::prime_factors(600), vec![2, 2, 2, 3, 5, 5]);
/// ```
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += if p == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Greatest common divisor.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Linear least-squares slope through the origin: the `k` minimising
/// `Σ (y_i − k·x_i)²`.
///
/// This is exactly the fit the paper's workload estimator needs: activity is
/// proportional to the number of PRBs (Eq. 3), so the model is `y = k·x`.
///
/// Returns `0.0` when the inputs carry no signal (`Σx² == 0`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn slope_through_origin(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "x and y must have equal length");
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    if sxx == 0.0 {
        return 0.0;
    }
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    sxy / sxx
}

/// Root-mean-square of a sample block; `0.0` for an empty block.
pub fn rms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    (samples.iter().map(|s| s * s).sum::<f64>() / samples.len() as f64).sqrt()
}

/// Arithmetic mean; `0.0` for an empty block.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for v in [0.01, 1.0, 2.0, 1e4] {
            assert!((from_db(to_db(v)) - v).abs() / v < 1e-12);
        }
    }

    #[test]
    fn smoothness() {
        // All valid LTE PRB allocations (1..=110 PRBs in the standard; the
        // benchmark uses up to 200) with 2,3,5-smooth PRB counts give smooth
        // transform sizes because 12 = 2²·3 is itself smooth.
        assert!(is_5_smooth(12));
        assert!(is_5_smooth(1200));
        assert!(is_5_smooth(2400));
        assert!(!is_5_smooth(7));
        assert!(!is_5_smooth(0));
    }

    #[test]
    fn pow2() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1200), 2048);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn pow2_zero_panics() {
        next_pow2(0);
    }

    #[test]
    fn factorisation() {
        assert_eq!(prime_factors(1), Vec::<usize>::new());
        assert_eq!(prime_factors(2), vec![2]);
        assert_eq!(prime_factors(360), vec![2, 2, 2, 3, 3, 5]);
        assert_eq!(prime_factors(97), vec![97]);
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
    }

    #[test]
    fn slope_fit_recovers_exact_line() {
        let x: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.37 * v).collect();
        assert!((slope_through_origin(&x, &y) - 0.37).abs() < 1e-12);
    }

    #[test]
    fn slope_fit_degenerate() {
        assert_eq!(slope_through_origin(&[], &[]), 0.0);
        assert_eq!(slope_through_origin(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rms_and_mean() {
        assert_eq!(rms(&[]), 0.0);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
