//! Transport-block code-block segmentation (TS 36.212 §5.1.2).
//!
//! The turbo code's internal interleaver supports blocks of at most 6144
//! bits; larger transport blocks are split into `C` code blocks, each
//! padded up to a supported QPP size, with a CRC-24B appended to every
//! block when `C > 1` (the transport block itself carries CRC-24A from
//! the previous stage). Filler bits pad the front of the first block.

use crate::crc::CRC24B;
use crate::turbo::{nearest_block_size, supported_block_sizes_cached};

/// Maximum turbo code block size `Z`.
pub const MAX_BLOCK: usize = 6144;
/// Per-code-block CRC bits when segmented.
const BLOCK_CRC_BITS: usize = 24;

/// The shape of a transport block's segmentation — everything the
/// receiver needs to size buffers and reassemble decoded blocks, without
/// materializing any payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentationShape {
    /// Number of code blocks `C`.
    pub n_blocks: usize,
    /// The (uniform) code-block size `K`.
    pub block_size: usize,
    /// Filler bits prepended to the first block.
    pub filler: usize,
}

impl SegmentationShape {
    /// Reassembles decoded code blocks into the transport block,
    /// verifying per-block CRCs when segmented.
    ///
    /// Returns `(bits, all_block_crcs_ok)`; the transport-block CRC-24A
    /// is the caller's to check.
    ///
    /// # Panics
    ///
    /// Panics if `decoded` disagrees with this shape.
    pub fn desegment(&self, decoded: &[Vec<u8>]) -> (Vec<u8>, bool) {
        assert_eq!(decoded.len(), self.n_blocks, "block count mismatch");
        let mut ok = true;
        let mut out = Vec::new();
        for (i, d) in decoded.iter().enumerate() {
            ok &= self.desegment_block_into(i, d, &mut out);
        }
        (out, ok)
    }

    /// Streaming variant of [`desegment`](Self::desegment): appends one
    /// decoded block's payload to `out`, returning whether its per-block
    /// CRC passed (single-block shapes carry no block CRC and always
    /// return `true`). Decoding block-by-block into one reused buffer is
    /// what keeps the receiver's turbo path allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `block` has the wrong size.
    pub fn desegment_block_into(&self, index: usize, block: &[u8], out: &mut Vec<u8>) -> bool {
        assert!(index < self.n_blocks, "block index out of range");
        assert_eq!(block.len(), self.block_size, "block size mismatch");
        if self.n_blocks == 1 {
            out.extend_from_slice(&block[self.filler..]);
            return true;
        }
        let ok = CRC24B.check_bits(block);
        let start = if index == 0 { self.filler } else { 0 };
        out.extend_from_slice(&block[start..block.len() - BLOCK_CRC_BITS]);
        ok
    }
}

/// The segmentation of one transport block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segmentation {
    /// Code blocks, each of a tabulated QPP size, ready for turbo
    /// encoding (filler + data [+ CRC-24B]).
    pub blocks: Vec<Vec<u8>>,
    /// Filler bits prepended to the first block.
    pub filler: usize,
}

impl Segmentation {
    /// Computes the segmentation shape for a transport block of `b` bits
    /// without building any blocks — the receive path only needs the
    /// shape, never a payload.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn shape_for_len(b: usize) -> SegmentationShape {
        assert!(b > 0, "cannot segment an empty block");
        if b <= MAX_BLOCK {
            let k = nearest_block_size(b);
            return SegmentationShape {
                n_blocks: 1,
                block_size: k,
                filler: k - b,
            };
        }
        let c = b.div_ceil(MAX_BLOCK - BLOCK_CRC_BITS);
        let b_prime = b + c * BLOCK_CRC_BITS;
        // Uniform-ish per-block size: the smallest K with C·K ≥ B'.
        let k_plus = supported_block_sizes_cached()
            .iter()
            .copied()
            .find(|&k| c * k >= b_prime)
            .unwrap_or(MAX_BLOCK);
        SegmentationShape {
            n_blocks: c,
            block_size: k_plus,
            filler: c * k_plus - b_prime,
        }
    }

    /// Segments transport-block bits (which already include their
    /// CRC-24A) into turbo code blocks.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    pub fn segment(bits: &[u8]) -> Self {
        let b = bits.len();
        let shape = Self::shape_for_len(b.max(1));
        assert!(!bits.is_empty(), "cannot segment an empty block");
        let filler = shape.filler;
        if shape.n_blocks == 1 {
            // Single block, no per-block CRC; pad to a supported size.
            let mut block = vec![0u8; filler];
            block.extend_from_slice(bits);
            return Segmentation {
                blocks: vec![block],
                filler,
            };
        }
        // C blocks, each carrying its own CRC-24B.
        let c = shape.n_blocks;
        let k_plus = shape.block_size;
        let payload_per_block = k_plus - BLOCK_CRC_BITS;
        let mut blocks = Vec::with_capacity(c);
        let mut cursor = 0usize;
        for i in 0..c {
            let mut block = Vec::with_capacity(k_plus);
            if i == 0 {
                block.extend(std::iter::repeat_n(0u8, filler));
            }
            let take = payload_per_block - if i == 0 { filler } else { 0 };
            let end = (cursor + take).min(b);
            block.extend_from_slice(&bits[cursor..end]);
            cursor = end;
            debug_assert_eq!(block.len(), payload_per_block);
            CRC24B.append_bits(&mut block);
            debug_assert_eq!(block.len(), k_plus);
            blocks.push(block);
        }
        debug_assert_eq!(cursor, b, "all bits must be consumed");
        Segmentation { blocks, filler }
    }

    /// This segmentation's shape.
    pub fn shape(&self) -> SegmentationShape {
        SegmentationShape {
            n_blocks: self.n_blocks(),
            block_size: self.block_size(),
            filler: self.filler,
        }
    }

    /// Number of code blocks `C`.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The (uniform) code-block size `K`.
    pub fn block_size(&self) -> usize {
        self.blocks.first().map_or(0, |b| b.len())
    }

    /// Reassembles decoded code blocks into the transport block,
    /// verifying per-block CRCs when segmented.
    ///
    /// Returns `(bits, all_block_crcs_ok)`; the transport-block CRC-24A
    /// is the caller's to check.
    ///
    /// # Panics
    ///
    /// Panics if `decoded` disagrees with this segmentation's shape.
    pub fn desegment(&self, decoded: &[Vec<u8>]) -> (Vec<u8>, bool) {
        self.shape().desegment(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;
    use crate::turbo::{TurboDecoder, TurboEncoder};

    fn random_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n).map(|_| (rng.next_u64() & 1) as u8).collect()
    }

    #[test]
    fn small_block_stays_single() {
        let bits = random_bits(1000, 1);
        let seg = Segmentation::segment(&bits);
        assert_eq!(seg.n_blocks(), 1);
        assert_eq!(seg.block_size(), 1024);
        assert_eq!(seg.filler, 24);
        let (out, ok) = seg.desegment(&seg.blocks);
        assert!(ok);
        assert_eq!(out, bits);
    }

    #[test]
    fn exact_table_size_needs_no_filler() {
        let bits = random_bits(512, 2);
        let seg = Segmentation::segment(&bits);
        assert_eq!(seg.filler, 0);
        assert_eq!(seg.block_size(), 512);
    }

    #[test]
    fn large_block_splits_with_per_block_crcs() {
        let bits = random_bits(20_000, 3);
        let seg = Segmentation::segment(&bits);
        assert!(seg.n_blocks() >= 4, "C = {}", seg.n_blocks());
        assert!(seg.block_size() <= MAX_BLOCK);
        // Round trip.
        let (out, ok) = seg.desegment(&seg.blocks);
        assert!(ok, "freshly segmented blocks must pass their CRCs");
        assert_eq!(out, bits);
    }

    #[test]
    fn corrupted_block_fails_its_crc() {
        let bits = random_bits(15_000, 4);
        let seg = Segmentation::segment(&bits);
        let mut tampered = seg.blocks.clone();
        let mid = tampered[1].len() / 2;
        tampered[1][mid] ^= 1;
        let (_, ok) = seg.desegment(&tampered);
        assert!(!ok);
    }

    #[test]
    fn segmentation_covers_a_size_sweep() {
        for n in [40usize, 100, 6144, 6145, 12_000, 50_000, 100_000] {
            let bits = random_bits(n, n as u64);
            let seg = Segmentation::segment(&bits);
            let (out, ok) = seg.desegment(&seg.blocks);
            assert!(ok, "n={n}");
            assert_eq!(out, bits, "n={n}");
            for b in &seg.blocks {
                assert!(b.len() <= MAX_BLOCK, "n={n}");
            }
        }
    }

    #[test]
    fn end_to_end_turbo_over_segmentation() {
        // Segment → turbo encode each block → noiseless LLRs → decode →
        // desegment must reproduce the transport block.
        let bits = random_bits(13_000, 9);
        let seg = Segmentation::segment(&bits);
        let decoded: Vec<Vec<u8>> = seg
            .blocks
            .iter()
            .map(|block| {
                let k = block.len();
                let code = TurboEncoder::new(k).encode(block);
                TurboDecoder::new(k, 3).decode(&code.to_llrs(5.0))
            })
            .collect();
        let (out, ok) = seg.desegment(&decoded);
        assert!(ok);
        assert_eq!(out, bits);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_rejected() {
        Segmentation::segment(&[]);
    }

    #[test]
    fn shape_for_len_matches_materialized_segmentation() {
        for n in [1usize, 40, 100, 512, 6144, 6145, 12_000, 50_000, 100_000] {
            let bits = random_bits(n, n as u64);
            let seg = Segmentation::segment(&bits);
            assert_eq!(Segmentation::shape_for_len(n), seg.shape(), "n={n}");
        }
    }

    #[test]
    fn shape_desegment_equals_segmentation_desegment() {
        let bits = random_bits(15_000, 6);
        let seg = Segmentation::segment(&bits);
        let shape = Segmentation::shape_for_len(bits.len());
        assert_eq!(shape.desegment(&seg.blocks), seg.desegment(&seg.blocks));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn shape_for_zero_len_rejected() {
        Segmentation::shape_for_len(0);
    }
}
