//! LTE modulation mapping (TS 36.211 §7.1).
//!
//! The uplink carries QPSK, 16-QAM or 64-QAM depending on channel quality —
//! these are the `userMod` values of the paper's input parameter model
//! (Fig. 10). Mappings are the standard Gray-coded constellations,
//! normalised to unit average energy.

use std::fmt;
use std::sync::OnceLock;

use crate::complex::Complex32;

/// An LTE modulation scheme.
///
/// # Example
///
/// ```
/// use lte_dsp::Modulation;
///
/// assert_eq!(Modulation::Qam64.bits_per_symbol(), 6);
/// let syms = Modulation::Qpsk.map_bits(&[0, 0, 1, 1]);
/// assert_eq!(syms.len(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modulation {
    /// 2 bits per symbol.
    Qpsk,
    /// 4 bits per symbol.
    Qam16,
    /// 6 bits per symbol.
    Qam64,
}

impl Modulation {
    /// All schemes, lowest order first.
    pub const ALL: [Modulation; 3] = [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64];

    /// Bits carried by one symbol.
    #[inline]
    pub const fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Constellation size (`2^bits_per_symbol`).
    #[inline]
    pub const fn points(self) -> usize {
        1 << self.bits_per_symbol()
    }

    /// The full constellation, indexed by the bit label
    /// `b0 b1 … b_{m−1}` read MSB-first (`b0` is the first transmitted bit).
    pub fn constellation(self) -> &'static [Complex32] {
        match self {
            Modulation::Qpsk => {
                static T: OnceLock<Vec<Complex32>> = OnceLock::new();
                T.get_or_init(|| build_constellation(Modulation::Qpsk))
            }
            Modulation::Qam16 => {
                static T: OnceLock<Vec<Complex32>> = OnceLock::new();
                T.get_or_init(|| build_constellation(Modulation::Qam16))
            }
            Modulation::Qam64 => {
                static T: OnceLock<Vec<Complex32>> = OnceLock::new();
                T.get_or_init(|| build_constellation(Modulation::Qam64))
            }
        }
    }

    /// Maps one bit label (an integer whose top `bits_per_symbol` low bits
    /// are `b0…b_{m−1}` MSB-first) to its constellation point.
    #[inline]
    pub fn map_label(self, label: usize) -> Complex32 {
        self.constellation()[label & (self.points() - 1)]
    }

    /// Maps a bit slice (values 0/1) to symbols.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` is not a multiple of [`bits_per_symbol`] or if
    /// any element is not 0 or 1.
    ///
    /// [`bits_per_symbol`]: Modulation::bits_per_symbol
    pub fn map_bits(self, bits: &[u8]) -> Vec<Complex32> {
        let m = self.bits_per_symbol();
        assert_eq!(bits.len() % m, 0, "bit count must be a multiple of {m}");
        bits.chunks_exact(m)
            .map(|chunk| {
                let mut label = 0usize;
                for &b in chunk {
                    assert!(b <= 1, "bits must be 0 or 1");
                    label = (label << 1) | b as usize;
                }
                self.map_label(label)
            })
            .collect()
    }

    /// Hard-decision demapping: the nearest constellation point's label bits.
    pub fn demap_hard(self, symbols: &[Complex32]) -> Vec<u8> {
        let m = self.bits_per_symbol();
        let constellation = self.constellation();
        let mut bits = Vec::with_capacity(symbols.len() * m);
        for y in symbols {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (label, s) in constellation.iter().enumerate() {
                let d = (*y - *s).norm_sqr();
                if d < best_d {
                    best_d = d;
                    best = label;
                }
            }
            for k in (0..m).rev() {
                bits.push(((best >> k) & 1) as u8);
            }
        }
        bits
    }

    /// Per-axis amplitude levels of the Gray-coded PAM component, used by
    /// the fast max-log demapper. Returns the normalisation factor.
    pub(crate) fn norm(self) -> f32 {
        match self {
            Modulation::Qpsk => 1.0 / 2f32.sqrt(),
            Modulation::Qam16 => 1.0 / 10f32.sqrt(),
            Modulation::Qam64 => 1.0 / 42f32.sqrt(),
        }
    }
}

impl fmt::Display for Modulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16QAM",
            Modulation::Qam64 => "64QAM",
        };
        f.write_str(s)
    }
}

/// Gray-coded PAM amplitude for the bit pair/triple controlling one axis,
/// per TS 36.211 tables (before normalisation).
///
/// * QPSK: 1 bit per axis → {+1, −1}
/// * 16-QAM: 2 bits per axis → {+1, +3, −1, −3} for labels 00,01,10,11
/// * 64-QAM: 3 bits per axis → {+3,+1,+5,+7,−3,−1,−5,−7} for labels 000…111
fn pam_level(bits: usize, n_bits: usize) -> f32 {
    match n_bits {
        1 => {
            if bits == 0 {
                1.0
            } else {
                -1.0
            }
        }
        2 => {
            let sign = if bits >> 1 == 0 { 1.0 } else { -1.0 };
            let mag = if bits & 1 == 0 { 1.0 } else { 3.0 };
            sign * mag
        }
        3 => {
            let sign = if bits >> 2 == 0 { 1.0 } else { -1.0 };
            let mag = match bits & 0b11 {
                0b00 => 3.0,
                0b01 => 1.0,
                0b10 => 5.0,
                _ => 7.0,
            };
            sign * mag
        }
        _ => unreachable!("axis widths are 1, 2 or 3 bits"),
    }
}

/// Builds a constellation with the TS 36.211 bit-to-axis assignment:
/// even-position bits (b0, b2, b4) steer I; odd-position bits steer Q.
fn build_constellation(modulation: Modulation) -> Vec<Complex32> {
    let m = modulation.bits_per_symbol();
    let half = m / 2;
    let norm = modulation.norm();
    (0..modulation.points())
        .map(|label| {
            let mut i_bits = 0usize;
            let mut q_bits = 0usize;
            // label holds b0..b_{m-1} MSB-first.
            for k in 0..m {
                let bit = (label >> (m - 1 - k)) & 1;
                if k % 2 == 0 {
                    i_bits = (i_bits << 1) | bit;
                } else {
                    q_bits = (q_bits << 1) | bit;
                }
            }
            Complex32::new(
                pam_level(i_bits, half) * norm,
                pam_level(q_bits, half) * norm,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn sizes() {
        assert_eq!(Modulation::Qpsk.points(), 4);
        assert_eq!(Modulation::Qam16.points(), 16);
        assert_eq!(Modulation::Qam64.points(), 64);
    }

    #[test]
    fn unit_average_energy() {
        for m in Modulation::ALL {
            let e: f32 =
                m.constellation().iter().map(|z| z.norm_sqr()).sum::<f32>() / m.points() as f32;
            assert!((e - 1.0).abs() < 1e-5, "{m}: energy {e}");
        }
    }

    #[test]
    fn all_points_distinct() {
        for m in Modulation::ALL {
            let c = m.constellation();
            for i in 0..c.len() {
                for j in i + 1..c.len() {
                    assert!((c[i] - c[j]).abs() > 1e-3, "{m}: {i} == {j}");
                }
            }
        }
    }

    #[test]
    fn qpsk_matches_standard() {
        // TS 36.211 Table 7.1.2-1: label 00 → (1+i)/√2, 01 → (1−i)/√2,
        // 10 → (−1+i)/√2, 11 → (−1−i)/√2.
        let s = 1.0 / 2f32.sqrt();
        let c = Modulation::Qpsk.constellation();
        assert!((c[0b00] - Complex32::new(s, s)).abs() < 1e-6);
        assert!((c[0b01] - Complex32::new(s, -s)).abs() < 1e-6);
        assert!((c[0b10] - Complex32::new(-s, s)).abs() < 1e-6);
        assert!((c[0b11] - Complex32::new(-s, -s)).abs() < 1e-6);
    }

    #[test]
    fn qam16_spot_checks() {
        // TS 36.211 Table 7.1.3-1: 0000 → (1+i)/√10, 0100 → (1+3i)·? …
        // label bits are b0b1b2b3; b0,b2 → I; b1,b3 → Q.
        let s = 1.0 / 10f32.sqrt();
        let c = Modulation::Qam16.constellation();
        assert!((c[0b0000] - Complex32::new(s, s)).abs() < 1e-6);
        assert!((c[0b0011] - Complex32::new(3.0 * s, 3.0 * s)).abs() < 1e-6);
        assert!((c[0b1100] - Complex32::new(-s, -s)).abs() < 1e-6);
        assert!((c[0b0010] - Complex32::new(3.0 * s, s)).abs() < 1e-6);
    }

    #[test]
    fn gray_property_nearest_neighbours_differ_in_one_bit() {
        // For each point, its nearest neighbours (distance = one grid step)
        // must differ in exactly one bit — the defining Gray property.
        for m in [Modulation::Qam16, Modulation::Qam64] {
            let c = m.constellation();
            let step = 2.0 * m.norm();
            for i in 0..c.len() {
                for j in 0..c.len() {
                    if i == j {
                        continue;
                    }
                    if ((c[i] - c[j]).abs() - step).abs() < 1e-4 {
                        let diff = (i ^ j).count_ones();
                        assert_eq!(diff, 1, "{m}: labels {i:b} vs {j:b}");
                    }
                }
            }
        }
    }

    #[test]
    fn map_demap_round_trip() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        for m in Modulation::ALL {
            let bits: Vec<u8> = (0..m.bits_per_symbol() * 100)
                .map(|_| (rng.next_u64() & 1) as u8)
                .collect();
            let symbols = m.map_bits(&bits);
            let recovered = m.demap_hard(&symbols);
            assert_eq!(bits, recovered, "{m}");
        }
    }

    #[test]
    fn demap_tolerates_noise_within_decision_region() {
        let m = Modulation::Qam64;
        let bits = vec![1, 0, 1, 1, 0, 0];
        let mut symbols = m.map_bits(&bits);
        symbols[0] += Complex32::new(0.4 * m.norm(), -0.4 * m.norm());
        assert_eq!(m.demap_hard(&symbols), bits);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn map_bits_requires_full_symbols() {
        Modulation::Qpsk.map_bits(&[1]);
    }

    #[test]
    fn display_names() {
        assert_eq!(Modulation::Qpsk.to_string(), "QPSK");
        assert_eq!(Modulation::Qam16.to_string(), "16QAM");
        assert_eq!(Modulation::Qam64.to_string(), "64QAM");
    }
}
