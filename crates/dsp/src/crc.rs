//! LTE cyclic redundancy checks (TS 36.212 §5.1.1).
//!
//! Transport blocks carry CRC-24A; code-block segments carry CRC-24B; the
//! 16- and 8-bit variants cover control channels. The benchmark's final
//! pipeline stage (Fig. 3) verifies the CRC of every decoded transport
//! block.
//!
//! Bits are processed MSB-first, matching the 3GPP bit ordering; the
//! registers start at zero (LTE uses all-zero initial state, unlike
//! Ethernet-style CRCs).

/// A CRC generator polynomial of up to 24 bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crc {
    /// Polynomial without the leading `x^width` term.
    poly: u32,
    /// CRC width in bits.
    width: u32,
}

/// CRC-24A (`gCRC24A`, transport-block CRC): `0x864CFB`.
pub const CRC24A: Crc = Crc::new(0x86_4C_FB, 24);
/// CRC-24B (`gCRC24B`, code-block CRC): `0x800063`.
pub const CRC24B: Crc = Crc::new(0x80_00_63, 24);
/// CRC-16 (`gCRC16`): `0x1021` (CCITT).
pub const CRC16: Crc = Crc::new(0x1021, 16);
/// CRC-8 (`gCRC8`): `0x9B`.
pub const CRC8: Crc = Crc::new(0x9B, 8);

impl Crc {
    /// Defines a CRC with the given polynomial (sans leading term) and width.
    ///
    /// # Panics
    ///
    /// Panics (at compile time for const uses) if `width` is 0 or > 24.
    pub const fn new(poly: u32, width: u32) -> Self {
        assert!(width >= 1 && width <= 24, "width must be in 1..=24");
        Crc { poly, width }
    }

    /// CRC width in bits.
    pub const fn width(&self) -> u32 {
        self.width
    }

    /// Computes the CRC of a bit slice (elements must be 0 or 1, MSB-first).
    ///
    /// # Panics
    ///
    /// Panics if any element is not 0 or 1 (debug builds only; release
    /// builds mask to the low bit).
    pub fn compute_bits(&self, bits: &[u8]) -> u32 {
        let mut reg: u32 = 0;
        let top = 1u32 << (self.width - 1);
        let mask = (1u64 << self.width) as u32 - 1;
        for &b in bits {
            debug_assert!(b <= 1, "bits must be 0 or 1");
            let fb = ((reg & top) != 0) ^ ((b & 1) != 0);
            reg = (reg << 1) & mask;
            if fb {
                reg ^= self.poly;
            }
        }
        reg
    }

    /// Computes the CRC of a byte slice (bits taken MSB-first within each
    /// byte).
    pub fn compute_bytes(&self, bytes: &[u8]) -> u32 {
        let mut reg: u32 = 0;
        let top = 1u32 << (self.width - 1);
        let mask = (1u64 << self.width) as u32 - 1;
        for &byte in bytes {
            for k in (0..8).rev() {
                let b = (byte >> k) & 1;
                let fb = ((reg & top) != 0) ^ (b != 0);
                reg = (reg << 1) & mask;
                if fb {
                    reg ^= self.poly;
                }
            }
        }
        reg
    }

    /// Appends the CRC parity bits (MSB-first) to a bit vector.
    pub fn append_bits(&self, bits: &mut Vec<u8>) {
        let crc = self.compute_bits(bits);
        for k in (0..self.width).rev() {
            bits.push(((crc >> k) & 1) as u8);
        }
    }

    /// Checks a bit vector whose tail carries the CRC parity.
    ///
    /// Returns `true` when the CRC matches (i.e. the whole sequence,
    /// including parity, divides the generator).
    pub fn check_bits(&self, bits: &[u8]) -> bool {
        if bits.len() < self.width as usize {
            return false;
        }
        self.compute_bits(bits) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
        bytes
            .iter()
            .flat_map(|&b| (0..8).rev().map(move |k| (b >> k) & 1))
            .collect()
    }

    #[test]
    fn bit_and_byte_paths_agree() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            let bytes: Vec<u8> = (0..64).map(|_| rng.next_u32() as u8).collect();
            assert_eq!(
                crc.compute_bytes(&bytes),
                crc.compute_bits(&bytes_to_bits(&bytes))
            );
        }
    }

    #[test]
    fn crc16_known_vector() {
        // CCITT "123456789" with zero initial value → 0x31C3.
        assert_eq!(CRC16.compute_bytes(b"123456789"), 0x31C3);
    }

    #[test]
    fn crc24a_zero_message_is_zero() {
        // All-zero input with zero init yields zero parity (linearity).
        assert_eq!(CRC24A.compute_bits(&[0; 100]), 0);
    }

    #[test]
    fn append_then_check_round_trip() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        for crc in [CRC24A, CRC24B, CRC16, CRC8] {
            for len in [1usize, 7, 40, 123] {
                let mut bits: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 1) as u8).collect();
                crc.append_bits(&mut bits);
                assert!(crc.check_bits(&bits));
            }
        }
    }

    #[test]
    fn detects_single_bit_errors_anywhere() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut bits: Vec<u8> = (0..128).map(|_| (rng.next_u64() & 1) as u8).collect();
        CRC24A.append_bits(&mut bits);
        for i in 0..bits.len() {
            bits[i] ^= 1;
            assert!(!CRC24A.check_bits(&bits), "missed error at bit {i}");
            bits[i] ^= 1;
        }
    }

    #[test]
    fn detects_burst_errors_up_to_width() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut bits: Vec<u8> = (0..256).map(|_| (rng.next_u64() & 1) as u8).collect();
        CRC24B.append_bits(&mut bits);
        // Any burst of length <= 24 is detected by a degree-24 generator
        // with nonzero constant term.
        for start in [0usize, 13, 100, 200] {
            for burst in [2usize, 8, 24] {
                for b in bits[start..start + burst].iter_mut() {
                    *b ^= 1;
                }
                assert!(!CRC24B.check_bits(&bits), "missed burst {burst}@{start}");
                for b in bits[start..start + burst].iter_mut() {
                    *b ^= 1;
                }
            }
        }
    }

    #[test]
    fn short_input_fails_check() {
        assert!(!CRC24A.check_bits(&[1, 0, 1]));
    }

    #[test]
    fn linearity_of_crc() {
        // CRC(a ^ b) == CRC(a) ^ CRC(b) for zero-init CRCs.
        let mut rng = Xoshiro256::seed_from_u64(5);
        let a: Vec<u8> = (0..96).map(|_| (rng.next_u64() & 1) as u8).collect();
        let b: Vec<u8> = (0..96).map(|_| (rng.next_u64() & 1) as u8).collect();
        let x: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        assert_eq!(
            CRC24A.compute_bits(&x),
            CRC24A.compute_bits(&a) ^ CRC24A.compute_bits(&b)
        );
    }
}
