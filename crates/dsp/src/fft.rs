//! Mixed-radix fast Fourier transforms.
//!
//! LTE uplink transform sizes are `12 × N_PRB` subcarriers (with `N_PRB`
//! restricted to 2,3,5-smooth values in the standard), plus power-of-two
//! front-end sizes. A recursive Cooley–Tukey decomposition with specialised
//! radix-2/3/4 butterflies and a table-driven generic radix (used for 5 and,
//! defensively, any other prime) covers every size the benchmark needs in
//! `O(n log n)`; non-smooth sizes still work via the generic-prime path
//! (at `O(p²)` per prime factor `p`, which never occurs on the hot path).
//!
//! Plans are immutable and [`Sync`], so one [`FftPlanner`] can serve all
//! worker threads.
//!
//! # Example
//!
//! ```
//! use lte_dsp::fft::FftPlan;
//! use lte_dsp::Complex32;
//!
//! let fwd = FftPlan::forward(60);
//! let inv = FftPlan::inverse(60);
//! let original: Vec<Complex32> =
//!     (0..60).map(|i| Complex32::new(i as f32, -(i as f32))).collect();
//! let mut data = original.clone();
//! fwd.process(&mut data);
//! inv.process(&mut data);
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((*a - *b).abs() < 1e-3);
//! }
//! ```

use std::collections::HashMap;
use std::f64::consts::TAU;
use std::sync::{Arc, OnceLock, RwLock};

use crate::complex::Complex32;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `X[k] = Σ x[j]·e^{−2πi jk/n}`.
    Forward,
    /// `x[j] = (1/n) Σ X[k]·e^{+2πi jk/n}` — scaled so that
    /// `inverse(forward(x)) == x`.
    Inverse,
}

/// A precomputed transform of one size and direction.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    direction: Direction,
    /// `twiddles[k] = e^{∓2πi k/n}` (sign per direction).
    twiddles: Vec<Complex32>,
    /// Radix schedule, product equals `n` (empty for `n == 1`).
    factors: Vec<usize>,
}

impl FftPlan {
    /// Plans a forward DFT of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn forward(n: usize) -> Self {
        Self::new(n, Direction::Forward)
    }

    /// Plans an inverse DFT of length `n` (normalised by `1/n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn inverse(n: usize) -> Self {
        Self::new(n, Direction::Inverse)
    }

    /// Plans a transform of length `n` in the given direction.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, direction: Direction) -> Self {
        assert!(n > 0, "transform length must be positive");
        let sign = match direction {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        };
        let twiddles = (0..n)
            .map(|k| {
                let theta = sign * TAU * k as f64 / n as f64;
                Complex32::new(theta.cos() as f32, theta.sin() as f32)
            })
            .collect();
        FftPlan {
            n,
            direction,
            twiddles,
            factors: radix_schedule(n),
        }
    }

    /// The transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate length-1 transform.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The transform direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Transforms `data` in place, allocating a scratch buffer internally.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex32]) {
        let mut scratch = vec![Complex32::ZERO; self.n];
        self.process_with_scratch(data, &mut scratch);
    }

    /// Transforms `data` in place, reusing a caller-provided scratch buffer.
    ///
    /// Useful on the hot path to avoid per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()` or `scratch.len() < self.len()`.
    pub fn process_with_scratch(&self, data: &mut [Complex32], scratch: &mut [Complex32]) {
        assert_eq!(data.len(), self.n, "data length must equal plan length");
        assert!(
            scratch.len() >= self.n,
            "scratch must be at least the plan length"
        );
        let scratch = &mut scratch[..self.n];
        scratch.copy_from_slice(data);
        self.recurse(scratch, 1, data, &self.factors);
        if self.direction == Direction::Inverse {
            let k = 1.0 / self.n as f32;
            for z in data.iter_mut() {
                *z = z.scale(k);
            }
        }
    }

    /// Recursive decimation-in-time step: transforms `input` (viewed with
    /// `stride`) into `out` (contiguous, length `out.len()`).
    fn recurse(
        &self,
        input: &[Complex32],
        stride: usize,
        out: &mut [Complex32],
        factors: &[usize],
    ) {
        let n = out.len();
        if n == 1 {
            out[0] = input[0];
            return;
        }
        let r = factors[0];
        let m = n / r;
        for j in 0..r {
            self.recurse(
                &input[j * stride..],
                stride * r,
                &mut out[j * m..(j + 1) * m],
                &factors[1..],
            );
        }
        // Twiddle stride mapping sub-size n to the full-size table.
        let tw_step = self.n / n;
        match r {
            2 => self.combine2(out, m, tw_step),
            3 => self.combine3(out, m, tw_step),
            4 => self.combine4(out, m, tw_step),
            _ => self.combine_generic(out, r, m, tw_step),
        }
    }

    /// Twiddle lookup for indices that may wrap past the table length
    /// (only the generic radix's root products need the modulo).
    #[inline]
    fn tw(&self, idx: usize) -> Complex32 {
        self.twiddles[idx % self.n]
    }

    /// Twiddle lookup for indices provably below `n`: in every radix the
    /// data-twiddle index is at most `(r-1)(m-1)·n/(r·m) < n`, so the
    /// modulo in [`tw`](Self::tw) would never fire — skipping it keeps an
    /// integer division out of the innermost butterfly loops.
    #[inline]
    fn tw_nowrap(&self, idx: usize) -> Complex32 {
        debug_assert!(idx < self.n);
        self.twiddles[idx]
    }

    fn combine2(&self, out: &mut [Complex32], m: usize, tw_step: usize) {
        for k in 0..m {
            let a = out[k];
            let b = out[m + k] * self.tw_nowrap(k * tw_step);
            out[k] = a + b;
            out[m + k] = a - b;
        }
    }

    fn combine3(&self, out: &mut [Complex32], m: usize, tw_step: usize) {
        // sin(2π/3), sign-flipped for the inverse transform.
        let s3 = match self.direction {
            Direction::Forward => -0.866_025_4_f32,
            Direction::Inverse => 0.866_025_4_f32,
        };
        for k in 0..m {
            let t0 = out[k];
            let t1 = out[m + k] * self.tw_nowrap(k * tw_step);
            let t2 = out[2 * m + k] * self.tw_nowrap(2 * k * tw_step);
            let sum = t1 + t2;
            let diff = (t1 - t2).scale(s3).mul_i();
            let base = t0 - sum.scale(0.5);
            out[k] = t0 + sum;
            out[m + k] = base + diff;
            out[2 * m + k] = base - diff;
        }
    }

    fn combine4(&self, out: &mut [Complex32], m: usize, tw_step: usize) {
        let forward = self.direction == Direction::Forward;
        for k in 0..m {
            let t0 = out[k];
            let t1 = out[m + k] * self.tw_nowrap(k * tw_step);
            let t2 = out[2 * m + k] * self.tw_nowrap(2 * k * tw_step);
            let t3 = out[3 * m + k] * self.tw_nowrap(3 * k * tw_step);
            let a = t0 + t2;
            let b = t0 - t2;
            let c = t1 + t3;
            let d = if forward {
                (t1 - t3).mul_neg_i()
            } else {
                (t1 - t3).mul_i()
            };
            out[k] = a + c;
            out[m + k] = b + d;
            out[2 * m + k] = a - c;
            out[3 * m + k] = b - d;
        }
    }

    /// Table-driven radix used for 5 and any other prime factor.
    fn combine_generic(&self, out: &mut [Complex32], r: usize, m: usize, tw_step: usize) {
        debug_assert!(r >= 2);
        let root_step = self.n / r;
        // LTE sizes are 2/3/5-smooth so r = 5 in practice; a stack buffer
        // keeps the hot path allocation-free, with a heap fallback for
        // exotic prime lengths.
        const STACK_RADIX: usize = 16;
        let mut stack = [Complex32::ZERO; STACK_RADIX];
        let mut heap = Vec::new();
        let t: &mut [Complex32] = if r <= STACK_RADIX {
            &mut stack[..r]
        } else {
            heap.resize(r, Complex32::ZERO);
            &mut heap
        };
        for k in 0..m {
            for (j, tj) in t.iter_mut().enumerate() {
                *tj = out[j * m + k] * self.tw_nowrap(j * k * tw_step);
            }
            for q in 0..r {
                let mut acc = t[0];
                for (j, &tj) in t.iter().enumerate().skip(1) {
                    acc = acc.mul_add(tj, self.tw(j * q * root_step));
                }
                out[q * m + k] = acc;
            }
        }
    }
}

/// Builds the radix schedule for `n`: 4s first (fewest operations), then
/// 2, 3, 5, then any remaining primes. Shared with the fixed-point FFT so
/// both transforms always decompose identically.
pub(crate) fn radix_schedule(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    while n.is_multiple_of(4) {
        factors.push(4);
        n /= 4;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
    }
    let mut p = 7;
    while p * p <= n {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// A thread-safe cache of [`FftPlan`]s keyed by `(length, direction)`.
///
/// The receiver pipeline needs transforms of many sizes (one per PRB
/// allocation); the planner amortises twiddle-table construction across
/// subframes and threads.
///
/// # Example
///
/// ```
/// use lte_dsp::fft::{Direction, FftPlanner};
///
/// let planner = FftPlanner::new();
/// let a = planner.plan(120, Direction::Forward);
/// let b = planner.plan(120, Direction::Forward);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // cached
/// ```
/// Largest PRB allocation with a dedicated lock-free plan slot (the
/// 20 MHz LTE uplink schedules at most 110 PRBs).
const DENSE_PRBS: usize = 110;

#[derive(Debug)]
pub struct FftPlanner {
    /// Lock-free slots for the LTE transform sizes `n = 12·prb`,
    /// `prb ∈ 1..=110`, indexed `(prb − 1) + 110·direction`. A steady
    /// state lookup is one atomic load — no lock, no hashing.
    dense: Vec<OnceLock<Arc<FftPlan>>>,
    /// Read-mostly fallback for every other size; the write lock is only
    /// taken the first time a cold size is planned.
    cold: RwLock<HashMap<(usize, Direction), Arc<FftPlan>>>,
}

impl Default for FftPlanner {
    fn default() -> Self {
        FftPlanner {
            dense: (0..2 * DENSE_PRBS).map(|_| OnceLock::new()).collect(),
            cold: RwLock::new(HashMap::new()),
        }
    }
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    fn dense_slot(&self, n: usize, direction: Direction) -> Option<&OnceLock<Arc<FftPlan>>> {
        if n == 0 || !n.is_multiple_of(12) || n / 12 > DENSE_PRBS {
            return None;
        }
        let dir = match direction {
            Direction::Forward => 0,
            Direction::Inverse => 1,
        };
        Some(&self.dense[(n / 12 - 1) + dir * DENSE_PRBS])
    }

    /// Returns a (shared) plan for the given length and direction.
    ///
    /// LTE subcarrier counts (multiples of 12 up to 110 PRBs) resolve
    /// through a dense lock-free table; other sizes fall back to a
    /// read-mostly map whose write lock is only held while a cold size
    /// is planned for the first time.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn plan(&self, n: usize, direction: Direction) -> Arc<FftPlan> {
        if let Some(slot) = self.dense_slot(n, direction) {
            return Arc::clone(slot.get_or_init(|| Arc::new(FftPlan::new(n, direction))));
        }
        if let Some(plan) = self
            .cold
            .read()
            .expect("planner lock poisoned")
            .get(&(n, direction))
        {
            return Arc::clone(plan);
        }
        let mut cold = self.cold.write().expect("planner lock poisoned");
        Arc::clone(
            cold.entry((n, direction))
                .or_insert_with(|| Arc::new(FftPlan::new(n, direction))),
        )
    }

    /// Builds the forward and inverse plans for each PRB allocation up
    /// front, so no worker ever pays plan construction (or a cold-map
    /// write lock) on the subframe path.
    pub fn prewarm<I: IntoIterator<Item = usize>>(&self, prbs: I) {
        for prb in prbs {
            let n = prb * 12;
            if n > 0 {
                self.plan(n, Direction::Forward);
                self.plan(n, Direction::Inverse);
            }
        }
    }

    /// Convenience wrapper for [`Direction::Forward`].
    pub fn forward(&self, n: usize) -> Arc<FftPlan> {
        self.plan(n, Direction::Forward)
    }

    /// Convenience wrapper for [`Direction::Inverse`].
    pub fn inverse(&self, n: usize) -> Arc<FftPlan> {
        self.plan(n, Direction::Inverse)
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        let dense = self
            .dense
            .iter()
            .filter(|slot| slot.get().is_some())
            .count();
        dense + self.cold.read().expect("planner lock poisoned").len()
    }
}

/// Reference `O(n²)` DFT used by tests and as an executable specification.
pub fn dft_naive(input: &[Complex32], direction: Direction) -> Vec<Complex32> {
    let n = input.len();
    let sign = match direction {
        Direction::Forward => -1.0f64,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex32::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc_re = 0.0f64;
        let mut acc_im = 0.0f64;
        for (j, x) in input.iter().enumerate() {
            let theta = sign * TAU * (j * k % n) as f64 / n as f64;
            let (s, c) = theta.sin_cos();
            acc_re += x.re as f64 * c - x.im as f64 * s;
            acc_im += x.re as f64 * s + x.im as f64 * c;
        }
        *o = Complex32::new(acc_re as f32, acc_im as f32);
    }
    if direction == Direction::Inverse {
        for z in &mut out {
            *z = z.scale(1.0 / n as f32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_block(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect()
    }

    fn assert_close(a: &[Complex32], b: &[Complex32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() <= tol,
                "index {i}: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn radix_schedule_products() {
        for n in 1..=600 {
            let fs = radix_schedule(n);
            assert_eq!(fs.iter().product::<usize>().max(1), n.max(1));
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        for n in [1, 2, 3, 4, 5, 12, 36, 300] {
            let plan = FftPlan::forward(n);
            let mut data = vec![Complex32::ZERO; n];
            data[0] = Complex32::ONE;
            plan.process(&mut data);
            for z in &data {
                assert!((*z - Complex32::ONE).abs() < 1e-4, "n={n}");
            }
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 144;
        let plan = FftPlan::forward(n);
        let mut data = vec![Complex32::ONE; n];
        plan.process(&mut data);
        assert!((data[0].re - n as f32).abs() < 1e-2);
        for z in &data[1..] {
            assert!(z.abs() < 1e-2);
        }
    }

    #[test]
    fn matches_naive_dft_on_lte_sizes() {
        // Every 5-smooth 12·PRB size up to 50 PRBs plus assorted others.
        let mut sizes: Vec<usize> = (1..=50).map(|p| 12 * p).collect();
        sizes.extend([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 25, 128, 2048]);
        for n in sizes {
            let input = random_block(n, n as u64);
            let mut fast = input.clone();
            FftPlan::forward(n).process(&mut fast);
            let slow = dft_naive(&input, Direction::Forward);
            let tol = 1e-4 * (n as f32).max(8.0);
            assert_close(&fast, &slow, tol);
        }
    }

    #[test]
    fn inverse_matches_naive() {
        for n in [12, 60, 71, 180] {
            let input = random_block(n, 1000 + n as u64);
            let mut fast = input.clone();
            FftPlan::inverse(n).process(&mut fast);
            let slow = dft_naive(&input, Direction::Inverse);
            assert_close(&fast, &slow, 1e-4);
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [12, 24, 300, 1200, 2400] {
            let original = random_block(n, 7 * n as u64);
            let mut data = original.clone();
            FftPlan::forward(n).process(&mut data);
            FftPlan::inverse(n).process(&mut data);
            assert_close(&data, &original, 1e-4);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 600;
        let input = random_block(n, 42);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr() as f64).sum();
        let mut freq = input;
        FftPlan::forward(n).process(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() / time_energy < 1e-5,
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn linearity() {
        let n = 180;
        let a = random_block(n, 1);
        let b = random_block(n, 2);
        let plan = FftPlan::forward(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.process(&mut fa);
        plan.process(&mut fb);
        let mut sum: Vec<Complex32> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();
        plan.process(&mut sum);
        let expect: Vec<Complex32> = fa.iter().zip(&fb).map(|(x, y)| *x + y.scale(2.0)).collect();
        assert_close(&sum, &expect, 1e-3);
    }

    #[test]
    fn shift_theorem() {
        // Circularly shifting the input multiplies the spectrum by a phasor.
        let n = 48;
        let input = random_block(n, 9);
        let mut shifted: Vec<Complex32> = input.clone();
        shifted.rotate_left(1);
        let plan = FftPlan::forward(n);
        let mut f0 = input;
        let mut f1 = shifted;
        plan.process(&mut f0);
        plan.process(&mut f1);
        for k in 0..n {
            let phase = Complex32::cis(TAU as f32 * k as f32 / n as f32);
            assert!((f1[k] - f0[k] * phase).abs() < 1e-3);
        }
    }

    #[test]
    fn scratch_reuse_matches_alloc_path() {
        let n = 360;
        let input = random_block(n, 77);
        let plan = FftPlan::forward(n);
        let mut a = input.clone();
        let mut b = input;
        plan.process(&mut a);
        let mut scratch = vec![Complex32::ZERO; n];
        plan.process_with_scratch(&mut b, &mut scratch);
        assert_close(&a, &b, 0.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn wrong_length_panics() {
        FftPlan::forward(8).process(&mut [Complex32::ZERO; 4]);
    }

    #[test]
    fn planner_caches_and_is_shared() {
        let planner = FftPlanner::new();
        let p1 = planner.forward(12);
        let p2 = planner.forward(12);
        let p3 = planner.inverse(12);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn planner_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<FftPlanner>();
        assert_sync::<FftPlan>();
    }

    #[test]
    fn planner_caches_non_lte_sizes_too() {
        let planner = FftPlanner::new();
        // 17 is prime and not a multiple of 12 — cold-map path.
        let a = planner.forward(17);
        let b = planner.forward(17);
        assert!(Arc::ptr_eq(&a, &b));
        // 1332 = 12 × 111 exceeds the dense PRB range.
        let c = planner.inverse(1332);
        let d = planner.inverse(1332);
        assert!(Arc::ptr_eq(&c, &d));
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn planner_prewarm_builds_both_directions() {
        let planner = FftPlanner::new();
        planner.prewarm([4, 25, 100]);
        assert_eq!(planner.cached_plans(), 6);
        // Prewarming twice is idempotent.
        planner.prewarm([25]);
        assert_eq!(planner.cached_plans(), 6);
    }

    #[test]
    fn planner_survives_sixteen_thread_hammer() {
        let planner = Arc::new(FftPlanner::new());
        let sizes = [12, 120, 300, 600, 1200, 17, 1332];
        std::thread::scope(|scope| {
            for t in 0..16 {
                let planner = Arc::clone(&planner);
                scope.spawn(move || {
                    for i in 0..200 {
                        let n = sizes[(t + i) % sizes.len()];
                        let fwd = planner.forward(n);
                        let inv = planner.inverse(n);
                        assert_eq!(fwd.len(), n);
                        assert_eq!(inv.len(), n);
                        // Every thread must see the same shared plan.
                        assert!(Arc::ptr_eq(&fwd, &planner.forward(n)));
                    }
                });
            }
        });
        assert_eq!(planner.cached_plans(), 2 * sizes.len());
    }
}
