//! Mixed-radix fast Fourier transforms.
//!
//! LTE uplink transform sizes are `12 × N_PRB` subcarriers (with `N_PRB`
//! restricted to 2,3,5-smooth values in the standard), plus power-of-two
//! front-end sizes. A recursive Cooley–Tukey decomposition with specialised
//! radix-2/3/4 butterflies and a table-driven generic radix (used for 5 and,
//! defensively, any other prime) covers every size the benchmark needs in
//! `O(n log n)`; non-smooth sizes still work via the generic-prime path
//! (at `O(p²)` per prime factor `p`, which never occurs on the hot path).
//!
//! Plans are immutable and [`Sync`], so one [`FftPlanner`] can serve all
//! worker threads.
//!
//! # Example
//!
//! ```
//! use lte_dsp::fft::FftPlan;
//! use lte_dsp::Complex32;
//!
//! let fwd = FftPlan::forward(60);
//! let inv = FftPlan::inverse(60);
//! let original: Vec<Complex32> =
//!     (0..60).map(|i| Complex32::new(i as f32, -(i as f32))).collect();
//! let mut data = original.clone();
//! fwd.process(&mut data);
//! inv.process(&mut data);
//! for (a, b) in data.iter().zip(&original) {
//!     assert!((*a - *b).abs() < 1e-3);
//! }
//! ```

use std::collections::HashMap;
use std::f64::consts::TAU;
use std::sync::{Arc, OnceLock, RwLock};

use crate::complex::Complex32;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `X[k] = Σ x[j]·e^{−2πi jk/n}`.
    Forward,
    /// `x[j] = (1/n) Σ X[k]·e^{+2πi jk/n}` — scaled so that
    /// `inverse(forward(x)) == x`.
    Inverse,
}

/// A precomputed transform of one size and direction.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    direction: Direction,
    /// Radix schedule, product equals `n` (empty for `n == 1`).
    factors: Vec<usize>,
    /// Per-recursion-level butterfly twiddles, packed contiguously so the
    /// innermost loops walk unit-stride lanes (see [`StageTwiddles`]).
    stages: Vec<StageTwiddles>,
}

/// Packed twiddle tables for one recursion level of the mixed-radix
/// decomposition.
///
/// The recursive schedule visits a fixed sub-length per level (every
/// sibling call at level `l` combines blocks of the same size), so the
/// strided lookups `twiddles[j·k·tw_step]` of the original butterflies
/// can be gathered once at plan time into `r` contiguous rows of `m`
/// entries each. The butterflies then stream rows with unit stride — the
/// layout the SIMD lanes want — and the scalar path reads the exact same
/// values, so packing cannot change results.
#[derive(Debug)]
struct StageTwiddles {
    /// Row-major `[j][k]`: `packed[j·m + k] = twiddles[j·k·tw_step]`,
    /// `j ∈ 0..r`, `k ∈ 0..m`.
    packed: Vec<Complex32>,
    /// Butterfly span (`sub_len / r`).
    m: usize,
    /// DFT roots for the generic radix: `root[j·r + q] = tw(j·q·n/r)`.
    root: Vec<Complex32>,
}

impl FftPlan {
    /// Plans a forward DFT of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn forward(n: usize) -> Self {
        Self::new(n, Direction::Forward)
    }

    /// Plans an inverse DFT of length `n` (normalised by `1/n`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn inverse(n: usize) -> Self {
        Self::new(n, Direction::Inverse)
    }

    /// Plans a transform of length `n` in the given direction.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, direction: Direction) -> Self {
        assert!(n > 0, "transform length must be positive");
        let sign = match direction {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        };
        let twiddles: Vec<Complex32> = (0..n)
            .map(|k| {
                let theta = sign * TAU * k as f64 / n as f64;
                Complex32::new(theta.cos() as f32, theta.sin() as f32)
            })
            .collect();
        let factors = radix_schedule(n);
        let mut stages = Vec::with_capacity(factors.len());
        let mut sub = n;
        for &r in &factors {
            let m = sub / r;
            let tw_step = n / sub;
            let mut packed = Vec::with_capacity(r * m);
            for j in 0..r {
                for k in 0..m {
                    // j·k·tw_step < n for j ≤ r−1, k ≤ m−1 (tw_nowrap's
                    // bound), so no modulo is needed.
                    packed.push(twiddles[j * k * tw_step]);
                }
            }
            let root_step = n / r;
            let mut root = Vec::new();
            if !matches!(r, 2..=4) {
                root.reserve(r * r);
                for j in 0..r {
                    for q in 0..r {
                        root.push(twiddles[(j * q * root_step) % n]);
                    }
                }
            }
            stages.push(StageTwiddles { packed, m, root });
            sub = m;
        }
        FftPlan {
            n,
            direction,
            factors,
            stages,
        }
    }

    /// The transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate length-1 transform.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The transform direction.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Transforms `data` in place, allocating a scratch buffer internally.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [Complex32]) {
        let mut scratch = vec![Complex32::ZERO; self.n];
        self.process_with_scratch(data, &mut scratch);
    }

    /// Transforms `data` in place, reusing a caller-provided scratch buffer.
    ///
    /// Useful on the hot path to avoid per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()` or `scratch.len() < self.len()`.
    pub fn process_with_scratch(&self, data: &mut [Complex32], scratch: &mut [Complex32]) {
        assert_eq!(data.len(), self.n, "data length must equal plan length");
        assert!(
            scratch.len() >= self.n,
            "scratch must be at least the plan length"
        );
        self.process_with_dispatch(data, scratch, crate::simd::simd_enabled());
    }

    /// [`process_with_scratch`](Self::process_with_scratch) with the SIMD
    /// dispatch decision pinned by the caller — the seam the conformance
    /// suite and differential tests use to compare both paths in one
    /// process without global state. `simd` must only be `true` when
    /// [`crate::simd::simd_available`] holds.
    pub(crate) fn process_with_dispatch(
        &self,
        data: &mut [Complex32],
        scratch: &mut [Complex32],
        simd: bool,
    ) {
        assert_eq!(data.len(), self.n, "data length must equal plan length");
        assert!(
            scratch.len() >= self.n,
            "scratch must be at least the plan length"
        );
        let scratch = &mut scratch[..self.n];
        scratch.copy_from_slice(data);
        self.recurse(scratch, 1, data, 0, simd);
        if self.direction == Direction::Inverse {
            let k = 1.0 / self.n as f32;
            for z in data.iter_mut() {
                *z = z.scale(k);
            }
        }
    }

    /// Recursive decimation-in-time step: transforms `input` (viewed with
    /// `stride`) into `out` (contiguous, length `out.len()`). `level`
    /// indexes [`FftPlan::factors`] / [`FftPlan::stages`]; every sibling
    /// call at one level combines blocks of the same size, so the packed
    /// per-level twiddle tables apply to all of them.
    fn recurse(
        &self,
        input: &[Complex32],
        stride: usize,
        out: &mut [Complex32],
        level: usize,
        simd: bool,
    ) {
        let n = out.len();
        if n == 1 {
            out[0] = input[0];
            return;
        }
        let r = self.factors[level];
        let m = n / r;
        for j in 0..r {
            self.recurse(
                &input[j * stride..],
                stride * r,
                &mut out[j * m..(j + 1) * m],
                level + 1,
                simd,
            );
        }
        let stage = &self.stages[level];
        debug_assert_eq!(stage.m, m);
        match r {
            2 => combine2(out, m, &stage.packed, simd),
            3 => combine3(out, m, &stage.packed, self.direction, simd),
            4 => combine4(out, m, &stage.packed, self.direction, simd),
            _ => combine_generic(out, r, m, stage, simd),
        }
    }
}

/// Radix-2 butterfly over packed twiddles (`tw[m..2m]` is the `j = 1`
/// row; row 0 is all ones and unused here).
fn combine2(out: &mut [Complex32], m: usize, tw: &[Complex32], simd: bool) {
    let mut k = 0;
    #[cfg(target_arch = "x86_64")]
    if simd && m >= 4 {
        k = m & !3;
        // SAFETY: dispatch verified AVX2+FMA; slices are in bounds.
        unsafe { avx::combine2(out, m, tw, k) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    while k < m {
        let a = out[k];
        let b = out[m + k] * tw[m + k];
        out[k] = a + b;
        out[m + k] = a - b;
        k += 1;
    }
}

fn combine3(out: &mut [Complex32], m: usize, tw: &[Complex32], direction: Direction, simd: bool) {
    // sin(2π/3), sign-flipped for the inverse transform.
    let s3 = match direction {
        Direction::Forward => -0.866_025_4_f32,
        Direction::Inverse => 0.866_025_4_f32,
    };
    let mut k = 0;
    #[cfg(target_arch = "x86_64")]
    if simd && m >= 4 {
        k = m & !3;
        // SAFETY: dispatch verified AVX2+FMA; slices are in bounds.
        unsafe { avx::combine3(out, m, tw, s3, k) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    while k < m {
        let t0 = out[k];
        let t1 = out[m + k] * tw[m + k];
        let t2 = out[2 * m + k] * tw[2 * m + k];
        let sum = t1 + t2;
        let diff = (t1 - t2).scale(s3).mul_i();
        let base = t0 - sum.scale(0.5);
        out[k] = t0 + sum;
        out[m + k] = base + diff;
        out[2 * m + k] = base - diff;
        k += 1;
    }
}

fn combine4(out: &mut [Complex32], m: usize, tw: &[Complex32], direction: Direction, simd: bool) {
    let forward = direction == Direction::Forward;
    let mut k = 0;
    #[cfg(target_arch = "x86_64")]
    if simd && m >= 4 {
        k = m & !3;
        // SAFETY: dispatch verified AVX2+FMA; slices are in bounds.
        unsafe { avx::combine4(out, m, tw, forward, k) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    while k < m {
        let t0 = out[k];
        let t1 = out[m + k] * tw[m + k];
        let t2 = out[2 * m + k] * tw[2 * m + k];
        let t3 = out[3 * m + k] * tw[3 * m + k];
        let a = t0 + t2;
        let b = t0 - t2;
        let c = t1 + t3;
        let d = if forward {
            (t1 - t3).mul_neg_i()
        } else {
            (t1 - t3).mul_i()
        };
        out[k] = a + c;
        out[m + k] = b + d;
        out[2 * m + k] = a - c;
        out[3 * m + k] = b - d;
        k += 1;
    }
}

/// Table-driven radix used for 5 and any other prime factor.
fn combine_generic(out: &mut [Complex32], r: usize, m: usize, stage: &StageTwiddles, simd: bool) {
    debug_assert!(r >= 2);
    let tw = &stage.packed;
    let root = &stage.root;
    let mut k0 = 0;
    #[cfg(target_arch = "x86_64")]
    if simd && m >= 4 && r <= avx::MAX_GENERIC_RADIX {
        k0 = m & !3;
        // SAFETY: dispatch verified AVX2+FMA; slices are in bounds.
        unsafe { avx::combine_generic(out, r, m, tw, root, k0) };
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = simd;
    // LTE sizes are 2/3/5-smooth so r = 5 in practice; a stack buffer
    // keeps the hot path allocation-free, with a heap fallback for
    // exotic prime lengths.
    const STACK_RADIX: usize = 16;
    let mut stack = [Complex32::ZERO; STACK_RADIX];
    let mut heap = Vec::new();
    let t: &mut [Complex32] = if r <= STACK_RADIX {
        &mut stack[..r]
    } else {
        heap.resize(r, Complex32::ZERO);
        &mut heap
    };
    for k in k0..m {
        for (j, tj) in t.iter_mut().enumerate() {
            *tj = out[j * m + k] * tw[j * m + k];
        }
        for q in 0..r {
            let mut acc = t[0];
            for (j, &tj) in t.iter().enumerate().skip(1) {
                acc = acc.mul_add(tj, root[j * r + q]);
            }
            out[q * m + k] = acc;
        }
    }
}

/// AVX2+FMA butterflies: identical per-element arithmetic to the scalar
/// loops above, vectorized across four independent butterfly indices
/// `k`. Each handles `k < split` (a multiple of 4); the caller finishes
/// the tail with the scalar loop.
#[cfg(target_arch = "x86_64")]
mod avx {
    use core::arch::x86_64::*;

    use super::Complex32;
    use crate::simd::x86::{cfma_broadcast, cmul, load, mul_i, mul_neg_i, store};

    /// Largest generic radix the fixed vector register block supports.
    pub(super) const MAX_GENERIC_RADIX: usize = 8;

    /// # Safety
    ///
    /// Requires AVX2+FMA; `out.len() >= 2m`, `tw.len() >= 2m`, `split ≤ m`
    /// and a multiple of 4.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn combine2(out: &mut [Complex32], m: usize, tw: &[Complex32], split: usize) {
        unsafe {
            let o = out.as_mut_ptr();
            let w = tw.as_ptr();
            let mut k = 0;
            while k < split {
                let a = load(o.add(k));
                let b = cmul(load(o.add(m + k)), load(w.add(m + k)));
                store(o.add(k), _mm256_add_ps(a, b));
                store(o.add(m + k), _mm256_sub_ps(a, b));
                k += 4;
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2+FMA; `out.len() >= 3m`, `tw.len() >= 3m`, `split ≤ m`
    /// and a multiple of 4.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn combine3(
        out: &mut [Complex32],
        m: usize,
        tw: &[Complex32],
        s3: f32,
        split: usize,
    ) {
        unsafe {
            let o = out.as_mut_ptr();
            let w = tw.as_ptr();
            let s3v = _mm256_set1_ps(s3);
            let half = _mm256_set1_ps(0.5);
            let mut k = 0;
            while k < split {
                let t0 = load(o.add(k));
                let t1 = cmul(load(o.add(m + k)), load(w.add(m + k)));
                let t2 = cmul(load(o.add(2 * m + k)), load(w.add(2 * m + k)));
                let sum = _mm256_add_ps(t1, t2);
                let diff = mul_i(_mm256_mul_ps(_mm256_sub_ps(t1, t2), s3v));
                let base = _mm256_sub_ps(t0, _mm256_mul_ps(sum, half));
                store(o.add(k), _mm256_add_ps(t0, sum));
                store(o.add(m + k), _mm256_add_ps(base, diff));
                store(o.add(2 * m + k), _mm256_sub_ps(base, diff));
                k += 4;
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2+FMA; `out.len() >= 4m`, `tw.len() >= 4m`, `split ≤ m`
    /// and a multiple of 4.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn combine4(
        out: &mut [Complex32],
        m: usize,
        tw: &[Complex32],
        forward: bool,
        split: usize,
    ) {
        unsafe {
            let o = out.as_mut_ptr();
            let w = tw.as_ptr();
            let mut k = 0;
            while k < split {
                let t0 = load(o.add(k));
                let t1 = cmul(load(o.add(m + k)), load(w.add(m + k)));
                let t2 = cmul(load(o.add(2 * m + k)), load(w.add(2 * m + k)));
                let t3 = cmul(load(o.add(3 * m + k)), load(w.add(3 * m + k)));
                let a = _mm256_add_ps(t0, t2);
                let b = _mm256_sub_ps(t0, t2);
                let c = _mm256_add_ps(t1, t3);
                let d = if forward {
                    mul_neg_i(_mm256_sub_ps(t1, t3))
                } else {
                    mul_i(_mm256_sub_ps(t1, t3))
                };
                store(o.add(k), _mm256_add_ps(a, c));
                store(o.add(m + k), _mm256_add_ps(b, d));
                store(o.add(2 * m + k), _mm256_sub_ps(a, c));
                store(o.add(3 * m + k), _mm256_sub_ps(b, d));
                k += 4;
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2+FMA; `2 ≤ r ≤ MAX_GENERIC_RADIX`, `out.len() >= r·m`,
    /// `tw.len() >= r·m`, `root.len() >= r²`, `split ≤ m` and a multiple
    /// of 4.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn combine_generic(
        out: &mut [Complex32],
        r: usize,
        m: usize,
        tw: &[Complex32],
        root: &[Complex32],
        split: usize,
    ) {
        unsafe {
            let o = out.as_mut_ptr();
            let w = tw.as_ptr();
            let mut t = [_mm256_setzero_ps(); MAX_GENERIC_RADIX];
            let mut k = 0;
            while k < split {
                for (j, tj) in t.iter_mut().enumerate().take(r) {
                    *tj = cmul(load(o.add(j * m + k)), load(w.add(j * m + k)));
                }
                for q in 0..r {
                    let mut acc = t[0];
                    for (j, &tj) in t.iter().enumerate().take(r).skip(1) {
                        acc = cfma_broadcast(acc, tj, root[j * r + q]);
                    }
                    store(o.add(q * m + k), acc);
                }
                k += 4;
            }
        }
    }
}

/// Builds the radix schedule for `n`: 4s first (fewest operations), then
/// 2, 3, 5, then any remaining primes. Shared with the fixed-point FFT so
/// both transforms always decompose identically.
pub(crate) fn radix_schedule(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    while n.is_multiple_of(4) {
        factors.push(4);
        n /= 4;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
    }
    let mut p = 7;
    while p * p <= n {
        while n.is_multiple_of(p) {
            factors.push(p);
            n /= p;
        }
        p += 2;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// A thread-safe cache of [`FftPlan`]s keyed by `(length, direction)`.
///
/// The receiver pipeline needs transforms of many sizes (one per PRB
/// allocation); the planner amortises twiddle-table construction across
/// subframes and threads.
///
/// # Example
///
/// ```
/// use lte_dsp::fft::{Direction, FftPlanner};
///
/// let planner = FftPlanner::new();
/// let a = planner.plan(120, Direction::Forward);
/// let b = planner.plan(120, Direction::Forward);
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // cached
/// ```
/// Largest PRB allocation with a dedicated lock-free plan slot (the
/// 20 MHz LTE uplink schedules at most 110 PRBs).
const DENSE_PRBS: usize = 110;

#[derive(Debug)]
pub struct FftPlanner {
    /// Lock-free slots for the LTE transform sizes `n = 12·prb`,
    /// `prb ∈ 1..=110`, indexed `(prb − 1) + 110·direction`. A steady
    /// state lookup is one atomic load — no lock, no hashing.
    dense: Vec<OnceLock<Arc<FftPlan>>>,
    /// Read-mostly fallback for every other size; the write lock is only
    /// taken the first time a cold size is planned.
    cold: RwLock<HashMap<(usize, Direction), Arc<FftPlan>>>,
}

impl Default for FftPlanner {
    fn default() -> Self {
        FftPlanner {
            dense: (0..2 * DENSE_PRBS).map(|_| OnceLock::new()).collect(),
            cold: RwLock::new(HashMap::new()),
        }
    }
}

impl FftPlanner {
    /// Creates an empty planner.
    pub fn new() -> Self {
        Self::default()
    }

    fn dense_slot(&self, n: usize, direction: Direction) -> Option<&OnceLock<Arc<FftPlan>>> {
        if n == 0 || !n.is_multiple_of(12) || n / 12 > DENSE_PRBS {
            return None;
        }
        let dir = match direction {
            Direction::Forward => 0,
            Direction::Inverse => 1,
        };
        Some(&self.dense[(n / 12 - 1) + dir * DENSE_PRBS])
    }

    /// Returns a (shared) plan for the given length and direction.
    ///
    /// LTE subcarrier counts (multiples of 12 up to 110 PRBs) resolve
    /// through a dense lock-free table; other sizes fall back to a
    /// read-mostly map whose write lock is only held while a cold size
    /// is planned for the first time.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn plan(&self, n: usize, direction: Direction) -> Arc<FftPlan> {
        if let Some(slot) = self.dense_slot(n, direction) {
            return Arc::clone(slot.get_or_init(|| Arc::new(FftPlan::new(n, direction))));
        }
        if let Some(plan) = self
            .cold
            .read()
            .expect("planner lock poisoned")
            .get(&(n, direction))
        {
            return Arc::clone(plan);
        }
        let mut cold = self.cold.write().expect("planner lock poisoned");
        Arc::clone(
            cold.entry((n, direction))
                .or_insert_with(|| Arc::new(FftPlan::new(n, direction))),
        )
    }

    /// Builds the forward and inverse plans for each PRB allocation up
    /// front, so no worker ever pays plan construction (or a cold-map
    /// write lock) on the subframe path.
    pub fn prewarm<I: IntoIterator<Item = usize>>(&self, prbs: I) {
        for prb in prbs {
            let n = prb * 12;
            if n > 0 {
                self.plan(n, Direction::Forward);
                self.plan(n, Direction::Inverse);
            }
        }
    }

    /// Convenience wrapper for [`Direction::Forward`].
    pub fn forward(&self, n: usize) -> Arc<FftPlan> {
        self.plan(n, Direction::Forward)
    }

    /// Convenience wrapper for [`Direction::Inverse`].
    pub fn inverse(&self, n: usize) -> Arc<FftPlan> {
        self.plan(n, Direction::Inverse)
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        let dense = self
            .dense
            .iter()
            .filter(|slot| slot.get().is_some())
            .count();
        dense + self.cold.read().expect("planner lock poisoned").len()
    }
}

/// Reference `O(n²)` DFT used by tests and as an executable specification.
pub fn dft_naive(input: &[Complex32], direction: Direction) -> Vec<Complex32> {
    let n = input.len();
    let sign = match direction {
        Direction::Forward => -1.0f64,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex32::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc_re = 0.0f64;
        let mut acc_im = 0.0f64;
        for (j, x) in input.iter().enumerate() {
            let theta = sign * TAU * (j * k % n) as f64 / n as f64;
            let (s, c) = theta.sin_cos();
            acc_re += x.re as f64 * c - x.im as f64 * s;
            acc_im += x.re as f64 * s + x.im as f64 * c;
        }
        *o = Complex32::new(acc_re as f32, acc_im as f32);
    }
    if direction == Direction::Inverse {
        for z in &mut out {
            *z = z.scale(1.0 / n as f32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn random_block(n: usize, seed: u64) -> Vec<Complex32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5))
            .collect()
    }

    fn assert_close(a: &[Complex32], b: &[Complex32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() <= tol,
                "index {i}: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn radix_schedule_products() {
        for n in 1..=600 {
            let fs = radix_schedule(n);
            assert_eq!(fs.iter().product::<usize>().max(1), n.max(1));
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        for n in [1, 2, 3, 4, 5, 12, 36, 300] {
            let plan = FftPlan::forward(n);
            let mut data = vec![Complex32::ZERO; n];
            data[0] = Complex32::ONE;
            plan.process(&mut data);
            for z in &data {
                assert!((*z - Complex32::ONE).abs() < 1e-4, "n={n}");
            }
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let n = 144;
        let plan = FftPlan::forward(n);
        let mut data = vec![Complex32::ONE; n];
        plan.process(&mut data);
        assert!((data[0].re - n as f32).abs() < 1e-2);
        for z in &data[1..] {
            assert!(z.abs() < 1e-2);
        }
    }

    #[test]
    fn matches_naive_dft_on_lte_sizes() {
        // Every 5-smooth 12·PRB size up to 50 PRBs plus assorted others.
        let mut sizes: Vec<usize> = (1..=50).map(|p| 12 * p).collect();
        sizes.extend([1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 25, 128, 2048]);
        for n in sizes {
            let input = random_block(n, n as u64);
            let mut fast = input.clone();
            FftPlan::forward(n).process(&mut fast);
            let slow = dft_naive(&input, Direction::Forward);
            let tol = 1e-4 * (n as f32).max(8.0);
            assert_close(&fast, &slow, tol);
        }
    }

    #[test]
    fn inverse_matches_naive() {
        for n in [12, 60, 71, 180] {
            let input = random_block(n, 1000 + n as u64);
            let mut fast = input.clone();
            FftPlan::inverse(n).process(&mut fast);
            let slow = dft_naive(&input, Direction::Inverse);
            assert_close(&fast, &slow, 1e-4);
        }
    }

    #[test]
    fn round_trip_identity() {
        for n in [12, 24, 300, 1200, 2400] {
            let original = random_block(n, 7 * n as u64);
            let mut data = original.clone();
            FftPlan::forward(n).process(&mut data);
            FftPlan::inverse(n).process(&mut data);
            assert_close(&data, &original, 1e-4);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 600;
        let input = random_block(n, 42);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr() as f64).sum();
        let mut freq = input;
        FftPlan::forward(n).process(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr() as f64).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() / time_energy < 1e-5,
            "{time_energy} vs {freq_energy}"
        );
    }

    #[test]
    fn linearity() {
        let n = 180;
        let a = random_block(n, 1);
        let b = random_block(n, 2);
        let plan = FftPlan::forward(n);
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.process(&mut fa);
        plan.process(&mut fb);
        let mut sum: Vec<Complex32> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();
        plan.process(&mut sum);
        let expect: Vec<Complex32> = fa.iter().zip(&fb).map(|(x, y)| *x + y.scale(2.0)).collect();
        assert_close(&sum, &expect, 1e-3);
    }

    #[test]
    fn shift_theorem() {
        // Circularly shifting the input multiplies the spectrum by a phasor.
        let n = 48;
        let input = random_block(n, 9);
        let mut shifted: Vec<Complex32> = input.clone();
        shifted.rotate_left(1);
        let plan = FftPlan::forward(n);
        let mut f0 = input;
        let mut f1 = shifted;
        plan.process(&mut f0);
        plan.process(&mut f1);
        for k in 0..n {
            let phase = Complex32::cis(TAU as f32 * k as f32 / n as f32);
            assert!((f1[k] - f0[k] * phase).abs() < 1e-3);
        }
    }

    #[test]
    fn simd_and_scalar_paths_are_bit_identical() {
        // Covers every butterfly: radix 2 (n=24=4·3·2), 3, 4, 5 via the
        // LTE grid sizes, plus a prime (generic radix, 71 > MAX tail-only,
        // 7 within the vector block) and power-of-two front-end sizes.
        let mut sizes: Vec<usize> = [1, 2, 4, 10, 15, 25, 50, 75, 100, 110]
            .iter()
            .map(|p| 12 * p)
            .collect();
        sizes.extend([1, 2, 3, 5, 7, 8, 71, 128, 2048]);
        for direction in [Direction::Forward, Direction::Inverse] {
            for &n in &sizes {
                let plan = FftPlan::new(n, direction);
                let input = random_block(n, 9000 + n as u64);
                let mut scratch = vec![Complex32::ZERO; n];
                let mut vectored = input.clone();
                let simd = crate::simd::simd_available();
                plan.process_with_dispatch(&mut vectored, &mut scratch, simd);
                let mut scalar = input;
                plan.process_with_dispatch(&mut scalar, &mut scratch, false);
                for (i, (a, b)) in vectored.iter().zip(&scalar).enumerate() {
                    assert!(
                        a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                        "n={n} {direction:?} index {i}: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_alloc_path() {
        let n = 360;
        let input = random_block(n, 77);
        let plan = FftPlan::forward(n);
        let mut a = input.clone();
        let mut b = input;
        plan.process(&mut a);
        let mut scratch = vec![Complex32::ZERO; n];
        plan.process_with_scratch(&mut b, &mut scratch);
        assert_close(&a, &b, 0.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn wrong_length_panics() {
        FftPlan::forward(8).process(&mut [Complex32::ZERO; 4]);
    }

    #[test]
    fn planner_caches_and_is_shared() {
        let planner = FftPlanner::new();
        let p1 = planner.forward(12);
        let p2 = planner.forward(12);
        let p3 = planner.inverse(12);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn planner_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<FftPlanner>();
        assert_sync::<FftPlan>();
    }

    #[test]
    fn planner_caches_non_lte_sizes_too() {
        let planner = FftPlanner::new();
        // 17 is prime and not a multiple of 12 — cold-map path.
        let a = planner.forward(17);
        let b = planner.forward(17);
        assert!(Arc::ptr_eq(&a, &b));
        // 1332 = 12 × 111 exceeds the dense PRB range.
        let c = planner.inverse(1332);
        let d = planner.inverse(1332);
        assert!(Arc::ptr_eq(&c, &d));
        assert_eq!(planner.cached_plans(), 2);
    }

    #[test]
    fn planner_prewarm_builds_both_directions() {
        let planner = FftPlanner::new();
        planner.prewarm([4, 25, 100]);
        assert_eq!(planner.cached_plans(), 6);
        // Prewarming twice is idempotent.
        planner.prewarm([25]);
        assert_eq!(planner.cached_plans(), 6);
    }

    #[test]
    fn planner_survives_sixteen_thread_hammer() {
        let planner = Arc::new(FftPlanner::new());
        let sizes = [12, 120, 300, 600, 1200, 17, 1332];
        std::thread::scope(|scope| {
            for t in 0..16 {
                let planner = Arc::clone(&planner);
                scope.spawn(move || {
                    for i in 0..200 {
                        let n = sizes[(t + i) % sizes.len()];
                        let fwd = planner.forward(n);
                        let inv = planner.inverse(n);
                        assert_eq!(fwd.len(), n);
                        assert_eq!(inv.len(), n);
                        // Every thread must see the same shared plan.
                        assert!(Arc::ptr_eq(&fwd, &planner.forward(n)));
                    }
                });
            }
        });
        assert_eq!(planner.cached_plans(), 2 * sizes.len());
    }
}
