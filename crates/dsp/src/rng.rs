//! Deterministic pseudo-random number generation.
//!
//! The paper's input parameter model is driven by `random()` calls; to make
//! every experiment in this reproduction bit-reproducible across platforms we
//! implement xoshiro256** (Blackman & Vigna) with a SplitMix64 seeder rather
//! than depending on an external RNG whose stream might change between
//! versions. The generator is *splittable* via [`Xoshiro256::split`], which
//! gives independent streams to e.g. each subframe's data generator.

/// xoshiro256** — a small, fast, high-quality non-cryptographic PRNG.
///
/// # Example
///
/// ```
/// use lte_dsp::Xoshiro256;
///
/// let mut a = Xoshiro256::seed_from_u64(42);
/// let mut b = Xoshiro256::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Seeds the generator from a single `u64` via SplitMix64, as the xoshiro
    /// authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` — the paper pseudocode's `random()`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening-multiply rejection sampling: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A standard-normal sample (Box–Muller; one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        // Draw u in (0,1] to avoid ln(0).
        let u = 1.0 - self.next_f64();
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Derives an independent generator, advancing `self`.
    ///
    /// The child is seeded from fresh output of the parent, so parent and
    /// child streams are statistically independent for all practical
    /// purposes.
    pub fn split(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }
}

impl Default for Xoshiro256 {
    /// A fixed-seed generator; equivalent to `seed_from_u64(0)`.
    fn default() -> Self {
        Xoshiro256::seed_from_u64(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(123);
        let mut b = Xoshiro256::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.next_f32();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = Xoshiro256::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bounded_draws_stay_in_range_and_cover() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        Xoshiro256::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "gaussian variance {var}");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Xoshiro256::seed_from_u64(3);
        let mut child = parent.split();
        // The parent continues on a different trajectory than the child.
        let equal = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn default_is_seed_zero() {
        assert_eq!(Xoshiro256::default(), Xoshiro256::seed_from_u64(0));
    }
}
