//! Zadoff–Chu reference (DM-RS) sequences.
//!
//! LTE uplink demodulation reference symbols are built from Zadoff–Chu
//! sequences: constant-amplitude, zero-autocorrelation (CAZAC) sequences
//! whose DFT is again CAZAC. The channel estimator's matched filter
//! multiplies the received reference symbol by the conjugate of the known
//! sequence — flat amplitude makes that multiplication distortion-free.
//!
//! Following TS 36.211 §5.5.1, a base sequence of length `12·N_PRB` is
//! generated from a ZC sequence of the largest prime length `N_zc` smaller
//! than the allocation, cyclically extended; distinct users/layers use
//! cyclic time shifts which become phase ramps in the frequency domain.

use crate::complex::Complex32;

/// Largest prime strictly smaller than `n` (or `n` itself if `n` is prime
/// and `allow_equal`), used for the ZC base length.
fn largest_prime_at_most(n: usize) -> usize {
    assert!(n >= 2, "no prime below 2");
    let mut cand = n;
    loop {
        if is_prime(cand) {
            return cand;
        }
        cand -= 1;
    }
}

fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// A frequency-domain DM-RS reference sequence for one allocation.
///
/// # Example
///
/// ```
/// use lte_dsp::zadoff_chu::ReferenceSequence;
///
/// // 4 PRBs → 48 subcarriers, root index 5.
/// let seq = ReferenceSequence::new(48, 5);
/// assert_eq!(seq.len(), 48);
/// // CAZAC: every sample has unit magnitude.
/// for z in seq.samples() {
///     assert!((z.abs() - 1.0).abs() < 1e-5);
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ReferenceSequence {
    samples: Vec<Complex32>,
    root: usize,
}

impl ReferenceSequence {
    /// Builds a cyclically-extended ZC base sequence of `len` subcarriers
    /// with root `u` (reduced modulo the underlying prime length).
    ///
    /// # Panics
    ///
    /// Panics if `len < 3` (an LTE allocation is at least one PRB, i.e. 12
    /// subcarriers; 3 is the mathematical minimum here).
    pub fn new(len: usize, root: usize) -> Self {
        assert!(len >= 3, "reference sequence needs at least 3 subcarriers");
        let n_zc = largest_prime_at_most(len);
        let u = 1 + root % (n_zc - 1); // valid ZC roots are 1..n_zc-1
        let mut samples = Vec::with_capacity(len);
        // The sequence is periodic in N_zc (m = n mod N_zc), so the f64
        // trig runs only over one prime period; the cyclic extension is a
        // bit-exact copy of the first period.
        for m in 0..len.min(n_zc) {
            // x_u(m) = exp(-iπ u m (m+1) / N_zc); compute the phase with
            // integer arithmetic modulo 2·N_zc to keep precision at large m.
            let q = (u * m % (2 * n_zc)) * ((m + 1) % (2 * n_zc)) % (2 * n_zc);
            let phase = -(std::f64::consts::PI) * q as f64 / n_zc as f64;
            samples.push(Complex32::new(phase.cos() as f32, phase.sin() as f32));
        }
        for n in n_zc..len {
            let s = samples[n - n_zc];
            samples.push(s);
        }
        ReferenceSequence { samples, root: u }
    }

    /// Applies a cyclic time shift of `alpha` (radians per subcarrier): a
    /// frequency-domain phase ramp distinguishing users/layers that share a
    /// base sequence.
    ///
    /// The per-subcarrier rotators come from the scalar `cis` table (cold
    /// construction); the rotation itself is the [`crate::simd`]
    /// complex-multiply kernel, vectorized when AVX2 is available.
    pub fn with_cyclic_shift(&self, alpha: f32) -> ReferenceSequence {
        let rot: Vec<Complex32> = (0..self.samples.len())
            .map(|n| Complex32::cis(alpha * n as f32))
            .collect();
        let mut samples = vec![Complex32::ZERO; self.samples.len()];
        crate::simd::cmul_into(&mut samples, &self.samples, &rot);
        ReferenceSequence {
            samples,
            root: self.root,
        }
    }

    /// The frequency-domain samples.
    pub fn samples(&self) -> &[Complex32] {
        &self.samples
    }

    /// Sequence length in subcarriers.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the sequence is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The effective ZC root in use.
    pub fn root(&self) -> usize {
        self.root
    }
}

/// The cyclic-shift angle (radians per subcarrier) for layer `layer` of
/// `n_layers`.
///
/// A frequency-domain ramp of `α` radians/subcarrier is a time-domain
/// cyclic shift of `α·N/2π` samples; spreading layers evenly
/// (`α = 2π·layer/n_layers`) places each layer's channel response
/// `N/n_layers` samples apart, which is what lets the estimator's
/// time-domain window separate them.
pub fn layer_cyclic_shift(layer: usize, n_layers: usize) -> f32 {
    assert!(n_layers > 0 && layer < n_layers, "layer out of range");
    std::f32::consts::TAU * layer as f32 / n_layers as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes() {
        assert!(is_prime(2));
        assert!(is_prime(47));
        assert!(!is_prime(1));
        assert!(!is_prime(49));
        assert_eq!(largest_prime_at_most(12), 11);
        assert_eq!(largest_prime_at_most(48), 47);
        assert_eq!(largest_prime_at_most(13), 13);
    }

    #[test]
    fn unit_magnitude_everywhere() {
        for len in [12, 24, 48, 120, 300] {
            let seq = ReferenceSequence::new(len, 3);
            for z in seq.samples() {
                assert!((z.abs() - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn roots_give_distinct_sequences() {
        let a = ReferenceSequence::new(36, 1);
        let b = ReferenceSequence::new(36, 2);
        assert_ne!(a.samples()[1], b.samples()[1]);
    }

    #[test]
    fn low_cross_correlation_between_roots() {
        let n = 132; // 11 PRBs → prime 131
        let a = ReferenceSequence::new(n, 1);
        let b = ReferenceSequence::new(n, 2);
        let cross: Complex32 = a
            .samples()
            .iter()
            .zip(b.samples())
            .map(|(x, y)| *x * y.conj())
            .sum();
        // Ideal ZC cross-correlation is √N_zc ≈ 11.4 ≪ N.
        assert!(
            cross.abs() < 0.25 * n as f32,
            "cross-correlation too high: {}",
            cross.abs()
        );
    }

    #[test]
    fn autocorrelation_peaks_at_zero_lag() {
        let n = 48;
        let seq = ReferenceSequence::new(n, 5);
        let zero_lag: Complex32 = seq.samples().iter().map(|z| *z * z.conj()).sum();
        assert!((zero_lag.re - n as f32).abs() < 1e-3);
        // Nonzero cyclic lag within the underlying prime span is small.
        let lag = 7;
        let shifted: Complex32 = (0..n)
            .map(|i| seq.samples()[i] * seq.samples()[(i + lag) % n].conj())
            .sum();
        assert!(shifted.abs() < 0.35 * n as f32);
    }

    #[test]
    fn cyclic_shift_preserves_magnitude_and_changes_phase() {
        let seq = ReferenceSequence::new(24, 4);
        let shifted = seq.with_cyclic_shift(0.3);
        for (a, b) in seq.samples().iter().zip(shifted.samples()) {
            assert!((a.abs() - b.abs()).abs() < 1e-6);
        }
        assert_ne!(seq.samples()[5], shifted.samples()[5]);
        assert_eq!(seq.samples()[0], shifted.samples()[0]); // ramp starts at 0
    }

    #[test]
    fn layer_shifts_are_distinct() {
        let shifts: Vec<f32> = (0..4).map(|l| layer_cyclic_shift(l, 4)).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert!((shifts[i] - shifts[j]).abs() > 1e-4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn layer_shift_bounds() {
        layer_cyclic_shift(4, 4);
    }
}
