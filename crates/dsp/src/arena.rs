//! Per-worker scratch arenas for the zero-allocation subframe hot path.
//!
//! Every stage of the receive pipeline needs short-lived buffers — FFT
//! scratch, combined symbols, LLR blocks, decoded bits. Allocating them
//! fresh per task puts the global allocator on the per-subframe critical
//! path; a [`ScratchArena`] instead recycles buffers through free lists
//! keyed by power-of-two size class, so after a warmup pass the steady
//! state performs no heap allocation at all (the `zero_alloc` regression
//! test in `lte-phy` proves this with a counting global allocator).
//!
//! Ownership model: one arena per worker thread (`lte-phy` wraps one in
//! its thread-local `UserScratch`), never shared. Buffers are *taken*
//! (moved out empty, with capacity rounded up to the size class),
//! filled, and *recycled* back by the same worker when the task that
//! took them finishes. The dedicated FFT scratch buffer is borrowed in
//! place and grows monotonically to the largest transform seen.
//!
//! Global [`stats`] counters (fresh allocations vs. reuses) are shared
//! by all arenas and exported by the worker pool as `pool.arena.*`
//! metrics.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::complex::Complex32;

/// Free lists above this depth drop buffers instead of keeping them,
/// bounding arena memory even under pathological take/recycle patterns.
const MAX_POOL_DEPTH: usize = 32;
/// Size classes cover capacities up to `2^MAX_CLASS`.
const MAX_CLASS: usize = 32;

static FRESH: AtomicU64 = AtomicU64::new(0);
static REUSED: AtomicU64 = AtomicU64::new(0);

/// Aggregate arena counters across every thread's arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers allocated fresh (warmup or a new size class).
    pub fresh: u64,
    /// Buffers served from a free list without touching the allocator.
    pub reused: u64,
}

/// Process-wide arena counters (all threads summed).
pub fn stats() -> ArenaStats {
    ArenaStats {
        fresh: FRESH.load(Ordering::Relaxed),
        reused: REUSED.load(Ordering::Relaxed),
    }
}

/// Free lists for one element type, indexed by size class
/// (`class = ceil(log2(capacity))`).
#[derive(Debug, Default)]
struct BufferPool<T> {
    classes: Vec<Vec<Vec<T>>>,
}

impl<T> BufferPool<T> {
    fn class_for(len: usize) -> usize {
        let class = len.max(1).next_power_of_two().trailing_zeros() as usize;
        assert!(class <= MAX_CLASS, "buffer of {len} elements is absurd");
        class
    }

    /// An empty vector with capacity for at least `len` elements, reusing
    /// a recycled buffer of the same size class when one is available.
    fn take(&mut self, len: usize) -> Vec<T> {
        let class = Self::class_for(len);
        if let Some(list) = self.classes.get_mut(class) {
            if let Some(mut buf) = list.pop() {
                buf.clear();
                REUSED.fetch_add(1, Ordering::Relaxed);
                return buf;
            }
        }
        FRESH.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(1 << class)
    }

    /// Returns a buffer to its free list for later reuse.
    fn recycle(&mut self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        // A buffer with capacity `c` serves any class `<= floor(log2(c))`.
        let class = (usize::BITS - 1 - buf.capacity().leading_zeros()) as usize;
        if self.classes.len() <= class {
            self.classes.resize_with(class + 1, Vec::new);
        }
        let list = &mut self.classes[class];
        if list.len() < MAX_POOL_DEPTH {
            list.push(buf);
        }
    }

    fn pooled(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }
}

/// A per-worker pool of reusable hot-path buffers.
///
/// See the module docs for the ownership model. All methods are `&mut
/// self`: an arena belongs to exactly one thread.
///
/// # Example
///
/// ```
/// use lte_dsp::arena::ScratchArena;
///
/// let mut arena = ScratchArena::new();
/// let mut llrs = arena.take_f32(1200);
/// llrs.extend(std::iter::repeat_n(0.0, 1200)); // no reallocation
/// arena.recycle_f32(llrs);
/// let again = arena.take_f32(900); // served from the free list
/// assert!(again.capacity() >= 900);
/// ```
#[derive(Debug, Default)]
pub struct ScratchArena {
    fft: Vec<Complex32>,
    c32: BufferPool<Complex32>,
    f32s: BufferPool<f32>,
    bytes: BufferPool<u8>,
}

impl ScratchArena {
    /// An empty arena; buffers are created on first use and recycled
    /// thereafter.
    pub fn new() -> Self {
        Self::default()
    }

    /// The persistent FFT scratch slice, at least `n` long. Grows
    /// monotonically; steady state never reallocates.
    pub fn fft_scratch(&mut self, n: usize) -> &mut [Complex32] {
        if self.fft.len() < n {
            self.fft.resize(n, Complex32::ZERO);
            FRESH.fetch_add(1, Ordering::Relaxed);
        }
        &mut self.fft[..n]
    }

    /// Takes an empty complex buffer with capacity for `len` elements.
    pub fn take_c32(&mut self, len: usize) -> Vec<Complex32> {
        self.c32.take(len)
    }

    /// Recycles a complex buffer taken with [`take_c32`](Self::take_c32).
    pub fn recycle_c32(&mut self, buf: Vec<Complex32>) {
        self.c32.recycle(buf);
    }

    /// Takes an empty LLR buffer with capacity for `len` elements.
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        self.f32s.take(len)
    }

    /// Recycles an LLR buffer taken with [`take_f32`](Self::take_f32).
    pub fn recycle_f32(&mut self, buf: Vec<f32>) {
        self.f32s.recycle(buf);
    }

    /// Takes an empty bit buffer with capacity for `len` elements.
    pub fn take_u8(&mut self, len: usize) -> Vec<u8> {
        self.bytes.take(len)
    }

    /// Recycles a bit buffer taken with [`take_u8`](Self::take_u8).
    pub fn recycle_u8(&mut self, buf: Vec<u8>) {
        self.bytes.recycle(buf);
    }

    /// Number of buffers currently parked on free lists.
    pub fn pooled_buffers(&self) -> usize {
        self.c32.pooled() + self.f32s.pooled() + self.bytes.pooled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_rounds_capacity_to_class_and_reuses() {
        let mut arena = ScratchArena::new();
        let a = arena.take_f32(100);
        assert!(a.capacity() >= 128, "capacity {}", a.capacity());
        let cap = a.capacity();
        let ptr = a.as_ptr();
        arena.recycle_f32(a);
        // Any length in the same class gets the very same buffer back.
        let b = arena.take_f32(65);
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr, "must reuse the recycled buffer");
        assert!(b.is_empty());
    }

    #[test]
    fn distinct_classes_do_not_mix() {
        let mut arena = ScratchArena::new();
        let small = arena.take_c32(16);
        arena.recycle_c32(small);
        let large = arena.take_c32(1000);
        assert!(large.capacity() >= 1000);
    }

    #[test]
    fn fft_scratch_grows_monotonically() {
        let mut arena = ScratchArena::new();
        assert_eq!(arena.fft_scratch(300).len(), 300);
        assert_eq!(arena.fft_scratch(1200).len(), 1200);
        let ptr = arena.fft_scratch(1200).as_ptr();
        // A smaller request reuses the same storage.
        assert_eq!(arena.fft_scratch(12).as_ptr(), ptr);
    }

    #[test]
    fn pool_depth_is_bounded() {
        let mut arena = ScratchArena::new();
        for _ in 0..3 * MAX_POOL_DEPTH {
            let buf = {
                let mut b = arena.take_u8(64);
                b.push(1);
                b
            };
            arena.recycle_u8(buf);
        }
        let bufs: Vec<_> = (0..3 * MAX_POOL_DEPTH).map(|_| arena.take_u8(64)).collect();
        for b in bufs {
            arena.recycle_u8(b);
        }
        assert!(arena.pooled_buffers() <= MAX_POOL_DEPTH);
    }

    #[test]
    fn stats_observe_fresh_and_reuse() {
        let before = stats();
        let mut arena = ScratchArena::new();
        let a = arena.take_f32(32);
        arena.recycle_f32(a);
        let b = arena.take_f32(32);
        arena.recycle_f32(b);
        let after = stats();
        assert!(after.fresh > before.fresh);
        assert!(after.reused > before.reused);
    }
}
