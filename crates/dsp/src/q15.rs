//! Q15 fixed-point arithmetic and a block-scaled fixed-point FFT.
//!
//! The TILEPro64 has no floating-point unit — the paper's generic C code
//! runs on software floats, which is exactly why its cycle costs are so
//! high. Production baseband firmware uses fixed point instead; this
//! module provides the Q15 substrate a fixed-point port of the benchmark
//! would build on: saturating scalar/complex arithmetic, block
//! conversion with quantisation-SNR measurement, and a mixed-radix FFT
//! with per-stage scaling (each radix-`r` combine divides by `r`,
//! guaranteeing no overflow for any input).

use crate::complex::Complex32;
use crate::fft::Direction;

/// A Q15 fixed-point number: value = `raw / 32768`, range `[−1, 1)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Q15(pub i16);

#[allow(clippy::should_implement_trait)] // mul/shr are saturating Q15 ops, not std operators
impl Q15 {
    /// The largest representable value (≈ 0.99997).
    pub const MAX: Q15 = Q15(i16::MAX);
    /// The most negative representable value (−1.0).
    pub const MIN: Q15 = Q15(i16::MIN);
    /// Zero.
    pub const ZERO: Q15 = Q15(0);

    /// Converts from `f32`, saturating outside `[−1, 1)`.
    pub fn from_f32(v: f32) -> Q15 {
        let scaled = (v * 32768.0).round();
        Q15(scaled.clamp(i16::MIN as f32, i16::MAX as f32) as i16)
    }

    /// Converts to `f32`.
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / 32768.0
    }

    /// Saturating addition.
    pub fn sat_add(self, rhs: Q15) -> Q15 {
        Q15(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn sat_sub(self, rhs: Q15) -> Q15 {
        Q15(self.0.saturating_sub(rhs.0))
    }

    /// Rounded Q15×Q15 multiplication (`(a·b + 2¹⁴) >> 15`).
    pub fn mul(self, rhs: Q15) -> Q15 {
        let p = (self.0 as i32) * (rhs.0 as i32);
        Q15(((p + (1 << 14)) >> 15).clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }

    /// Arithmetic shift right (divide by 2^n, rounding toward −∞).
    pub fn shr(self, n: u32) -> Q15 {
        Q15(self.0 >> n)
    }
}

/// A complex Q15 sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CQ15 {
    /// Real part.
    pub re: Q15,
    /// Imaginary part.
    pub im: Q15,
}

#[allow(clippy::should_implement_trait)] // mul/shr are rounding Q15 ops, not std operators
impl CQ15 {
    /// Zero.
    pub const ZERO: CQ15 = CQ15 {
        re: Q15::ZERO,
        im: Q15::ZERO,
    };

    /// Converts from a float sample, saturating.
    pub fn from_c32(z: Complex32) -> CQ15 {
        CQ15 {
            re: Q15::from_f32(z.re),
            im: Q15::from_f32(z.im),
        }
    }

    /// Converts to a float sample.
    pub fn to_c32(self) -> Complex32 {
        Complex32::new(self.re.to_f32(), self.im.to_f32())
    }

    /// Saturating addition.
    pub fn sat_add(self, rhs: CQ15) -> CQ15 {
        CQ15 {
            re: self.re.sat_add(rhs.re),
            im: self.im.sat_add(rhs.im),
        }
    }

    /// Saturating subtraction.
    pub fn sat_sub(self, rhs: CQ15) -> CQ15 {
        CQ15 {
            re: self.re.sat_sub(rhs.re),
            im: self.im.sat_sub(rhs.im),
        }
    }

    /// Rounded complex multiplication.
    pub fn mul(self, rhs: CQ15) -> CQ15 {
        // Work in i32 to keep the cross terms exact before one rounding.
        let ar = self.re.0 as i32;
        let ai = self.im.0 as i32;
        let br = rhs.re.0 as i32;
        let bi = rhs.im.0 as i32;
        let re =
            ((ar * br - ai * bi + (1 << 14)) >> 15).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        let im =
            ((ar * bi + ai * br + (1 << 14)) >> 15).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        CQ15 {
            re: Q15(re),
            im: Q15(im),
        }
    }

    /// Arithmetic shift right of both parts.
    pub fn shr(self, n: u32) -> CQ15 {
        CQ15 {
            re: self.re.shr(n),
            im: self.im.shr(n),
        }
    }
}

/// Converts a float block to Q15, scaling by `scale` first (pick `scale`
/// so the block fits `[−1, 1)`).
pub fn quantize_block(block: &[Complex32], scale: f32) -> Vec<CQ15> {
    block
        .iter()
        .map(|z| CQ15::from_c32(z.scale(scale)))
        .collect()
}

/// Converts a Q15 block back to floats, undoing `scale`.
pub fn dequantize_block(block: &[CQ15], scale: f32) -> Vec<Complex32> {
    let inv = 1.0 / scale;
    block.iter().map(|q| q.to_c32().scale(inv)).collect()
}

/// Signal-to-quantisation-noise ratio in dB between a reference float
/// block and a processed block.
pub fn quantization_snr_db(reference: &[Complex32], processed: &[Complex32]) -> f64 {
    assert_eq!(reference.len(), processed.len(), "length mismatch");
    let signal: f64 = reference.iter().map(|z| z.norm_sqr() as f64).sum();
    let noise: f64 = reference
        .iter()
        .zip(processed)
        .map(|(a, b)| (*a - *b).norm_sqr() as f64)
        .sum();
    if noise == 0.0 {
        return f64::INFINITY;
    }
    10.0 * (signal / noise).log10()
}

/// A fixed-point mixed-radix FFT with per-stage `1/r` scaling.
///
/// The output equals the float DFT scaled by `1/n` (forward) — the
/// per-stage scaling guarantees |output| ≤ max|input| so no overflow is
/// possible. Use [`FixedFft::scaling`] to undo the factor.
#[derive(Debug)]
pub struct FixedFft {
    n: usize,
    twiddles: Vec<CQ15>,
    factors: Vec<usize>,
    direction: Direction,
}

impl FixedFft {
    /// Plans a fixed-point transform of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, direction: Direction) -> Self {
        assert!(n > 0, "transform length must be positive");
        let sign = match direction {
            Direction::Forward => -1.0f64,
            Direction::Inverse => 1.0,
        };
        let twiddles = (0..n)
            .map(|k| {
                let theta = sign * std::f64::consts::TAU * k as f64 / n as f64;
                CQ15 {
                    re: Q15::from_f32(theta.cos() as f32 * 0.99997),
                    im: Q15::from_f32(theta.sin() as f32 * 0.99997),
                }
            })
            .collect();
        FixedFft {
            n,
            twiddles,
            factors: crate::fft::radix_schedule(n),
            direction,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if planned for length zero (never, by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The overall scaling applied: the output is the mathematical
    /// transform times `1/n` (forward) or the standard `1/n`-normalised
    /// inverse (inverse direction).
    pub fn scaling(&self) -> f32 {
        1.0 / self.n as f32
    }

    /// Transforms `data` in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn process(&self, data: &mut [CQ15]) {
        assert_eq!(data.len(), self.n, "data length must equal plan length");
        let scratch = data.to_vec();
        self.recurse(&scratch, 1, data, &self.factors);
    }

    fn tw(&self, idx: usize) -> CQ15 {
        self.twiddles[idx % self.n]
    }

    fn recurse(&self, input: &[CQ15], stride: usize, out: &mut [CQ15], factors: &[usize]) {
        let n = out.len();
        if n == 1 {
            out[0] = input[0];
            return;
        }
        let r = factors[0];
        let m = n / r;
        for j in 0..r {
            self.recurse(
                &input[j * stride..],
                stride * r,
                &mut out[j * m..(j + 1) * m],
                &factors[1..],
            );
        }
        let tw_step = self.n / n;
        let root_step = self.n / r;
        // Generic radix: accumulate exactly in i64, then apply a single
        // rounded rescale by 2¹⁵·r (the twiddle Q15 scale and the 1/r
        // stage scaling together) — one rounding per output, no
        // truncation bias.
        let mut t = vec![CQ15::ZERO; r];
        for k in 0..m {
            for (j, tj) in t.iter_mut().enumerate() {
                *tj = out[j * m + k].mul(self.tw(j * k * tw_step));
            }
            for q in 0..r {
                let mut acc_re = 0i64;
                let mut acc_im = 0i64;
                for (j, &tj) in t.iter().enumerate() {
                    let w = self.tw(j * q * root_step);
                    acc_re += tj.re.0 as i64 * w.re.0 as i64 - tj.im.0 as i64 * w.im.0 as i64;
                    acc_im += tj.re.0 as i64 * w.im.0 as i64 + tj.im.0 as i64 * w.re.0 as i64;
                }
                let denom = (1i64 << 15) * r as i64;
                let round = |v: i64| -> i16 {
                    let rounded = if v >= 0 {
                        (v + denom / 2) / denom
                    } else {
                        (v - denom / 2) / denom
                    };
                    rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16
                };
                out[q * m + k] = CQ15 {
                    re: Q15(round(acc_re)),
                    im: Q15(round(acc_im)),
                };
            }
        }
    }

    /// The planned direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;
    use crate::rng::Xoshiro256;

    fn random_block(n: usize, seed: u64, amplitude: f32) -> Vec<Complex32> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Complex32::new(
                    amplitude * (rng.next_f32() - 0.5),
                    amplitude * (rng.next_f32() - 0.5),
                )
            })
            .collect()
    }

    #[test]
    fn q15_round_trip() {
        for v in [-1.0f32, -0.5, 0.0, 0.25, 0.9999] {
            let q = Q15::from_f32(v);
            assert!((q.to_f32() - v).abs() < 1.0 / 32768.0, "{v}");
        }
    }

    #[test]
    fn q15_saturates() {
        assert_eq!(Q15::from_f32(2.0), Q15::MAX);
        assert_eq!(Q15::from_f32(-2.0), Q15::MIN);
        assert_eq!(Q15::MAX.sat_add(Q15::MAX), Q15::MAX);
        assert_eq!(Q15::MIN.sat_sub(Q15::MAX), Q15::MIN);
    }

    #[test]
    fn q15_multiplication_accuracy() {
        let a = Q15::from_f32(0.5);
        let b = Q15::from_f32(-0.25);
        assert!((a.mul(b).to_f32() + 0.125).abs() < 2.0 / 32768.0);
    }

    #[test]
    fn complex_multiplication_matches_float() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..500 {
            let a = Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5);
            let b = Complex32::new(rng.next_f32() - 0.5, rng.next_f32() - 0.5);
            let qa = CQ15::from_c32(a);
            let qb = CQ15::from_c32(b);
            let qp = qa.mul(qb).to_c32();
            let fp = a * b;
            assert!((qp - fp).abs() < 4.0 / 32768.0, "{qp:?} vs {fp:?}");
        }
    }

    #[test]
    fn quantization_snr_of_conversion() {
        let block = random_block(1000, 1, 0.9);
        let q = quantize_block(&block, 1.0);
        let back = dequantize_block(&q, 1.0);
        let snr = quantization_snr_db(&block, &back);
        // 16-bit quantisation of a well-scaled signal: > 70 dB.
        assert!(snr > 70.0, "SNR {snr} dB");
    }

    #[test]
    fn fixed_fft_matches_float_dft() {
        for n in [12usize, 48, 144, 300] {
            let input = random_block(n, n as u64, 0.9);
            let mut fixed: Vec<CQ15> = quantize_block(&input, 1.0);
            let plan = FixedFft::new(n, Direction::Forward);
            plan.process(&mut fixed);
            // Undo the 1/n scaling for comparison.
            let out: Vec<Complex32> = fixed
                .iter()
                .map(|q| q.to_c32().scale(1.0 / plan.scaling()))
                .collect();
            let reference = dft_naive(&input, Direction::Forward);
            let snr = quantization_snr_db(&reference, &out);
            assert!(snr > 40.0, "n={n}: SNR {snr:.1} dB");
        }
    }

    #[test]
    fn fixed_fft_never_overflows() {
        // Worst case: full-scale constant input.
        let n = 240;
        let mut data = vec![
            CQ15 {
                re: Q15::MAX,
                im: Q15::MAX
            };
            n
        ];
        FixedFft::new(n, Direction::Forward).process(&mut data);
        // DC bin should be ≈ max/1 (scaled by 1/n then ×n energy), all
        // finite by construction; just check determinism and bounds.
        assert!(data.iter().all(|q| q.re.0 > i16::MIN && q.im.0 > i16::MIN));
    }

    #[test]
    fn fixed_ifft_round_trip_snr() {
        let n = 120;
        let input = random_block(n, 7, 0.9);
        let mut fixed = quantize_block(&input, 1.0);
        FixedFft::new(n, Direction::Forward).process(&mut fixed);
        // Forward scaled by 1/n: amplify back up before the inverse to
        // preserve precision (block floating point in spirit).
        for q in &mut fixed {
            let z = q.to_c32().scale(n as f32 / 8.0);
            *q = CQ15::from_c32(z);
        }
        FixedFft::new(n, Direction::Inverse).process(&mut fixed);
        let out: Vec<Complex32> = fixed.iter().map(|q| q.to_c32().scale(8.0)).collect();
        let snr = quantization_snr_db(&input, &out);
        assert!(snr > 30.0, "round-trip SNR {snr:.1} dB");
    }

    #[test]
    fn snr_helpers() {
        let a = vec![Complex32::ONE; 4];
        assert_eq!(quantization_snr_db(&a, &a), f64::INFINITY);
    }
}
