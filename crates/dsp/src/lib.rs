//! Signal-processing substrate for the LTE Uplink Receiver PHY benchmark.
//!
//! This crate implements, from scratch, every DSP kernel the ISPASS 2012
//! benchmark's receiver pipeline is built from:
//!
//! * [`Complex32`] arithmetic and small math helpers ([`math`]),
//! * mixed-radix forward/inverse FFTs for all LTE transform sizes ([`fft`]),
//! * Zadoff–Chu reference (DM-RS) sequences ([`zadoff_chu`]),
//! * the channel-estimation matched filter and time-domain window
//!   ([`matched_filter`], [`window`]),
//! * QPSK/16-QAM/64-QAM symbol mapping and exact/max-log soft demapping
//!   ([`modulation`], [`llr`]),
//! * block (de)interleaving ([`interleave`]),
//! * CRC-8/16/24A/24B generators used by LTE transport channels ([`crc`]),
//! * FIR filtering for the receive front-end ([`fir`]),
//! * Q15 fixed-point arithmetic and a block-scaled fixed-point FFT
//!   ([`q15`]) — the substrate a fixed-point port of the benchmark would
//!   use on FPU-less silicon like the TILEPro64,
//! * Gold-sequence scrambling ([`scrambling`]), transport-block
//!   code-block segmentation ([`segmentation`]) and circular-buffer rate
//!   matching ([`rate_match`]),
//! * a rate-1/3 PCCC turbo codec with a QPP interleaver ([`turbo`]) — the
//!   paper passes turbo decoding through (it runs on dedicated hardware);
//!   the real codec is provided as the natural module replacement,
//! * a MIMO block-fading + AWGN channel model ([`channel`]), and
//! * a deterministic, splittable xoshiro256** RNG ([`rng`]) so every
//!   experiment in the reproduction is bit-reproducible.
//!
//! # Example
//!
//! ```
//! use lte_dsp::fft::FftPlan;
//! use lte_dsp::Complex32;
//!
//! // A 300-point transform (25 PRBs × 12 subcarriers) — a typical LTE size.
//! let plan = FftPlan::forward(300);
//! let mut data = vec![Complex32::new(1.0, 0.0); 300];
//! plan.process(&mut data);
//! assert!((data[0].re - 300.0).abs() < 1e-3);
//! ```

pub mod arena;
pub mod channel;
pub mod complex;
pub mod crc;
pub mod fft;
pub mod fir;
pub mod interleave;
pub mod llr;
pub mod matched_filter;
pub mod math;
pub mod modulation;
pub mod q15;
pub mod rate_match;
pub mod rng;
pub mod scrambling;
pub mod segmentation;
pub mod simd;
pub mod turbo;
pub mod window;
pub mod zadoff_chu;

pub use complex::Complex32;
pub use modulation::Modulation;
pub use rng::Xoshiro256;
