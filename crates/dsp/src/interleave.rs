//! Block (de)interleaving (the `deinterleave` kernel of Fig. 3).
//!
//! LTE multiplexing (TS 36.212 §5.1.4) spreads coded bits over the
//! allocation with a row/column sub-block interleaver: write row-wise into
//! 32 columns, permute the columns with a fixed bit-reversal-derived
//! pattern, read column-wise. The receiver applies the inverse before soft
//! demapping feeds the decoder.

/// The fixed inter-column permutation of the TS 36.212 sub-block
/// interleaver.
pub const COLUMN_PERMUTATION: [usize; 32] = [
    0, 16, 8, 24, 4, 20, 12, 28, 2, 18, 10, 26, 6, 22, 14, 30, 1, 17, 9, 25, 5, 21, 13, 29, 3, 19,
    11, 27, 7, 23, 15, 31,
];

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

fn subblock_cache() -> &'static RwLock<HashMap<usize, Arc<Interleaver>>> {
    static CACHE: OnceLock<RwLock<HashMap<usize, Arc<Interleaver>>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Returns a shared, cached sub-block interleaver for `n` elements.
///
/// The benchmark (de)interleaves every user's full allocation each
/// subframe; allocations repeat constantly, so construction is amortised
/// through a global read-mostly cache (the [`crate::fft::FftPlanner`]
/// pattern): steady-state lookups take only the read lock, and the write
/// lock is held once per distinct size. [`prewarm_subblock`] moves even
/// that off the subframe path.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn subblock_cached(n: usize) -> Arc<Interleaver> {
    if let Some(il) = subblock_cache()
        .read()
        .expect("interleaver cache poisoned")
        .get(&n)
    {
        return Arc::clone(il);
    }
    let mut map = subblock_cache()
        .write()
        .expect("interleaver cache poisoned");
    Arc::clone(
        map.entry(n)
            .or_insert_with(|| Arc::new(Interleaver::subblock(n))),
    )
}

/// Builds (and caches) the sub-block interleavers for the given sizes up
/// front, so the steady-state path never takes the cache's write lock.
pub fn prewarm_subblock<I: IntoIterator<Item = usize>>(sizes: I) {
    for n in sizes {
        if n > 0 {
            subblock_cached(n);
        }
    }
}

/// A length-`n` interleaver: a precomputed bijection on `0..n`.
///
/// `output[i] = input[permutation[i]]`.
///
/// # Example
///
/// ```
/// use lte_dsp::interleave::Interleaver;
///
/// let il = Interleaver::subblock(100);
/// let data: Vec<u32> = (0..100).collect();
/// let mixed = il.apply(&data);
/// let back = il.invert(&mixed);
/// assert_eq!(back, data);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Interleaver {
    forward: Vec<u32>,
    inverse: Vec<u32>,
}

impl Interleaver {
    /// Builds an interleaver from an explicit permutation.
    ///
    /// # Panics
    ///
    /// Panics if `permutation` is not a bijection on `0..permutation.len()`.
    pub fn from_permutation(permutation: Vec<u32>) -> Self {
        let n = permutation.len();
        let mut inverse = vec![u32::MAX; n];
        for (i, &p) in permutation.iter().enumerate() {
            let p = p as usize;
            assert!(p < n, "permutation value {p} out of range");
            assert_eq!(inverse[p], u32::MAX, "permutation repeats value {p}");
            inverse[p] = i as u32;
        }
        Interleaver {
            forward: permutation,
            inverse,
        }
    }

    /// The TS 36.212-style sub-block interleaver for `n` elements:
    /// row-wise write into 32 permuted columns, column-wise read, with
    /// leading dummy padding skipped.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn subblock(n: usize) -> Self {
        assert!(n > 0, "interleaver length must be positive");
        let cols = COLUMN_PERMUTATION.len();
        let rows = n.div_ceil(cols);
        let padded = rows * cols;
        let dummy = padded - n;
        // Element at padded position p (row-wise, including `dummy` leading
        // dummies) is input index p - dummy when p >= dummy.
        let mut forward = Vec::with_capacity(n);
        for &col in COLUMN_PERMUTATION.iter() {
            for row in 0..rows {
                let p = row * cols + col;
                if p >= dummy {
                    forward.push((p - dummy) as u32);
                }
            }
        }
        debug_assert_eq!(forward.len(), n);
        Self::from_permutation(forward)
    }

    /// An identity interleaver (useful as a pipeline placeholder).
    pub fn identity(n: usize) -> Self {
        Self::from_permutation((0..n as u32).collect())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` when the interleaver is for zero elements.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Interleaves `input` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn apply<T: Copy>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.len(), "input length mismatch");
        self.forward.iter().map(|&p| input[p as usize]).collect()
    }

    /// Deinterleaves `input` into a new vector (the inverse of [`apply`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    ///
    /// [`apply`]: Interleaver::apply
    pub fn invert<T: Copy>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.len(), "input length mismatch");
        self.inverse.iter().map(|&p| input[p as usize]).collect()
    }

    /// Interleaves into a caller-provided buffer, avoiding allocation on
    /// the receiver hot path (the turbo decoder's QPP applies run twice
    /// per iteration).
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn apply_into<T: Copy>(&self, input: &[T], out: &mut [T]) {
        assert_eq!(input.len(), self.len(), "input length mismatch");
        assert_eq!(out.len(), self.len(), "output length mismatch");
        for (o, &p) in out.iter_mut().zip(self.forward.iter()) {
            *o = input[p as usize];
        }
    }

    /// Deinterleaves into a caller-provided buffer, avoiding allocation on
    /// the receiver hot path.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn invert_into<T: Copy>(&self, input: &[T], out: &mut [T]) {
        assert_eq!(input.len(), self.len(), "input length mismatch");
        assert_eq!(out.len(), self.len(), "output length mismatch");
        for (o, &p) in out.iter_mut().zip(self.inverse.iter()) {
            *o = input[p as usize];
        }
    }

    /// The underlying forward permutation.
    pub fn permutation(&self) -> &[u32] {
        &self.forward
    }

    /// The inverse permutation: `invert` output position `i` reads input
    /// position `inverse_permutation()[i]`. Exposed so downstream
    /// consumers (the fused rate-match gather) can deinterleave lazily —
    /// reading through this table instead of materialising the
    /// deinterleaved buffer first.
    pub fn inverse_permutation(&self) -> &[u32] {
        &self.inverse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_permutation_is_a_permutation() {
        let mut seen = [false; 32];
        for &c in &COLUMN_PERMUTATION {
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn subblock_round_trip_various_lengths() {
        for n in [1, 5, 31, 32, 33, 100, 1024, 6144] {
            let il = Interleaver::subblock(n);
            assert_eq!(il.len(), n);
            let data: Vec<u32> = (0..n as u32).collect();
            let mixed = il.apply(&data);
            assert_eq!(il.invert(&mixed), data, "n={n}");
        }
    }

    #[test]
    fn subblock_actually_permutes() {
        let il = Interleaver::subblock(128);
        let data: Vec<u32> = (0..128).collect();
        let mixed = il.apply(&data);
        assert_ne!(mixed, data);
        // Adjacent input bits end up far apart (the point of interleaving).
        let pos_of = |v: u32| mixed.iter().position(|&x| x == v).unwrap() as isize;
        let mut min_sep = isize::MAX;
        for v in 0..10u32 {
            min_sep = min_sep.min((pos_of(v) - pos_of(v + 1)).abs());
        }
        assert!(min_sep >= 3, "adjacent bits too close: {min_sep}");
    }

    #[test]
    fn invert_into_matches_invert() {
        let il = Interleaver::subblock(77);
        let data: Vec<f32> = (0..77).map(|i| i as f32).collect();
        let mixed = il.apply(&data);
        let a = il.invert(&mixed);
        let mut b = vec![0f32; 77];
        il.invert_into(&mixed, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn identity_is_identity() {
        let il = Interleaver::identity(10);
        let data: Vec<u8> = (0..10).collect();
        assert_eq!(il.apply(&data), data);
        assert_eq!(il.invert(&data), data);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_permutation_rejected() {
        Interleaver::from_permutation(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_permutation_rejected() {
        Interleaver::from_permutation(vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_length_checked() {
        Interleaver::identity(4).apply(&[1u8, 2, 3]);
    }

    #[test]
    fn cache_survives_sixteen_thread_hammer() {
        let sizes = [96, 288, 1200, 2880, 7200, 97];
        prewarm_subblock(sizes.iter().copied().take(3));
        std::thread::scope(|scope| {
            for t in 0..16 {
                scope.spawn(move || {
                    for i in 0..200 {
                        let n = sizes[(t + i) % sizes.len()];
                        let il = subblock_cached(n);
                        assert_eq!(il.len(), n);
                        // Every thread must share one instance per size.
                        assert!(Arc::ptr_eq(&il, &subblock_cached(n)));
                    }
                });
            }
        });
    }
}
