//! Bit scrambling with the LTE Gold sequence (TS 36.211 §7.2).
//!
//! Uplink coded bits are scrambled with a length-31 Gold sequence seeded
//! from the UE identity and slot number, whitening the transmitted
//! spectrum and decorrelating inter-cell interference. The receiver
//! descrambles by flipping the signs of the corresponding LLRs.

/// Offset discarding the Gold sequence's low-correlation warm-up
/// (`N_C` in the standard).
const NC: usize = 1600;

/// The LTE pseudo-random (Gold) sequence generator.
///
/// # Example
///
/// ```
/// use lte_dsp::scrambling::GoldSequence;
///
/// let mut g = GoldSequence::new(0x1234);
/// let bits: Vec<u8> = (0..8).map(|_| g.next_bit()).collect();
/// let mut g2 = GoldSequence::new(0x1234);
/// let again: Vec<u8> = (0..8).map(|_| g2.next_bit()).collect();
/// assert_eq!(bits, again);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoldSequence {
    x1: u32,
    x2: u32,
}

impl GoldSequence {
    /// Creates the generator with initialisation value `c_init`
    /// (truncated to 31 bits), advanced past the `N_C = 1600` warm-up.
    pub fn new(c_init: u32) -> Self {
        let mut g = GoldSequence {
            x1: 1, // x1 starts at 0…01 per the standard
            x2: c_init & 0x7FFF_FFFF,
        };
        for _ in 0..NC {
            g.step();
        }
        g
    }

    /// Advances both LFSRs one step.
    #[inline]
    fn step(&mut self) {
        // x1(n+31) = (x1(n+3) + x1(n)) mod 2
        let new_x1 = ((self.x1 >> 3) ^ self.x1) & 1;
        // x2(n+31) = (x2(n+3) + x2(n+2) + x2(n+1) + x2(n)) mod 2
        let new_x2 = ((self.x2 >> 3) ^ (self.x2 >> 2) ^ (self.x2 >> 1) ^ self.x2) & 1;
        self.x1 = (self.x1 >> 1) | (new_x1 << 30);
        self.x2 = (self.x2 >> 1) | (new_x2 << 30);
    }

    /// The next scrambling bit `c(n) = (x1(n) + x2(n)) mod 2`.
    #[inline]
    pub fn next_bit(&mut self) -> u8 {
        let c = ((self.x1 ^ self.x2) & 1) as u8;
        self.step();
        c
    }

    /// Generates `n` scrambling bits.
    pub fn bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_bit()).collect()
    }
}

/// The standard `c_init` for uplink shared-channel scrambling:
/// `n_rnti·2¹⁴ + q·2¹³ + ⌊n_s/2⌋·2⁹ + cell_id`.
pub fn pusch_c_init(n_rnti: u16, codeword: u8, subframe: u32, cell_id: u16) -> u32 {
    ((n_rnti as u32) << 14)
        | ((codeword as u32 & 1) << 13)
        | ((subframe % 10) << 9)
        | (cell_id as u32 % 504)
}

/// Scrambles a bit vector in place (XOR with the sequence).
pub fn scramble_bits(bits: &mut [u8], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    for b in bits.iter_mut() {
        *b ^= g.next_bit();
    }
}

/// Descrambles soft values in place: flips the sign of every LLR whose
/// scrambling bit was 1.
pub fn descramble_llrs(llrs: &mut [f32], c_init: u32) {
    let mut g = GoldSequence::new(c_init);
    for l in llrs.iter_mut() {
        if g.next_bit() == 1 {
            *l = -*l;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = GoldSequence::new(7).bits(64);
        let b = GoldSequence::new(7).bits(64);
        let c = GoldSequence::new(8).bits(64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sequence_is_balanced() {
        // A Gold sequence is nearly balanced: ~50 % ones.
        let bits = GoldSequence::new(0x0BAD_CAFE & 0x7FFF_FFFF).bits(20_000);
        let ones: usize = bits.iter().map(|&b| b as usize).sum();
        let frac = ones as f64 / bits.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }

    #[test]
    fn low_autocorrelation() {
        let bits = GoldSequence::new(123).bits(8_192);
        // Map to ±1 and check a few cyclic lags.
        let s: Vec<i32> = bits.iter().map(|&b| 1 - 2 * b as i32).collect();
        for lag in [1usize, 7, 63, 1021] {
            let corr: i64 = (0..s.len())
                .map(|i| (s[i] * s[(i + lag) % s.len()]) as i64)
                .sum();
            assert!(
                corr.unsigned_abs() < (s.len() / 16) as u64,
                "lag {lag}: correlation {corr}"
            );
        }
    }

    #[test]
    fn scramble_is_an_involution() {
        let mut bits: Vec<u8> = (0..100).map(|i| (i % 3 == 0) as u8).collect();
        let original = bits.clone();
        scramble_bits(&mut bits, 42);
        assert_ne!(bits, original, "scrambling must change the bits");
        scramble_bits(&mut bits, 42);
        assert_eq!(bits, original, "double scramble is identity");
    }

    #[test]
    fn llr_descrambling_matches_bit_scrambling() {
        let c_init = 99;
        let clean_bits: Vec<u8> = (0..64).map(|i| (i % 5 < 2) as u8).collect();
        let mut tx = clean_bits.clone();
        scramble_bits(&mut tx, c_init);
        // Noiseless LLRs for the scrambled bits: +2 for 0, −2 for 1.
        let mut llrs: Vec<f32> = tx
            .iter()
            .map(|&b| if b == 0 { 2.0 } else { -2.0 })
            .collect();
        descramble_llrs(&mut llrs, c_init);
        let rx: Vec<u8> = llrs.iter().map(|&l| (l < 0.0) as u8).collect();
        assert_eq!(rx, clean_bits);
    }

    #[test]
    fn pusch_c_init_fields() {
        let c = pusch_c_init(0x1F, 1, 23, 100);
        assert_eq!(c & 0x1FF, 100); // cell id in low 9 bits
        assert_eq!((c >> 9) & 0xF, 3); // subframe 23 % 10
        assert_eq!((c >> 13) & 1, 1); // codeword
        assert_eq!(c >> 14, 0x1F); // rnti
    }

    #[test]
    fn different_subframes_use_different_sequences() {
        let a = GoldSequence::new(pusch_c_init(1, 0, 0, 0)).bits(32);
        let b = GoldSequence::new(pusch_c_init(1, 0, 1, 0)).bits(32);
        assert_ne!(a, b);
    }
}
